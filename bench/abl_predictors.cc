/**
 * @file
 * Ablation: branch prediction vs the collapsing-buffer pipeline
 * choice -- the paper's concluding-remarks open question.
 *
 * "It remains to be seen what effect branch prediction accuracy has
 *  on the misprediction penalty when designing a pipelined collapsing
 *  buffer.  Other, more sophisticated predictors do exist ...
 *  Depending on the complexity of this branch prediction hardware, a
 *  shifter-based implementation of collapsing buffer may be viable."
 *
 * This bench answers it: for each predictor configuration (the
 * paper's BTB counters, gshare, two-level, each with and without a
 * return-address stack) it reports the misprediction rate and the
 * IPC of the crossbar (penalty 2) and shifter (penalty 3) collapsing
 * buffers, integer suite, all machines.
 */

#include "bench_util.h"

using namespace fetchsim;

int
main()
{
    Session session;
    SweepEngine engine = makeBenchEngine(session);
    benchBanner("prediction accuracy vs collapsing-buffer pipeline",
                "the concluding-remarks future-work study", &engine);

    const auto names = integerNames();
    struct PredRow
    {
        const char *label;
        PredictorKind kind;
        bool ras;
    };
    const PredRow preds[] = {
        {"btb-2bit (paper)", PredictorKind::BtbCounter, false},
        {"btb-2bit + RAS", PredictorKind::BtbCounter, true},
        {"gshare + RAS", PredictorKind::Gshare, true},
        {"two-level + RAS", PredictorKind::TwoLevel, true},
        {"oracle direction + RAS", PredictorKind::OracleDirection,
         true},
    };

    // Whole study as one batch: machines x predictors x {crossbar,
    // shifter} x benchmarks.
    std::vector<RunConfig> batch;
    for (const PredRow &pred : preds) {
        ExperimentPlan plan;
        plan.benchmarks(names)
            .machines(allMachines())
            .scheme(SchemeKind::CollapsingBuffer)
            .cbImpls({CollapsingBufferFetch::Impl::Crossbar,
                      CollapsingBufferFetch::Impl::Shifter})
            .override([pred](RunConfig &config) {
                config.predictorKind = pred.kind;
                config.useRas = pred.ras;
            });
        appendPlan(batch, plan);
    }
    SweepResult sweep = engine.run(batch);

    for (MachineModel machine : allMachines()) {
        TextTable table(std::string("Collapsing buffer on ") +
                        machineName(machine) +
                        ": crossbar (pen 2) vs shifter (pen 3), "
                        "integer harmonic means");
        table.setHeader({"predictor", "cond mispredict",
                         "IPC crossbar", "IPC shifter",
                         "shifter loss"});

        for (const PredRow &pred : preds) {
            auto cell = [&](CollapsingBufferFetch::Impl impl) {
                return sweep.suiteWhere(
                    [&](const RunConfig &config) {
                        return config.machine == machine &&
                               config.predictorKind == pred.kind &&
                               config.useRas == pred.ras &&
                               config.cbImpl == impl;
                    });
            };
            SuiteResult crossbar =
                cell(CollapsingBufferFetch::Impl::Crossbar);
            SuiteResult shifter =
                cell(CollapsingBufferFetch::Impl::Shifter);

            // Aggregate misprediction rate over the suite.
            std::uint64_t wrong = 0, total = 0;
            for (const RunResult &run : crossbar.runs) {
                wrong += run.counters.mispredicts;
                total += run.counters.condBranches;
            }
            table.startRow();
            table.addCell(std::string(pred.label));
            table.addPercent(total == 0 ? 0.0
                                        : 100.0 *
                                              static_cast<double>(wrong) /
                                              static_cast<double>(total));
            table.addCell(crossbar.hmeanIpc, 3);
            table.addCell(shifter.hmeanIpc, 3);
            table.addPercent(
                100.0 * (1.0 - shifter.hmeanIpc / crossbar.hmeanIpc),
                1);
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Reading: as prediction improves, mispredictions "
                 "(where the extra shifter pipeline stage bites) get "
                 "rarer, so the shifter's IPC loss shrinks -- "
                 "quantifying when the cheaper implementation "
                 "becomes viable.\n";
    return 0;
}
