/**
 * @file
 * Table 2: percentage of taken branches whose target lies in the same
 * cache block (intra-block branches), per benchmark, for the three
 * block sizes (16B for P14, 32B for P18, 64B for P112).
 */

#include "exec/branch_census.h"
#include "workload/benchmark_suite.h"

#include "bench_util.h"

using namespace fetchsim;

int
main()
{
    Session session;
    benchBanner("intra-block taken branches", "Table 2");

    const std::uint64_t insts = defaultDynInsts();
    TextTable table("Table 2: % taken branches with target in the "
                    "same block");
    table.setHeader({"class", "benchmark", "P14 (16B)", "P18 (32B)",
                     "P112 (64B)"});

    bool separator_done = false;
    for (const WorkloadSpec &spec : fullSuite()) {
        if (spec.isFp && !separator_done) {
            table.addSeparator();
            separator_done = true;
        }
        const Workload &workload =
            session.workload(spec.name, LayoutKind::Unordered);
        table.startRow();
        table.addCell(std::string(spec.isFp ? "FP" : "Int"));
        table.addCell(spec.name);
        for (int block_bytes : {16, 32, 64}) {
            BranchCensus census = runBranchCensus(
                workload, kEvalInput, insts, block_bytes);
            table.addPercent(census.intraBlockPercent());
        }
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: near zero at 16B for most codes, "
                 "rising steeply with block size; branchy integer "
                 "codes (eqntott, espresso) and short-loop FP codes "
                 "(mdljdp2, wave5) reach tens of percent at 64B, "
                 "while nasa7/ora/tomcatv stay near zero until 64B.\n";
    return 0;
}
