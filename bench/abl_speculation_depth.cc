/**
 * @file
 * Ablation: speculation depth.
 *
 * The paper states (Section 2): "Experiments with the degree of
 * speculation showed that speculative execution beyond two branches
 * was required to keep the pipeline full" (P14; four for P18, six
 * for P112).  This bench regenerates that design study: IPC of the
 * collapsing buffer as the unresolved-branch limit sweeps 0..10,
 * with the paper's chosen depth marked.
 */

#include "bench_util.h"

using namespace fetchsim;

int
main()
{
    Session session;
    SweepEngine engine = makeBenchEngine(session);
    benchBanner("speculation-depth sweep",
                "the Section 2 design study behind Table 1's "
                "speculation rows",
                &engine);

    const auto names = integerNames();
    // Depth 0 (no speculation past any unresolved branch) is not
    // representable in a decoupled-fetch machine -- fetch could never
    // deliver a conditional branch -- so the sweep starts at 1.
    const int depths[] = {1, 2, 3, 4, 6, 8, 10};

    // One plan per depth (the override axis), one parallel batch.
    std::vector<RunConfig> batch;
    for (int depth : depths) {
        ExperimentPlan plan;
        plan.benchmarks(names)
            .machines(allMachines())
            .scheme(SchemeKind::CollapsingBuffer)
            .override([depth](RunConfig &config) {
                config.specDepthOverride = depth;
            });
        appendPlan(batch, plan);
    }
    SweepResult sweep = engine.run(batch);

    TextTable table("Harmonic-mean integer IPC, collapsing buffer, "
                    "by speculation depth");
    std::vector<std::string> header = {"machine"};
    for (int depth : depths)
        header.push_back("d=" + std::to_string(depth));
    header.push_back("paper depth");
    table.setHeader(header);

    for (MachineModel machine : allMachines()) {
        table.startRow();
        table.addCell(std::string(machineName(machine)));
        for (int depth : depths) {
            SuiteResult suite =
                sweep.suiteWhere([&](const RunConfig &config) {
                    return config.machine == machine &&
                           config.specDepthOverride == depth;
                });
            table.addCell(suite.hmeanIpc, 3);
        }
        table.addCell(static_cast<std::uint64_t>(
            makeMachine(machine).specDepth));
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: IPC climbs steeply up to the "
                 "paper's chosen depth (2/4/6) and saturates shortly "
                 "after -- deeper speculation stops paying once the "
                 "window, not the branch limit, binds.\n";
    return 0;
}
