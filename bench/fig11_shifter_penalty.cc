/**
 * @file
 * Figure 11: the shifter-implemented collapsing buffer (three-cycle
 * fetch misprediction penalty) against the other schemes (two-cycle
 * penalties), integer benchmarks.  Shows why the crossbar
 * implementation is required for the collapsing buffer to beat
 * banked sequential.
 */

#include "bench_util.h"

using namespace fetchsim;

int
main()
{
    Session session;
    SweepEngine engine = makeBenchEngine(session);
    benchBanner("collapsing buffer with shifter (penalty 3)",
                "Figure 11", &engine);

    const auto names = integerNames();

    // The grid is irregular (the impl axis only applies to the
    // collapsing buffer), so concatenate two plans into one batch.
    std::vector<RunConfig> batch;
    {
        ExperimentPlan others;
        others.benchmarks(names)
            .machines(allMachines())
            .schemes({SchemeKind::Sequential,
                      SchemeKind::InterleavedSequential,
                      SchemeKind::BankedSequential,
                      SchemeKind::Perfect});
        appendPlan(batch, others);

        ExperimentPlan collapsing;
        collapsing.benchmarks(names)
            .machines(allMachines())
            .scheme(SchemeKind::CollapsingBuffer)
            .cbImpls({CollapsingBufferFetch::Impl::Shifter,
                      CollapsingBufferFetch::Impl::Crossbar});
        appendPlan(batch, collapsing);
    }
    SweepResult sweep = engine.run(batch);

    TextTable table("Figure 11: harmonic-mean IPC, integer "
                    "benchmarks (collapsing buffer at penalty 3)");
    table.setHeader({"scheme", "P14", "P18", "P112"});

    struct Row
    {
        const char *label;
        SchemeKind scheme;
        CollapsingBufferFetch::Impl impl;
    };
    const Row rows[] = {
        {"sequential", SchemeKind::Sequential,
         CollapsingBufferFetch::Impl::Crossbar},
        {"interleaved-sequential", SchemeKind::InterleavedSequential,
         CollapsingBufferFetch::Impl::Crossbar},
        {"banked-sequential", SchemeKind::BankedSequential,
         CollapsingBufferFetch::Impl::Crossbar},
        {"collapsing-buffer (shifter, penalty 3)",
         SchemeKind::CollapsingBuffer,
         CollapsingBufferFetch::Impl::Shifter},
        {"collapsing-buffer (crossbar, penalty 2)",
         SchemeKind::CollapsingBuffer,
         CollapsingBufferFetch::Impl::Crossbar},
        {"perfect", SchemeKind::Perfect,
         CollapsingBufferFetch::Impl::Crossbar},
    };
    for (const Row &row : rows) {
        table.startRow();
        table.addCell(std::string(row.label));
        for (MachineModel machine : allMachines()) {
            SuiteResult suite =
                sweep.suiteWhere([&](const RunConfig &config) {
                    return config.machine == machine &&
                           config.scheme == row.scheme &&
                           (config.scheme !=
                                SchemeKind::CollapsingBuffer ||
                            config.cbImpl == row.impl);
                });
            table.addCell(suite.hmeanIpc, 3);
        }
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: at penalty 3 the collapsing "
                 "buffer loses most of its edge -- roughly matching "
                 "banked sequential at P14 and only slightly ahead at "
                 "P112 -- arguing for the crossbar implementation.\n";
    return 0;
}
