/**
 * @file
 * Figure 10: EIR/EIR(perfect) — each scheme's effective issue rate as
 * a percentage of the perfect mechanism's, harmonic-mean over (a)
 * integer and (b) floating-point benchmarks, for P14/P18/P112.
 */

#include "bench_util.h"

using namespace fetchsim;

int
main()
{
    Session session;
    SweepEngine engine = makeBenchEngine(session);
    benchBanner("EIR relative to perfect", "Figure 10(a,b)", &engine);

    for (bool fp : {false, true}) {
        const auto names = fp ? fpNames() : integerNames();

        // All five schemes (perfect included, as the denominator) in
        // one parallel batch.
        ExperimentPlan plan;
        plan.benchmarks(names)
            .machines(allMachines())
            .schemes(allSchemes());
        SweepResult sweep = engine.run(plan);

        TextTable table(std::string("Figure 10") +
                        (fp ? "(b)" : "(a)") + ": EIR/EIR(perfect), " +
                        (fp ? "floating-point" : "integer") +
                        " benchmarks");
        table.setHeader({"scheme", "P14", "P18", "P112"});

        for (SchemeKind scheme :
             {SchemeKind::Sequential, SchemeKind::InterleavedSequential,
              SchemeKind::BankedSequential,
              SchemeKind::CollapsingBuffer}) {
            table.startRow();
            table.addCell(std::string(schemeName(scheme)));
            for (MachineModel machine : allMachines()) {
                const double perfect_eir =
                    sweep.suite(machine, SchemeKind::Perfect).hmeanEir;
                const double scheme_eir =
                    sweep.suite(machine, scheme).hmeanEir;
                table.addPercent(percentOf(scheme_eir, perfect_eir), 1);
            }
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Expected shape: the collapsing buffer stays at or "
                 "above ~90% at every issue rate; the other schemes "
                 "decay steadily from P14 to P112.\n";
    return 0;
}
