/**
 * @file
 * Figure 10: EIR/EIR(perfect) — each scheme's effective issue rate as
 * a percentage of the perfect mechanism's, harmonic-mean over (a)
 * integer and (b) floating-point benchmarks, for P14/P18/P112.
 */

#include "bench_util.h"

using namespace fetchsim;

int
main()
{
    benchBanner("EIR relative to perfect", "Figure 10(a,b)");

    for (bool fp : {false, true}) {
        const auto names = fp ? fpNames() : integerNames();
        TextTable table(std::string("Figure 10") +
                        (fp ? "(b)" : "(a)") + ": EIR/EIR(perfect), " +
                        (fp ? "floating-point" : "integer") +
                        " benchmarks");
        table.setHeader({"scheme", "P14", "P18", "P112"});

        // EIR(perfect) per machine, reused for every scheme row.
        std::vector<double> perfect_eir;
        for (MachineModel machine : allMachines()) {
            SuiteResult suite =
                runSuite(names, machine, SchemeKind::Perfect);
            perfect_eir.push_back(suite.hmeanEir);
        }

        for (SchemeKind scheme :
             {SchemeKind::Sequential, SchemeKind::InterleavedSequential,
              SchemeKind::BankedSequential,
              SchemeKind::CollapsingBuffer}) {
            table.startRow();
            table.addCell(std::string(schemeName(scheme)));
            for (std::size_t m = 0; m < allMachines().size(); ++m) {
                SuiteResult suite =
                    runSuite(names, allMachines()[m], scheme);
                table.addPercent(
                    percentOf(suite.hmeanEir, perfect_eir[m]), 1);
            }
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Expected shape: the collapsing buffer stays at or "
                 "above ~90% at every issue rate; the other schemes "
                 "decay steadily from P14 to P112.\n";
    return 0;
}
