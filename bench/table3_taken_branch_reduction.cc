/**
 * @file
 * Table 3: percentage reduction in dynamic taken branches achieved by
 * profile-driven code reordering, per integer benchmark.
 *
 * Profiles use the five training inputs; the census runs on the
 * evaluation input, exactly as the paper's methodology prescribes.
 */

#include "exec/branch_census.h"
#include "workload/benchmark_suite.h"

#include "bench_util.h"

using namespace fetchsim;

int
main()
{
    Session session;
    benchBanner("taken-branch reduction from code reordering",
                "Table 3");

    const std::uint64_t insts = defaultDynInsts();
    TextTable table(
        "Table 3: % reduction in taken branches due to reordering");
    table.setHeader({"benchmark", "taken/100 inst (unordered)",
                     "taken/100 inst (reordered)", "% reduction"});

    for (const std::string &name : integerNames()) {
        const Workload &unordered =
            session.workload(name, LayoutKind::Unordered);
        const Workload &reordered =
            session.workload(name, LayoutKind::Reordered);

        BranchCensus before =
            runBranchCensus(unordered, kEvalInput, insts, 16);
        BranchCensus after =
            runBranchCensus(reordered, kEvalInput, insts, 16);

        const double reduction =
            before.takenTotal == 0
                ? 0.0
                : 100.0 *
                      (static_cast<double>(before.takenTotal) -
                       static_cast<double>(after.takenTotal)) /
                      static_cast<double>(before.takenTotal);

        table.startRow();
        table.addCell(name);
        table.addCell(before.takenPer100(), 2);
        table.addCell(after.takenPer100(), 2);
        table.addPercent(reduction);
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: most benchmarks lose at least "
                 "~20% of their taken branches; the paper reports "
                 "15.7% (li) to 44.2% (compress).\n";
    return 0;
}
