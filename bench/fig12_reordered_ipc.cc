/**
 * @file
 * Figure 12: IPC of the hardware schemes after profile-driven code
 * reordering, integer benchmarks, with the unordered sequential and
 * perfect results as reference bars.
 */

#include "bench_util.h"

using namespace fetchsim;

int
main()
{
    Session session;
    SweepEngine engine = makeBenchEngine(session);
    benchBanner("hardware schemes after code reordering", "Figure 12",
                &engine);

    const auto names = integerNames();

    struct Row
    {
        const char *label;
        SchemeKind scheme;
        LayoutKind layout;
    };
    const Row rows[] = {
        {"sequential (unordered)", SchemeKind::Sequential,
         LayoutKind::Unordered},
        {"sequential (reordered)", SchemeKind::Sequential,
         LayoutKind::Reordered},
        {"interleaved-sequential (reordered)",
         SchemeKind::InterleavedSequential, LayoutKind::Reordered},
        {"banked-sequential (reordered)",
         SchemeKind::BankedSequential, LayoutKind::Reordered},
        {"collapsing-buffer (reordered)",
         SchemeKind::CollapsingBuffer, LayoutKind::Reordered},
        {"perfect (reordered)", SchemeKind::Perfect,
         LayoutKind::Reordered},
        {"perfect (unordered)", SchemeKind::Perfect,
         LayoutKind::Unordered},
    };

    // The rows are (scheme, layout) pairs, not a full cross product;
    // one plan per row, all concatenated into one parallel batch.
    std::vector<RunConfig> batch;
    for (const Row &row : rows) {
        ExperimentPlan plan;
        plan.benchmarks(names)
            .machines(allMachines())
            .scheme(row.scheme)
            .layout(row.layout);
        appendPlan(batch, plan);
    }
    SweepResult sweep = engine.run(batch);

    TextTable table("Figure 12: harmonic-mean IPC, integer "
                    "benchmarks, reordered code");
    table.setHeader({"configuration", "P14", "P18", "P112"});
    for (const Row &row : rows) {
        table.startRow();
        table.addCell(std::string(row.label));
        for (MachineModel machine : allMachines()) {
            table.addCell(
                sweep.suite(machine, row.scheme, row.layout).hmeanIpc,
                3);
        }
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: reordering lifts every scheme; "
                 "reordered interleaved-sequential approaches "
                 "unordered perfect (the hardware-only collapsing "
                 "buffer), and reordered collapsing-buffer nearly "
                 "matches reordered perfect.\n";
    return 0;
}
