/**
 * @file
 * Figure 12: IPC of the hardware schemes after profile-driven code
 * reordering, integer benchmarks, with the unordered sequential and
 * perfect results as reference bars.
 */

#include "bench_util.h"

using namespace fetchsim;

int
main()
{
    benchBanner("hardware schemes after code reordering", "Figure 12");

    const auto names = integerNames();
    TextTable table("Figure 12: harmonic-mean IPC, integer "
                    "benchmarks, reordered code");
    table.setHeader({"configuration", "P14", "P18", "P112"});

    struct Row
    {
        const char *label;
        SchemeKind scheme;
        LayoutKind layout;
    };
    const Row rows[] = {
        {"sequential (unordered)", SchemeKind::Sequential,
         LayoutKind::Unordered},
        {"sequential (reordered)", SchemeKind::Sequential,
         LayoutKind::Reordered},
        {"interleaved-sequential (reordered)",
         SchemeKind::InterleavedSequential, LayoutKind::Reordered},
        {"banked-sequential (reordered)",
         SchemeKind::BankedSequential, LayoutKind::Reordered},
        {"collapsing-buffer (reordered)",
         SchemeKind::CollapsingBuffer, LayoutKind::Reordered},
        {"perfect (reordered)", SchemeKind::Perfect,
         LayoutKind::Reordered},
        {"perfect (unordered)", SchemeKind::Perfect,
         LayoutKind::Unordered},
    };
    for (const Row &row : rows) {
        table.startRow();
        table.addCell(std::string(row.label));
        for (MachineModel machine : allMachines()) {
            SuiteResult suite =
                runSuite(names, machine, row.scheme, row.layout);
            table.addCell(suite.hmeanIpc, 3);
        }
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: reordering lifts every scheme; "
                 "reordered interleaved-sequential approaches "
                 "unordered perfect (the hardware-only collapsing "
                 "buffer), and reordered collapsing-buffer nearly "
                 "matches reordered perfect.\n";
    return 0;
}
