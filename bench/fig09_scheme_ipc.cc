/**
 * @file
 * Figure 9: IPC of all four alignment mechanisms plus perfect, as
 * harmonic means over (a) the integer and (b) the floating-point
 * suites, for P14/P18/P112.
 */

#include "bench_util.h"

using namespace fetchsim;

int
main()
{
    benchBanner("alignment-mechanism IPC", "Figure 9(a,b)");

    for (bool fp : {false, true}) {
        const auto names = fp ? fpNames() : integerNames();
        TextTable table(std::string("Figure 9") + (fp ? "(b)" : "(a)") +
                        ": harmonic-mean IPC, " +
                        (fp ? "floating-point" : "integer") +
                        " benchmarks");
        table.setHeader({"scheme", "P14", "P18", "P112"});
        for (SchemeKind scheme : allSchemes()) {
            table.startRow();
            table.addCell(std::string(schemeName(scheme)));
            for (MachineModel machine : allMachines()) {
                SuiteResult suite = runSuite(names, machine, scheme);
                table.addCell(suite.hmeanIpc, 3);
            }
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Expected shape: sequential < interleaved < banked < "
                 "collapsing <= perfect, with the gaps growing from "
                 "P14 to P112 and the collapsing buffer staying close "
                 "to perfect everywhere.\n";
    return 0;
}
