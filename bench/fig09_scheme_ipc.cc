/**
 * @file
 * Figure 9: IPC of all four alignment mechanisms plus perfect, as
 * harmonic means over (a) the integer and (b) the floating-point
 * suites, for P14/P18/P112.
 */

#include "bench_util.h"

using namespace fetchsim;

int
main()
{
    Session session;
    SweepEngine engine = makeBenchEngine(session);
    benchBanner("alignment-mechanism IPC", "Figure 9(a,b)", &engine);

    for (bool fp : {false, true}) {
        const auto names = fp ? fpNames() : integerNames();

        // One plan covers the whole sub-figure: every (scheme,
        // machine, benchmark) point runs in one parallel batch.
        ExperimentPlan plan;
        plan.benchmarks(names)
            .machines(allMachines())
            .schemes(allSchemes());
        SweepResult sweep = engine.run(plan);

        TextTable table(std::string("Figure 9") + (fp ? "(b)" : "(a)") +
                        ": harmonic-mean IPC, " +
                        (fp ? "floating-point" : "integer") +
                        " benchmarks");
        table.setHeader({"scheme", "P14", "P18", "P112"});
        for (SchemeKind scheme : allSchemes()) {
            table.startRow();
            table.addCell(std::string(schemeName(scheme)));
            for (MachineModel machine : allMachines())
                table.addCell(sweep.suite(machine, scheme).hmeanIpc, 3);
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Expected shape: sequential < interleaved < banked < "
                 "collapsing <= perfect, with the gaps growing from "
                 "P14 to P112 and the collapsing buffer staying close "
                 "to perfect everywhere.\n";
    return 0;
}
