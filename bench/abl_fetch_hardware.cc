/**
 * @file
 * Ablation: the remaining fetch-hardware design choices DESIGN.md
 * calls out -- BTB size, I-cache refill latency, scheduling-window
 * size, and the extended backward-collapsing crossbar controller.
 */

#include "bench_util.h"

using namespace fetchsim;

namespace
{

void
btbSizeSweep(const std::vector<std::string> &names)
{
    TextTable table("BTB entries vs integer IPC "
                    "(collapsing buffer)");
    const int sizes[] = {64, 256, 1024, 4096};
    std::vector<std::string> header = {"machine"};
    for (int size : sizes)
        header.push_back(std::to_string(size));
    table.setHeader(header);
    for (MachineModel machine : allMachines()) {
        table.startRow();
        table.addCell(std::string(machineName(machine)));
        for (int size : sizes) {
            RunConfig proto;
            proto.machine = machine;
            proto.scheme = SchemeKind::CollapsingBuffer;
            proto.btbEntriesOverride = size;
            table.addCell(runSuite(names, proto).hmeanIpc, 3);
        }
    }
    table.print(std::cout);
    std::cout << "The paper's 1024 entries sit at the knee: smaller "
                 "buffers thrash on the integer working sets, larger "
                 "ones buy little.\n\n";
}

void
missPenaltySweep(const std::vector<std::string> &names)
{
    TextTable table("I-cache refill latency vs integer IPC, P112");
    const int penalties[] = {4, 10, 20, 40};
    std::vector<std::string> header = {"scheme"};
    for (int p : penalties)
        header.push_back(std::to_string(p) + " cyc");
    table.setHeader(header);
    for (SchemeKind scheme :
         {SchemeKind::Sequential, SchemeKind::CollapsingBuffer,
          SchemeKind::Perfect}) {
        table.startRow();
        table.addCell(std::string(schemeName(scheme)));
        for (int p : penalties) {
            RunConfig proto;
            proto.machine = MachineModel::P112;
            proto.scheme = scheme;
            proto.missPenaltyOverride = p;
            table.addCell(runSuite(names, proto).hmeanIpc, 3);
        }
    }
    table.print(std::cout);
    std::cout << "DESIGN.md's 10-cycle substitution for the paper's "
                 "unspecified latency: the scheme ordering is "
                 "unchanged across the whole range.\n\n";
}

void
windowSweep(const std::vector<std::string> &names)
{
    TextTable table("Scheduling-window entries vs integer IPC, "
                    "P112, collapsing buffer");
    const int windows[] = {8, 16, 32, 64, 128};
    std::vector<std::string> header = {"metric"};
    for (int w : windows)
        header.push_back(std::to_string(w));
    table.setHeader(header);
    table.startRow();
    table.addCell(std::string("IPC"));
    for (int w : windows) {
        RunConfig proto;
        proto.machine = MachineModel::P112;
        proto.scheme = SchemeKind::CollapsingBuffer;
        proto.windowSizeOverride = w;
        table.addCell(runSuite(names, proto).hmeanIpc, 3);
    }
    table.print(std::cout);
    std::cout << "Table 1's 32 entries for P112 sit near "
                 "saturation for these workloads.\n\n";
}

void
backwardCollapse(const std::vector<std::string> &names)
{
    TextTable table("Extended crossbar controller: backward "
                    "intra-block collapsing (integer IPC)");
    table.setHeader({"machine", "paper controller",
                     "with backward collapsing", "gain"});
    for (MachineModel machine : allMachines()) {
        RunConfig proto;
        proto.machine = machine;
        proto.scheme = SchemeKind::CollapsingBuffer;
        SuiteResult base = runSuite(names, proto);
        proto.cbAllowBackward = true;
        SuiteResult ext = runSuite(names, proto);
        table.startRow();
        table.addCell(std::string(machineName(machine)));
        table.addCell(base.hmeanIpc, 3);
        table.addCell(ext.hmeanIpc, 3);
        table.addPercent(
            100.0 * (ext.hmeanIpc / base.hmeanIpc - 1.0), 2);
    }
    table.print(std::cout);
    std::cout << "Section 3.3 notes the crossbar could follow "
                 "backward targets but the modeled controller did "
                 "not; the small gain here explains why the authors "
                 "left it out (backward intra-block takens are rare "
                 "-- they are tiny loops that stay BTB-predicted "
                 "anyway).\n";
}

void
associativitySweep(const std::vector<std::string> &names)
{
    TextTable table("I-cache associativity vs integer IPC "
                    "(collapsing buffer; paper uses direct-mapped)");
    const int ways[] = {1, 2, 4};
    std::vector<std::string> header = {"machine"};
    for (int w : ways)
        header.push_back(std::to_string(w) + "-way");
    table.setHeader(header);
    for (MachineModel machine : allMachines()) {
        table.startRow();
        table.addCell(std::string(machineName(machine)));
        for (int w : ways) {
            RunConfig proto;
            proto.machine = machine;
            proto.scheme = SchemeKind::CollapsingBuffer;
            proto.icacheWaysOverride = w;
            table.addCell(runSuite(names, proto).hmeanIpc, 3);
        }
    }
    table.print(std::cout);
    std::cout << "Associativity is a wash at these footprints: the "
                 "hot working sets fit the paper's caches and misses "
                 "are cold, not conflict, misses -- consistent with "
                 "the paper's choice of simple direct-mapped "
                 "arrays.\n\n";
}

void
functionPlacement(const std::vector<std::string> &names)
{
    TextTable table("Pettis-Hansen function placement on top of "
                    "trace reordering (integer IPC, sequential "
                    "scheme)");
    table.setHeader({"machine", "reordered", "reordered+placed",
                     "gain"});
    for (MachineModel machine : allMachines()) {
        RunConfig proto;
        proto.machine = machine;
        proto.scheme = SchemeKind::Sequential;
        proto.layout = LayoutKind::Reordered;
        SuiteResult base = runSuite(names, proto);
        proto.layout = LayoutKind::ReorderedPlaced;
        SuiteResult placed = runSuite(names, proto);
        table.startRow();
        table.addCell(std::string(machineName(machine)));
        table.addCell(base.hmeanIpc, 3);
        table.addCell(placed.hmeanIpc, 3);
        table.addPercent(
            100.0 * (placed.hmeanIpc / base.hmeanIpc - 1.0), 2);
    }
    table.print(std::cout);
    std::cout << "The inter-procedural half of the paper's "
                 "reference [8].  Neutral here (within ~1.5%): these "
                 "hot working sets already fit the caches, so "
                 "caller/callee adjacency has nothing to save -- the "
                 "pass earns its keep only when code outgrows the "
                 "I-cache.\n\n";
}

void
power2Comparator(const std::vector<std::string> &names)
{
    TextTable table("Related work (Section 1): POWER2-style 8-bank "
                    "fetch vs the paper's schemes (integer IPC)");
    table.setHeader({"configuration", "P14", "P18", "P112"});

    struct Row
    {
        const char *label;
        SchemeKind scheme;
        PredictorKind predictor;
    };
    const Row rows[] = {
        {"banked-sequential (BTB 2-bit)",
         SchemeKind::BankedSequential, PredictorKind::BtbCounter},
        {"collapsing-buffer (BTB 2-bit)",
         SchemeKind::CollapsingBuffer, PredictorKind::BtbCounter},
        {"multi-banked, static BTFNT (POWER2-like)",
         SchemeKind::MultiBanked, PredictorKind::StaticBtfnt},
        {"multi-banked, BTB 2-bit", SchemeKind::MultiBanked,
         PredictorKind::BtbCounter},
    };
    for (const Row &row : rows) {
        table.startRow();
        table.addCell(std::string(row.label));
        for (MachineModel machine : allMachines()) {
            RunConfig proto;
            proto.machine = machine;
            proto.scheme = row.scheme;
            proto.predictorKind = row.predictor;
            table.addCell(runSuite(names, proto).hmeanIpc, 3);
        }
    }
    table.print(std::cout);
    std::cout << "Section 1's argument, quantified: the 8-bank unit "
                 "can align almost anything, but with static "
                 "prediction (the POWER2's limitation) it falls "
                 "behind the collapsing buffer; give it dynamic "
                 "prediction and the extra banks beat two-bank "
                 "designs.\n";
}

} // anonymous namespace

int
main()
{
    benchBanner("fetch-hardware ablations",
                "the design-choice studies DESIGN.md calls out");
    const auto names = integerNames();
    btbSizeSweep(names);
    missPenaltySweep(names);
    windowSweep(names);
    backwardCollapse(names);
    associativitySweep(names);
    functionPlacement(names);
    power2Comparator(names);
    return 0;
}
