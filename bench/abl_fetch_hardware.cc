/**
 * @file
 * Ablation: the remaining fetch-hardware design choices DESIGN.md
 * calls out -- BTB size, I-cache refill latency, scheduling-window
 * size, and the extended backward-collapsing crossbar controller.
 *
 * Each study expands its grid through an ExperimentPlan (override
 * axes included) and runs it as one parallel batch on the shared
 * engine.
 */

#include "bench_util.h"

using namespace fetchsim;

namespace
{

void
btbSizeSweep(SweepEngine &engine, const std::vector<std::string> &names)
{
    const int sizes[] = {64, 256, 1024, 4096};
    std::vector<RunConfig> batch;
    for (int size : sizes) {
        ExperimentPlan plan;
        plan.benchmarks(names)
            .machines(allMachines())
            .scheme(SchemeKind::CollapsingBuffer)
            .override([size](RunConfig &config) {
                config.btbEntriesOverride = size;
            });
        appendPlan(batch, plan);
    }
    SweepResult sweep = engine.run(batch);

    TextTable table("BTB entries vs integer IPC "
                    "(collapsing buffer)");
    std::vector<std::string> header = {"machine"};
    for (int size : sizes)
        header.push_back(std::to_string(size));
    table.setHeader(header);
    for (MachineModel machine : allMachines()) {
        table.startRow();
        table.addCell(std::string(machineName(machine)));
        for (int size : sizes) {
            SuiteResult suite =
                sweep.suiteWhere([&](const RunConfig &config) {
                    return config.machine == machine &&
                           config.btbEntriesOverride == size;
                });
            table.addCell(suite.hmeanIpc, 3);
        }
    }
    table.print(std::cout);
    std::cout << "The paper's 1024 entries sit at the knee: smaller "
                 "buffers thrash on the integer working sets, larger "
                 "ones buy little.\n\n";
}

void
missPenaltySweep(SweepEngine &engine,
                 const std::vector<std::string> &names)
{
    const int penalties[] = {4, 10, 20, 40};
    const std::vector<SchemeKind> schemes = {
        SchemeKind::Sequential, SchemeKind::CollapsingBuffer,
        SchemeKind::Perfect};
    std::vector<RunConfig> batch;
    for (int p : penalties) {
        ExperimentPlan plan;
        plan.benchmarks(names)
            .machine(MachineModel::P112)
            .schemes(schemes)
            .override([p](RunConfig &config) {
                config.missPenaltyOverride = p;
            });
        appendPlan(batch, plan);
    }
    SweepResult sweep = engine.run(batch);

    TextTable table("I-cache refill latency vs integer IPC, P112");
    std::vector<std::string> header = {"scheme"};
    for (int p : penalties)
        header.push_back(std::to_string(p) + " cyc");
    table.setHeader(header);
    for (SchemeKind scheme : schemes) {
        table.startRow();
        table.addCell(std::string(schemeName(scheme)));
        for (int p : penalties) {
            SuiteResult suite =
                sweep.suiteWhere([&](const RunConfig &config) {
                    return config.scheme == scheme &&
                           config.missPenaltyOverride == p;
                });
            table.addCell(suite.hmeanIpc, 3);
        }
    }
    table.print(std::cout);
    std::cout << "DESIGN.md's 10-cycle substitution for the paper's "
                 "unspecified latency: the scheme ordering is "
                 "unchanged across the whole range.\n\n";
}

void
windowSweep(SweepEngine &engine, const std::vector<std::string> &names)
{
    const int windows[] = {8, 16, 32, 64, 128};
    std::vector<RunConfig> batch;
    for (int w : windows) {
        ExperimentPlan plan;
        plan.benchmarks(names)
            .machine(MachineModel::P112)
            .scheme(SchemeKind::CollapsingBuffer)
            .override([w](RunConfig &config) {
                config.windowSizeOverride = w;
            });
        appendPlan(batch, plan);
    }
    SweepResult sweep = engine.run(batch);

    TextTable table("Scheduling-window entries vs integer IPC, "
                    "P112, collapsing buffer");
    std::vector<std::string> header = {"metric"};
    for (int w : windows)
        header.push_back(std::to_string(w));
    table.setHeader(header);
    table.startRow();
    table.addCell(std::string("IPC"));
    for (int w : windows) {
        SuiteResult suite =
            sweep.suiteWhere([&](const RunConfig &config) {
                return config.windowSizeOverride == w;
            });
        table.addCell(suite.hmeanIpc, 3);
    }
    table.print(std::cout);
    std::cout << "Table 1's 32 entries for P112 sit near "
                 "saturation for these workloads.\n\n";
}

void
backwardCollapse(SweepEngine &engine,
                 const std::vector<std::string> &names)
{
    std::vector<RunConfig> batch;
    for (bool backward : {false, true}) {
        ExperimentPlan plan;
        plan.benchmarks(names)
            .machines(allMachines())
            .scheme(SchemeKind::CollapsingBuffer)
            .override([backward](RunConfig &config) {
                config.cbAllowBackward = backward;
            });
        appendPlan(batch, plan);
    }
    SweepResult sweep = engine.run(batch);

    TextTable table("Extended crossbar controller: backward "
                    "intra-block collapsing (integer IPC)");
    table.setHeader({"machine", "paper controller",
                     "with backward collapsing", "gain"});
    for (MachineModel machine : allMachines()) {
        auto cell = [&](bool backward) {
            return sweep.suiteWhere([&](const RunConfig &config) {
                return config.machine == machine &&
                       config.cbAllowBackward == backward;
            });
        };
        SuiteResult base = cell(false);
        SuiteResult ext = cell(true);
        table.startRow();
        table.addCell(std::string(machineName(machine)));
        table.addCell(base.hmeanIpc, 3);
        table.addCell(ext.hmeanIpc, 3);
        table.addPercent(
            100.0 * (ext.hmeanIpc / base.hmeanIpc - 1.0), 2);
    }
    table.print(std::cout);
    std::cout << "Section 3.3 notes the crossbar could follow "
                 "backward targets but the modeled controller did "
                 "not; the small gain here explains why the authors "
                 "left it out (backward intra-block takens are rare "
                 "-- they are tiny loops that stay BTB-predicted "
                 "anyway).\n";
}

void
associativitySweep(SweepEngine &engine,
                   const std::vector<std::string> &names)
{
    const int ways[] = {1, 2, 4};
    std::vector<RunConfig> batch;
    for (int w : ways) {
        ExperimentPlan plan;
        plan.benchmarks(names)
            .machines(allMachines())
            .scheme(SchemeKind::CollapsingBuffer)
            .override([w](RunConfig &config) {
                config.icacheWaysOverride = w;
            });
        appendPlan(batch, plan);
    }
    SweepResult sweep = engine.run(batch);

    TextTable table("I-cache associativity vs integer IPC "
                    "(collapsing buffer; paper uses direct-mapped)");
    std::vector<std::string> header = {"machine"};
    for (int w : ways)
        header.push_back(std::to_string(w) + "-way");
    table.setHeader(header);
    for (MachineModel machine : allMachines()) {
        table.startRow();
        table.addCell(std::string(machineName(machine)));
        for (int w : ways) {
            SuiteResult suite =
                sweep.suiteWhere([&](const RunConfig &config) {
                    return config.machine == machine &&
                           config.icacheWaysOverride == w;
                });
            table.addCell(suite.hmeanIpc, 3);
        }
    }
    table.print(std::cout);
    std::cout << "Associativity is a wash at these footprints: the "
                 "hot working sets fit the paper's caches and misses "
                 "are cold, not conflict, misses -- consistent with "
                 "the paper's choice of simple direct-mapped "
                 "arrays.\n\n";
}

void
functionPlacement(SweepEngine &engine,
                  const std::vector<std::string> &names)
{
    ExperimentPlan plan;
    plan.benchmarks(names)
        .machines(allMachines())
        .scheme(SchemeKind::Sequential)
        .layouts({LayoutKind::Reordered, LayoutKind::ReorderedPlaced});
    SweepResult sweep = engine.run(plan);

    TextTable table("Pettis-Hansen function placement on top of "
                    "trace reordering (integer IPC, sequential "
                    "scheme)");
    table.setHeader({"machine", "reordered", "reordered+placed",
                     "gain"});
    for (MachineModel machine : allMachines()) {
        SuiteResult base = sweep.suite(
            machine, SchemeKind::Sequential, LayoutKind::Reordered);
        SuiteResult placed =
            sweep.suite(machine, SchemeKind::Sequential,
                        LayoutKind::ReorderedPlaced);
        table.startRow();
        table.addCell(std::string(machineName(machine)));
        table.addCell(base.hmeanIpc, 3);
        table.addCell(placed.hmeanIpc, 3);
        table.addPercent(
            100.0 * (placed.hmeanIpc / base.hmeanIpc - 1.0), 2);
    }
    table.print(std::cout);
    std::cout << "The inter-procedural half of the paper's "
                 "reference [8].  Neutral here (within ~1.5%): these "
                 "hot working sets already fit the caches, so "
                 "caller/callee adjacency has nothing to save -- the "
                 "pass earns its keep only when code outgrows the "
                 "I-cache.\n\n";
}

void
power2Comparator(SweepEngine &engine,
                 const std::vector<std::string> &names)
{
    struct Row
    {
        const char *label;
        SchemeKind scheme;
        PredictorKind predictor;
    };
    const Row rows[] = {
        {"banked-sequential (BTB 2-bit)",
         SchemeKind::BankedSequential, PredictorKind::BtbCounter},
        {"collapsing-buffer (BTB 2-bit)",
         SchemeKind::CollapsingBuffer, PredictorKind::BtbCounter},
        {"multi-banked, static BTFNT (POWER2-like)",
         SchemeKind::MultiBanked, PredictorKind::StaticBtfnt},
        {"multi-banked, BTB 2-bit", SchemeKind::MultiBanked,
         PredictorKind::BtbCounter},
    };

    std::vector<RunConfig> batch;
    for (const Row &row : rows) {
        ExperimentPlan plan;
        plan.benchmarks(names)
            .machines(allMachines())
            .scheme(row.scheme)
            .override([&row](RunConfig &config) {
                config.predictorKind = row.predictor;
            });
        appendPlan(batch, plan);
    }
    SweepResult sweep = engine.run(batch);

    TextTable table("Related work (Section 1): POWER2-style 8-bank "
                    "fetch vs the paper's schemes (integer IPC)");
    table.setHeader({"configuration", "P14", "P18", "P112"});
    for (const Row &row : rows) {
        table.startRow();
        table.addCell(std::string(row.label));
        for (MachineModel machine : allMachines()) {
            SuiteResult suite =
                sweep.suiteWhere([&](const RunConfig &config) {
                    return config.machine == machine &&
                           config.scheme == row.scheme &&
                           config.predictorKind == row.predictor;
                });
            table.addCell(suite.hmeanIpc, 3);
        }
    }
    table.print(std::cout);
    std::cout << "Section 1's argument, quantified: the 8-bank unit "
                 "can align almost anything, but with static "
                 "prediction (the POWER2's limitation) it falls "
                 "behind the collapsing buffer; give it dynamic "
                 "prediction and the extra banks beat two-bank "
                 "designs.\n";
}

} // anonymous namespace

int
main()
{
    Session session;
    SweepEngine engine = makeBenchEngine(session);
    benchBanner("fetch-hardware ablations",
                "the design-choice studies DESIGN.md calls out",
                &engine);
    const auto names = integerNames();
    btbSizeSweep(engine, names);
    missPenaltySweep(engine, names);
    windowSweep(engine, names);
    backwardCollapse(engine, names);
    associativitySweep(engine, names);
    functionPlacement(engine, names);
    power2Comparator(engine, names);
    return 0;
}
