/**
 * @file
 * Shared helpers for the per-figure/per-table bench binaries.
 *
 * Every binary regenerates one table or figure of the paper's
 * evaluation and prints the same rows/series the paper reports.  Each
 * binary owns one Session (the prepared-workload cache) and one
 * SweepEngine; whole figures are expanded into a single config batch
 * and executed in parallel across FETCHSIM_THREADS (default: all
 * hardware threads) worker threads.  Results are deterministic and
 * independent of the thread count.  The dynamic instruction budget
 * per run comes from FETCHSIM_DYN_INSTS (default 120000).
 */

#ifndef FETCHSIM_BENCH_BENCH_UTIL_H_
#define FETCHSIM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "sim/plan.h"
#include "sim/report.h"
#include "sim/session.h"
#include "sim/sweep.h"
#include "stats/summary.h"
#include "stats/table.h"

namespace fetchsim
{

/** The three machines, in the paper's order. */
inline const std::vector<MachineModel> &
allMachines()
{
    static const std::vector<MachineModel> machines = {
        MachineModel::P14, MachineModel::P18, MachineModel::P112};
    return machines;
}

/** The four real schemes plus perfect, in the paper's order. */
inline const std::vector<SchemeKind> &
allSchemes()
{
    static const std::vector<SchemeKind> schemes = {
        SchemeKind::Sequential, SchemeKind::InterleavedSequential,
        SchemeKind::BankedSequential, SchemeKind::CollapsingBuffer,
        SchemeKind::Perfect};
    return schemes;
}

/**
 * The engine every bench uses: all hardware threads (or
 * FETCHSIM_THREADS) and, on a terminal, a run-count ticker on stderr.
 */
inline SweepEngine
makeBenchEngine(Session &session)
{
    SweepOptions options;
    if (isatty(STDERR_FILENO)) {
        options.progress = [](std::size_t done, std::size_t total,
                              const RunResult &) {
            std::fprintf(stderr, "\r  [%zu/%zu runs]%s", done, total,
                         done == total ? "\r            \r" : "");
        };
    }
    return SweepEngine(session, options);
}

/** Concatenate one plan's expansion onto a config batch. */
inline void
appendPlan(std::vector<RunConfig> &batch, const ExperimentPlan &plan)
{
    std::vector<RunConfig> expanded = plan.expand();
    batch.insert(batch.end(),
                 std::make_move_iterator(expanded.begin()),
                 std::make_move_iterator(expanded.end()));
}

/** Print the standard bench banner. */
inline void
benchBanner(const std::string &what, const std::string &paper_ref,
            const SweepEngine *engine = nullptr)
{
    std::cout << "=== fetchsim bench: " << what << " ===\n"
              << "Reproduces " << paper_ref
              << " of Conte et al., ISCA 1995.\n"
              << "Dynamic budget: " << defaultDynInsts()
              << " retired instructions per run "
                 "(override with FETCHSIM_DYN_INSTS).\n";
    if (engine) {
        std::cout << "Sweep threads: " << engine->threads()
                  << " (override with FETCHSIM_THREADS).\n";
    }
    std::cout << "\n";
}

} // namespace fetchsim

#endif // FETCHSIM_BENCH_BENCH_UTIL_H_
