/**
 * @file
 * Shared helpers for the per-figure/per-table bench binaries.
 *
 * Every binary regenerates one table or figure of the paper's
 * evaluation and prints the same rows/series the paper reports.  The
 * dynamic instruction budget per run comes from FETCHSIM_DYN_INSTS
 * (default 120000).
 */

#ifndef FETCHSIM_BENCH_BENCH_UTIL_H_
#define FETCHSIM_BENCH_BENCH_UTIL_H_

#include <iostream>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "stats/summary.h"
#include "stats/table.h"

namespace fetchsim
{

/** The three machines, in the paper's order. */
inline const std::vector<MachineModel> &
allMachines()
{
    static const std::vector<MachineModel> machines = {
        MachineModel::P14, MachineModel::P18, MachineModel::P112};
    return machines;
}

/** The four real schemes plus perfect, in the paper's order. */
inline const std::vector<SchemeKind> &
allSchemes()
{
    static const std::vector<SchemeKind> schemes = {
        SchemeKind::Sequential, SchemeKind::InterleavedSequential,
        SchemeKind::BankedSequential, SchemeKind::CollapsingBuffer,
        SchemeKind::Perfect};
    return schemes;
}

/** Print the standard bench banner. */
inline void
benchBanner(const std::string &what, const std::string &paper_ref)
{
    std::cout << "=== fetchsim bench: " << what << " ===\n"
              << "Reproduces " << paper_ref
              << " of Conte et al., ISCA 1995.\n"
              << "Dynamic budget: " << defaultDynInsts()
              << " retired instructions per run "
                 "(override with FETCHSIM_DYN_INSTS).\n\n";
}

} // namespace fetchsim

#endif // FETCHSIM_BENCH_BENCH_UTIL_H_
