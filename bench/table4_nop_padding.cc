/**
 * @file
 * Table 4: static nop overhead of pad-all vs pad-trace, as a
 * percentage of original code size, per integer benchmark, for the
 * three block sizes.
 */

#include "compiler/code_layout.h"
#include "compiler/nop_padding.h"
#include "workload/benchmark_suite.h"

#include "bench_util.h"

using namespace fetchsim;

int
main()
{
    benchBanner("nop insertion overhead", "Table 4");

    for (int block_bytes : {16, 32, 64}) {
        TextTable table("Table 4: % nops inserted, block size " +
                        std::to_string(block_bytes) + "B");
        table.setHeader({"benchmark", "pad-all", "pad-trace"});
        for (const std::string &name : integerNames()) {
            // pad-all works on the unordered layout (no profile).
            Workload all = generateWorkload(benchmarkByName(name));
            PaddingStats pa =
                padAll(all, static_cast<std::uint64_t>(block_bytes));

            // pad-trace pads trace ends after reordering.
            Workload tr = generateWorkload(benchmarkByName(name));
            std::vector<Trace> traces;
            reorderWorkload(tr, {}, {}, &traces);
            PaddingStats pt = padTrace(
                tr, traces, static_cast<std::uint64_t>(block_bytes));

            table.startRow();
            table.addCell(name);
            table.addPercent(pa.percent());
            table.addPercent(pt.percent());
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Expected shape: pad-all overhead explodes with the "
                 "block size (tens of percent at 16B, ~100-250% at "
                 "64B); pad-trace stays an order of magnitude "
                 "smaller.\n";
    return 0;
}
