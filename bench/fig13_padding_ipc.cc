/**
 * @file
 * Figure 13: performance of the sequential scheme when augmented with
 * pad-all (over unordered code) and pad-trace (over reordered code),
 * integer benchmarks, with the perfect bounds for reference.
 */

#include "bench_util.h"

using namespace fetchsim;

int
main()
{
    Session session;
    SweepEngine engine = makeBenchEngine(session);
    benchBanner("pad-all and pad-trace for sequential", "Figure 13",
                &engine);

    const auto names = integerNames();

    struct Row
    {
        const char *label;
        SchemeKind scheme;
        LayoutKind layout;
    };
    const Row rows[] = {
        {"sequential (unordered)", SchemeKind::Sequential,
         LayoutKind::Unordered},
        {"sequential (pad-all)", SchemeKind::Sequential,
         LayoutKind::PadAll},
        {"sequential (reordered)", SchemeKind::Sequential,
         LayoutKind::Reordered},
        {"sequential (pad-trace)", SchemeKind::Sequential,
         LayoutKind::PadTrace},
        {"perfect (reordered)", SchemeKind::Perfect,
         LayoutKind::Reordered},
        {"perfect (unordered)", SchemeKind::Perfect,
         LayoutKind::Unordered},
    };

    std::vector<RunConfig> batch;
    for (const Row &row : rows) {
        ExperimentPlan plan;
        plan.benchmarks(names)
            .machines(allMachines())
            .scheme(row.scheme)
            .layout(row.layout);
        appendPlan(batch, plan);
    }
    SweepResult sweep = engine.run(batch);

    TextTable table("Figure 13: harmonic-mean IPC of sequential "
                    "under nop padding, integer benchmarks");
    table.setHeader({"configuration", "P14", "P18", "P112"});
    for (const Row &row : rows) {
        table.startRow();
        table.addCell(std::string(row.label));
        for (MachineModel machine : allMachines()) {
            table.addCell(
                sweep.suite(machine, row.scheme, row.layout).hmeanIpc,
                3);
        }
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: pad-trace gives a marginal gain "
                 "over reordered sequential; pad-all helps (if at "
                 "all) only at P14 and hurts at larger block sizes, "
                 "where its code expansion destroys cache locality.\n";
    return 0;
}
