/**
 * @file
 * google-benchmark microbenchmarks for the simulator components:
 * executor throughput, I-cache and BTB lookup rates, fetch-group
 * formation per scheme, the collapsing-buffer datapath models, and
 * whole-processor simulation speed.  These are simulator-engineering
 * benchmarks (not paper results); they guard against performance
 * regressions that would make the figure benches impractically slow.
 */

#include <benchmark/benchmark.h>

#include "branch/btb.h"
#include "cache/icache.h"
#include "core/processor.h"
#include "exec/executor.h"
#include "fetch/hw_models.h"
#include "sim/session.h"
#include "workload/benchmark_suite.h"

using namespace fetchsim;

namespace
{

Session &
benchSession()
{
    static Session session;
    return session;
}

const Workload &
cachedWorkload(const char *name)
{
    return benchSession().workload(name, LayoutKind::Unordered);
}

void
BM_ExecutorThroughput(benchmark::State &state)
{
    const Workload &workload = cachedWorkload("gcc");
    Executor exec(workload, kEvalInput);
    DynInst di;
    for (auto _ : state) {
        exec.next(di);
        benchmark::DoNotOptimize(di.pc);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExecutorThroughput);

void
BM_ICacheAccess(benchmark::State &state)
{
    ICache cache(32 * 1024, 16);
    std::uint64_t addr = 0x10000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr));
        addr += 64; // mix of hits and misses
        if (addr > 0x90000)
            addr = 0x10000;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ICacheAccess);

void
BM_BtbLookupUpdate(benchmark::State &state)
{
    Btb btb(1024, 4);
    std::uint64_t pc = 0x10000;
    bool taken = false;
    for (auto _ : state) {
        benchmark::DoNotOptimize(btb.lookup(pc));
        btb.update(pc, taken, pc + 64);
        pc += 4 * 7;
        taken = !taken;
        if (pc > 0x50000)
            pc = 0x10000;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BtbLookupUpdate);

void
BM_CollapseNetwork(benchmark::State &state)
{
    const int k = static_cast<int>(state.range(0));
    CollapsingBufferLogic logic(k, CollapsingBufferLogic::Impl::Crossbar);
    std::vector<FetchSlot> slots(2 * static_cast<std::size_t>(k));
    for (std::size_t i = 0; i < slots.size(); ++i) {
        slots[i].word = static_cast<std::uint32_t>(i);
        slots[i].valid = (i % 3) != 1; // scattered gaps
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(logic.apply(slots));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CollapseNetwork)->Arg(4)->Arg(8)->Arg(16);

void
BM_ProcessorCycle(benchmark::State &state)
{
    const SchemeKind scheme = static_cast<SchemeKind>(state.range(0));
    const Workload &workload = cachedWorkload("eqntott");
    const MachineConfig cfg = makeP112();
    Processor proc(workload, kEvalInput, cfg,
                   makeFetchMechanism(scheme, cfg));
    for (auto _ : state)
        proc.step();
    state.SetItemsProcessed(
        static_cast<std::int64_t>(proc.counters().retired));
    state.counters["ipc"] = proc.counters().ipc();
}
BENCHMARK(BM_ProcessorCycle)
    ->Arg(static_cast<int>(SchemeKind::Sequential))
    ->Arg(static_cast<int>(SchemeKind::CollapsingBuffer))
    ->Arg(static_cast<int>(SchemeKind::Perfect));

void
BM_EndToEndRun(benchmark::State &state)
{
    for (auto _ : state) {
        RunConfig config;
        config.benchmark = "compress";
        config.machine = MachineModel::P14;
        config.scheme = SchemeKind::CollapsingBuffer;
        config.maxRetired = 20000;
        RunResult result = benchSession().run(config);
        benchmark::DoNotOptimize(result.counters.cycles);
    }
    state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_EndToEndRun);

} // anonymous namespace

BENCHMARK_MAIN();
