/**
 * @file
 * Figure 3: harmonic-mean IPC of sequential vs perfect, for the
 * integer and floating-point suites, across P14/P18/P112.  Also
 * prints the Table 1 machine parameters for reference.
 */

#include "bench_util.h"

using namespace fetchsim;

namespace
{

void
printMachineTable()
{
    TextTable table("Table 1: machine model parameters");
    table.setHeader({"parameter", "P14", "P18", "P112"});
    const MachineConfig cfgs[] = {makeP14(), makeP18(), makeP112()};
    auto row = [&](const std::string &name, auto get) {
        table.startRow();
        table.addCell(name);
        for (const auto &cfg : cfgs)
            table.addCell(static_cast<std::uint64_t>(get(cfg)));
    };
    row("issue rate", [](const MachineConfig &c) { return c.issueRate; });
    row("window entries",
        [](const MachineConfig &c) { return c.windowSize; });
    row("reorder buffer",
        [](const MachineConfig &c) { return c.robSize; });
    row("icache KB",
        [](const MachineConfig &c) { return c.icacheBytes / 1024; });
    row("block bytes",
        [](const MachineConfig &c) { return c.blockBytes; });
    row("FXUs", [](const MachineConfig &c) { return c.fxuCount; });
    row("FPUs", [](const MachineConfig &c) { return c.fpuCount; });
    row("branch units",
        [](const MachineConfig &c) { return c.branchCount; });
    row("speculation depth",
        [](const MachineConfig &c) { return c.specDepth; });
    row("BTB entries",
        [](const MachineConfig &c) { return c.btbEntries; });
    table.print(std::cout);
    std::cout << "\n";
}

} // anonymous namespace

int
main()
{
    Session session;
    SweepEngine engine = makeBenchEngine(session);
    benchBanner("sequential vs perfect", "Figure 3 (and Table 1)",
                &engine);
    printMachineTable();

    for (bool fp : {false, true}) {
        const auto names = fp ? fpNames() : integerNames();

        ExperimentPlan plan;
        plan.benchmarks(names)
            .machines(allMachines())
            .schemes({SchemeKind::Sequential, SchemeKind::Perfect});
        SweepResult sweep = engine.run(plan);

        TextTable table(std::string("Figure 3: harmonic-mean IPC, ") +
                        (fp ? "floating-point" : "integer") +
                        " benchmarks");
        table.setHeader(
            {"scheme", "P14", "P18", "P112"});
        for (SchemeKind scheme :
             {SchemeKind::Sequential, SchemeKind::Perfect}) {
            table.startRow();
            table.addCell(std::string(schemeName(scheme)));
            for (MachineModel machine : allMachines())
                table.addCell(sweep.suite(machine, scheme).hmeanIpc, 3);
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Expected shape: a sequential-vs-perfect gap that "
                 "widens from P14 to P112, larger for integer than "
                 "floating-point code at P14.\n";
    return 0;
}
