#!/usr/bin/env bash
# Two freshness gates, wired into ctest as `docs_fresh`:
#
#  1. Regenerate docs/RESULTS.md into a temp directory and diff it
#     against the checked-in copy.  Fails (exit 1) when the document
#     is stale, i.e. when simulator behaviour changed without
#     `fetchsim_cli report` being re-run.
#
#  2. Extract every --flag token from `fetchsim_cli help` and fail
#     when any is missing from README.md's flag documentation -- a
#     flag added to the CLI without being documented breaks the test.
#
# Usage: check_docs_fresh.sh <fetchsim_cli> <repo_root>
set -euo pipefail

cli=${1:?usage: check_docs_fresh.sh <fetchsim_cli> <repo_root>}
repo=${2:?usage: check_docs_fresh.sh <fetchsim_cli> <repo_root>}
checked_in="$repo/docs/RESULTS.md"

[ -x "$cli" ] || { echo "not executable: $cli" >&2; exit 2; }
[ -f "$checked_in" ] || { echo "missing: $checked_in" >&2; exit 2; }

tmpdir=$(mktemp -d)
cleanup() { rm -rf "$tmpdir"; }
trap cleanup EXIT INT TERM

# The checked-in report is generated at the default budget; strip any
# environment overrides (and any fault-injection schedule) so the
# regeneration is comparable.  The report command exits nonzero on
# any failed grid cell, which set -e turns into a test failure with
# its structured error on stderr.
env -u FETCHSIM_DYN_INSTS -u FETCHSIM_THREADS -u FETCHSIM_FAULT \
    "$cli" report --out "$tmpdir/RESULTS.md"

if ! diff -u --label "docs/RESULTS.md (checked in)" \
        --label "RESULTS.md (regenerated)" \
        "$checked_in" "$tmpdir/RESULTS.md"; then
    cat >&2 <<EOF

docs/RESULTS.md is stale: the simulator no longer reproduces the
checked-in report (unified diff above, checked-in = '-',
regenerated = '+').  Regenerate it with

    ./build/examples/fetchsim_cli report --out docs/RESULTS.md

and commit the result alongside your change.
EOF
    exit 1
fi
echo "docs/RESULTS.md is fresh"

# Gate 2: CLI flags vs README.  `fetchsim_cli help` is the single
# authoritative flag reference; every flag it prints must appear in
# README.md so the documentation can never silently lag the binary.
readme="$repo/README.md"
[ -f "$readme" ] || { echo "missing: $readme" >&2; exit 2; }
"$cli" help > "$tmpdir/help.txt"
missing=0
while IFS= read -r flag; do
    if ! grep -qF -- "$flag" "$readme"; then
        echo "README.md does not document CLI flag: $flag" >&2
        missing=1
    fi
done < <(grep -oE -- '--[a-z][a-z-]*' "$tmpdir/help.txt" | sort -u)
if [ "$missing" -ne 0 ]; then
    cat >&2 <<EOF

\`fetchsim_cli help\` advertises flags that README.md does not
mention.  Add them to the flag table in README.md (and to
docs/TRACES.md when replay-related) alongside your change.
EOF
    exit 1
fi
echo "README.md documents every CLI flag"

# Gate 3: scheme keys vs README.  The scheme registry is the single
# authority on fetch schemes; `fetchsim_cli help` prints its key list
# on the --scheme line, and every key must appear in README.md so a
# newly registered scheme cannot ship undocumented.
scheme_line=$(grep -- '--scheme' "$tmpdir/help.txt" | head -n 1)
[ -n "$scheme_line" ] || {
    echo "help output no longer documents --scheme" >&2; exit 1;
}
missing=0
for key in $(printf '%s\n' "$scheme_line" \
        | grep -oE '[a-z][a-z-]*(\|[a-z][a-z-]*)+' | tr '|' ' '); do
    if ! grep -qF -- "$key" "$readme"; then
        echo "README.md does not document fetch scheme: $key" >&2
        missing=1
    fi
done
if [ "$missing" -ne 0 ]; then
    cat >&2 <<EOF

The scheme registry advertises fetch schemes that README.md does not
mention.  Add them to the scheme table in README.md alongside your
change.
EOF
    exit 1
fi
echo "README.md documents every registered fetch scheme"

# Gate 4: CLI commands vs README.  Every subcommand `fetchsim_cli
# help` lists in its `commands:` block must appear in README.md in
# backticks (as `cmd` or `fetchsim_cli cmd`), so a new subcommand
# (e.g. serve/submit) can never ship undocumented.
missing=0
while IFS= read -r cmd; do
    [ -n "$cmd" ] || continue
    if ! grep -qE "\`([a-z_]+ )?$cmd\`" "$readme"; then
        echo "README.md does not document CLI command: $cmd" >&2
        missing=1
    fi
done < <(awk '/^commands:$/{inblock=1; next}
              /^$/{inblock=0}
              inblock{print $1}' "$tmpdir/help.txt")
if [ "$missing" -ne 0 ]; then
    cat >&2 <<EOF

\`fetchsim_cli help\` advertises subcommands that README.md does not
mention.  Add them to the command/flag tables in README.md (and to
docs/SERVICE.md when service-related) alongside your change.
EOF
    exit 1
fi
echo "README.md documents every CLI subcommand"

# Gate 5: PERFORMANCE.md vs run_bench.sh.  docs/PERFORMANCE.md is the
# bench/rebaseline playbook; its invocation lines must track the
# harness.  Every option the script's argument parser accepts must
# appear in PERFORMANCE.md, and every `run_bench.sh ...` invocation
# line quoted in the document must use only options the script
# actually accepts -- so neither side can drift.
perf_doc="$repo/docs/PERFORMANCE.md"
bench_sh="$repo/scripts/run_bench.sh"
[ -f "$perf_doc" ] || { echo "missing: $perf_doc" >&2; exit 2; }
[ -f "$bench_sh" ] || { echo "missing: $bench_sh" >&2; exit 2; }

# The script's option set, from the `--flag)` labels of its parser.
bench_opts=$(grep -oE '^\s+--[a-z-]+\)' "$bench_sh" \
    | grep -oE -- '--[a-z-]+' | sort -u)
missing=0
for opt in $bench_opts; do
    if ! grep -qF -- "$opt" "$perf_doc"; then
        echo "docs/PERFORMANCE.md does not document run_bench.sh" \
             "option: $opt" >&2
        missing=1
    fi
done
# Options used on the document's run_bench.sh lines must be real.
while IFS= read -r opt; do
    if ! printf '%s\n' "$bench_opts" | grep -qxF -- "$opt"; then
        echo "docs/PERFORMANCE.md invokes run_bench.sh with an" \
             "option the script does not accept: $opt" >&2
        missing=1
    fi
done < <(grep -E 'run_bench\.sh' "$perf_doc" \
    | grep -oE -- '--[a-z-]+' | sort -u)
if [ "$missing" -ne 0 ]; then
    cat >&2 <<EOM

docs/PERFORMANCE.md and scripts/run_bench.sh disagree about the
bench harness's options.  Update the invocation lines in
docs/PERFORMANCE.md (the bench/rebaseline workflow section)
alongside any run_bench.sh change.
EOM
    exit 1
fi
echo "docs/PERFORMANCE.md matches run_bench.sh usage"
