#!/bin/sh
# Regenerate docs/RESULTS.md into a temp directory and diff it against
# the checked-in copy.  Fails (exit 1) when the document is stale,
# i.e. when simulator behaviour changed without `fetchsim_cli report`
# being re-run.  Wired into ctest as `docs_fresh`.
#
# Usage: check_docs_fresh.sh <fetchsim_cli> <repo_root>
set -eu

cli=${1:?usage: check_docs_fresh.sh <fetchsim_cli> <repo_root>}
repo=${2:?usage: check_docs_fresh.sh <fetchsim_cli> <repo_root>}
checked_in="$repo/docs/RESULTS.md"

[ -x "$cli" ] || { echo "not executable: $cli" >&2; exit 2; }
[ -f "$checked_in" ] || { echo "missing: $checked_in" >&2; exit 2; }

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

# The checked-in report is generated at the default budget; strip any
# environment overrides so the regeneration is comparable.
env -u FETCHSIM_DYN_INSTS -u FETCHSIM_THREADS \
    "$cli" report --out "$tmpdir/RESULTS.md" 2>/dev/null

if ! diff -u "$checked_in" "$tmpdir/RESULTS.md"; then
    cat >&2 <<EOF

docs/RESULTS.md is stale: the simulator no longer reproduces the
checked-in report.  Regenerate it with

    ./build/examples/fetchsim_cli report --out docs/RESULTS.md

and commit the result alongside your change.
EOF
    exit 1
fi
echo "docs/RESULTS.md is fresh"
