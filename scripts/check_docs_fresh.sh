#!/usr/bin/env bash
# Regenerate docs/RESULTS.md into a temp directory and diff it against
# the checked-in copy.  Fails (exit 1) when the document is stale,
# i.e. when simulator behaviour changed without `fetchsim_cli report`
# being re-run.  Wired into ctest as `docs_fresh`.
#
# Usage: check_docs_fresh.sh <fetchsim_cli> <repo_root>
set -euo pipefail

cli=${1:?usage: check_docs_fresh.sh <fetchsim_cli> <repo_root>}
repo=${2:?usage: check_docs_fresh.sh <fetchsim_cli> <repo_root>}
checked_in="$repo/docs/RESULTS.md"

[ -x "$cli" ] || { echo "not executable: $cli" >&2; exit 2; }
[ -f "$checked_in" ] || { echo "missing: $checked_in" >&2; exit 2; }

tmpdir=$(mktemp -d)
cleanup() { rm -rf "$tmpdir"; }
trap cleanup EXIT INT TERM

# The checked-in report is generated at the default budget; strip any
# environment overrides (and any fault-injection schedule) so the
# regeneration is comparable.  The report command exits nonzero on
# any failed grid cell, which set -e turns into a test failure with
# its structured error on stderr.
env -u FETCHSIM_DYN_INSTS -u FETCHSIM_THREADS -u FETCHSIM_FAULT \
    "$cli" report --out "$tmpdir/RESULTS.md"

if ! diff -u --label "docs/RESULTS.md (checked in)" \
        --label "RESULTS.md (regenerated)" \
        "$checked_in" "$tmpdir/RESULTS.md"; then
    cat >&2 <<EOF

docs/RESULTS.md is stale: the simulator no longer reproduces the
checked-in report (unified diff above, checked-in = '-',
regenerated = '+').  Regenerate it with

    ./build/examples/fetchsim_cli report --out docs/RESULTS.md

and commit the result alongside your change.
EOF
    exit 1
fi
echo "docs/RESULTS.md is fresh"
