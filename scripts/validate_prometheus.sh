#!/usr/bin/env bash
# Dependency-free validator for the Prometheus text exposition format
# (version 0.0.4) as produced by `GET /metrics?format=prometheus`.
#
# Checks, per line:
#   - comments are exactly `# HELP <name> ...` or `# TYPE <name>
#     <counter|gauge|histogram|summary|untyped>`;
#   - samples are `name[{labels}] value` with a legal metric name
#     ([a-zA-Z_:][a-zA-Z0-9_:]*) and a numeric value;
#   - every sample's base name was declared by a preceding # TYPE;
#   - histogram `<name>_bucket` series end with an le="+Inf" bucket
#     whose count equals `<name>_count`.
#
# Usage: validate_prometheus.sh <file>   (or `-` / no arg for stdin)
set -euo pipefail

input=${1:--}

awk '
function fail(msg) {
    printf "validate_prometheus: line %d: %s: %s\n", NR, msg, $0 \
        > "/dev/stderr"
    bad = 1
}
BEGIN { bad = 0 }
/^$/ { fail("blank line"); next }
/^#/ {
    if ($0 ~ /^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* /) next
    if ($0 ~ /^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary|untyped)$/) {
        typed[$3] = $4
        next
    }
    fail("malformed comment")
    next
}
{
    # name{labels} value  |  name value
    if (match($0, /^[a-zA-Z_:][a-zA-Z0-9_:]*/) == 0) {
        fail("bad metric name")
        next
    }
    name = substr($0, 1, RLENGTH)
    rest = substr($0, RLENGTH + 1)
    labels = ""
    if (rest ~ /^\{/) {
        close_at = index(rest, "}")
        if (close_at == 0) { fail("unterminated label set"); next }
        labels = substr(rest, 2, close_at - 2)
        rest = substr(rest, close_at + 1)
    }
    if (rest !~ /^ [^ ]+$/) { fail("malformed value"); next }
    value = substr(rest, 2)
    if (value !~ /^[+-]?([0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|Inf|NaN)$/) {
        fail("non-numeric value")
        next
    }

    # Resolve the declared base name: histogram series append
    # _bucket/_sum/_count to the # TYPE name.
    base = name
    if (!(base in typed)) {
        sub(/_(bucket|sum|count)$/, "", base)
    }
    if (!(base in typed)) {
        fail("sample without a # TYPE declaration")
        next
    }
    samples[name]++
    if (typed[base] == "histogram") {
        if (name == base "_bucket" && labels ~ /le="\+Inf"/)
            inf_count[base] = value
        if (name == base "_count")
            total_count[base] = value
    }
}
END {
    for (base in typed) {
        if (typed[base] != "histogram") continue
        if (!(base in inf_count)) {
            printf "validate_prometheus: histogram %s has no " \
                   "le=\"+Inf\" bucket\n", base > "/dev/stderr"
            bad = 1
        } else if (inf_count[base] != total_count[base]) {
            printf "validate_prometheus: histogram %s: +Inf bucket " \
                   "%s != count %s\n", base, inf_count[base], \
                   total_count[base] > "/dev/stderr"
            bad = 1
        }
    }
    if (bad) exit 1
    n = 0
    for (name in samples) n += samples[name]
    printf "validate_prometheus: OK (%d samples)\n", n
}
' "$input"
