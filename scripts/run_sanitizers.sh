#!/usr/bin/env bash
# Build and run the test suite under the sanitizers the build system
# already knows about (-DFETCHSIM_SANITIZE=address|undefined|thread).
#
# Each sanitizer gets its own build tree (build-asan, build-ubsan,
# build-tsan) next to the source so sanitized and plain objects never
# mix.  Opt-in by design: this script is wired into ctest as the
# `sanitizers` test under the Sanitize configuration, so a plain
# `ctest` never pays for it -- run it explicitly:
#
#     ./scripts/run_sanitizers.sh [address] [undefined] [thread]
#     ctest --test-dir build -C Sanitize -R sanitizers
#
# With no arguments all three sanitizers run.  Exit code is nonzero
# when any build or any test fails.
#
# Fuzzing under sanitizers (the CI fuzz-smoke job):
#
#     ./scripts/run_sanitizers.sh --fuzz=500 address undefined
#     ./scripts/run_sanitizers.sh --fuzz=500 --skip-tests address
#
# --fuzz[=N] additionally runs the property-based sweep fuzzer
# (`fetchsim_cli fuzz --runs N --seed 1`, default N=500) in each
# sanitized tree, so any invariant violation or memory bug a
# randomized scenario can reach trips a sanitizer report.
# --skip-tests drops the ctest pass, leaving build + fuzz only.
set -euo pipefail

repo=$(cd -- "$(dirname -- "$0")/.." && pwd)
jobs=$(nproc 2>/dev/null || echo 2)
fuzz_runs=0
skip_tests=0
sanitizers=()
for arg in "$@"; do
    case "$arg" in
      --fuzz)       fuzz_runs=500 ;;
      --fuzz=*)     fuzz_runs="${arg#--fuzz=}" ;;
      --skip-tests) skip_tests=1 ;;
      *)            sanitizers+=("$arg") ;;
    esac
done
[ ${#sanitizers[@]} -gt 0 ] || sanitizers=(address undefined thread)

# TSan needs the test binaries to start threads the way the suite
# does; ASan's leak checker and UBSan both work with the stock flags
# baked into CMakeLists.txt.
failures=0
for san in "${sanitizers[@]}"; do
    case "$san" in
      address)   dir="$repo/build-asan" ;;
      undefined) dir="$repo/build-ubsan" ;;
      thread)    dir="$repo/build-tsan" ;;
      *) echo "unknown sanitizer: $san (address|undefined|thread)" >&2
         exit 2 ;;
    esac
    echo "=== $san sanitizer: configuring $dir ==="
    cmake -B "$dir" -S "$repo" -DFETCHSIM_SANITIZE="$san" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
    echo "=== $san sanitizer: building ==="
    cmake --build "$dir" -j "$jobs"
    if [ "$skip_tests" -eq 0 ]; then
        echo "=== $san sanitizer: testing ==="
        if ! ctest --test-dir "$dir" --output-on-failure -E docs_fresh
        then
            echo "*** $san sanitizer run FAILED ***" >&2
            failures=$((failures + 1))
        fi
    fi
    if [ "$fuzz_runs" -gt 0 ]; then
        echo "=== $san sanitizer: fuzzing ($fuzz_runs scenarios) ==="
        if ! "$dir/examples/fetchsim_cli" fuzz --runs "$fuzz_runs" \
            --seed 1; then
            echo "*** $san sanitizer fuzz FAILED ***" >&2
            failures=$((failures + 1))
        fi
    fi
done

if [ "$failures" -ne 0 ]; then
    echo "$failures sanitizer run(s) failed" >&2
    exit 1
fi
echo "all sanitizer runs passed"
