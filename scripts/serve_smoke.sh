#!/usr/bin/env bash
# End-to-end smoke test of the sweep service (docs/SERVICE.md),
# wired into CI as the serve-smoke job:
#
#  1. start `fetchsim_cli serve` with a result-cache journal,
#  2. submit a small plan and fetch its sweep-identical JSON,
#  3. submit the identical plan again and assert it was served 100%
#     from the content-addressed result cache (zero cells simulated,
#     byte-identical result document),
#  4. ask the service to drain and assert it exits 0.
#
# Usage: serve_smoke.sh <fetchsim_cli> [workdir]
set -euo pipefail

cli=${1:?usage: serve_smoke.sh <fetchsim_cli> [workdir]}
workdir=${2:-$(mktemp -d)}
[ -x "$cli" ] || { echo "not executable: $cli" >&2; exit 2; }
mkdir -p "$workdir"

sock="$workdir/serve.sock"
journal="$workdir/results.jsonl"
serve_log="$workdir/serve.log"

"$cli" serve --socket "$sock" --result-cache "$journal" \
    >"$serve_log" 2>&1 &
serve_pid=$!
cleanup() { kill "$serve_pid" 2>/dev/null || true; }
trap cleanup EXIT INT TERM

# Wait for the listener (the socket file appears once bound).
for _ in $(seq 1 100); do
    [ -S "$sock" ] && break
    kill -0 "$serve_pid" 2>/dev/null || {
        echo "serve died during startup:" >&2
        cat "$serve_log" >&2
        exit 1
    }
    sleep 0.1
done
[ -S "$sock" ] || { echo "serve never bound $sock" >&2; exit 1; }

plan=(--benchmarks eqntott,compress --machines P14
      --schemes sequential,collapsing --insts 20000)

# First submission simulates the 4-cell plan.
"$cli" submit --socket "$sock" "${plan[@]}" --json "$workdir/first.json"

# The identical plan again: every cell must come from the cache and
# the result document must be byte-identical.
"$cli" submit --socket "$sock" "${plan[@]}" --json "$workdir/second.json"
cmp "$workdir/first.json" "$workdir/second.json"
echo "resubmitted plan is byte-identical"

status=$("$cli" submit --socket "$sock" --status 2)
echo "job 2: $status"
case $status in
  *'"cache_hits":4'*'"simulated":0'*) ;;
  *)
    echo "second submission was not fully cache-served" >&2
    exit 1
    ;;
esac
echo "second submission served 100% from the result cache"

"$cli" submit --socket "$sock" --metrics > "$workdir/metrics.txt"
grep -q '^result_cache.hits = 4' "$workdir/metrics.txt"
grep -q '^service.cells_simulated = 4' "$workdir/metrics.txt"

# The journal holds one line per distinct simulated cell.
lines=$(grep -c . "$journal")
[ "$lines" -eq 4 ] || {
    echo "expected 4 journal lines, found $lines" >&2
    exit 1
}

# Graceful shutdown: the drain request must end the daemon with 0.
"$cli" submit --socket "$sock" --shutdown
if ! wait "$serve_pid"; then
    echo "serve exited nonzero after drain:" >&2
    cat "$serve_log" >&2
    exit 1
fi
trap - EXIT INT TERM
echo "serve drained cleanly"
echo "serve smoke OK"
