#!/usr/bin/env bash
# End-to-end smoke test of the sweep service (docs/SERVICE.md),
# wired into CI as the serve-smoke job:
#
#  1. start `fetchsim_cli serve` with a result-cache journal and a
#     structured JSON log file,
#  2. submit a small plan and fetch its sweep-identical JSON,
#  3. submit the identical plan again and assert it was served 100%
#     from the content-addressed result cache (zero cells simulated,
#     byte-identical result document),
#  4. scrape /metrics?format=prometheus and validate the exposition
#     document with scripts/validate_prometheus.sh, fetch the job's
#     Chrome trace, and assert the access log carries one http.access
#     line per request the service reports having answered,
#  5. ask the service to drain and assert it exits 0.
#
# Usage: serve_smoke.sh <fetchsim_cli> [workdir]
set -euo pipefail

cli=${1:?usage: serve_smoke.sh <fetchsim_cli> [workdir]}
workdir=${2:-$(mktemp -d)}
[ -x "$cli" ] || { echo "not executable: $cli" >&2; exit 2; }
mkdir -p "$workdir"

sock="$workdir/serve.sock"
journal="$workdir/results.jsonl"
serve_log="$workdir/serve.log"
access_log="$workdir/access.jsonl"

"$cli" serve --socket "$sock" --result-cache "$journal" \
    --log-level info --log-format json --log-file "$access_log" \
    >"$serve_log" 2>&1 &
serve_pid=$!
cleanup() { kill "$serve_pid" 2>/dev/null || true; }
trap cleanup EXIT INT TERM

# Wait for the listener (the socket file appears once bound).
for _ in $(seq 1 100); do
    [ -S "$sock" ] && break
    kill -0 "$serve_pid" 2>/dev/null || {
        echo "serve died during startup:" >&2
        cat "$serve_log" >&2
        exit 1
    }
    sleep 0.1
done
[ -S "$sock" ] || { echo "serve never bound $sock" >&2; exit 1; }

plan=(--benchmarks eqntott,compress --machines P14
      --schemes sequential,collapsing --insts 20000)

# First submission simulates the 4-cell plan.
"$cli" submit --socket "$sock" "${plan[@]}" --json "$workdir/first.json"

# The identical plan again: every cell must come from the cache and
# the result document must be byte-identical.
"$cli" submit --socket "$sock" "${plan[@]}" --json "$workdir/second.json"
cmp "$workdir/first.json" "$workdir/second.json"
echo "resubmitted plan is byte-identical"

status=$("$cli" submit --socket "$sock" --status 2)
echo "job 2: $status"
case $status in
  *'"cache_hits":4'*'"simulated":0'*) ;;
  *)
    echo "second submission was not fully cache-served" >&2
    exit 1
    ;;
esac
echo "second submission served 100% from the result cache"

"$cli" submit --socket "$sock" --metrics > "$workdir/metrics.txt"
grep -q '^result_cache.hits = 4' "$workdir/metrics.txt"
grep -q '^service.cells_simulated = 4' "$workdir/metrics.txt"

# The Prometheus rendering of the same registry must pass the
# dependency-free exposition-format validator.
"$cli" submit --socket "$sock" --metrics --format prometheus \
    > "$workdir/metrics.prom"
"$(dirname "$0")/validate_prometheus.sh" "$workdir/metrics.prom"
grep -q '^# TYPE service_queue_depth gauge' "$workdir/metrics.prom"
grep -q '^service_request_latency_us_bucket{le="+Inf"}' \
    "$workdir/metrics.prom"
echo "prometheus exposition validated"

# The per-job trace is JSON with Chrome trace events for the queue
# wait and the per-cell work.
"$cli" submit --socket "$sock" --trace 1 > "$workdir/job1.trace.json"
grep -q '"traceEvents"' "$workdir/job1.trace.json"
grep -q '"queue-wait cell' "$workdir/job1.trace.json"
echo "job trace fetched"

# The journal holds one line per distinct simulated cell.
lines=$(grep -c . "$journal")
[ "$lines" -eq 4 ] || {
    echo "expected 4 journal lines, found $lines" >&2
    exit 1
}

# Graceful shutdown: the drain request must end the daemon with 0.
"$cli" submit --socket "$sock" --shutdown
if ! wait "$serve_pid"; then
    echo "serve exited nonzero after drain:" >&2
    cat "$serve_log" >&2
    exit 1
fi
trap - EXIT INT TERM
echo "serve drained cleanly"

# One structured http.access line per request the service reports in
# its exit summary ("served N jobs, M requests: ...").
requests=$(sed -n 's/.*served [0-9]* jobs, \([0-9]*\) requests.*/\1/p' \
    "$serve_log" | tail -1)
[ -n "$requests" ] || {
    echo "serve exit summary missing from $serve_log:" >&2
    cat "$serve_log" >&2
    exit 1
}
access_lines=$(grep -c '"msg":"http.access"' "$access_log" || true)
[ "$access_lines" -eq "$requests" ] || {
    echo "access log has $access_lines http.access lines," \
         "service answered $requests requests" >&2
    exit 1
}
# Every access line is one JSON object with the schema fields.
! grep -v '^{.*}$' "$access_log" >/dev/null || {
    echo "non-JSON line in $access_log" >&2
    exit 1
}
grep '"msg":"http.access"' "$access_log" | head -1 | \
    grep -q '"request_id":.*"method":.*"path":.*"status":.*"latency_us":' || {
    echo "http.access line missing schema fields" >&2
    exit 1
}
echo "access log: $access_lines lines for $requests requests"
echo "serve smoke OK"
