#!/usr/bin/env bash
# Run the perf-regression bench harness (`fetchsim_cli bench`) and,
# with --check, gate against the committed baseline: exits non-zero
# when any grid cell's median simulated-cycles/sec dropped more than
# the threshold below the baseline.
#
# Usage: run_bench.sh [options]
#
#   --check            compare against the baseline (default:
#                      bench/BENCH_baseline.json) and fail on
#                      regression
#   --baseline FILE    baseline to compare against (implies --check)
#   --threshold PCT    max allowed slowdown percent (default 10)
#   --iterations N     measured repetitions (default 5)
#   --out FILE         BENCH output path (default BENCH_sweep.json in
#                      the repo root)
#   --smoke            one iteration at a tiny budget -- schema/CI
#                      validation only, numbers are meaningless
#   --replay MODE      dynamic-trace replay cache: off|mem|disk
#                      (default off; see docs/TRACES.md)
#   --rebaseline       copy this run's output over the baseline file
#
# The CLI binary is taken from $FETCHSIM_CLI when set, else
# build/examples/fetchsim_cli.  Baselines record absolute host
# throughput and are machine-specific: regenerate (--rebaseline) on
# the machine that checks them, and never --check a baseline from a
# different machine.
set -euo pipefail

repo=$(cd "$(dirname "$0")/.." && pwd)
cli=${FETCHSIM_CLI:-$repo/build/examples/fetchsim_cli}

check=0
smoke=0
rebaseline=0
baseline="$repo/bench/BENCH_baseline.json"
threshold=10
iterations=5
out="$repo/BENCH_sweep.json"
replay=off

while [ $# -gt 0 ]; do
    case "$1" in
      --check) check=1 ;;
      --baseline) baseline=${2:?--baseline wants a file}; check=1; shift ;;
      --threshold) threshold=${2:?--threshold wants a percent}; shift ;;
      --iterations) iterations=${2:?--iterations wants a count}; shift ;;
      --out) out=${2:?--out wants a file}; shift ;;
      --smoke) smoke=1 ;;
      --replay) replay=${2:?--replay wants off|mem|disk}; shift ;;
      --rebaseline) rebaseline=1 ;;
      *) echo "run_bench.sh: unknown option: $1" >&2; exit 2 ;;
    esac
    shift
done

[ -x "$cli" ] || {
    echo "run_bench.sh: not executable: $cli (build first:" \
         "cmake --build build -j)" >&2
    exit 2
}

args=(bench --out "$out" --iterations "$iterations" --replay "$replay")
[ "$smoke" -eq 1 ] && args+=(--smoke)
# --rebaseline replaces the baseline, so comparing against the old
# one would be meaningless; it wins over --check.
[ "$rebaseline" -eq 1 ] && check=0
if [ "$check" -eq 1 ]; then
    [ -f "$baseline" ] || {
        echo "run_bench.sh: missing baseline: $baseline" \
             "(generate one with --rebaseline)" >&2
        exit 2
    }
    args+=(--baseline "$baseline" --max-regress "$threshold")
fi

"$cli" "${args[@]}"

if [ "$rebaseline" -eq 1 ]; then
    mkdir -p "$(dirname "$baseline")"
    cp "$out" "$baseline"
    echo "run_bench.sh: baseline updated: $baseline" >&2
fi
