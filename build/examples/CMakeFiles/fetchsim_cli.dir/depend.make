# Empty dependencies file for fetchsim_cli.
# This may be replaced when dependencies are built.
