file(REMOVE_RECURSE
  "CMakeFiles/fetchsim_cli.dir/fetchsim_cli.cpp.o"
  "CMakeFiles/fetchsim_cli.dir/fetchsim_cli.cpp.o.d"
  "fetchsim_cli"
  "fetchsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fetchsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
