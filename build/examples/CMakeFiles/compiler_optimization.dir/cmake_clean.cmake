file(REMOVE_RECURSE
  "CMakeFiles/compiler_optimization.dir/compiler_optimization.cpp.o"
  "CMakeFiles/compiler_optimization.dir/compiler_optimization.cpp.o.d"
  "compiler_optimization"
  "compiler_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
