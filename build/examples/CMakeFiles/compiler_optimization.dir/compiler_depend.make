# Empty compiler generated dependencies file for compiler_optimization.
# This may be replaced when dependencies are built.
