file(REMOVE_RECURSE
  "CMakeFiles/fs_compiler.dir/code_layout.cc.o"
  "CMakeFiles/fs_compiler.dir/code_layout.cc.o.d"
  "CMakeFiles/fs_compiler.dir/function_layout.cc.o"
  "CMakeFiles/fs_compiler.dir/function_layout.cc.o.d"
  "CMakeFiles/fs_compiler.dir/nop_padding.cc.o"
  "CMakeFiles/fs_compiler.dir/nop_padding.cc.o.d"
  "CMakeFiles/fs_compiler.dir/profile.cc.o"
  "CMakeFiles/fs_compiler.dir/profile.cc.o.d"
  "CMakeFiles/fs_compiler.dir/trace_selection.cc.o"
  "CMakeFiles/fs_compiler.dir/trace_selection.cc.o.d"
  "libfs_compiler.a"
  "libfs_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
