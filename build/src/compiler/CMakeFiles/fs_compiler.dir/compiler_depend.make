# Empty compiler generated dependencies file for fs_compiler.
# This may be replaced when dependencies are built.
