
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/code_layout.cc" "src/compiler/CMakeFiles/fs_compiler.dir/code_layout.cc.o" "gcc" "src/compiler/CMakeFiles/fs_compiler.dir/code_layout.cc.o.d"
  "/root/repo/src/compiler/function_layout.cc" "src/compiler/CMakeFiles/fs_compiler.dir/function_layout.cc.o" "gcc" "src/compiler/CMakeFiles/fs_compiler.dir/function_layout.cc.o.d"
  "/root/repo/src/compiler/nop_padding.cc" "src/compiler/CMakeFiles/fs_compiler.dir/nop_padding.cc.o" "gcc" "src/compiler/CMakeFiles/fs_compiler.dir/nop_padding.cc.o.d"
  "/root/repo/src/compiler/profile.cc" "src/compiler/CMakeFiles/fs_compiler.dir/profile.cc.o" "gcc" "src/compiler/CMakeFiles/fs_compiler.dir/profile.cc.o.d"
  "/root/repo/src/compiler/trace_selection.cc" "src/compiler/CMakeFiles/fs_compiler.dir/trace_selection.cc.o" "gcc" "src/compiler/CMakeFiles/fs_compiler.dir/trace_selection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/fs_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/fs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/program/CMakeFiles/fs_program.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/fs_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fs_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
