file(REMOVE_RECURSE
  "libfs_compiler.a"
)
