
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fetch/fetch_mechanism.cc" "src/fetch/CMakeFiles/fs_fetch.dir/fetch_mechanism.cc.o" "gcc" "src/fetch/CMakeFiles/fs_fetch.dir/fetch_mechanism.cc.o.d"
  "/root/repo/src/fetch/hw_models.cc" "src/fetch/CMakeFiles/fs_fetch.dir/hw_models.cc.o" "gcc" "src/fetch/CMakeFiles/fs_fetch.dir/hw_models.cc.o.d"
  "/root/repo/src/fetch/prediction.cc" "src/fetch/CMakeFiles/fs_fetch.dir/prediction.cc.o" "gcc" "src/fetch/CMakeFiles/fs_fetch.dir/prediction.cc.o.d"
  "/root/repo/src/fetch/walker.cc" "src/fetch/CMakeFiles/fs_fetch.dir/walker.cc.o" "gcc" "src/fetch/CMakeFiles/fs_fetch.dir/walker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/branch/CMakeFiles/fs_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/fs_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/fs_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/fs_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fs_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/fs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/program/CMakeFiles/fs_program.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
