file(REMOVE_RECURSE
  "CMakeFiles/fs_fetch.dir/fetch_mechanism.cc.o"
  "CMakeFiles/fs_fetch.dir/fetch_mechanism.cc.o.d"
  "CMakeFiles/fs_fetch.dir/hw_models.cc.o"
  "CMakeFiles/fs_fetch.dir/hw_models.cc.o.d"
  "CMakeFiles/fs_fetch.dir/prediction.cc.o"
  "CMakeFiles/fs_fetch.dir/prediction.cc.o.d"
  "CMakeFiles/fs_fetch.dir/walker.cc.o"
  "CMakeFiles/fs_fetch.dir/walker.cc.o.d"
  "libfs_fetch.a"
  "libfs_fetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_fetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
