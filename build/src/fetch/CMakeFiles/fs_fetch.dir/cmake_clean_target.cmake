file(REMOVE_RECURSE
  "libfs_fetch.a"
)
