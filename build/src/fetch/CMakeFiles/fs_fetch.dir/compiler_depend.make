# Empty compiler generated dependencies file for fs_fetch.
# This may be replaced when dependencies are built.
