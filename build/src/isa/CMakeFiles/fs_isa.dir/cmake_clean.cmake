file(REMOVE_RECURSE
  "CMakeFiles/fs_isa.dir/disasm.cc.o"
  "CMakeFiles/fs_isa.dir/disasm.cc.o.d"
  "CMakeFiles/fs_isa.dir/encoding.cc.o"
  "CMakeFiles/fs_isa.dir/encoding.cc.o.d"
  "CMakeFiles/fs_isa.dir/opcode.cc.o"
  "CMakeFiles/fs_isa.dir/opcode.cc.o.d"
  "CMakeFiles/fs_isa.dir/static_inst.cc.o"
  "CMakeFiles/fs_isa.dir/static_inst.cc.o.d"
  "libfs_isa.a"
  "libfs_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
