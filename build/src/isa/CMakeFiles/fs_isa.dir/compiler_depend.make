# Empty compiler generated dependencies file for fs_isa.
# This may be replaced when dependencies are built.
