file(REMOVE_RECURSE
  "libfs_isa.a"
)
