# Empty dependencies file for fs_exec.
# This may be replaced when dependencies are built.
