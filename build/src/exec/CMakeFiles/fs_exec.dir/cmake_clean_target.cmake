file(REMOVE_RECURSE
  "libfs_exec.a"
)
