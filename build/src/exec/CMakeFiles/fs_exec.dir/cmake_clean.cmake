file(REMOVE_RECURSE
  "CMakeFiles/fs_exec.dir/branch_census.cc.o"
  "CMakeFiles/fs_exec.dir/branch_census.cc.o.d"
  "CMakeFiles/fs_exec.dir/executor.cc.o"
  "CMakeFiles/fs_exec.dir/executor.cc.o.d"
  "CMakeFiles/fs_exec.dir/trace_file.cc.o"
  "CMakeFiles/fs_exec.dir/trace_file.cc.o.d"
  "libfs_exec.a"
  "libfs_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
