
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/benchmark_suite.cc" "src/workload/CMakeFiles/fs_workload.dir/benchmark_suite.cc.o" "gcc" "src/workload/CMakeFiles/fs_workload.dir/benchmark_suite.cc.o.d"
  "/root/repo/src/workload/branch_behavior.cc" "src/workload/CMakeFiles/fs_workload.dir/branch_behavior.cc.o" "gcc" "src/workload/CMakeFiles/fs_workload.dir/branch_behavior.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/workload/CMakeFiles/fs_workload.dir/generator.cc.o" "gcc" "src/workload/CMakeFiles/fs_workload.dir/generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/program/CMakeFiles/fs_program.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/fs_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fs_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
