file(REMOVE_RECURSE
  "CMakeFiles/fs_workload.dir/benchmark_suite.cc.o"
  "CMakeFiles/fs_workload.dir/benchmark_suite.cc.o.d"
  "CMakeFiles/fs_workload.dir/branch_behavior.cc.o"
  "CMakeFiles/fs_workload.dir/branch_behavior.cc.o.d"
  "CMakeFiles/fs_workload.dir/generator.cc.o"
  "CMakeFiles/fs_workload.dir/generator.cc.o.d"
  "libfs_workload.a"
  "libfs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
