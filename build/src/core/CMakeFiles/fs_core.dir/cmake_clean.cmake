file(REMOVE_RECURSE
  "CMakeFiles/fs_core.dir/processor.cc.o"
  "CMakeFiles/fs_core.dir/processor.cc.o.d"
  "CMakeFiles/fs_core.dir/register_state.cc.o"
  "CMakeFiles/fs_core.dir/register_state.cc.o.d"
  "libfs_core.a"
  "libfs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
