file(REMOVE_RECURSE
  "CMakeFiles/fs_stats.dir/counters.cc.o"
  "CMakeFiles/fs_stats.dir/counters.cc.o.d"
  "CMakeFiles/fs_stats.dir/log.cc.o"
  "CMakeFiles/fs_stats.dir/log.cc.o.d"
  "CMakeFiles/fs_stats.dir/summary.cc.o"
  "CMakeFiles/fs_stats.dir/summary.cc.o.d"
  "CMakeFiles/fs_stats.dir/table.cc.o"
  "CMakeFiles/fs_stats.dir/table.cc.o.d"
  "libfs_stats.a"
  "libfs_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
