
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/branch/btb.cc" "src/branch/CMakeFiles/fs_branch.dir/btb.cc.o" "gcc" "src/branch/CMakeFiles/fs_branch.dir/btb.cc.o.d"
  "/root/repo/src/branch/direction_predictor.cc" "src/branch/CMakeFiles/fs_branch.dir/direction_predictor.cc.o" "gcc" "src/branch/CMakeFiles/fs_branch.dir/direction_predictor.cc.o.d"
  "/root/repo/src/branch/predictor_suite.cc" "src/branch/CMakeFiles/fs_branch.dir/predictor_suite.cc.o" "gcc" "src/branch/CMakeFiles/fs_branch.dir/predictor_suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/fs_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/fs_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fs_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/fs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/program/CMakeFiles/fs_program.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
