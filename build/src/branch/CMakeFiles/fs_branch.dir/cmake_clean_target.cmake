file(REMOVE_RECURSE
  "libfs_branch.a"
)
