file(REMOVE_RECURSE
  "CMakeFiles/fs_branch.dir/btb.cc.o"
  "CMakeFiles/fs_branch.dir/btb.cc.o.d"
  "CMakeFiles/fs_branch.dir/direction_predictor.cc.o"
  "CMakeFiles/fs_branch.dir/direction_predictor.cc.o.d"
  "CMakeFiles/fs_branch.dir/predictor_suite.cc.o"
  "CMakeFiles/fs_branch.dir/predictor_suite.cc.o.d"
  "libfs_branch.a"
  "libfs_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
