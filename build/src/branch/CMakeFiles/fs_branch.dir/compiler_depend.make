# Empty compiler generated dependencies file for fs_branch.
# This may be replaced when dependencies are built.
