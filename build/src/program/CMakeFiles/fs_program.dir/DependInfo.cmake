
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/program/dump.cc" "src/program/CMakeFiles/fs_program.dir/dump.cc.o" "gcc" "src/program/CMakeFiles/fs_program.dir/dump.cc.o.d"
  "/root/repo/src/program/layout.cc" "src/program/CMakeFiles/fs_program.dir/layout.cc.o" "gcc" "src/program/CMakeFiles/fs_program.dir/layout.cc.o.d"
  "/root/repo/src/program/program.cc" "src/program/CMakeFiles/fs_program.dir/program.cc.o" "gcc" "src/program/CMakeFiles/fs_program.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/fs_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fs_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
