# Empty dependencies file for fs_program.
# This may be replaced when dependencies are built.
