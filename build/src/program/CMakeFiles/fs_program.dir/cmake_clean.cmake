file(REMOVE_RECURSE
  "CMakeFiles/fs_program.dir/dump.cc.o"
  "CMakeFiles/fs_program.dir/dump.cc.o.d"
  "CMakeFiles/fs_program.dir/layout.cc.o"
  "CMakeFiles/fs_program.dir/layout.cc.o.d"
  "CMakeFiles/fs_program.dir/program.cc.o"
  "CMakeFiles/fs_program.dir/program.cc.o.d"
  "libfs_program.a"
  "libfs_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
