file(REMOVE_RECURSE
  "libfs_program.a"
)
