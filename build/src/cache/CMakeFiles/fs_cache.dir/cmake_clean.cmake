file(REMOVE_RECURSE
  "CMakeFiles/fs_cache.dir/icache.cc.o"
  "CMakeFiles/fs_cache.dir/icache.cc.o.d"
  "libfs_cache.a"
  "libfs_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
