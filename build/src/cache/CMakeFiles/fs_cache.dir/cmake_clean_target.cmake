file(REMOVE_RECURSE
  "libfs_cache.a"
)
