# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("stats")
subdirs("isa")
subdirs("program")
subdirs("workload")
subdirs("exec")
subdirs("cache")
subdirs("branch")
subdirs("fetch")
subdirs("core")
subdirs("compiler")
subdirs("sim")
