file(REMOVE_RECURSE
  "CMakeFiles/fs_sim.dir/experiment.cc.o"
  "CMakeFiles/fs_sim.dir/experiment.cc.o.d"
  "libfs_sim.a"
  "libfs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
