
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/test_rng.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/test_rng.dir/test_rng.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/fs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/fs_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/fetch/CMakeFiles/fs_fetch.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/fs_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/fs_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/fs_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/fs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/program/CMakeFiles/fs_program.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/fs_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fs_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
