# Empty compiler generated dependencies file for test_dump.
# This may be replaced when dependencies are built.
