file(REMOVE_RECURSE
  "CMakeFiles/test_predictor_suite.dir/test_predictor_suite.cc.o"
  "CMakeFiles/test_predictor_suite.dir/test_predictor_suite.cc.o.d"
  "test_predictor_suite"
  "test_predictor_suite.pdb"
  "test_predictor_suite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predictor_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
