# Empty dependencies file for test_predictor_suite.
# This may be replaced when dependencies are built.
