file(REMOVE_RECURSE
  "CMakeFiles/test_function_layout.dir/test_function_layout.cc.o"
  "CMakeFiles/test_function_layout.dir/test_function_layout.cc.o.d"
  "test_function_layout"
  "test_function_layout.pdb"
  "test_function_layout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_function_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
