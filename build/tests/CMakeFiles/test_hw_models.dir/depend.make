# Empty dependencies file for test_hw_models.
# This may be replaced when dependencies are built.
