file(REMOVE_RECURSE
  "CMakeFiles/test_hw_models.dir/test_hw_models.cc.o"
  "CMakeFiles/test_hw_models.dir/test_hw_models.cc.o.d"
  "test_hw_models"
  "test_hw_models.pdb"
  "test_hw_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
