# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_program[1]_include.cmake")
include("/root/repo/build/tests/test_behavior[1]_include.cmake")
include("/root/repo/build/tests/test_generator[1]_include.cmake")
include("/root/repo/build/tests/test_executor[1]_include.cmake")
include("/root/repo/build/tests/test_icache[1]_include.cmake")
include("/root/repo/build/tests/test_btb[1]_include.cmake")
include("/root/repo/build/tests/test_prediction[1]_include.cmake")
include("/root/repo/build/tests/test_walker[1]_include.cmake")
include("/root/repo/build/tests/test_hw_models[1]_include.cmake")
include("/root/repo/build/tests/test_processor[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_experiment[1]_include.cmake")
include("/root/repo/build/tests/test_paper_shape[1]_include.cmake")
include("/root/repo/build/tests/test_predictor_suite[1]_include.cmake")
include("/root/repo/build/tests/test_equivalence[1]_include.cmake")
include("/root/repo/build/tests/test_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_trace_file[1]_include.cmake")
include("/root/repo/build/tests/test_dump[1]_include.cmake")
include("/root/repo/build/tests/test_function_layout[1]_include.cmake")
