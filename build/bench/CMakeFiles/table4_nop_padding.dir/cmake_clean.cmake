file(REMOVE_RECURSE
  "CMakeFiles/table4_nop_padding.dir/table4_nop_padding.cc.o"
  "CMakeFiles/table4_nop_padding.dir/table4_nop_padding.cc.o.d"
  "table4_nop_padding"
  "table4_nop_padding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_nop_padding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
