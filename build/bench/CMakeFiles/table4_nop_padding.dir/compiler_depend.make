# Empty compiler generated dependencies file for table4_nop_padding.
# This may be replaced when dependencies are built.
