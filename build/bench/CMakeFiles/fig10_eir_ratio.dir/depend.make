# Empty dependencies file for fig10_eir_ratio.
# This may be replaced when dependencies are built.
