file(REMOVE_RECURSE
  "CMakeFiles/fig03_sequential_vs_perfect.dir/fig03_sequential_vs_perfect.cc.o"
  "CMakeFiles/fig03_sequential_vs_perfect.dir/fig03_sequential_vs_perfect.cc.o.d"
  "fig03_sequential_vs_perfect"
  "fig03_sequential_vs_perfect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_sequential_vs_perfect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
