# Empty compiler generated dependencies file for fig03_sequential_vs_perfect.
# This may be replaced when dependencies are built.
