file(REMOVE_RECURSE
  "CMakeFiles/fig13_padding_ipc.dir/fig13_padding_ipc.cc.o"
  "CMakeFiles/fig13_padding_ipc.dir/fig13_padding_ipc.cc.o.d"
  "fig13_padding_ipc"
  "fig13_padding_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_padding_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
