file(REMOVE_RECURSE
  "CMakeFiles/fig09_scheme_ipc.dir/fig09_scheme_ipc.cc.o"
  "CMakeFiles/fig09_scheme_ipc.dir/fig09_scheme_ipc.cc.o.d"
  "fig09_scheme_ipc"
  "fig09_scheme_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_scheme_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
