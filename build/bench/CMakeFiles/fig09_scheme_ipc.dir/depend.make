# Empty dependencies file for fig09_scheme_ipc.
# This may be replaced when dependencies are built.
