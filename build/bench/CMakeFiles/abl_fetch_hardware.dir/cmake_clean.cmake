file(REMOVE_RECURSE
  "CMakeFiles/abl_fetch_hardware.dir/abl_fetch_hardware.cc.o"
  "CMakeFiles/abl_fetch_hardware.dir/abl_fetch_hardware.cc.o.d"
  "abl_fetch_hardware"
  "abl_fetch_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_fetch_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
