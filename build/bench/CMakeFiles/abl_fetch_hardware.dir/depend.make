# Empty dependencies file for abl_fetch_hardware.
# This may be replaced when dependencies are built.
