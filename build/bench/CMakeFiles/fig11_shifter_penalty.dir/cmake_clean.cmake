file(REMOVE_RECURSE
  "CMakeFiles/fig11_shifter_penalty.dir/fig11_shifter_penalty.cc.o"
  "CMakeFiles/fig11_shifter_penalty.dir/fig11_shifter_penalty.cc.o.d"
  "fig11_shifter_penalty"
  "fig11_shifter_penalty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_shifter_penalty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
