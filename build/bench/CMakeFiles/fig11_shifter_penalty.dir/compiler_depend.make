# Empty compiler generated dependencies file for fig11_shifter_penalty.
# This may be replaced when dependencies are built.
