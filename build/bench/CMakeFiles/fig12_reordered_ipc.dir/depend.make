# Empty dependencies file for fig12_reordered_ipc.
# This may be replaced when dependencies are built.
