file(REMOVE_RECURSE
  "CMakeFiles/fig12_reordered_ipc.dir/fig12_reordered_ipc.cc.o"
  "CMakeFiles/fig12_reordered_ipc.dir/fig12_reordered_ipc.cc.o.d"
  "fig12_reordered_ipc"
  "fig12_reordered_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_reordered_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
