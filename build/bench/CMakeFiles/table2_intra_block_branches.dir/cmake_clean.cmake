file(REMOVE_RECURSE
  "CMakeFiles/table2_intra_block_branches.dir/table2_intra_block_branches.cc.o"
  "CMakeFiles/table2_intra_block_branches.dir/table2_intra_block_branches.cc.o.d"
  "table2_intra_block_branches"
  "table2_intra_block_branches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_intra_block_branches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
