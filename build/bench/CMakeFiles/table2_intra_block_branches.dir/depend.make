# Empty dependencies file for table2_intra_block_branches.
# This may be replaced when dependencies are built.
