# Empty compiler generated dependencies file for abl_speculation_depth.
# This may be replaced when dependencies are built.
