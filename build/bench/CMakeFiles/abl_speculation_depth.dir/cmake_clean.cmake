file(REMOVE_RECURSE
  "CMakeFiles/abl_speculation_depth.dir/abl_speculation_depth.cc.o"
  "CMakeFiles/abl_speculation_depth.dir/abl_speculation_depth.cc.o.d"
  "abl_speculation_depth"
  "abl_speculation_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_speculation_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
