# Empty dependencies file for table3_taken_branch_reduction.
# This may be replaced when dependencies are built.
