file(REMOVE_RECURSE
  "CMakeFiles/table3_taken_branch_reduction.dir/table3_taken_branch_reduction.cc.o"
  "CMakeFiles/table3_taken_branch_reduction.dir/table3_taken_branch_reduction.cc.o.d"
  "table3_taken_branch_reduction"
  "table3_taken_branch_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_taken_branch_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
