/**
 * @file
 * The frontend's complete prediction machinery: BTB (targets +
 * default 2-bit direction), optional standalone direction predictor
 * (gshare / two-level), and optional return-address stack.
 *
 * The paper's machines use exactly the default configuration (BTB
 * counters, no RAS); the alternatives implement its concluding-
 * remarks future work and feed the predictor ablation bench.
 */

#ifndef FETCHSIM_BRANCH_PREDICTOR_SUITE_H_
#define FETCHSIM_BRANCH_PREDICTOR_SUITE_H_

#include <memory>
#include <memory_resource>

#include "branch/btb.h"
#include "branch/direction_predictor.h"
#include "branch/ras.h"
#include "exec/dyn_inst.h"

namespace fetchsim
{

class MetricRegistry;
class Counter;

/**
 * Prediction verdict for one instruction, against its actual
 * outcome.
 */
struct InstPrediction
{
    bool control = false;     //!< instruction transfers control
    bool cond = false;        //!< conditional branch
    bool btbHit = false;      //!< a target prediction was available
    bool predTaken = false;   //!< fetch-time prediction
    std::uint64_t predTarget = 0; //!< predicted target (predTaken)
    bool mispredict = false;  //!< outcome disagrees; resolve at execute
    bool decodeRedirect = false; //!< direct uncond absent from BTB;
                                 //!< decoder redirects (1 bubble)
};

/**
 * The paper's default prediction path: direction and target both
 * from the interleaved BTB with 2-bit counters.  Performs one
 * (stat-counted) BTB lookup for control instructions; non-control
 * instructions cannot hit (only control instructions allocate and
 * tags are full).
 */
InstPrediction predictInst(Btb &btb, const DynInst &di);

/** Frontend prediction configuration. */
struct PredictorConfig
{
    PredictorKind kind = PredictorKind::BtbCounter;
    bool useRas = false;
    int rasDepth = 16;
};

/**
 * BTB + optional direction predictor + optional RAS, with the
 * training hooks the processor calls at decode and resolution time.
 */
class PredictorSuite
{
  public:
    /**
     * @param btb_entries BTB entry count (power of two)
     * @param interleave  BTB banks = instructions per cache block
     * @param config      direction/RAS configuration
     * @param mem         memory resource for the BTB, direction and
     *                    RAS tables (must outlive the suite)
     */
    PredictorSuite(int btb_entries, int interleave,
                   const PredictorConfig &config = {},
                   std::pmr::memory_resource *mem =
                       std::pmr::get_default_resource());

    PredictorSuite(const PredictorSuite &) = delete;
    PredictorSuite &operator=(const PredictorSuite &) = delete;

    /**
     * Predict the next instruction on the fetch path.  Calls with
     * control instructions mutate speculative state (RAS push/pop),
     * so the caller must invoke this exactly once per delivered
     * instruction, in order -- which is what the fetch walk does.
     *
     * Inline so the (dominant) non-control case costs one opcode
     * compare in the fetch walk's per-slot loop.
     */
    InstPrediction
    predict(const DynInst &di)
    {
        if (!di.isControl())
            return InstPrediction{};
        return predictControl(di);
    }

    /**
     * Decode-time training: direct unconditional transfers (jumps
     * and calls) always reveal their target at decode.
     */
    void
    onDecode(const DynInst &di)
    {
        if (di.si.op == OpClass::Jump || di.si.op == OpClass::Call)
            btb_.update(di.pc, true, di.actualTarget);
    }

    /**
     * Resolution-time training: conditional branches and returns
     * train the BTB (and the direction predictor) when the branch
     * unit resolves them.
     */
    void
    onResolve(const DynInst &di)
    {
        switch (di.si.op) {
          case OpClass::CondBranch:
            btb_.update(di.pc, di.taken, di.actualTarget);
            if (dir_)
                dir_->update(di.pc, di.taken);
            break;
          case OpClass::Return:
            // With a RAS the BTB entry is not used for returns; keep
            // it trained anyway so disabling the RAS mid-experiment
            // (never done in practice) would not start cold.
            btb_.update(di.pc, di.taken, di.actualTarget);
            break;
          default:
            break;
        }
    }

    /** The underlying BTB (tests train through this). */
    Btb &btb() { return btb_; }
    const Btb &btb() const { return btb_; }

    /** The standalone direction predictor, if configured. */
    const DirectionPredictor *direction() const { return dir_.get(); }

    /** The RAS (empty object when disabled). */
    const ReturnAddressStack &ras() const { return ras_; }

    /** Active configuration. */
    const PredictorConfig &config() const { return config_; }

    /**
     * Register prediction-event counters into @p registry under the
     * "branch." prefix (predictions, BTB hits, mispredicts, decode
     * redirects, RAS pops).  The registry must outlive the suite;
     * unattached suites pay one null-check per control instruction.
     */
    void attachMetrics(MetricRegistry &registry);

  private:
    PredictorConfig config_;
    Btb btb_;
    std::unique_ptr<DirectionPredictor> dir_;
    ReturnAddressStack ras_;

    // Observability hooks (null until attachMetrics()).
    Counter *m_predictions_ = nullptr;
    Counter *m_btb_hits_ = nullptr;
    Counter *m_mispredicts_ = nullptr;
    Counter *m_redirects_ = nullptr;
    Counter *m_ras_pops_ = nullptr;

    InstPrediction predictControl(const DynInst &di);
    InstPrediction predictImpl(const DynInst &di);
    void noteVerdict(const InstPrediction &pred);
};

} // namespace fetchsim

#endif // FETCHSIM_BRANCH_PREDICTOR_SUITE_H_
