#include "branch/predictor_suite.h"

#include "stats/log.h"
#include "stats/metrics.h"

namespace fetchsim
{

InstPrediction
predictInst(Btb &btb, const DynInst &di)
{
    InstPrediction pred;
    if (!di.isControl())
        return pred;

    pred.control = true;
    BtbPrediction lookup = btb.lookup(di.pc);
    pred.btbHit = lookup.hit;

    switch (di.si.op) {
      case OpClass::CondBranch: {
        pred.cond = true;
        pred.predTaken = lookup.hit && lookup.predictTaken;
        pred.predTarget = lookup.target;
        if (pred.predTaken != di.taken) {
            pred.mispredict = true;
        } else if (pred.predTaken &&
                   lookup.target != di.actualTarget) {
            // Stale cached target (aliasing cannot happen -- full
            // tags -- but the check keeps the model honest).
            pred.mispredict = true;
        }
        break;
      }
      case OpClass::Jump:
      case OpClass::Call: {
        // Direct unconditional: the decoder can always compute the
        // target, so a BTB miss costs one redirect bubble rather
        // than a full misprediction.
        if (lookup.hit) {
            pred.predTaken = true;
            pred.predTarget = lookup.target;
            if (lookup.target != di.actualTarget)
                pred.mispredict = true; // stale target
        } else {
            pred.decodeRedirect = true;
        }
        break;
      }
      case OpClass::Return: {
        // Indirect: the BTB predicts "last target"; a miss or a
        // wrong cached target must wait for execution.
        if (lookup.hit && lookup.target == di.actualTarget) {
            pred.predTaken = true;
            pred.predTarget = lookup.target;
        } else {
            pred.mispredict = true;
        }
        break;
      }
      default:
        panic("predictInst: unexpected control op");
    }
    return pred;
}

PredictorSuite::PredictorSuite(int btb_entries, int interleave,
                               const PredictorConfig &config,
                               std::pmr::memory_resource *mem)
    : config_(config), btb_(btb_entries, interleave, mem),
      dir_(makeDirectionPredictor(config.kind, mem)),
      ras_(config.rasDepth, mem)
{
}

InstPrediction
PredictorSuite::predictControl(const DynInst &di)
{
    InstPrediction pred = predictImpl(di);
    if (m_predictions_)
        noteVerdict(pred);
    return pred;
}

InstPrediction
PredictorSuite::predictImpl(const DynInst &di)
{
    // RAS: calls push their return address at fetch/decode so a
    // return inside the same fetch group still sees it.
    if (config_.useRas && di.si.op == OpClass::Call)
        ras_.push(di.nextPc());

    if (config_.useRas && di.si.op == OpClass::Return &&
        !ras_.empty()) {
        InstPrediction pred;
        pred.control = true;
        pred.btbHit = true;
        pred.predTaken = true;
        pred.predTarget = ras_.pop();
        pred.mispredict = pred.predTarget != di.actualTarget;
        if (m_ras_pops_)
            m_ras_pops_->inc();
        return pred;
        // On underflow, fall through to the BTB's last-target
        // prediction below, as real RAS designs do.
    }

    InstPrediction pred = predictInst(btb_, di);

    if (config_.kind == PredictorKind::OracleDirection &&
        di.isCondBranch()) {
        // Perfect direction; fetch still needs the BTB for the
        // target, so taken branches with cold BTB entries miss.
        pred.predTaken = di.taken && pred.btbHit;
        pred.mispredict = pred.predTaken != di.taken ||
                          (pred.predTaken &&
                           pred.predTarget != di.actualTarget);
        return pred;
    }

    if (config_.kind == PredictorKind::StaticBtfnt &&
        di.isCondBranch()) {
        // Static BTFNT: backward targets predicted taken, forward
        // not-taken.  The direction heuristic needs the target, so a
        // BTB miss defaults to not-taken.
        const bool backward =
            pred.btbHit && pred.predTarget < di.pc;
        pred.predTaken = backward;
        pred.mispredict = false;
        if (pred.predTaken != di.taken)
            pred.mispredict = true;
        else if (pred.predTaken && pred.predTarget != di.actualTarget)
            pred.mispredict = true;
        return pred;
    }

    if (dir_ && di.isCondBranch()) {
        // Direction from the standalone predictor; the target still
        // requires a BTB hit to redirect fetch in time.
        const bool dir_taken = dir_->predict(di.pc);
        pred.predTaken = dir_taken && pred.btbHit;
        pred.mispredict = false;
        if (pred.predTaken != di.taken)
            pred.mispredict = true;
        else if (pred.predTaken && pred.predTarget != di.actualTarget)
            pred.mispredict = true;
    }
    return pred;
}

void
PredictorSuite::attachMetrics(MetricRegistry &registry)
{
    m_predictions_ = &registry.counter(
        "branch.predictions", "control instructions predicted");
    m_btb_hits_ =
        &registry.counter("branch.btb_hits",
                          "predictions with a BTB target available");
    m_mispredicts_ = &registry.counter(
        "branch.mispredicts", "predictions the outcome disproved");
    m_redirects_ = &registry.counter(
        "branch.decode_redirects",
        "BTB-miss direct unconditionals (1-bubble redirects)");
    m_ras_pops_ = &registry.counter(
        "branch.ras_pops", "returns predicted from the RAS");
}

void
PredictorSuite::noteVerdict(const InstPrediction &pred)
{
    m_predictions_->inc();
    if (pred.btbHit)
        m_btb_hits_->inc();
    if (pred.mispredict)
        m_mispredicts_->inc();
    if (pred.decodeRedirect)
        m_redirects_->inc();
}

} // namespace fetchsim
