#include "branch/btb.h"

#include "isa/opcode.h"
#include "stats/log.h"

namespace fetchsim
{

Btb::Btb(int entries, int interleave)
    : entries_(entries), interleave_(interleave)
{
    if (entries < 1 || (entries & (entries - 1)) != 0)
        fatal("Btb: entry count must be a power of two");
    if (interleave < 1)
        fatal("Btb: interleave factor must be positive");
    table_.resize(static_cast<std::size_t>(entries));
}

std::uint64_t
Btb::indexOf(std::uint64_t pc) const
{
    return (pc / kInstBytes) &
           static_cast<std::uint64_t>(entries_ - 1);
}

std::uint64_t
Btb::tagOf(std::uint64_t pc) const
{
    return (pc / kInstBytes) / static_cast<std::uint64_t>(entries_);
}

BtbPrediction
Btb::lookup(std::uint64_t pc)
{
    ++lookups_;
    BtbPrediction pred = probe(pc);
    if (pred.hit)
        ++hits_;
    return pred;
}

BtbPrediction
Btb::probe(std::uint64_t pc) const
{
    const Entry &entry = table_[indexOf(pc)];
    BtbPrediction pred;
    if (entry.valid && entry.tag == tagOf(pc)) {
        pred.hit = true;
        pred.predictTaken = entry.counter.predictTaken();
        pred.target = entry.target;
    }
    return pred;
}

void
Btb::update(std::uint64_t pc, bool taken, std::uint64_t target)
{
    Entry &entry = table_[indexOf(pc)];
    const bool present = entry.valid && entry.tag == tagOf(pc);
    if (present) {
        entry.counter.update(taken);
        if (taken)
            entry.target = target;
        return;
    }
    if (!taken)
        return; // allocate on taken branches only
    entry.valid = true;
    entry.tag = tagOf(pc);
    entry.target = target;
    entry.counter = TwoBitCounter(2); // weakly taken
}

int
Btb::bankOf(std::uint64_t pc) const
{
    return static_cast<int>((pc / kInstBytes) %
                            static_cast<std::uint64_t>(interleave_));
}

void
Btb::flush()
{
    for (auto &entry : table_)
        entry.valid = false;
}

} // namespace fetchsim
