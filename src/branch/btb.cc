#include "branch/btb.h"

#include "stats/log.h"

namespace fetchsim
{

Btb::Btb(int entries, int interleave,
         std::pmr::memory_resource *mem)
    : entries_(entries), interleave_(interleave), tag_(mem),
      target_(mem), meta_(mem)
{
    if (entries < 1 || (entries & (entries - 1)) != 0)
        fatal("Btb: entry count must be a power of two");
    if (interleave < 1)
        fatal("Btb: interleave factor must be positive");
    index_mask_ = static_cast<std::uint64_t>(entries - 1);
    unsigned log2_entries = 0;
    while ((1 << log2_entries) < entries)
        ++log2_entries;
    tag_shift_ = 2 + log2_entries; // pc / kInstBytes / entries
    tag_.resize(static_cast<std::size_t>(entries));
    target_.resize(static_cast<std::size_t>(entries));
    meta_.assign(static_cast<std::size_t>(entries), 0);
}

void
Btb::flush()
{
    for (std::uint8_t &meta : meta_)
        meta &= static_cast<std::uint8_t>(~kValidBit);
}

} // namespace fetchsim
