/**
 * @file
 * Saturating 2-bit prediction counter.
 */

#ifndef FETCHSIM_BRANCH_TWO_BIT_COUNTER_H_
#define FETCHSIM_BRANCH_TWO_BIT_COUNTER_H_

#include <cstdint>

namespace fetchsim
{

/**
 * Classic saturating 2-bit counter: 0-1 predict not-taken, 2-3
 * predict taken.
 */
class TwoBitCounter
{
  public:
    /** @param initial starting state, 0..3 (default weakly taken). */
    explicit TwoBitCounter(std::uint8_t initial = 2)
        : state_(initial > 3 ? 3 : initial)
    {
    }

    /** Current prediction. */
    bool predictTaken() const { return state_ >= 2; }

    /** Train with an actual outcome. */
    void
    update(bool taken)
    {
        if (taken) {
            if (state_ < 3)
                ++state_;
        } else {
            if (state_ > 0)
                --state_;
        }
    }

    /** Raw state (testing hook). */
    std::uint8_t state() const { return state_; }

  private:
    std::uint8_t state_;
};

} // namespace fetchsim

#endif // FETCHSIM_BRANCH_TWO_BIT_COUNTER_H_
