/**
 * @file
 * Branch-target buffer with 2-bit counters and cached targets.
 *
 * All machine models share the same BTB organization (paper Table 1):
 * 1024 entries, direct-mapped, a 2-bit counter and the branch target
 * address per entry.  The buffer is interleaved into as many banks as
 * there are instructions in a cache block so that one query per fetch
 * block returns a prediction for every slot (paper Figure 5); since
 * consecutive instruction addresses map to consecutive banks, those
 * per-slot queries never conflict, and the model exposes a per-PC
 * lookup plus the block-level valid-bit computation in the fetch unit.
 *
 * Storage is structure-of-arrays: tags, targets, and packed
 * valid+counter bytes live in three contiguous flat arrays with
 * precomputed index mask and tag shift, so the per-slot queries the
 * fetch walk issues every cycle touch one byte plus one tag word
 * instead of a padded 32-byte record.  Tags keep the full remaining
 * PC bits (external traces carry arbitrary 64-bit addresses).
 */

#ifndef FETCHSIM_BRANCH_BTB_H_
#define FETCHSIM_BRANCH_BTB_H_

#include <cstdint>
#include <memory_resource>
#include <vector>

#include "branch/two_bit_counter.h"
#include "isa/opcode.h"

namespace fetchsim
{

/** Result of one BTB query. */
struct BtbPrediction
{
    bool hit = false;          //!< entry present for this PC
    bool predictTaken = false; //!< counter >= 2 (hit only)
    std::uint64_t target = 0;  //!< cached target address (hit only)
};

/**
 * Interleaved, direct-mapped branch-target buffer.
 */
class Btb
{
  public:
    /**
     * @param entries    total entry count (power of two)
     * @param interleave bank count = instructions per cache block
     * @param mem        memory resource for the three flat arrays
     *                   (must outlive the BTB; defaults to the heap)
     */
    explicit Btb(int entries = 1024, int interleave = 4,
                 std::pmr::memory_resource *mem =
                     std::pmr::get_default_resource());

    /** Query the prediction for the instruction at @p pc. */
    BtbPrediction
    lookup(std::uint64_t pc)
    {
        ++lookups_;
        BtbPrediction pred = probe(pc);
        if (pred.hit)
            ++hits_;
        return pred;
    }

    /** Query without statistics side effects (debug/testing). */
    BtbPrediction
    probe(std::uint64_t pc) const
    {
        const std::uint64_t slot = indexOf(pc);
        BtbPrediction pred;
        if ((meta_[slot] & kValidBit) != 0 &&
            tag_[slot] == tagOf(pc)) {
            pred.hit = true;
            pred.predictTaken = (meta_[slot] & kCounterMask) >= 2;
            pred.target = target_[slot];
        }
        return pred;
    }

    /**
     * Train with a resolved control instruction.
     *
     * Allocation policy: allocate on a taken branch (classic BTB);
     * not-taken branches only train an existing entry.  The cached
     * target is refreshed on every taken update, which makes returns
     * behave as "predict last target" indirect predictions.
     *
     * @param pc     branch address
     * @param taken  actual outcome
     * @param target actual target (when taken)
     */
    void
    update(std::uint64_t pc, bool taken, std::uint64_t target)
    {
        const std::uint64_t slot = indexOf(pc);
        std::uint8_t meta = meta_[slot];
        const bool present =
            (meta & kValidBit) != 0 && tag_[slot] == tagOf(pc);
        if (present) {
            const std::uint8_t counter = meta & kCounterMask;
            if (taken) {
                if (counter < 3)
                    meta_[slot] = meta + 1;
                target_[slot] = target;
            } else if (counter > 0) {
                meta_[slot] = meta - 1;
            }
            return;
        }
        if (!taken)
            return; // allocate on taken branches only
        tag_[slot] = tagOf(pc);
        target_[slot] = target;
        meta_[slot] = kValidBit | 2; // weakly taken
    }

    /** Bank that the instruction at @p pc maps to. */
    int
    bankOf(std::uint64_t pc) const
    {
        return static_cast<int>((pc / kInstBytes) %
                                static_cast<std::uint64_t>(interleave_));
    }

    int numEntries() const { return entries_; }
    int interleave() const { return interleave_; }

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t hits() const { return hits_; }

    /** Invalidate all entries. */
    void flush();

  private:
    static constexpr std::uint8_t kCounterMask = 0x03;
    static constexpr std::uint8_t kValidBit = 0x80;

    std::uint64_t
    indexOf(std::uint64_t pc) const
    {
        return (pc / kInstBytes) & index_mask_;
    }

    std::uint64_t
    tagOf(std::uint64_t pc) const
    {
        return pc >> tag_shift_;
    }

    int entries_;
    int interleave_;
    std::uint64_t index_mask_;
    unsigned tag_shift_;

    // Flat SoA entry storage; meta_ packs the valid bit with the
    // saturating 2-bit counter.
    std::pmr::vector<std::uint64_t> tag_;
    std::pmr::vector<std::uint64_t> target_;
    std::pmr::vector<std::uint8_t> meta_;

    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
};

} // namespace fetchsim

#endif // FETCHSIM_BRANCH_BTB_H_
