/**
 * @file
 * Branch-target buffer with 2-bit counters and cached targets.
 *
 * All machine models share the same BTB organization (paper Table 1):
 * 1024 entries, direct-mapped, a 2-bit counter and the branch target
 * address per entry.  The buffer is interleaved into as many banks as
 * there are instructions in a cache block so that one query per fetch
 * block returns a prediction for every slot (paper Figure 5); since
 * consecutive instruction addresses map to consecutive banks, those
 * per-slot queries never conflict, and the model exposes a per-PC
 * lookup plus the block-level valid-bit computation in the fetch unit.
 */

#ifndef FETCHSIM_BRANCH_BTB_H_
#define FETCHSIM_BRANCH_BTB_H_

#include <cstdint>
#include <vector>

#include "branch/two_bit_counter.h"

namespace fetchsim
{

/** Result of one BTB query. */
struct BtbPrediction
{
    bool hit = false;          //!< entry present for this PC
    bool predictTaken = false; //!< counter >= 2 (hit only)
    std::uint64_t target = 0;  //!< cached target address (hit only)
};

/**
 * Interleaved, direct-mapped branch-target buffer.
 */
class Btb
{
  public:
    /**
     * @param entries    total entry count (power of two)
     * @param interleave bank count = instructions per cache block
     */
    explicit Btb(int entries = 1024, int interleave = 4);

    /** Query the prediction for the instruction at @p pc. */
    BtbPrediction lookup(std::uint64_t pc);

    /** Query without statistics side effects (debug/testing). */
    BtbPrediction probe(std::uint64_t pc) const;

    /**
     * Train with a resolved control instruction.
     *
     * Allocation policy: allocate on a taken branch (classic BTB);
     * not-taken branches only train an existing entry.  The cached
     * target is refreshed on every taken update, which makes returns
     * behave as "predict last target" indirect predictions.
     *
     * @param pc     branch address
     * @param taken  actual outcome
     * @param target actual target (when taken)
     */
    void update(std::uint64_t pc, bool taken, std::uint64_t target);

    /** Bank that the instruction at @p pc maps to. */
    int bankOf(std::uint64_t pc) const;

    int numEntries() const { return entries_; }
    int interleave() const { return interleave_; }

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t hits() const { return hits_; }

    /** Invalidate all entries. */
    void flush();

  private:
    struct Entry
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint64_t target = 0;
        TwoBitCounter counter;
    };

    std::uint64_t indexOf(std::uint64_t pc) const;
    std::uint64_t tagOf(std::uint64_t pc) const;

    int entries_;
    int interleave_;
    std::vector<Entry> table_;

    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
};

} // namespace fetchsim

#endif // FETCHSIM_BRANCH_BTB_H_
