/**
 * @file
 * Return-address stack.
 *
 * The paper's BTB predicts returns as "last taken target", which
 * mispredicts whenever a function is called from a new site.  A RAS
 * (as in contemporaries like the PowerPC 604) fixes this; it is an
 * optional frontend extension here, exercised by the predictor
 * ablation bench.
 */

#ifndef FETCHSIM_BRANCH_RAS_H_
#define FETCHSIM_BRANCH_RAS_H_

#include <cstdint>
#include <memory_resource>
#include <vector>

namespace fetchsim
{

/**
 * Fixed-depth circular return-address stack.  Overflow silently
 * wraps (oldest entry lost), underflow predicts nothing -- both are
 * the standard hardware behaviours.
 */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(int depth = 16,
                                std::pmr::memory_resource *mem =
                                    std::pmr::get_default_resource())
        : entries_(static_cast<std::size_t>(depth > 0 ? depth : 1),
                   0, mem)
    {
    }

    /** Push a return address (on a call). */
    void
    push(std::uint64_t addr)
    {
        top_ = (top_ + 1) % entries_.size();
        entries_[top_] = addr;
        if (count_ < entries_.size())
            ++count_;
    }

    /** True if a prediction is available. */
    bool empty() const { return count_ == 0; }

    /** Predict-and-pop the top return address (on a return). */
    std::uint64_t
    pop()
    {
        if (count_ == 0)
            return 0;
        std::uint64_t addr = entries_[top_];
        top_ = (top_ + entries_.size() - 1) % entries_.size();
        --count_;
        return addr;
    }

    /** Peek without popping (testing hook). */
    std::uint64_t
    top() const
    {
        return count_ == 0 ? 0 : entries_[top_];
    }

    /** Current live depth. */
    std::size_t size() const { return count_; }

    /** Capacity. */
    std::size_t depth() const { return entries_.size(); }

  private:
    std::pmr::vector<std::uint64_t> entries_;
    std::size_t top_ = 0;
    std::size_t count_ = 0;
};

} // namespace fetchsim

#endif // FETCHSIM_BRANCH_RAS_H_
