/**
 * @file
 * Multi-branch predictor: up to N conditional-branch outcomes per
 * cycle, packed into a bit vector.
 *
 * A trace cache is indexed by (start PC, branch-outcome vector), so
 * the frontend must produce several conditional outcomes in one cycle
 * -- one per branch the candidate trace may span -- before any of
 * those branches has even been fetched (Rotenberg et al., MICRO-29).
 * This implementation keeps a table of 2-bit saturating counters
 * indexed by branch PC and, each cycle, scans the upcoming
 * correct-path stream for the next conditional branches, predicting
 * bit k of the vector from the k-th branch's counter.  Scanning the
 * stream for branch *addresses* is the trace-driven analogue of the
 * hardware's path-based vector lookup; the *outcomes* are genuinely
 * predicted (counters train only on branches already delivered to
 * decode), so vector mispredictions occur and are charged exactly
 * like BTB direction mispredictions.
 */

#ifndef FETCHSIM_BRANCH_MULTI_BRANCH_PREDICTOR_H_
#define FETCHSIM_BRANCH_MULTI_BRANCH_PREDICTOR_H_

#include <cstdint>
#include <memory_resource>
#include <vector>

#include "exec/dyn_inst.h"
#include "isa/opcode.h"

namespace fetchsim
{

/** Predicted outcomes of the next conditional branches. */
struct BranchVector
{
    std::uint32_t bits = 0; //!< bit k = k-th cond branch predicted taken
    int count = 0;          //!< branches covered by the vector

    /** Predicted direction of the k-th conditional branch. */
    bool
    taken(int k) const
    {
        return (bits >> k) & 1u;
    }
};

/**
 * Table of per-address 2-bit counters producing one BranchVector per
 * cycle.  All state is owned by the instance, so a fresh predictor
 * per run keeps simulations deterministic.
 */
class MultiBranchPredictor
{
  public:
    /**
     * @param entries      counter-table entries (power of two)
     * @param max_branches outcomes predicted per cycle (vector width,
     *                     at most 32)
     * @param mem          memory resource for the counter table
     */
    MultiBranchPredictor(int entries, int max_branches,
                         std::pmr::memory_resource *mem =
                             std::pmr::get_default_resource());

    /**
     * Predict the outcomes of the conditional branches among the next
     * @p window instructions of @p stream (at most @p len visible),
     * stopping after maxBranches() of them.
     */
    BranchVector predict(const DynInst *stream, int len,
                         int window) const;

    /** Predicted direction for one branch PC (counter >= 2). */
    bool predictTaken(std::uint64_t pc) const;

    /**
     * Train the counter of a delivered conditional branch with its
     * actual outcome.  Call exactly once per dynamic branch, in
     * delivery order.
     */
    void train(const DynInst &di);

    /** Vector width (outcomes per cycle). */
    int maxBranches() const { return max_branches_; }

    /** @name Accuracy counters (observability + tests) */
    ///@{
    std::uint64_t trained() const { return trained_; }
    std::uint64_t trainedWrong() const { return trained_wrong_; }
    ///@}

  private:
    std::size_t
    indexOf(std::uint64_t pc) const
    {
        return static_cast<std::size_t>((pc / kInstBytes) &
                                        index_mask_);
    }

    std::pmr::vector<std::uint8_t> table_; //!< flat 2-bit counters
    std::uint64_t index_mask_;        //!< precomputed: entries - 1
    int max_branches_;
    std::uint64_t trained_ = 0;
    std::uint64_t trained_wrong_ = 0;
};

} // namespace fetchsim

#endif // FETCHSIM_BRANCH_MULTI_BRANCH_PREDICTOR_H_
