#include "branch/direction_predictor.h"

#include "isa/opcode.h"
#include "stats/log.h"

namespace fetchsim
{

const char *
predictorName(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::BtbCounter: return "btb-2bit";
      case PredictorKind::Gshare:     return "gshare";
      case PredictorKind::TwoLevel:   return "two-level";
      case PredictorKind::OracleDirection: return "oracle-dir";
      case PredictorKind::StaticBtfnt: return "static-btfnt";
      default:                        return "???";
    }
}

GsharePredictor::GsharePredictor(int table_bits, int history_bits)
    : table_bits_(table_bits), history_bits_(history_bits),
      table_(1ull << table_bits)
{
    if (table_bits < 1 || table_bits > 24)
        fatal("GsharePredictor: table bits out of range");
    if (history_bits < 0 || history_bits > table_bits)
        fatal("GsharePredictor: history bits exceed table bits");
}

std::size_t
GsharePredictor::indexOf(std::uint64_t pc) const
{
    const std::uint64_t mask = (1ull << table_bits_) - 1;
    return static_cast<std::size_t>(
        ((pc / kInstBytes) ^ history_) & mask);
}

bool
GsharePredictor::predict(std::uint64_t pc) const
{
    return table_[indexOf(pc)].predictTaken();
}

void
GsharePredictor::update(std::uint64_t pc, bool taken)
{
    table_[indexOf(pc)].update(taken);
    const std::uint64_t mask = (1ull << history_bits_) - 1;
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & mask;
}

TwoLevelPredictor::TwoLevelPredictor(int bht_bits, int history_bits)
    : bht_bits_(bht_bits), history_bits_(history_bits),
      bht_(1ull << bht_bits, 0),
      pattern_(1ull << history_bits)
{
    if (bht_bits < 1 || bht_bits > 20)
        fatal("TwoLevelPredictor: BHT bits out of range");
    if (history_bits < 1 || history_bits > 20)
        fatal("TwoLevelPredictor: history bits out of range");
}

std::uint64_t
TwoLevelPredictor::historyOf(std::uint64_t pc) const
{
    const std::uint64_t mask = (1ull << bht_bits_) - 1;
    return bht_[static_cast<std::size_t>((pc / kInstBytes) & mask)];
}

bool
TwoLevelPredictor::predict(std::uint64_t pc) const
{
    return pattern_[static_cast<std::size_t>(historyOf(pc))]
        .predictTaken();
}

void
TwoLevelPredictor::update(std::uint64_t pc, bool taken)
{
    const std::uint64_t bht_mask = (1ull << bht_bits_) - 1;
    const std::uint64_t hist_mask = (1ull << history_bits_) - 1;
    auto slot = static_cast<std::size_t>((pc / kInstBytes) & bht_mask);
    pattern_[static_cast<std::size_t>(bht_[slot])].update(taken);
    bht_[slot] = ((bht_[slot] << 1) | (taken ? 1 : 0)) & hist_mask;
}

std::unique_ptr<DirectionPredictor>
makeDirectionPredictor(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::BtbCounter:
        return nullptr; // embedded in the BTB
      case PredictorKind::Gshare:
        return std::make_unique<GsharePredictor>();
      case PredictorKind::TwoLevel:
        return std::make_unique<TwoLevelPredictor>();
      case PredictorKind::OracleDirection:
      case PredictorKind::StaticBtfnt:
        return nullptr; // handled inside PredictorSuite
      default:
        fatal("makeDirectionPredictor: bad kind");
    }
}

} // namespace fetchsim
