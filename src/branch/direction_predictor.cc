#include "branch/direction_predictor.h"

#include "isa/opcode.h"
#include "stats/log.h"

namespace fetchsim
{

const char *
predictorName(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::BtbCounter: return "btb-2bit";
      case PredictorKind::Gshare:     return "gshare";
      case PredictorKind::TwoLevel:   return "two-level";
      case PredictorKind::OracleDirection: return "oracle-dir";
      case PredictorKind::StaticBtfnt: return "static-btfnt";
      default:                        return "???";
    }
}

GsharePredictor::GsharePredictor(int table_bits, int history_bits,
                                 std::pmr::memory_resource *mem)
    : table_bits_(table_bits), history_bits_(history_bits),
      table_mask_((1ull << table_bits) - 1),
      history_mask_((1ull << history_bits) - 1),
      table_(1ull << table_bits, TwoBitCounter{}, mem)
{
    if (table_bits < 1 || table_bits > 24)
        fatal("GsharePredictor: table bits out of range");
    if (history_bits < 0 || history_bits > table_bits)
        fatal("GsharePredictor: history bits exceed table bits");
}

bool
GsharePredictor::predict(std::uint64_t pc) const
{
    return table_[indexOf(pc)].predictTaken();
}

void
GsharePredictor::update(std::uint64_t pc, bool taken)
{
    table_[indexOf(pc)].update(taken);
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & history_mask_;
}

TwoLevelPredictor::TwoLevelPredictor(int bht_bits, int history_bits,
                                     std::pmr::memory_resource *mem)
    : bht_bits_(bht_bits), history_bits_(history_bits),
      bht_mask_((1ull << bht_bits) - 1),
      hist_mask_((1ull << history_bits) - 1),
      bht_(1ull << bht_bits, 0, mem),
      pattern_(1ull << history_bits, TwoBitCounter{}, mem)
{
    if (bht_bits < 1 || bht_bits > 20)
        fatal("TwoLevelPredictor: BHT bits out of range");
    if (history_bits < 1 || history_bits > 20)
        fatal("TwoLevelPredictor: history bits out of range");
}

bool
TwoLevelPredictor::predict(std::uint64_t pc) const
{
    return pattern_[static_cast<std::size_t>(historyOf(pc))]
        .predictTaken();
}

void
TwoLevelPredictor::update(std::uint64_t pc, bool taken)
{
    auto slot =
        static_cast<std::size_t>((pc / kInstBytes) & bht_mask_);
    pattern_[static_cast<std::size_t>(bht_[slot])].update(taken);
    bht_[slot] = ((bht_[slot] << 1) | (taken ? 1 : 0)) & hist_mask_;
}

std::unique_ptr<DirectionPredictor>
makeDirectionPredictor(PredictorKind kind,
                       std::pmr::memory_resource *mem)
{
    switch (kind) {
      case PredictorKind::BtbCounter:
        return nullptr; // embedded in the BTB
      case PredictorKind::Gshare:
        return std::make_unique<GsharePredictor>(12, 12, mem);
      case PredictorKind::TwoLevel:
        return std::make_unique<TwoLevelPredictor>(10, 10, mem);
      case PredictorKind::OracleDirection:
      case PredictorKind::StaticBtfnt:
        return nullptr; // handled inside PredictorSuite
      default:
        fatal("makeDirectionPredictor: bad kind");
    }
}

} // namespace fetchsim
