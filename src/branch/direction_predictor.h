/**
 * @file
 * Pluggable branch-direction predictors.
 *
 * The paper's machines predict direction with the BTB's embedded
 * 2-bit counters; its concluding remarks point at the more
 * sophisticated predictors of Yeh's two-level family and McFarling's
 * gshare as future work ("other, more sophisticated predictors do
 * exist that have been designed for machines with high misprediction
 * penalty").  This module provides those predictors so the ablation
 * benches can answer the paper's open question: does better
 * prediction make the cheaper shifter-based collapsing buffer
 * viable?
 */

#ifndef FETCHSIM_BRANCH_DIRECTION_PREDICTOR_H_
#define FETCHSIM_BRANCH_DIRECTION_PREDICTOR_H_

#include <cstdint>
#include <memory>
#include <memory_resource>
#include <vector>

#include "branch/two_bit_counter.h"
#include "isa/opcode.h"

namespace fetchsim
{

/** Direction-prediction schemes available to the frontend. */
enum class PredictorKind : std::uint8_t
{
    BtbCounter = 0, //!< the paper's 2-bit counter in the BTB entry
    Gshare,         //!< global history XOR pc (McFarling)
    TwoLevel,       //!< per-address history -> shared pattern table
                    //!< (Yeh-style PAg)
    OracleDirection,//!< perfect direction (target still needs the
                    //!< BTB) -- upper bound for the accuracy study
    StaticBtfnt     //!< static backward-taken/forward-not-taken
                    //!< (POWER2-era; uses the BTB-cached target to
                    //!< judge direction)
};

/** Name of a predictor kind. */
const char *predictorName(PredictorKind kind);

/**
 * Interface of a standalone direction predictor (the BtbCounter
 * scheme lives inside the BTB and needs no separate object).
 */
class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /** Predicted direction of the conditional branch at @p pc. */
    virtual bool predict(std::uint64_t pc) const = 0;

    /** Train with a resolved outcome. */
    virtual void update(std::uint64_t pc, bool taken) = 0;

    /** Scheme identity. */
    virtual PredictorKind kind() const = 0;
};

/**
 * gshare: a table of 2-bit counters indexed by (pc >> 2) XOR the
 * global branch-history register.
 */
class GsharePredictor : public DirectionPredictor
{
  public:
    /**
     * @param table_bits   log2 of the counter-table size
     * @param history_bits global history length (<= table_bits)
     * @param mem          memory resource for the counter table
     */
    explicit GsharePredictor(int table_bits = 12,
                             int history_bits = 12,
                             std::pmr::memory_resource *mem =
                                 std::pmr::get_default_resource());

    bool predict(std::uint64_t pc) const override;
    void update(std::uint64_t pc, bool taken) override;
    PredictorKind kind() const override { return PredictorKind::Gshare; }

    /** Current global history (testing hook). */
    std::uint64_t history() const { return history_; }

  private:
    std::size_t
    indexOf(std::uint64_t pc) const
    {
        return static_cast<std::size_t>(
            ((pc / kInstBytes) ^ history_) & table_mask_);
    }

    int table_bits_;
    int history_bits_;
    // Index masks precomputed at construction: the fetch walk
    // queries the predictor per delivered branch every cycle.
    std::uint64_t table_mask_;
    std::uint64_t history_mask_;
    std::uint64_t history_ = 0;
    std::pmr::vector<TwoBitCounter> table_; //!< flat 1-byte counters
};

/**
 * Two-level PAg: a per-address branch-history table feeding one
 * shared pattern table of 2-bit counters (Yeh & Patt).
 */
class TwoLevelPredictor : public DirectionPredictor
{
  public:
    /**
     * @param bht_bits     log2 of the per-address history table
     * @param history_bits per-branch history length
     * @param mem          memory resource for the two tables
     */
    explicit TwoLevelPredictor(int bht_bits = 10,
                               int history_bits = 10,
                               std::pmr::memory_resource *mem =
                                   std::pmr::get_default_resource());

    bool predict(std::uint64_t pc) const override;
    void update(std::uint64_t pc, bool taken) override;
    PredictorKind
    kind() const override
    {
        return PredictorKind::TwoLevel;
    }

  private:
    std::uint64_t
    historyOf(std::uint64_t pc) const
    {
        return bht_[static_cast<std::size_t>((pc / kInstBytes) &
                                             bht_mask_)];
    }

    int bht_bits_;
    int history_bits_;
    std::uint64_t bht_mask_;  //!< precomputed at construction
    std::uint64_t hist_mask_; //!< precomputed at construction
    std::pmr::vector<std::uint64_t> bht_;
    std::pmr::vector<TwoBitCounter> pattern_; //!< flat 1-byte
                                              //!< counters
};

/**
 * Factory for the standalone predictors (nullptr for BtbCounter).
 * @param mem memory resource for the predictor's tables; the
 *            predictor object itself stays on the heap (it is tiny
 *            and owned by unique_ptr).
 */
std::unique_ptr<DirectionPredictor> makeDirectionPredictor(
    PredictorKind kind, std::pmr::memory_resource *mem =
                            std::pmr::get_default_resource());

} // namespace fetchsim

#endif // FETCHSIM_BRANCH_DIRECTION_PREDICTOR_H_
