#include "branch/multi_branch_predictor.h"

#include <algorithm>

#include "isa/opcode.h"
#include "stats/log.h"

namespace fetchsim
{

MultiBranchPredictor::MultiBranchPredictor(
    int entries, int max_branches, std::pmr::memory_resource *mem)
    // counters start weakly not-taken
    : table_(static_cast<std::size_t>(entries), 1, mem),
      index_mask_(static_cast<std::uint64_t>(entries - 1)),
      max_branches_(max_branches)
{
    simAssert(entries > 0 && (entries & (entries - 1)) == 0,
              "mbp entries power of two");
    simAssert(max_branches > 0 && max_branches <= 32,
              "mbp vector width fits a word");
}

bool
MultiBranchPredictor::predictTaken(std::uint64_t pc) const
{
    return table_[indexOf(pc)] >= 2;
}

BranchVector
MultiBranchPredictor::predict(const DynInst *stream, int len,
                              int window) const
{
    BranchVector vec;
    const int scan = std::min(len, window);
    for (int i = 0; i < scan && vec.count < max_branches_; ++i) {
        const DynInst &di = stream[i];
        if (!di.isCondBranch())
            continue;
        if (predictTaken(di.pc))
            vec.bits |= 1u << vec.count;
        ++vec.count;
    }
    return vec;
}

void
MultiBranchPredictor::train(const DynInst &di)
{
    simAssert(di.isCondBranch(), "mbp trains conditional branches");
    std::uint8_t &counter = table_[indexOf(di.pc)];
    ++trained_;
    if ((counter >= 2) != di.taken)
        ++trained_wrong_;
    if (di.taken)
        counter = static_cast<std::uint8_t>(std::min(3, counter + 1));
    else
        counter = static_cast<std::uint8_t>(std::max(0, counter - 1));
}

} // namespace fetchsim
