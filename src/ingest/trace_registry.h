/**
 * @file
 * Registry of external traces usable as first-class benchmarks.
 *
 * An imported FSTR trace (ingest/champsim.h) has no WorkloadSpec --
 * its instruction stream is fixed on disk -- yet the driver layer
 * (Session, ExperimentPlan, checkpoints) keys everything by benchmark
 * name.  The registry bridges the two: registering a trace file under
 * a name makes the benchmark `external:<name>` valid everywhere a
 * suite benchmark is, with Session::run replaying the file through
 * the Processor instead of generating a CFG.
 *
 * Registration validates the file up front (header, version, record
 * count vs file size) through a TraceReader, so a corrupt file is
 * rejected with a structured SimException(Io) at registration time,
 * never mid-sweep.  The checkpoint content key for an external
 * benchmark uses the trace's FNV-1a content hash where a suite
 * benchmark contributes its workload seed, so a journal never
 * survives swapping the file behind a name.
 *
 * The registry is process-wide (the CLI registers `--external`
 * name=path pairs once, then plans reference them by name) and
 * thread-safe: lookups may race with sweeps, registration is
 * serialized.
 */

#ifndef FETCHSIM_INGEST_TRACE_REGISTRY_H_
#define FETCHSIM_INGEST_TRACE_REGISTRY_H_

#include <cstdint>
#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/error.h"

namespace fetchsim
{

/** The benchmark-name prefix selecting the external-trace namespace. */
constexpr const char kExternalPrefix[] = "external:";

/** True when @p benchmark names an external trace ("external:..."). */
bool isExternalBenchmark(const std::string &benchmark);

/** The registry name inside an "external:<name>" benchmark string. */
std::string externalTraceName(const std::string &benchmark);

/** One registered external trace. */
struct ExternalTraceInfo
{
    std::string name;          //!< registry name (no prefix)
    std::string path;          //!< FSTR file on disk
    std::uint64_t records = 0; //!< header record count
    std::uint64_t contentHash = 0; //!< header FNV-1a content hash
    std::uint32_t version = 0; //!< trace format version (1 or 2)

    /** The benchmark string referencing this trace. */
    std::string benchmark() const
    {
        return kExternalPrefix + name;
    }
};

/** Process-wide name -> trace-file map. */
class ExternalTraceRegistry
{
  public:
    /** The process-wide instance. */
    static ExternalTraceRegistry &instance();

    /**
     * Validate @p path and register it under @p name (replacing any
     * previous registration of that name).  Throws
     * SimException(Config) on a malformed name and SimException(Io)
     * when the file is missing, truncated or corrupt.
     */
    ExternalTraceInfo registerTrace(const std::string &name,
                                    const std::string &path);

    /** True when @p name is registered. */
    bool has(const std::string &name) const;

    /** The registration for @p name, or a Config error. */
    Expected<ExternalTraceInfo> find(const std::string &name) const;

    /** Every registration, in name order. */
    std::vector<ExternalTraceInfo> list() const;

    /** Drop one registration (tests); true when it existed. */
    bool unregister(const std::string &name);

    /** Drop every registration (tests). */
    void clear();

  private:
    ExternalTraceRegistry() = default;

    mutable std::shared_mutex mutex_;
    std::map<std::string, ExternalTraceInfo> traces_;
};

/**
 * Parse and register one `--external` CLI value: a comma-separated
 * list of NAME=PATH pairs.  Returns the registrations or the first
 * structured error.
 */
Expected<std::vector<ExternalTraceInfo>>
registerExternalTraces(const std::string &pairs);

} // namespace fetchsim

#endif // FETCHSIM_INGEST_TRACE_REGISTRY_H_
