#include "ingest/trace_registry.h"

#include <cstring>
#include <mutex>

#include "exec/trace_file.h"

namespace fetchsim
{

namespace
{

constexpr std::size_t kPrefixLen = sizeof(kExternalPrefix) - 1;

/** A registry name: non-empty, and safe inside benchmark strings,
 *  CLI lists and JSON (no separators or whitespace). */
Expected<bool>
validateName(const std::string &name)
{
    if (name.empty())
        return SimError{ErrorKind::Config,
                        "external trace name must not be empty", ""};
    for (char ch : name) {
        const bool ok = (ch >= 'a' && ch <= 'z') ||
                        (ch >= 'A' && ch <= 'Z') ||
                        (ch >= '0' && ch <= '9') || ch == '_' ||
                        ch == '-' || ch == '.';
        if (!ok)
            return SimError{
                ErrorKind::Config,
                "external trace name '" + name +
                    "' has forbidden characters (use [A-Za-z0-9._-])",
                ""};
    }
    return true;
}

} // anonymous namespace

bool
isExternalBenchmark(const std::string &benchmark)
{
    return benchmark.compare(0, kPrefixLen, kExternalPrefix) == 0;
}

std::string
externalTraceName(const std::string &benchmark)
{
    return isExternalBenchmark(benchmark)
               ? benchmark.substr(kPrefixLen)
               : benchmark;
}

ExternalTraceRegistry &
ExternalTraceRegistry::instance()
{
    static ExternalTraceRegistry registry;
    return registry;
}

ExternalTraceInfo
ExternalTraceRegistry::registerTrace(const std::string &name,
                                     const std::string &path)
{
    validateName(name).value();

    // Open the file once up front: the TraceReader constructor
    // validates magic, version, and the record count against the file
    // size, so a bad file fails registration with a structured Io
    // error instead of failing N sweep cells later.
    TraceReader reader(path);

    ExternalTraceInfo info;
    info.name = name;
    info.path = path;
    info.records = reader.count();
    info.contentHash = reader.contentHash();
    info.version = reader.version();

    std::unique_lock<std::shared_mutex> write(mutex_);
    traces_[name] = info;
    return info;
}

bool
ExternalTraceRegistry::has(const std::string &name) const
{
    std::shared_lock<std::shared_mutex> read(mutex_);
    return traces_.count(name) != 0;
}

Expected<ExternalTraceInfo>
ExternalTraceRegistry::find(const std::string &name) const
{
    std::shared_lock<std::shared_mutex> read(mutex_);
    auto it = traces_.find(name);
    if (it == traces_.end())
        return SimError{ErrorKind::Config,
                        "external trace '" + name +
                            "' is not registered (use --external "
                            "NAME=PATH)",
                        ""};
    return it->second;
}

std::vector<ExternalTraceInfo>
ExternalTraceRegistry::list() const
{
    std::shared_lock<std::shared_mutex> read(mutex_);
    std::vector<ExternalTraceInfo> out;
    out.reserve(traces_.size());
    for (const auto &[name, info] : traces_)
        out.push_back(info);
    return out;
}

bool
ExternalTraceRegistry::unregister(const std::string &name)
{
    std::unique_lock<std::shared_mutex> write(mutex_);
    return traces_.erase(name) != 0;
}

void
ExternalTraceRegistry::clear()
{
    std::unique_lock<std::shared_mutex> write(mutex_);
    traces_.clear();
}

Expected<std::vector<ExternalTraceInfo>>
registerExternalTraces(const std::string &pairs)
{
    std::vector<ExternalTraceInfo> registered;
    std::size_t pos = 0;
    while (pos <= pairs.size()) {
        std::size_t comma = pairs.find(',', pos);
        if (comma == std::string::npos)
            comma = pairs.size();
        const std::string pair = pairs.substr(pos, comma - pos);
        pos = comma + 1;
        if (pair.empty())
            continue;
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos || eq == 0 ||
            eq + 1 == pair.size()) {
            return SimError{ErrorKind::Config,
                            "bad --external entry '" + pair +
                                "' (expected NAME=PATH)",
                            ""};
        }
        try {
            registered.push_back(
                ExternalTraceRegistry::instance().registerTrace(
                    pair.substr(0, eq), pair.substr(eq + 1)));
        } catch (const SimException &e) {
            return e.error();
        }
    }
    if (registered.empty())
        return SimError{ErrorKind::Config,
                        "--external lists no NAME=PATH pairs", ""};
    return registered;
}

} // namespace fetchsim
