/**
 * @file
 * ChampSim trace importer: external traces -> FSTR v2 files.
 *
 * ChampSim's PIN tracer emits fixed 64-byte `input_instr` records
 * (ip, branch flags, register lists, memory operand lists).  The
 * importer converts such a trace into the FSTR v2 format the
 * TraceReader/TraceReplaySource substrate already replays
 * bit-deterministically, so an imported trace becomes a first-class
 * benchmark (`external:<name>`, ingest/trace_registry.h) next to the
 * synthetic suite.
 *
 * Parsing is fully defensive -- the input is untrusted:
 *  - every read is bounded by the fixed record size and a total
 *    record budget (ImportOptions::maxRecords);
 *  - file-level damage (missing, empty, truncated mid-record,
 *    over-budget in strict mode) throws SimException(Io);
 *  - record-level impossibilities (flag bytes outside {0,1}, a null
 *    instruction pointer, control flow contradicting the branch
 *    flags) throw SimException(Workload) in strict mode and are
 *    repaired-and-counted in lenient mode;
 *  - output goes through the hardened TraceWriter (tmp file + atomic
 *    rename), so a failed import never leaves a partial FSTR file.
 *
 * Field mapping (docs/TRACES.md has the full table): x86 byte-granular
 * ips are canonicalized to fetchsim's pc = base + rank * kInstBytes by
 * the rank of each distinct ip; branches are classified from the
 * architectural registers they touch (stack pointer, instruction
 * pointer, flags -- exactly ChampSim's own consumer-side rules);
 * taken/target come from the actual next record's ip, which is the
 * ground truth the simulator predicts against.
 *
 * Every import writes a JSON manifest next to the output carrying the
 * FNV-1a content hash, record counts and the per-category repair
 * tally, so a trace's provenance survives the file changing hands.
 */

#ifndef FETCHSIM_INGEST_CHAMPSIM_H_
#define FETCHSIM_INGEST_CHAMPSIM_H_

#include <cstdint>
#include <string>

#include "core/error.h"

namespace fetchsim
{

/** Source formats the importer understands. */
enum class ImportFormat : std::uint8_t
{
    ChampSim = 0, //!< 64-byte input_instr records (PIN tracer)
};

/** Parse an `--format` value ("champsim"). */
Expected<ImportFormat> parseImportFormat(const std::string &name);

/** What to do with a malformed-but-repairable record. */
enum class RepairPolicy : std::uint8_t
{
    Strict = 0, //!< reject: throw SimException(Workload)
    Lenient,    //!< repair, count it, continue
};

/** Options for one import. */
struct ImportOptions
{
    ImportFormat format = ImportFormat::ChampSim;
    RepairPolicy repair = RepairPolicy::Strict;

    /**
     * Upper bound on imported records.  A longer trace is an error in
     * strict mode and truncated (counted) in lenient mode, so a
     * hostile length can never balloon memory.
     */
    std::uint64_t maxRecords = 5'000'000;

    /** Manifest path; empty = `<output>.manifest.json`. */
    std::string manifestPath;
};

/** Per-category repair tally (all zero under a clean strict import). */
struct ImportRepairs
{
    std::uint64_t flagBytes = 0;  //!< flag byte outside {0,1}
    std::uint64_t nullIp = 0;     //!< record with ip == 0 dropped
    std::uint64_t takenFlags = 0; //!< taken flag contradicted flow
    std::uint64_t discontinuities = 0; //!< unannotated flow break
                                       //!< converted to a jump
    std::uint64_t reclassified = 0; //!< "unconditional" that fell
                                    //!< through, demoted to CondBranch
    std::uint64_t truncatedInput = 0; //!< input records past
                                      //!< maxRecords, not imported
    std::uint64_t partialTail = 0; //!< trailing bytes short of one
                                   //!< record, ignored
    std::uint64_t droppedTail = 0; //!< final taken branch with no
                                   //!< successor to name its target

    std::uint64_t total() const
    {
        return flagBytes + nullIp + takenFlags + discontinuities +
               reclassified + truncatedInput + partialTail +
               droppedTail;
    }
};

/** What one import did. */
struct ImportStats
{
    std::uint64_t recordsIn = 0;  //!< source records parsed
    std::uint64_t recordsOut = 0; //!< FSTR records written
    std::uint64_t contentHash = 0; //!< FNV-1a hash of the output
    ImportRepairs repairs;
    std::string outputPath;
    std::string manifestPath;
};

/**
 * Import @p input into an FSTR v2 trace at @p output and write the
 * manifest.  Throws SimException(Io) on file-level damage and
 * SimException(Workload) on record-level damage under
 * RepairPolicy::Strict; on any throw, neither the output file nor
 * its temporary exists.
 */
ImportStats importTrace(const std::string &input,
                        const std::string &output,
                        const ImportOptions &options);

/** Render @p stats as the manifest JSON document (single line). */
std::string importManifestJson(const std::string &input,
                               const ImportOptions &options,
                               const ImportStats &stats);

} // namespace fetchsim

#endif // FETCHSIM_INGEST_CHAMPSIM_H_
