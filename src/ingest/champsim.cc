#include "ingest/champsim.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <vector>

#include "exec/dyn_inst.h"
#include "exec/trace_file.h"
#include "isa/opcode.h"

namespace fetchsim
{

namespace
{

/** ChampSim's architectural register numbers (x86, PIN encoding). */
constexpr std::uint8_t kChampSimRegSp = 6;    // REG_STACK_POINTER
constexpr std::uint8_t kChampSimRegFlags = 25; // REG_FLAGS
constexpr std::uint8_t kChampSimRegIp = 26;   // REG_INSTRUCTION_POINTER

constexpr int kChampSimNumDestRegs = 2;
constexpr int kChampSimNumSrcRegs = 4;
constexpr int kChampSimNumDestMem = 2;
constexpr int kChampSimNumSrcMem = 4;

/** ChampSim's on-disk input_instr record (64 bytes, little-endian). */
struct ChampSimRecord
{
    std::uint64_t ip;
    std::uint8_t isBranch;
    std::uint8_t branchTaken;
    std::uint8_t destRegs[kChampSimNumDestRegs];
    std::uint8_t srcRegs[kChampSimNumSrcRegs];
    std::uint64_t destMem[kChampSimNumDestMem];
    std::uint64_t srcMem[kChampSimNumSrcMem];
};
static_assert(sizeof(ChampSimRecord) == 64,
              "stable ChampSim record size");

/** Canonical pc of the rank-0 imported instruction. */
constexpr std::uint64_t kImportPcBase = 0x1000;

[[noreturn]] void
throwIo(const std::string &message, const std::string &path)
{
    throw SimException(ErrorKind::Io, message, "trace=" + path);
}

[[noreturn]] void
throwRecord(const std::string &message, const std::string &path,
            std::uint64_t index)
{
    throw SimException(ErrorKind::Workload, message,
                       "trace=" + path +
                           " record=" + std::to_string(index));
}

/** fopen with guaranteed fclose on every exit path. */
class FileGuard
{
  public:
    FileGuard(const std::string &path, const char *mode)
        : file_(std::fopen(path.c_str(), mode))
    {
    }
    ~FileGuard()
    {
        if (file_)
            std::fclose(file_);
    }
    FileGuard(const FileGuard &) = delete;
    FileGuard &operator=(const FileGuard &) = delete;

    std::FILE *get() const { return file_; }

  private:
    std::FILE *file_;
};

bool
regListHas(const std::uint8_t *regs, int n, std::uint8_t want)
{
    for (int i = 0; i < n; ++i)
        if (regs[i] == want)
            return true;
    return false;
}

bool
memListNonZero(const std::uint64_t *mem, int n)
{
    for (int i = 0; i < n; ++i)
        if (mem[i] != 0)
            return true;
    return false;
}

/** Map a ChampSim register number into fetchsim's integer file. */
std::uint8_t
mapRegister(std::uint8_t reg)
{
    if (reg == 0)
        return 0; // r0 is the hardwired zero in both worlds
    return static_cast<std::uint8_t>(1 + (reg - 1) % (kNumIntRegs - 1));
}

/**
 * Classify a branch record from the registers it touches, following
 * ChampSim's own consumer-side rules (SNIPPETS-documented): flags in
 * the sources = conditional; stack-pointer read+write = call when the
 * instruction pointer is also read, return when not; anything else is
 * an unconditional jump.
 */
OpClass
classifyBranch(const ChampSimRecord &record)
{
    const bool reads_sp =
        regListHas(record.srcRegs, kChampSimNumSrcRegs,
                   kChampSimRegSp);
    const bool reads_ip =
        regListHas(record.srcRegs, kChampSimNumSrcRegs,
                   kChampSimRegIp);
    const bool reads_flags =
        regListHas(record.srcRegs, kChampSimNumSrcRegs,
                   kChampSimRegFlags);
    const bool writes_sp =
        regListHas(record.destRegs, kChampSimNumDestRegs,
                   kChampSimRegSp);
    if (reads_flags)
        return OpClass::CondBranch;
    if (reads_sp && writes_sp)
        return reads_ip ? OpClass::Call : OpClass::Return;
    return OpClass::Jump;
}

OpClass
classifyPlain(const ChampSimRecord &record)
{
    if (memListNonZero(record.srcMem, kChampSimNumSrcMem))
        return OpClass::Load;
    if (memListNonZero(record.destMem, kChampSimNumDestMem))
        return OpClass::Store;
    return OpClass::IntAlu;
}

/**
 * Read, bound and sanitize the raw records.  File-level problems are
 * Io; per-record impossibilities are Workload in strict mode and
 * repaired-and-counted in lenient mode.
 */
std::vector<ChampSimRecord>
readChampSimRecords(const std::string &input,
                    const ImportOptions &options, ImportStats &stats)
{
    const bool lenient = options.repair == RepairPolicy::Lenient;

    FileGuard file(input, "rb");
    if (!file.get())
        throwIo("import: cannot open " + input, input);
    if (std::fseek(file.get(), 0, SEEK_END) != 0)
        throwIo("import: cannot size " + input, input);
    const long file_size = std::ftell(file.get());
    if (file_size < 0 || std::fseek(file.get(), 0, SEEK_SET) != 0)
        throwIo("import: cannot size " + input, input);
    if (file_size == 0)
        throwIo("import: empty trace file", input);

    const std::uint64_t total =
        static_cast<std::uint64_t>(file_size) / sizeof(ChampSimRecord);
    const std::uint64_t tail_bytes =
        static_cast<std::uint64_t>(file_size) % sizeof(ChampSimRecord);
    if (total == 0)
        throwIo("import: no complete record (file shorter than one "
                "64-byte ChampSim record)",
                input);
    if (tail_bytes != 0) {
        if (!lenient)
            throwIo("import: file size is not a multiple of the "
                    "64-byte record (truncated mid-record; --lenient "
                    "drops the tail)",
                    input);
        stats.repairs.partialTail = tail_bytes;
    }
    std::uint64_t want = total;
    if (want > options.maxRecords) {
        if (!lenient)
            throwIo("import: trace holds " + std::to_string(total) +
                        " records, over the --max-insts bound of " +
                        std::to_string(options.maxRecords) +
                        " (--lenient truncates)",
                    input);
        stats.repairs.truncatedInput = total - options.maxRecords;
        want = options.maxRecords;
    }

    std::vector<ChampSimRecord> records;
    records.reserve(want);
    for (std::uint64_t i = 0; i < want; ++i) {
        ChampSimRecord record{};
        if (std::fread(&record, sizeof(record), 1, file.get()) != 1)
            throwIo("import: short read at record " +
                        std::to_string(i),
                    input);
        ++stats.recordsIn;

        // Flag bytes must be 0 or 1; anything else is bit damage.
        if (record.isBranch > 1 || record.branchTaken > 1) {
            if (!lenient)
                throwRecord("import: impossible flag byte (is_branch="
                                + std::to_string(record.isBranch) +
                                " taken=" +
                                std::to_string(record.branchTaken) +
                                ")",
                            input, i);
            record.isBranch = record.isBranch ? 1 : 0;
            record.branchTaken = record.branchTaken ? 1 : 0;
            ++stats.repairs.flagBytes;
        }
        // A taken flag on a non-branch contradicts itself.
        if (!record.isBranch && record.branchTaken) {
            if (!lenient)
                throwRecord("import: taken flag set on a non-branch",
                            input, i);
            record.branchTaken = 0;
            ++stats.repairs.flagBytes;
        }
        // ip 0 is not a fetchable address.
        if (record.ip == 0) {
            if (!lenient)
                throwRecord("import: record with null instruction "
                            "pointer",
                            input, i);
            ++stats.repairs.nullIp;
            continue;
        }
        records.push_back(record);
    }
    return records;
}

/**
 * Canonical pc per distinct source ip: sort the distinct ips and
 * place rank k at kImportPcBase + k * kInstBytes.  Order-preserving,
 * so "the next sequential x86 instruction" maps to "pc + 4" for
 * straight-line code and every control transfer stays a transfer.
 */
std::vector<std::uint64_t>
canonicalPcs(const std::vector<ChampSimRecord> &records)
{
    std::vector<std::uint64_t> ips;
    ips.reserve(records.size());
    for (const ChampSimRecord &record : records)
        ips.push_back(record.ip);
    std::sort(ips.begin(), ips.end());
    ips.erase(std::unique(ips.begin(), ips.end()), ips.end());

    std::vector<std::uint64_t> pcs;
    pcs.reserve(records.size());
    for (const ChampSimRecord &record : records) {
        const std::uint64_t rank = static_cast<std::uint64_t>(
            std::lower_bound(ips.begin(), ips.end(), record.ip) -
            ips.begin());
        pcs.push_back(kImportPcBase + rank * kInstBytes);
    }
    return pcs;
}

} // anonymous namespace

Expected<ImportFormat>
parseImportFormat(const std::string &name)
{
    if (name == "champsim")
        return ImportFormat::ChampSim;
    return SimError{ErrorKind::Config,
                    "unknown import format: " + name + " (champsim)",
                    ""};
}

std::string
importManifestJson(const std::string &input,
                   const ImportOptions &options,
                   const ImportStats &stats)
{
    std::ostringstream os;
    os << "{\"schema\":\"fetchsim-import-v1\""
       << ",\"source\":\"" << input << "\""
       << ",\"format\":\"champsim\""
       << ",\"policy\":\""
       << (options.repair == RepairPolicy::Lenient ? "lenient"
                                                   : "strict")
       << "\""
       << ",\"records_in\":" << stats.recordsIn
       << ",\"records_out\":" << stats.recordsOut
       << ",\"fstr_version\":" << kTraceVersion
       << ",\"content_hash\":\"";
    // Hash in the 16-hex-digit form runKeyHex/reports use.
    static const char *digits = "0123456789abcdef";
    for (int shift = 60; shift >= 0; shift -= 4)
        os << digits[(stats.contentHash >> shift) & 0xf];
    os << "\""
       << ",\"repairs\":{"
       << "\"flag_bytes\":" << stats.repairs.flagBytes
       << ",\"null_ip\":" << stats.repairs.nullIp
       << ",\"taken_flags\":" << stats.repairs.takenFlags
       << ",\"discontinuities\":" << stats.repairs.discontinuities
       << ",\"reclassified\":" << stats.repairs.reclassified
       << ",\"truncated_input\":" << stats.repairs.truncatedInput
       << ",\"partial_tail_bytes\":" << stats.repairs.partialTail
       << ",\"dropped_tail\":" << stats.repairs.droppedTail
       << ",\"total\":" << stats.repairs.total() << "}}";
    return os.str();
}

ImportStats
importTrace(const std::string &input, const std::string &output,
            const ImportOptions &options)
{
    const bool lenient = options.repair == RepairPolicy::Lenient;
    ImportStats stats;
    stats.outputPath = output;
    stats.manifestPath = options.manifestPath.empty()
                             ? output + ".manifest.json"
                             : options.manifestPath;

    const std::vector<ChampSimRecord> records =
        readChampSimRecords(input, options, stats);
    if (records.empty())
        throwIo("import: no usable records after repair", input);
    const std::vector<std::uint64_t> pcs = canonicalPcs(records);

    // Convert and write.  The TraceWriter publishes atomically on
    // close() and discards its temporary if we throw, so a failed
    // import never leaves output (partial or otherwise) behind.
    TraceWriter writer(output);
    for (std::size_t i = 0; i < records.size(); ++i) {
        const ChampSimRecord &record = records[i];
        const std::uint64_t pc = pcs[i];
        const bool have_next = i + 1 < records.size();
        const std::uint64_t next_pc = have_next ? pcs[i + 1] : 0;

        DynInst di;
        di.pc = pc;
        di.seq = writer.count();
        di.si.dest = mapRegister(record.destRegs[0]);
        di.si.src1 = mapRegister(record.srcRegs[0]);
        di.si.src2 = mapRegister(record.srcRegs[1]);

        if (!record.isBranch) {
            di.si.op = classifyPlain(record);
            // The one thing a non-branch cannot do is move control:
            // a flow break here means a branch lost its annotation.
            if (have_next && next_pc != pc + kInstBytes) {
                if (!lenient)
                    throwRecord(
                        "import: control-flow discontinuity on a "
                        "non-branch record (--lenient converts it "
                        "to a jump)",
                        input, i);
                di.si.op = OpClass::Jump;
                di.taken = true;
                di.actualTarget = next_pc;
                ++stats.repairs.discontinuities;
            }
            writer.append(di);
            continue;
        }

        OpClass op = classifyBranch(record);
        const bool flagged_taken = record.branchTaken != 0;
        if (op == OpClass::CondBranch) {
            if (!have_next) {
                if (flagged_taken) {
                    // Target unknowable: the successor record that
                    // would name it was never captured.
                    ++stats.repairs.droppedTail;
                    continue;
                }
                di.si.op = op;
                writer.append(di);
                continue;
            }
            const bool flow_taken = next_pc != pc + kInstBytes;
            if (flow_taken != flagged_taken) {
                if (!lenient)
                    throwRecord("import: taken flag contradicts the "
                                "actual control flow",
                                input, i);
                ++stats.repairs.takenFlags;
            }
            // The flow is ground truth -- it is what the simulator
            // will predict against.
            di.si.op = op;
            di.taken = flow_taken;
            di.actualTarget = flow_taken ? next_pc : 0;
            writer.append(di);
            continue;
        }

        // Unconditional (jump/call/return): always taken, target is
        // wherever execution actually went next.
        if (!have_next) {
            ++stats.repairs.droppedTail;
            continue;
        }
        if (!flagged_taken) {
            // An untaken "unconditional" means the register-based
            // classification was wrong; a conditional that fell
            // through explains the record completely.
            if (!lenient)
                throwRecord("import: unconditional branch flagged "
                            "not-taken",
                            input, i);
            ++stats.repairs.reclassified;
            di.si.op = OpClass::CondBranch;
            di.taken = next_pc != pc + kInstBytes;
            di.actualTarget = di.taken ? next_pc : 0;
            writer.append(di);
            continue;
        }
        di.si.op = op;
        di.taken = true;
        di.actualTarget = next_pc;
        writer.append(di);
    }

    if (writer.count() == 0)
        throwIo("import: no records survived conversion", input);
    stats.recordsOut = writer.count();
    stats.contentHash = writer.contentHash();
    writer.close();

    // Manifest: written only after the trace published; a manifest
    // failure removes the trace again so the pair is all-or-nothing.
    const std::string manifest =
        importManifestJson(input, options, stats) + "\n";
    FileGuard mf(stats.manifestPath, "wb");
    if (!mf.get() ||
        std::fwrite(manifest.data(), 1, manifest.size(), mf.get()) !=
            manifest.size()) {
        std::remove(output.c_str());
        std::remove(stats.manifestPath.c_str());
        throwIo("import: cannot write manifest " + stats.manifestPath,
                input);
    }
    return stats;
}

} // namespace fetchsim
