/**
 * @file
 * Register state: rename table, Messy file, Future file.
 *
 * The paper's microarchitecture keeps two register files: the Messy
 * file holds out-of-order (speculatively completed) values, while the
 * Future file holds the precise architectural state maintained by the
 * reorder buffer.  Renaming is tag-based (Tomasulo): the rename table
 * maps each architectural register to the sequence number of its
 * in-flight producer, or to "ready" when the latest value has
 * completed into the Messy file.
 */

#ifndef FETCHSIM_CORE_REGISTER_STATE_H_
#define FETCHSIM_CORE_REGISTER_STATE_H_

#include <array>
#include <cstdint>

#include "isa/opcode.h"

namespace fetchsim
{

/**
 * Rename table plus Messy/Future register files.
 */
class RegisterState
{
  public:
    /** Tag value meaning "no in-flight producer". */
    static constexpr std::int64_t kReady = -1;

    RegisterState()
    {
        rename_.fill(kReady);
        messy_.fill(0);
        future_.fill(0);
    }

    /**
     * Sequence number of the in-flight producer of @p reg, or kReady.
     * r0 is hard-wired zero and never has a producer.
     */
    std::int64_t
    producerOf(std::uint8_t reg) const
    {
        return reg == kZeroReg ? kReady : rename_[reg];
    }

    /** Record @p seq as the newest producer of @p reg. */
    void
    setProducer(std::uint8_t reg, std::int64_t seq)
    {
        if (reg != kZeroReg)
            rename_[reg] = seq;
    }

    /** A producer completed: write the Messy (speculative) file. */
    void
    complete(std::uint8_t reg, std::uint64_t value)
    {
        if (reg != kZeroReg)
            messy_[reg] = value;
    }

    /**
     * A producer retired: commit to the Future (precise) file and
     * clear the rename entry if it still names this producer.
     */
    void
    retire(std::uint8_t reg, std::uint64_t value, std::int64_t seq)
    {
        if (reg == kZeroReg)
            return;
        future_[reg] = value;
        if (rename_[reg] == seq)
            rename_[reg] = kReady;
    }

    /** Read the speculative (Messy) value of @p reg. */
    std::uint64_t
    readMessy(std::uint8_t reg) const
    {
        return reg == kZeroReg ? 0 : messy_[reg];
    }

    /** Read the precise (Future) value of @p reg. */
    std::uint64_t
    readFuture(std::uint8_t reg) const
    {
        return reg == kZeroReg ? 0 : future_[reg];
    }

    /** True if no register has an in-flight producer. */
    bool
    allReady() const
    {
        for (std::int64_t tag : rename_)
            if (tag != kReady)
                return false;
        return true;
    }

  private:
    std::array<std::int64_t, kNumArchRegs> rename_;
    std::array<std::uint64_t, kNumArchRegs> messy_;
    std::array<std::uint64_t, kNumArchRegs> future_;
};

/**
 * Deterministic "ALU" used to give the dataflow real values (tests
 * check Messy/Future coherence through it).
 */
std::uint64_t computeValue(OpClass op, std::uint64_t v1,
                           std::uint64_t v2, std::int32_t imm,
                           std::uint64_t pc);

} // namespace fetchsim

#endif // FETCHSIM_CORE_REGISTER_STATE_H_
