#include "core/processor.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <optional>
#include <type_traits>

#include "core/error.h"
#include "perf/profiler.h"
#include "stats/log.h"

namespace fetchsim
{

static_assert(std::is_trivially_copyable_v<DynInst>,
              "stream compaction memmoves DynInsts");

namespace
{

constexpr std::uint64_t kNeverResume =
    std::numeric_limits<std::uint64_t>::max();

/** "bank-conflict" -> "bank_conflict" (metric-path segment). */
std::string
metricSegment(const char *name)
{
    std::string seg(name);
    for (char &c : seg)
        if (c == '-')
            c = '_';
    return seg;
}

} // anonymous namespace

Processor::Processor(const Workload &workload, int input,
                     const MachineConfig &cfg,
                     std::unique_ptr<FetchMechanism> fetch,
                     std::pmr::memory_resource *mem)
    : cfg_(cfg),
      own_exec_(std::make_unique<Executor>(workload, input, mem)),
      source_(own_exec_.get()), fetch_(std::move(fetch)),
      predictor_(cfg.btbEntries, cfg.instsPerBlock(),
                 PredictorConfig{cfg.predictorKind, cfg.useRas,
                                 cfg.rasDepth},
                 mem),
      icache_(cfg.icacheBytes, cfg.blockBytes, cfg.icacheBanks,
              cfg.icacheWays, mem),
      stream_(mem), rob_ring_(mem), ring_slots_(mem)
{
    simAssert(fetch_ != nullptr, "fetch mechanism supplied");
    initBuffers();
}

Processor::Processor(InstSource &source, const MachineConfig &cfg,
                     std::unique_ptr<FetchMechanism> fetch,
                     std::pmr::memory_resource *mem)
    : cfg_(cfg), source_(&source), fetch_(std::move(fetch)),
      predictor_(cfg.btbEntries, cfg.instsPerBlock(),
                 PredictorConfig{cfg.predictorKind, cfg.useRas,
                                 cfg.rasDepth},
                 mem),
      icache_(cfg.icacheBytes, cfg.blockBytes, cfg.icacheBanks,
              cfg.icacheWays, mem),
      stream_(mem), rob_ring_(mem), ring_slots_(mem)
{
    simAssert(fetch_ != nullptr, "fetch mechanism supplied");
    initBuffers();
}

void
Processor::initBuffers()
{
    // All hot-loop storage is sized here, once: the cycle loop never
    // touches the allocator afterwards (asserted by
    // test_byte_identity's operator-new hook).
    std::size_t cap = 1;
    while (cap < static_cast<std::size_t>(cfg_.robSize))
        cap <<= 1;
    rob_ring_.resize(cap);
    rob_mask_ = cap - 1;

    ring_stride_ = static_cast<std::size_t>(cfg_.robSize);
    ring_slots_.resize(static_cast<std::size_t>(kRingSize) *
                       ring_stride_);

    stream_want_ = static_cast<std::size_t>(cfg_.issueRate) * 4;
    stream_.resize(stream_want_ * 2);
}

void
Processor::attachMetrics(MetricRegistry &registry)
{
    m_cycles_delivering_ = &registry.counter(
        "fetch.cycles.delivering",
        "cycles a non-empty fetch group was dispatched");
    m_cycles_stalled_penalty_ = &registry.counter(
        "fetch.cycles.stalled_penalty",
        "cycles fetch sat out a misprediction/redirect/refill "
        "penalty");
    m_cycles_stalled_empty_ = &registry.counter(
        "fetch.cycles.stalled_empty",
        "cycles a group formation attempt delivered nothing");
    m_collapse_events_ = &registry.counter(
        "fetch.collapse_events",
        "intra-block taken branches collapsed inside fetch groups");
    for (int i = 0; i < kNumFetchStops; ++i) {
        m_stop_[static_cast<std::size_t>(i)] = &registry.counter(
            "fetch.stop." +
                metricSegment(fetchStopName(static_cast<FetchStop>(i))),
            "fetch groups terminated by this reason");
    }
    m_group_size_ = &registry.histogram(
        "fetch.group_size", {0, 1, 2, 4, 6, 8, 12, 16},
        "instructions delivered per group-formation attempt");
    m_run_length_ = &registry.histogram(
        "fetch.run_length", {1, 2, 4, 8, 16, 32, 64, 128},
        "retired instructions between taken control transfers");
    m_branch_distance_ = &registry.histogram(
        "fetch.branch_distance_bytes",
        {4, 8, 16, 32, 64, 128, 256, 1024, 4096, 65536},
        "|target - pc| of retired taken control transfers");
    icache_.attachMetrics(registry);
    predictor_.attachMetrics(registry);
    fetch_->attachMetrics(registry);
}

void
Processor::attachTrace(TraceSink &sink)
{
    trace_ = &sink;
}

void
Processor::refillStream()
{
    const std::size_t want = stream_want_;
    // Compact consumed prefix once it dominates the buffer: the live
    // window slides back to the slab's start, so the slab (sized
    // 2x want in initBuffers) never grows.
    if (stream_head_ > want) {
        const std::size_t live = stream_len_ - stream_head_;
        std::memmove(stream_.data(), stream_.data() + stream_head_,
                     live * sizeof(DynInst));
        stream_head_ = 0;
        stream_len_ = live;
    }
    // One batch kernel call per refill instead of one virtual next()
    // per instruction (the replay fast path materializes straight
    // from the SoA columns).
    while (stream_len_ - stream_head_ < want) {
        const std::size_t got = source_->fill(
            stream_.data() + stream_len_,
            want - (stream_len_ - stream_head_));
        if (got == 0)
            break;
        stream_len_ += got;
    }
}

void
Processor::doComplete()
{
    const std::size_t slot = cycle_ % kRingSize;
    const std::uint32_t pending = ring_count_[slot];
    if (pending == 0)
        return;

    std::uint64_t *bucket = ring_slots_.data() + slot * ring_stride_;
    const auto buses = static_cast<std::uint32_t>(cfg_.totalUnits());
    const std::uint32_t broadcast = std::min(pending, buses);
    for (std::uint32_t i = 0; i < broadcast; ++i) {
        const std::uint64_t seq = bucket[i];
        InFlight &entry = entryOf(static_cast<std::int64_t>(seq));
        entry.completed = true;
        entry.completeCycle = cycle_;
        if (entry.di.si.writesRegister()) {
            regs_.complete(entry.di.si.dest, entry.value);
        }
        // Control instructions resolve here (branch-unit writeback).
        if (entry.di.isControl()) {
            predictor_.onResolve(entry.di);
            if (entry.di.isCondBranch())
                --unresolved_cond_;
            if (entry.flaggedMispredict) {
                ++counters_.controlMispredicts;
                if (entry.di.isCondBranch())
                    ++counters_.mispredicts;
                if (blocked_on_seq_ ==
                    static_cast<std::int64_t>(seq)) {
                    blocked_on_seq_ = -1;
                    fetch_resume_cycle_ =
                        cycle_ + static_cast<std::uint64_t>(
                                     fetch_->mispredictPenalty());
                }
            }
        }
    }
    ring_count_[slot] = 0;
    if (pending > broadcast) {
        // Result-bus contention: the overflow retries next cycle,
        // ahead of (and in order before) anything already scheduled
        // there.
        const std::uint32_t deferred = pending - broadcast;
        const std::size_t next_slot = (cycle_ + 1) % kRingSize;
        std::uint64_t *next =
            ring_slots_.data() + next_slot * ring_stride_;
        simAssert(ring_count_[next_slot] + deferred <= ring_stride_,
                  "completion bucket within stride");
        std::memmove(next + deferred, next,
                     ring_count_[next_slot] * sizeof(std::uint64_t));
        std::memcpy(next, bucket + broadcast,
                    deferred * sizeof(std::uint64_t));
        ring_count_[next_slot] += deferred;
    }
}

void
Processor::doRetire()
{
    int retired = 0;
    while (retired < cfg_.issueRate && rob_count_ > 0 &&
           rob_ring_[rob_base_seq_ & rob_mask_].completed) {
        InFlight &head = rob_ring_[rob_base_seq_ & rob_mask_];
        if (head.di.si.writesRegister()) {
            regs_.retire(head.di.si.dest, head.value,
                         static_cast<std::int64_t>(head.di.seq));
        }
        if (head.di.si.op == OpClass::Store)
            --store_buffer_occ_;
        if (head.di.si.op == OpClass::Nop)
            ++counters_.nopsRetired;
        if (head.di.isCondBranch())
            ++counters_.condBranches;
        if (head.di.isControl() && head.di.taken) {
            ++counters_.takenBranches;
            const std::uint64_t mask = ~(cfg_.blockBytes - 1);
            if ((head.di.pc & mask) == (head.di.actualTarget & mask))
                ++counters_.intraBlockTaken;
        }
        if (m_run_length_) {
            ++run_length_;
            if (head.di.isControl() && head.di.taken) {
                m_run_length_->record(run_length_);
                run_length_ = 0;
                const std::uint64_t distance =
                    head.di.actualTarget > head.di.pc
                        ? head.di.actualTarget - head.di.pc
                        : head.di.pc - head.di.actualTarget;
                m_branch_distance_->record(distance);
            }
        }
        ++counters_.retired;
        ++retired;
        ++rob_base_seq_;
        --rob_count_;
    }
}

void
Processor::doFire()
{
    // Per-cycle functional-unit quotas (units are fully pipelined).
    std::array<int, kNumUnitKinds> quota{};
    quota[static_cast<int>(UnitKind::Fxu)] = cfg_.fxuCount;
    quota[static_cast<int>(UnitKind::Fpu)] = cfg_.fpuCount;
    quota[static_cast<int>(UnitKind::BranchUnit)] = cfg_.branchCount;
    quota[static_cast<int>(UnitKind::LoadUnit)] = cfg_.loadCount;
    quota[static_cast<int>(UnitKind::StorePort)] =
        cfg_.storeBufferSize - store_buffer_occ_;

    int window_left = window_occ_;
    const std::uint64_t end_seq = rob_base_seq_ + rob_count_;
    for (std::uint64_t seq = rob_base_seq_;
         seq < end_seq && window_left > 0; ++seq) {
        InFlight &entry = rob_ring_[seq & rob_mask_];
        if (!entry.inWindow)
            continue;
        --window_left;
        if (entry.dispatchCycle >= cycle_)
            continue; // dispatched this very cycle; fires next
        if (!sourceReady(entry.srcTag1) ||
            !sourceReady(entry.srcTag2))
            continue;
        const UnitKind kind = unitFor(entry.di.si.op);
        int &slots = quota[static_cast<int>(kind)];
        if (slots <= 0)
            continue;
        --slots;
        if (entry.di.si.op == OpClass::Store)
            ++store_buffer_occ_;

        const std::uint64_t v1 =
            sourceValue(entry.srcTag1, entry.di.si.src1);
        const std::uint64_t v2 =
            sourceValue(entry.srcTag2, entry.di.si.src2);
        entry.value = computeValue(entry.di.si.op, v1, v2,
                                   entry.di.si.imm, entry.di.pc);
        entry.fired = true;
        entry.fireCycle = cycle_;
        entry.inWindow = false;
        --window_occ_;

        const int latency = latencyOf(entry.di.si.op);
        const std::size_t slot =
            (cycle_ + static_cast<std::uint64_t>(latency)) %
            kRingSize;
        simAssert(ring_count_[slot] < ring_stride_,
                  "completion bucket within stride");
        ring_slots_[slot * ring_stride_ + ring_count_[slot]++] =
            entry.di.seq;
    }
}

void
Processor::doFetch()
{
    if (cycle_ < fetch_resume_cycle_) {
        ++counters_.stallCycles;
        if (m_cycles_stalled_penalty_)
            m_cycles_stalled_penalty_->inc();
        return;
    }
    refillStream();

    FetchContext ctx;
    ctx.stream = stream_.data() + stream_head_;
    ctx.streamLen =
        static_cast<int>(stream_len_ - stream_head_);
    ctx.predictor = &predictor_;
    ctx.icache = &icache_;
    ctx.cfg = &cfg_;
    ctx.specHeadroom = cfg_.specDepth - unresolved_cond_;
    ctx.windowSpace =
        std::min(cfg_.windowSize - window_occ_,
                 cfg_.robSize - static_cast<int>(rob_count_));

    // Sampled host-profiler slice around the fetch step: timing one
    // call in 64 keeps the enabled-mode overhead of this per-cycle
    // path inside the telemetry budget (DESIGN.md section 11) while
    // still producing representative "fetch.<scheme>" slices.
    if (Profiler::enabled() && perf_fetch_label_.empty())
        perf_fetch_label_ = std::string("fetch.") + fetch_->name();
    FetchOutcome outcome;
    {
        PerfSampledScope fetch_scope(perf_fetch_label_.c_str(), 64,
                                     perf_fetch_sample_);
        outcome = fetch_->formGroup(ctx);
    }
    counters_.noteStop(outcome.stop);

    if (m_cycles_delivering_) {
        m_stop_[static_cast<std::size_t>(outcome.stop)]->inc();
        m_group_size_->record(
            static_cast<std::uint64_t>(outcome.delivered));
        if (outcome.collapsed > 0)
            m_collapse_events_->inc(
                static_cast<std::uint64_t>(outcome.collapsed));
        if (outcome.delivered > 0)
            m_cycles_delivering_->inc();
        else
            m_cycles_stalled_empty_->inc();
    }
    if (trace_) {
        trace_->begin("fetch", cycle_);
        trace_->field("pc", ctx.streamLen > 0 ? ctx.stream[0].pc : 0)
            .field("delivered", outcome.delivered)
            .field("stop", fetchStopName(outcome.stop))
            .field("collapsed", outcome.collapsed)
            .field("mispredict", outcome.mispredict)
            .field("redirect", outcome.decodeRedirect)
            .field("stall_after", outcome.stallAfter);
        trace_->end();
    }

    // Dispatch the delivered group into the window + ROB.
    for (int i = 0; i < outcome.delivered; ++i) {
        const DynInst &di = stream_[stream_head_ + i];
        simAssert(di.seq == rob_base_seq_ + rob_count_,
                  "dispatch in sequence order");
        InFlight &entry = rob_ring_[di.seq & rob_mask_];
        entry = InFlight{};
        entry.di = di;
        entry.dispatchCycle = cycle_;
        // Rename sources before binding the destination so an
        // instruction reading its own output register sees the
        // previous producer.
        entry.srcTag1 = regs_.producerOf(di.si.src1);
        entry.srcTag2 = regs_.producerOf(di.si.src2);
        if (di.si.writesRegister()) {
            regs_.setProducer(di.si.dest,
                              static_cast<std::int64_t>(di.seq));
        }
        if (di.si.op == OpClass::Nop)
            ++counters_.nopsDelivered;
        if (di.isCondBranch())
            ++unresolved_cond_;
        // Direct unconditional transfers train the BTB at decode:
        // the decoder always knows their target.
        predictor_.onDecode(di);
        if (outcome.mispredict && i == outcome.delivered - 1)
            entry.flaggedMispredict = true;
        ++rob_count_;
        ++window_occ_;
    }
    stream_head_ += static_cast<std::size_t>(outcome.delivered);
    counters_.delivered += static_cast<std::uint64_t>(outcome.delivered);
    if (outcome.delivered > 0)
        ++counters_.fetchGroups;
    else
        ++counters_.stallCycles;

    // Fetch-unit stall bookkeeping.
    if (outcome.mispredict) {
        blocked_on_seq_ = static_cast<std::int64_t>(
            rob_base_seq_ + rob_count_ - 1);
        fetch_resume_cycle_ = kNeverResume; // until resolution
    } else if (outcome.decodeRedirect) {
        fetch_resume_cycle_ = cycle_ + 2; // one redirect bubble
    } else if (outcome.stallAfter > 0) {
        fetch_resume_cycle_ =
            cycle_ + 1 + static_cast<std::uint64_t>(outcome.stallAfter);
    } else {
        fetch_resume_cycle_ = cycle_ + 1;
    }
}

void
Processor::step()
{
    doComplete();
    doRetire();
    doFire();
    doFetch();
    ++cycle_;
    counters_.cycles = cycle_;
    counters_.icacheAccesses = icache_.accesses();
    counters_.icacheMisses = icache_.misses();
    counters_.btbLookups = predictor_.btb().lookups();
    counters_.btbHits = predictor_.btb().hits();
}

void
Processor::run(std::uint64_t max_retired)
{
    PERF_SCOPE("proc.run");
    // Chunked cycle-loop slices: with profiling on, every 8192-cycle
    // stretch of the loop becomes one "proc.cycles" trace event, so
    // long runs render as a readable sequence instead of one opaque
    // block or millions of per-cycle slices.
    constexpr std::uint64_t kPerfChunkCycles = 8192;
    std::optional<PerfScope> perf_chunk;
    std::uint64_t perf_chunk_left = 0;
    std::uint64_t last_retired = counters_.retired;
    std::uint64_t stagnant_cycles = 0;
    while (counters_.retired < max_retired) {
        if (Profiler::enabled() && perf_chunk_left == 0) {
            perf_chunk.emplace("proc.cycles");
            perf_chunk_left = kPerfChunkCycles;
        }
        if (cycle_limit_ != 0 && cycle_ >= cycle_limit_) {
            throw SimException(
                ErrorKind::Workload,
                "watchdog: " + std::to_string(cycle_) +
                    " cycles elapsed with only " +
                    std::to_string(counters_.retired) + " of " +
                    std::to_string(max_retired) +
                    " instructions retired");
        }
        step();
        if (perf_chunk_left > 0 && --perf_chunk_left == 0)
            perf_chunk.reset();
        if (counters_.retired == last_retired) {
            if (++stagnant_cycles > 100000)
                panic("Processor::run: no retirement progress for "
                      "100000 cycles (deadlock)");
        } else {
            last_retired = counters_.retired;
            stagnant_cycles = 0;
        }
    }
}

} // namespace fetchsim
