/**
 * @file
 * Structured error taxonomy for recoverable failures.
 *
 * Historically every user-visible failure went through fatal()
 * (stats/log.h), which prints and exits -- acceptable for a
 * single-run CLI, lethal for a multi-hundred-cell sweep where one bad
 * RunConfig should cost one cell, not the whole grid.  This header is
 * the recoverable-error vocabulary that replaces fatal() on every
 * path a caller can meaningfully handle:
 *
 *  - ErrorKind     -- the four-way taxonomy the tooling keys off
 *                     (exit codes, retry policy, failure tables):
 *                     Config   = the request was invalid,
 *                     Workload = the simulated program misbehaved
 *                                (watchdog trips, invariant breaks),
 *                     Io       = the outside world failed (files,
 *                                streams, checkpoints) -- the only
 *                                kind presumed transient/retryable,
 *                     Protocol = a service peer spoke the wire
 *                                protocol wrong (malformed HTTP
 *                                framing or JSON, unknown endpoint,
 *                                bad request schema) -- introduced
 *                                with the sweep service
 *                                (sim/service.h); the offending
 *                                request is rejected, never the
 *                                process,
 *                     Internal = a simulator bug surfaced as an
 *                                exception rather than a panic().
 *  - SimError      -- one violation: kind + message + optional
 *                     context ("benchmark=gcc machine=P112").
 *  - SimException  -- the throwable carrier of a SimError.
 *  - Expected<T>   -- a value-or-SimError return type for interfaces
 *                     that prefer explicit results over exceptions
 *                     (validation, checkpoint loading).
 *
 * fatal() remains for true dead-ends in leaf tools and panic() for
 * internal invariants; library code that a SweepEngine isolates must
 * throw SimException (or return Expected) instead.
 */

#ifndef FETCHSIM_CORE_ERROR_H_
#define FETCHSIM_CORE_ERROR_H_

#include <cstdint>
#include <exception>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace fetchsim
{

/** The recoverable-failure taxonomy. */
enum class ErrorKind : std::uint8_t
{
    Config,   //!< invalid request (bad RunConfig, unknown name)
    Workload, //!< simulated program misbehaved (watchdog, invariants)
    Io,       //!< file/stream/checkpoint failure (maybe transient)
    Protocol, //!< malformed service request/response (sim/service.h)
    Internal, //!< simulator bug escaping as an exception
};

/** Lower-case display name of an error kind ("config", "io", ...). */
inline const char *
errorKindName(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::Config:
        return "config";
      case ErrorKind::Workload:
        return "workload";
      case ErrorKind::Io:
        return "io";
      case ErrorKind::Protocol:
        return "protocol";
      case ErrorKind::Internal:
        return "internal";
    }
    return "internal";
}

/** One structured violation. */
struct SimError
{
    ErrorKind kind = ErrorKind::Internal;
    std::string message; //!< human-readable, single line
    std::string context; //!< optional locus, e.g. "benchmark=gcc"

    /** "[kind] message (context)" -- the canonical rendering. */
    std::string
    format() const
    {
        std::string out = "[";
        out += errorKindName(kind);
        out += "] ";
        out += message;
        if (!context.empty()) {
            out += " (";
            out += context;
            out += ")";
        }
        return out;
    }
};

/** Render a violation list, one per line (for multi-error reports). */
inline std::string
formatErrors(const std::vector<SimError> &errors)
{
    std::string out;
    for (const SimError &error : errors) {
        if (!out.empty())
            out += "\n";
        out += error.format();
    }
    return out;
}

/** The throwable carrier of one SimError. */
class SimException : public std::exception
{
  public:
    explicit SimException(SimError error)
        : error_(std::move(error)), what_(error_.format())
    {
    }

    SimException(ErrorKind kind, std::string message,
                 std::string context = "")
        : SimException(SimError{kind, std::move(message),
                                std::move(context)})
    {
    }

    const SimError &error() const { return error_; }
    ErrorKind kind() const { return error_.kind; }

    const char *what() const noexcept override { return what_.c_str(); }

  private:
    SimError error_;
    std::string what_;
};

/**
 * A value-or-error result.  Holds either a T or the SimError that
 * prevented producing one; value() on an error throws the error as a
 * SimException, so callers may either branch on ok() or let the
 * exception propagate into a sweep isolation boundary.
 */
template <typename T>
class Expected
{
  public:
    Expected(T value) : state_(std::move(value)) {}
    Expected(SimError error) : state_(std::move(error)) {}

    bool ok() const { return std::holds_alternative<T>(state_); }
    explicit operator bool() const { return ok(); }

    /** The held value; throws the held error when !ok(). */
    T &
    value()
    {
        if (!ok())
            throw SimException(std::get<SimError>(state_));
        return std::get<T>(state_);
    }

    const T &
    value() const
    {
        if (!ok())
            throw SimException(std::get<SimError>(state_));
        return std::get<T>(state_);
    }

    /** The held error (must not be called when ok()). */
    const SimError &error() const { return std::get<SimError>(state_); }

  private:
    std::variant<T, SimError> state_;
};

/**
 * Expected<void>: success carries no value, so the state is just
 * "ok" or the SimError.  value() keeps the throw-on-error contract
 * so `result.value();` works as an assert-or-propagate statement.
 */
template <>
class Expected<void>
{
  public:
    Expected() = default;
    Expected(SimError error) : error_(std::move(error)) {}

    bool ok() const { return !error_.has_value(); }
    explicit operator bool() const { return ok(); }

    /** Throws the held error when !ok(); no-op otherwise. */
    void
    value() const
    {
        if (!ok())
            throw SimException(*error_);
    }

    /** The held error (must not be called when ok()). */
    const SimError &error() const { return *error_; }

  private:
    std::optional<SimError> error_;
};

} // namespace fetchsim

#endif // FETCHSIM_CORE_ERROR_H_
