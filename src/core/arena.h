/**
 * @file
 * Arena: a resettable monotonic allocation region for per-run state.
 *
 * A sweep runs thousands of cells, and each cell builds the same
 * family of objects -- a Processor with its flat ROB/stream/completion
 * slabs, an I-cache, predictor tables, a fetch mechanism -- then
 * throws them away.  Allocating those from the global heap makes every
 * cell pay malloc/free traffic and scatters hot tables across the
 * address space; worse, under a multi-threaded sweep all workers
 * contend on the same allocator.
 *
 * The Arena replaces that with one private slab per sweep worker:
 * per-run containers draw from a std::pmr::monotonic_buffer_resource
 * carving the slab, deallocation is a no-op, and reset() recycles the
 * whole region between cells.  The slab grows to the high-water mark
 * of the largest cell seen, so a steady-state sweep performs zero
 * heap allocations per cell: every table lands in the same warm,
 * contiguous memory the previous cell just vacated (lifetime rules in
 * docs/PERFORMANCE.md).
 *
 * Thread safety: none -- one Arena per thread.  The SweepEngine gives
 * each worker its own.
 */

#ifndef FETCHSIM_CORE_ARENA_H_
#define FETCHSIM_CORE_ARENA_H_

#include <cstddef>
#include <memory_resource>
#include <optional>
#include <vector>

namespace fetchsim
{

/**
 * Resettable monotonic allocation region.
 *
 * Lifetime rules:
 *  1. Everything allocated from resource() must be destroyed before
 *     reset() or the Arena's destruction (containers only return
 *     memory on destruction; the arena reclaims it wholesale).
 *  2. reset() invalidates all memory handed out since the last reset.
 *  3. The Arena must outlive every object using its resource().
 */
class Arena
{
  public:
    /** @param initial_bytes starting slab size */
    explicit Arena(std::size_t initial_bytes = kDefaultSlabBytes)
        : slab_(initial_bytes)
    {
        rebuild();
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** The memory resource per-run containers allocate from. */
    std::pmr::memory_resource *resource() { return &*mono_; }

    /**
     * Reclaim every allocation at once.  If the region overflowed
     * the slab (the monotonic resource fell back to its upstream),
     * the slab grows to cover the high-water mark so subsequent
     * rounds stay allocation-free.
     */
    void
    reset()
    {
        mono_.reset(); // release any upstream overflow chunks
        if (upstream_.highWater() > 0) {
            // Grow geometrically past the observed overflow so a
            // slightly-larger next cell does not overflow again.
            const std::size_t need =
                slab_.size() + upstream_.highWater();
            std::size_t grown = slab_.size() * 2;
            while (grown < need)
                grown *= 2;
            slab_.clear();
            slab_.shrink_to_fit();
            slab_.resize(grown);
            upstream_.resetHighWater();
        }
        rebuild();
    }

    /** Current slab capacity in bytes. */
    std::size_t slabBytes() const { return slab_.size(); }

    /** Bytes the last round allocated beyond the slab (0 = fit). */
    std::size_t overflowBytes() const { return upstream_.highWater(); }

    static constexpr std::size_t kDefaultSlabBytes = 1u << 20;

  private:
    /**
     * Upstream of the monotonic resource: serves overflow from the
     * global heap while recording how much was needed, so reset()
     * can size the slab to make the next round self-contained.
     */
    class TrackingUpstream : public std::pmr::memory_resource
    {
      public:
        std::size_t highWater() const { return high_water_; }
        void resetHighWater() { high_water_ = 0; }

      private:
        void *
        do_allocate(std::size_t bytes, std::size_t align) override
        {
            high_water_ += bytes;
            return std::pmr::new_delete_resource()->allocate(bytes,
                                                             align);
        }

        void
        do_deallocate(void *p, std::size_t bytes,
                      std::size_t align) override
        {
            std::pmr::new_delete_resource()->deallocate(p, bytes,
                                                        align);
        }

        bool
        do_is_equal(const std::pmr::memory_resource &other)
            const noexcept override
        {
            return this == &other;
        }

        std::size_t high_water_ = 0;
    };

    void
    rebuild()
    {
        mono_.emplace(slab_.data(), slab_.size(), &upstream_);
    }

    std::vector<std::byte> slab_;
    TrackingUpstream upstream_;
    std::optional<std::pmr::monotonic_buffer_resource> mono_;
};

} // namespace fetchsim

#endif // FETCHSIM_CORE_ARENA_H_
