/**
 * @file
 * Machine-model parameters (paper Table 1): P14, P18, P112.
 *
 * Header-only so both the fetch mechanisms and the core can consume
 * configurations without a link-time cycle.
 */

#ifndef FETCHSIM_CORE_MACHINE_CONFIG_H_
#define FETCHSIM_CORE_MACHINE_CONFIG_H_

#include <cstdint>
#include <string>

#include "branch/direction_predictor.h"
#include "isa/opcode.h"
#include "stats/log.h"

namespace fetchsim
{

/** The three machine models studied in the paper. */
enum class MachineModel : std::uint8_t
{
    P14 = 0, //!< 4-issue
    P18,     //!< 8-issue
    P112,    //!< 12-issue
    NumMachineModels
};

/** Number of machine models. */
constexpr int kNumMachineModels =
    static_cast<int>(MachineModel::NumMachineModels);

/**
 * Full parameter set of one simulated machine.
 */
struct MachineConfig
{
    std::string name;           //!< "P14" / "P18" / "P112"
    int issueRate = 4;          //!< instructions per cycle
    int windowSize = 16;        //!< scheduling-window entries
    int robSize = 32;           //!< reorder-buffer entries

    std::uint64_t icacheBytes = 32 * 1024; //!< I-cache capacity
    std::uint64_t blockBytes = 16;         //!< I-cache block size
    int icacheBanks = 2;        //!< banks (interleaved/banked schemes)
    int icacheWays = 1;         //!< associativity (paper: direct-mapped)
    int icacheMissPenalty = 10; //!< refill latency in cycles (the
                                //!< paper leaves this unspecified; see
                                //!< DESIGN.md)

    int fxuCount = 2;           //!< fixed-point units (1-cycle)
    int fpuCount = 2;           //!< floating-point units (2-cycle)
    int branchCount = 2;        //!< branch units (1-cycle)
    int loadCount = 2;          //!< load units (2-cycle; see DESIGN.md)
    int storeBufferSize = 8;    //!< store-buffer entries

    int specDepth = 2;          //!< max unresolved predicted cond
                                //!< branches in flight
    int fetchPenalty = 2;       //!< fetch misprediction penalty
                                //!< (3-stage pipeline with bypass)
    int btbEntries = 1024;      //!< branch-target-buffer entries

    // Frontend extensions (paper future work; defaults = the paper).
    PredictorKind predictorKind = PredictorKind::BtbCounter;
    bool useRas = false;        //!< return-address stack
    int rasDepth = 16;          //!< RAS entries when enabled

    // Trace-cache geometry (SchemeKind::TraceCache only; the other
    // schemes ignore these).  One line holds up to traceLineInsts
    // instructions (0 = one fetch width, i.e. issueRate) spanning at
    // most traceMaxBranches conditional branches; the multi-branch
    // predictor supplies that many outcomes per cycle from a table of
    // mbpEntries 2-bit counters.
    int traceSets = 128;        //!< trace-cache sets
    int traceWays = 4;          //!< trace-cache associativity
    int traceLineInsts = 0;     //!< insts per trace line (0 = issueRate)
    int traceMaxBranches = 4;   //!< cond branches per line / predicted
                                //!< outcomes per cycle
    int mbpEntries = 4096;      //!< multi-branch predictor counters

    /** Resolved trace-line length (traceLineInsts or the fetch width). */
    int
    traceLineLength() const
    {
        return traceLineInsts > 0 ? traceLineInsts : issueRate;
    }

    /** Instructions per I-cache block (= BTB interleave factor). */
    int
    instsPerBlock() const
    {
        return static_cast<int>(blockBytes / kInstBytes);
    }

    /** Total function-unit count (= number of result buses). */
    int
    totalUnits() const
    {
        return fxuCount + fpuCount + branchCount + loadCount;
    }

    /** Number of units of a given kind. */
    int
    unitCount(UnitKind kind) const
    {
        switch (kind) {
          case UnitKind::Fxu:        return fxuCount;
          case UnitKind::Fpu:        return fpuCount;
          case UnitKind::BranchUnit: return branchCount;
          case UnitKind::LoadUnit:   return loadCount;
          case UnitKind::StorePort:  return storeBufferSize;
          default:                   panic("unitCount: bad kind");
        }
    }
};

/** The P14 machine model: 4-issue (Table 1). */
inline MachineConfig
makeP14()
{
    MachineConfig cfg;
    cfg.name = "P14";
    cfg.issueRate = 4;
    cfg.windowSize = 16;
    cfg.robSize = 32;
    cfg.icacheBytes = 32 * 1024;
    cfg.blockBytes = 16;
    cfg.fxuCount = 2;
    cfg.fpuCount = 2;
    cfg.branchCount = 2;
    cfg.loadCount = 2;
    cfg.storeBufferSize = 8;
    cfg.specDepth = 2;
    return cfg;
}

/** The P18 machine model: 8-issue (Table 1). */
inline MachineConfig
makeP18()
{
    MachineConfig cfg;
    cfg.name = "P18";
    cfg.issueRate = 8;
    cfg.windowSize = 24;
    cfg.robSize = 48;
    cfg.icacheBytes = 64 * 1024;
    cfg.blockBytes = 32;
    cfg.fxuCount = 4;
    cfg.fpuCount = 4;
    cfg.branchCount = 4;
    cfg.loadCount = 4;
    cfg.storeBufferSize = 16;
    cfg.specDepth = 4;
    return cfg;
}

/** The P112 machine model: 12-issue (Table 1). */
inline MachineConfig
makeP112()
{
    MachineConfig cfg;
    cfg.name = "P112";
    cfg.issueRate = 12;
    cfg.windowSize = 32;
    cfg.robSize = 64;
    cfg.icacheBytes = 128 * 1024;
    cfg.blockBytes = 64;
    cfg.fxuCount = 6;
    cfg.fpuCount = 6;
    cfg.branchCount = 6;
    cfg.loadCount = 6;
    cfg.storeBufferSize = 24;
    cfg.specDepth = 6;
    return cfg;
}

/** Configuration for a machine model enumerator. */
inline MachineConfig
makeMachine(MachineModel model)
{
    switch (model) {
      case MachineModel::P14:  return makeP14();
      case MachineModel::P18:  return makeP18();
      case MachineModel::P112: return makeP112();
      default:                 panic("makeMachine: bad model");
    }
}

/** Name of a machine model. */
inline const char *
machineName(MachineModel model)
{
    switch (model) {
      case MachineModel::P14:  return "P14";
      case MachineModel::P18:  return "P18";
      case MachineModel::P112: return "P112";
      default:                 return "???";
    }
}

} // namespace fetchsim

#endif // FETCHSIM_CORE_MACHINE_CONFIG_H_
