#include "core/register_state.h"

namespace fetchsim
{

std::uint64_t
computeValue(OpClass op, std::uint64_t v1, std::uint64_t v2,
             std::int32_t imm, std::uint64_t pc)
{
    switch (op) {
      case OpClass::IntAlu:
        return v1 + v2 + static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(imm));
      case OpClass::FpAlu:
        return (v1 ^ v2) * 0x100000001b3ULL + 1;
      case OpClass::Load:
        // No data memory is modeled; loads return a hash of their
        // effective address so dependent chains stay deterministic.
        return (v1 + static_cast<std::uint64_t>(
                         static_cast<std::int64_t>(imm))) *
               0x9e3779b97f4a7c15ULL;
      case OpClass::Call:
        return pc + kInstBytes; // link value
      default:
        return 0;
    }
}

} // namespace fetchsim
