/**
 * @file
 * The cycle-level processor: fetch mechanism + out-of-order core.
 *
 * Implements the microarchitecture of paper Figure 1 / Table 1:
 * a fetch unit (pluggable FetchMechanism), a Tomasulo scheduling
 * window with tag renaming that decouples fetch from execution,
 * fixed-point/floating-point/branch/load units with Table 1
 * latencies, result buses equal to the total unit count, a store
 * buffer, a reorder buffer for precise state, Messy and Future
 * register files, and bounded branch speculation depth.
 *
 * The simulation is trace-driven and prediction-aware: the Executor
 * supplies the correct path; mispredicted branches stall fetch until
 * they resolve in a branch unit plus the fetch-pipeline refill
 * penalty (paper footnote 1's decomposition).
 */

#ifndef FETCHSIM_CORE_PROCESSOR_H_
#define FETCHSIM_CORE_PROCESSOR_H_

#include <array>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <vector>

#include "branch/predictor_suite.h"
#include "cache/icache.h"
#include "core/machine_config.h"
#include "core/register_state.h"
#include "exec/executor.h"
#include "exec/trace_file.h"
#include "fetch/fetch_mechanism.h"
#include "stats/counters.h"
#include "stats/log.h"
#include "stats/metrics.h"
#include "stats/trace_sink.h"

namespace fetchsim
{

/**
 * One in-flight instruction (a reorder-buffer entry; while waiting to
 * fire it also occupies a scheduling-window slot).
 */
struct InFlight
{
    DynInst di;
    std::int64_t srcTag1 = RegisterState::kReady;
    std::int64_t srcTag2 = RegisterState::kReady;
    std::uint64_t value = 0;

    bool inWindow = true;   //!< occupies a reservation station
    bool fired = false;     //!< issued to a functional unit
    bool completed = false; //!< result broadcast on a result bus
    bool flaggedMispredict = false; //!< fetch is blocked on this inst

    std::uint64_t dispatchCycle = 0;
    std::uint64_t fireCycle = 0;
    std::uint64_t completeCycle = 0;
};

/**
 * The simulated processor.
 */
class Processor
{
  public:
    /**
     * @param workload the benchmark to execute (must outlive this)
     * @param input    executor input id (usually kEvalInput)
     * @param cfg      machine model parameters
     * @param fetch    the fetch mechanism under study
     * @param mem      memory resource for all per-run tables and
     *                 slabs (ROB ring, completion ring, stream slab,
     *                 I-cache lines, predictor tables).  Sweep
     *                 workers pass an Arena (core/arena.h) so cell
     *                 setup recycles one slab; the default heap
     *                 resource changes nothing for other callers.
     *                 Must outlive the processor.
     */
    Processor(const Workload &workload, int input,
              const MachineConfig &cfg,
              std::unique_ptr<FetchMechanism> fetch,
              std::pmr::memory_resource *mem =
                  std::pmr::get_default_resource());

    /**
     * Trace-driven construction: stream instructions from an
     * external source (e.g. a TraceReader) instead of a live
     * Executor -- the paper's exact spike-trace workflow.
     * @param source must outlive this processor
     */
    Processor(InstSource &source, const MachineConfig &cfg,
              std::unique_ptr<FetchMechanism> fetch,
              std::pmr::memory_resource *mem =
                  std::pmr::get_default_resource());

    /**
     * Simulate until @p max_retired instructions retire.
     * May be called repeatedly to extend a run.
     */
    void run(std::uint64_t max_retired);

    /**
     * Arm the runaway-workload watchdog: run() throws a
     * SimException(ErrorKind::Workload) once the cycle counter
     * reaches @p max_cycles with the retirement budget still unmet.
     * 0 (the default) disarms it.  Complements the built-in
     * no-progress deadlock panic: the watchdog bounds total runtime
     * of a workload that *is* retiring, just pathologically slowly.
     */
    void setCycleLimit(std::uint64_t max_cycles)
    {
        cycle_limit_ = max_cycles;
    }

    /** Advance exactly one cycle (testing hook). */
    void step();

    /** Collected statistics. */
    const RunCounters &counters() const { return counters_; }

    /** Current cycle. */
    std::uint64_t cycle() const { return cycle_; }

    /** The fetch mechanism in use. */
    const FetchMechanism &fetch() const { return *fetch_; }

    /** Register state (testing hook). */
    const RegisterState &registers() const { return regs_; }

    /** In-flight instruction count (testing hook). */
    std::size_t robOccupancy() const { return rob_count_; }

    /** Scheduling-window occupancy (testing hook). */
    int windowOccupancy() const { return window_occ_; }

    /** Unresolved predicted conditional branches (testing hook). */
    int unresolvedBranches() const { return unresolved_cond_; }

    /** The I-cache (testing hook). */
    const ICache &icache() const { return icache_; }

    /** The branch-target buffer (testing hook). */
    const Btb &btb() const { return predictor_.btb(); }

    /** The full predictor suite (testing hook). */
    const PredictorSuite &predictorSuite() const
    {
        return predictor_;
    }

    /**
     * Register this processor's observability metrics into
     * @p registry and forward to the I-cache and predictor suite.
     * Registered metrics (see docs/ARCHITECTURE.md for the full
     * namespace):
     *
     *  - fetch.cycles.{delivering,stalled_penalty,stalled_empty}:
     *    the per-cycle fetch breakdown;
     *  - fetch.stop.<reason>: group-termination histogram
     *    (misalignment, bank conflicts, mispredictions, ...);
     *  - fetch.collapse_events: intra-block branches the collapsing
     *    buffer continued past;
     *  - fetch.group_size, fetch.run_length,
     *    fetch.branch_distance_bytes: distribution metrics;
     *  - icache.*, branch.*: component counters.
     *
     * The registry must outlive the processor.  Attach before the
     * first step() for complete data; an unattached processor pays
     * one null-check per cycle.
     */
    void attachMetrics(MetricRegistry &registry);

    /**
     * Stream per-cycle fetch events into @p sink as JSON Lines (one
     * "fetch" event per group-formation attempt: pc, delivered
     * count, stop reason, collapse count, penalty flags).  The sink
     * must outlive the processor; a disabled or unattached sink
     * costs one null-check per cycle (asserted by test_metrics).
     */
    void attachTrace(TraceSink &sink);

  private:
    static constexpr int kRingSize = 32; //!< > max latency + penalty

    void initBuffers();
    void refillStream();
    void doComplete();
    void doRetire();
    void doFire();
    void doFetch();

    /**
     * ROB entry holding sequence number @p seq.  In-flight
     * instructions occupy consecutive sequence numbers
     * [rob_base_seq_, rob_base_seq_ + rob_count_), so the flat
     * power-of-two ring resolves any seq with one masked index --
     * no deque segment walk on the complete/fire/retire kernels.
     */
    InFlight &
    entryOf(std::int64_t seq)
    {
        const auto useq = static_cast<std::uint64_t>(seq);
        simAssert(useq >= rob_base_seq_ &&
                      useq < rob_base_seq_ + rob_count_,
                  "sequence number in flight");
        return rob_ring_[useq & rob_mask_];
    }

    bool
    sourceReady(std::int64_t tag) const
    {
        if (tag == RegisterState::kReady)
            return true;
        const auto useq = static_cast<std::uint64_t>(tag);
        if (useq < rob_base_seq_)
            return true; // producer already retired
        return rob_ring_[useq & rob_mask_].completed;
    }

    std::uint64_t
    sourceValue(std::int64_t tag, std::uint8_t reg) const
    {
        if (tag == RegisterState::kReady)
            return regs_.readMessy(reg);
        const auto useq = static_cast<std::uint64_t>(tag);
        if (useq < rob_base_seq_)
            return regs_.readMessy(reg); // retired into Messy already
        const InFlight &producer = rob_ring_[useq & rob_mask_];
        simAssert(producer.completed, "forwarded source completed");
        return producer.value;
    }

    MachineConfig cfg_;
    std::unique_ptr<Executor> own_exec_; //!< live-workload mode only
    InstSource *source_;                 //!< never null
    std::unique_ptr<FetchMechanism> fetch_;
    PredictorSuite predictor_;
    ICache icache_;
    RegisterState regs_;
    RunCounters counters_;

    // Lookahead buffer of upcoming correct-path instructions: a
    // fixed 2x(issueRate*4) slab refilled through the batch
    // InstSource::fill kernel.  Compaction keeps the live window
    // [stream_head_, stream_len_) inside the slab, so the buffer
    // never reallocates after construction.
    std::pmr::vector<DynInst> stream_;
    std::size_t stream_head_ = 0;
    std::size_t stream_len_ = 0;
    std::size_t stream_want_ = 0;

    // Reorder buffer: flat power-of-two ring indexed by sequence
    // number (entry for seq s lives at rob_ring_[s & rob_mask_]).
    // Valid because dispatch, completion lookup, and retirement all
    // address the consecutive in-flight window starting at
    // rob_base_seq_.
    std::pmr::vector<InFlight> rob_ring_;
    std::uint64_t rob_mask_ = 0;
    std::uint64_t rob_base_seq_ = 0;
    std::size_t rob_count_ = 0;
    int window_occ_ = 0;
    int store_buffer_occ_ = 0;
    int unresolved_cond_ = 0;

    // Completion-event ring: seq numbers finishing at cycle c are in
    // slot c % kRingSize; result buses bound per-cycle drains, with
    // the overflow deferred (order-preserving) into the next slot.
    // Flat slab of kRingSize x robSize slots -- at most robSize
    // completion events are pending across all slots, so a bucket can
    // never outgrow its stride.
    std::pmr::vector<std::uint64_t> ring_slots_;
    std::array<std::uint32_t, kRingSize> ring_count_{};
    std::size_t ring_stride_ = 0;

    std::uint64_t cycle_ = 0;
    std::uint64_t cycle_limit_ = 0; //!< watchdog; 0 = disarmed
    std::uint64_t fetch_resume_cycle_ = 0;
    std::int64_t blocked_on_seq_ = -1; //!< mispredicted branch gate

    // Observability hooks (stats/metrics.h, stats/trace_sink.h).
    // All null until attachMetrics()/attachTrace(); the hot paths
    // gate on one pointer each.
    Counter *m_cycles_delivering_ = nullptr;
    Counter *m_cycles_stalled_penalty_ = nullptr;
    Counter *m_cycles_stalled_empty_ = nullptr;
    Counter *m_collapse_events_ = nullptr;
    std::array<Counter *, kNumFetchStops> m_stop_{};
    Histogram *m_group_size_ = nullptr;
    Histogram *m_run_length_ = nullptr;
    Histogram *m_branch_distance_ = nullptr;
    TraceSink *trace_ = nullptr;
    std::uint64_t run_length_ = 0; //!< retired insts since last
                                   //!< taken control transfer

    // Host-profiler state (perf/profiler.h).  The fetch-step label is
    // built lazily on the first profiled cycle so unprofiled runs
    // never allocate; the counter drives 1-in-N sampling of the
    // fetch mechanism's group formation.
    std::string perf_fetch_label_;
    std::uint64_t perf_fetch_sample_ = 0;
};

} // namespace fetchsim

#endif // FETCHSIM_CORE_PROCESSOR_H_
