#include "perf/trace_export.h"

#include <algorithm>
#include <fstream>
#include <limits>

#include "core/error.h"
#include "stats/json.h"

namespace fetchsim
{

void
writeChromeTrace(std::ostream &os,
                 const std::vector<PerfEvent> &events,
                 const std::string &process_name)
{
    std::uint64_t epoch_ns =
        std::numeric_limits<std::uint64_t>::max();
    std::uint32_t max_tid = 0;
    for (const PerfEvent &event : events) {
        epoch_ns = std::min(epoch_ns, event.startNs);
        max_tid = std::max(max_tid, event.tid);
    }
    if (events.empty())
        epoch_ns = 0;

    JsonWriter json(os, 0);
    json.beginObject();
    json.key("traceEvents").beginArray();

    // Metadata: name the process and one track per profiler thread.
    json.beginObject();
    json.key("name").value("process_name");
    json.key("ph").value("M");
    json.key("pid").value(1);
    json.key("tid").value(0);
    json.key("args").beginObject();
    json.key("name").value(process_name);
    json.endObject().endObject();
    if (!events.empty()) {
        for (std::uint32_t tid = 0; tid <= max_tid; ++tid) {
            json.beginObject();
            json.key("name").value("thread_name");
            json.key("ph").value("M");
            json.key("pid").value(1);
            json.key("tid").value(static_cast<int>(tid));
            json.key("args").beginObject();
            json.key("name").value("worker-" + std::to_string(tid));
            json.endObject().endObject();
        }
    }

    for (const PerfEvent &event : events) {
        json.beginObject();
        json.key("name").value(event.name);
        json.key("cat").value("host");
        json.key("ph").value("X");
        json.key("pid").value(1);
        json.key("tid").value(static_cast<int>(event.tid));
        // Microseconds with nanosecond granularity preserved.
        json.key("ts").value(
            static_cast<double>(event.startNs - epoch_ns) / 1e3);
        json.key("dur").value(static_cast<double>(event.durNs) / 1e3);
        json.endObject();
    }

    json.endArray();
    json.key("displayTimeUnit").value("ms");
    json.endObject();
    os << "\n";
}

std::size_t
exportChromeTrace(const std::string &path,
                  const std::string &process_name)
{
    const std::vector<PerfEvent> events =
        Profiler::instance().drain();
    std::ofstream os(path, std::ios::binary);
    if (!os)
        throw SimException(ErrorKind::Io, "cannot open " + path);
    writeChromeTrace(os, events, process_name);
    if (!os)
        throw SimException(ErrorKind::Io, "error writing " + path);
    return events.size();
}

} // namespace fetchsim
