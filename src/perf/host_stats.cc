#include "perf/host_stats.h"

#include <ctime>

#include <sys/resource.h>

#include "stats/metrics.h"

namespace fetchsim
{

namespace
{

std::uint64_t
clockNowNs(clockid_t id)
{
    timespec ts{};
    if (clock_gettime(id, &ts) != 0)
        return 0;
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
}

} // anonymous namespace

double
HostStats::cyclesPerSec() const
{
    if (wallNs == 0)
        return 0.0;
    return static_cast<double>(simCycles) * 1e9 /
           static_cast<double>(wallNs);
}

double
HostStats::instsPerSec() const
{
    if (wallNs == 0)
        return 0.0;
    return static_cast<double>(retired) * 1e9 /
           static_cast<double>(wallNs);
}

std::uint64_t
threadCpuNowNs()
{
    return clockNowNs(CLOCK_THREAD_CPUTIME_ID);
}

std::uint64_t
processCpuNowNs()
{
    return clockNowNs(CLOCK_PROCESS_CPUTIME_ID);
}

std::uint64_t
processPeakRssBytes()
{
    rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
    // Linux reports ru_maxrss in kilobytes.
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024ull;
}

void
exportProcessMetrics(MetricRegistry &registry, std::uint64_t uptime_ns)
{
    // cpu_ns only ever grows, so it is a true counter; the other two
    // are point-in-time readings and export as gauges.
    registry
        .counter("host.cpu_ns",
                 "process CPU time consumed, nanoseconds")
        .inc(processCpuNowNs());
    registry
        .gauge("host.peak_rss_bytes",
               "peak resident set size of the process")
        .set(static_cast<std::int64_t>(processPeakRssBytes()));
    if (uptime_ns) {
        registry
            .gauge("host.uptime_ns",
                   "wall time since the service started")
            .set(static_cast<std::int64_t>(uptime_ns));
    }
}

} // namespace fetchsim
