/**
 * @file
 * Per-run host throughput counters.
 *
 * RunCounters measure the simulated machine; HostStats measure the
 * simulator simulating it: wall and CPU nanoseconds spent on one
 * sweep cell and the derived simulated-cycles-per-second /
 * instructions-per-second rates.  The SweepEngine fills one HostStats
 * per cell (SweepResult::host), the CLI surfaces them in its summary
 * tables, and the bench harness (perf/bench.h) aggregates them into
 * BENCH_sweep.json medians.
 *
 * Host stats are intentionally kept out of the run's JSON/CSV
 * serialization and out of docs/RESULTS.md: they are nondeterministic
 * by nature and must never break the byte-identity contracts of the
 * reproduction pipeline.
 */

#ifndef FETCHSIM_PERF_HOST_STATS_H_
#define FETCHSIM_PERF_HOST_STATS_H_

#include <cstdint>

namespace fetchsim
{

class MetricRegistry;

/** Host-side cost of one completed simulation run. */
struct HostStats
{
    std::uint64_t wallNs = 0;    //!< wall time of the run
    std::uint64_t cpuNs = 0;     //!< executing thread's CPU time
    std::uint64_t simCycles = 0; //!< simulated cycles produced
    std::uint64_t retired = 0;   //!< instructions retired

    /** Simulated cycles per wall second (0 when unmeasured). */
    double cyclesPerSec() const;

    /** Retired instructions per wall second (0 when unmeasured). */
    double instsPerSec() const;
};

/** CPU time of the calling thread, in nanoseconds. */
std::uint64_t threadCpuNowNs();

/** CPU time of the whole process, in nanoseconds. */
std::uint64_t processCpuNowNs();

/** Peak resident set size of the process, in bytes (0 if unknown). */
std::uint64_t processPeakRssBytes();

/**
 * Register a snapshot of process-wide host stats into @p registry
 * under the `host.` namespace: host.cpu_ns (process CPU time),
 * host.peak_rss_bytes, and -- when @p uptime_ns is nonzero --
 * host.uptime_ns.  The sweep service's `/metrics` endpoint is the
 * consumer; the snapshot is taken at call time, so build a fresh
 * registry per scrape.
 */
void exportProcessMetrics(MetricRegistry &registry,
                          std::uint64_t uptime_ns = 0);

} // namespace fetchsim

#endif // FETCHSIM_PERF_HOST_STATS_H_
