/**
 * @file
 * Host-side scoped-timer profiler for the simulator's own hot paths.
 *
 * The MetricRegistry/TraceSink layer (src/stats) observes the
 * *simulated* machine; this profiler observes the *simulator*: how
 * long workload preparation, the cycle loop, each fetch mechanism's
 * group formation, checkpoint I/O and sweep-cell dispatch take on the
 * host.  It is the measurement substrate every later host-performance
 * optimization must prove itself against.
 *
 * Design constraints and how they are met:
 *
 *  - **Zero cost when disabled.**  Profiling is off by default;
 *    PERF_SCOPE compiles to one relaxed atomic load per entry.  No
 *    allocation, no clock read, no buffer touch happens until the
 *    profiler is enabled at runtime (CLI `--trace-out`, bench).
 *    test_perf asserts the no-buffer guarantee.
 *
 *  - **Low overhead when enabled.**  Each thread appends events to
 *    its own buffer; the only synchronization on the record path is
 *    an uncontended per-buffer mutex taken for a push_back (the
 *    collector contends with it only during drain, which in practice
 *    happens after the thread pool has been joined).  Per-cycle
 *    paths use PerfSampledScope, which times one call in N, keeping
 *    the enabled-mode overhead of the cycle loop inside the <2%
 *    budget (DESIGN.md section 11).
 *
 *  - **Deterministic merge.**  drain() interleaves the per-thread
 *    buffers into a single list ordered by (startNs, tid, per-thread
 *    sequence), so the same set of recorded events always merges to
 *    the same order regardless of thread scheduling -- this is what
 *    makes trace-export tests exact rather than fuzzy.
 *
 * The profiler reads time through the injectable Clock (perf/clock.h)
 * so tests drive it with a ManualClock and assert exact timestamps.
 */

#ifndef FETCHSIM_PERF_PROFILER_H_
#define FETCHSIM_PERF_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "perf/clock.h"

namespace fetchsim
{

/** One completed scope: a slice on the host-time axis. */
struct PerfEvent
{
    std::string name;       //!< scope label ("proc.run", "cell 12 ...")
    std::uint64_t startNs;  //!< clock time at scope entry
    std::uint64_t durNs;    //!< scope duration
    std::uint32_t tid;      //!< profiler thread id (registration order)
    std::uint64_t seq;      //!< per-thread record sequence number
};

/**
 * Process-wide profiler registry.  All access goes through
 * Profiler::instance(); the enabled flag is a separate static so the
 * disabled fast path never touches the singleton.
 */
class Profiler
{
  public:
    static Profiler &instance();

    /** True when scopes record events (one relaxed load). */
    static bool
    enabled()
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Turn recording on or off.  Scopes already open keep their
     * entry decision: a scope that started disabled records nothing.
     */
    static void setEnabled(bool on);

    /** Current profiler clock time (nanoseconds). */
    std::uint64_t nowNs();

    /**
     * Append one event to the calling thread's buffer, creating the
     * buffer on first use.  Called by PerfScope; safe from any
     * thread.
     */
    void record(std::string name, std::uint64_t start_ns,
                std::uint64_t dur_ns);

    /**
     * Remove and return all recorded events, merged across threads
     * in deterministic (startNs, tid, seq) order.  Call after worker
     * threads are joined (concurrent record() during a drain is safe
     * but the racing events may land in either batch).
     */
    std::vector<PerfEvent> drain();

    /** Thread buffers ever created (no-allocation test hook). */
    std::size_t threadBuffers() const;

    /**
     * Replace the time source (nullptr restores systemClock()).
     * Test-only; not synchronized against concurrent scopes.
     */
    void setClock(Clock *clock);

  private:
    Profiler() = default;

    struct ThreadBuffer
    {
        std::mutex mutex;        //!< uncontended except during drain
        std::uint32_t tid = 0;
        std::uint64_t next_seq = 0;
        std::vector<PerfEvent> events;
    };

    ThreadBuffer &localBuffer();

    static std::atomic<bool> enabled_;

    std::atomic<Clock *> clock_{nullptr}; //!< null = systemClock()
    mutable std::mutex registry_mutex_;   //!< guards buffers_ list
    std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/**
 * RAII scope timer.  Construct with the label; the destructor records
 * a PerfEvent covering the scope's lifetime.  When the profiler is
 * disabled at entry the scope is inert (no clock read, no string
 * copy, no allocation).
 *
 * Prefer the PERF_SCOPE macro for static labels; construct PerfScope
 * directly when the label is dynamic (guard the label construction
 * with Profiler::enabled() to keep the disabled path allocation-free).
 */
class PerfScope
{
  public:
    /** Inert scope; call open() to start timing later. */
    PerfScope() = default;

    explicit PerfScope(const char *name)
    {
        if (Profiler::enabled())
            arm(name);
    }

    explicit PerfScope(std::string name)
    {
        if (Profiler::enabled())
            arm(std::move(name));
    }

    ~PerfScope()
    {
        if (armed_)
            close();
    }

    PerfScope(const PerfScope &) = delete;
    PerfScope &operator=(const PerfScope &) = delete;

    /** Start timing an inert scope (no-op if already armed). */
    void
    open(const char *name)
    {
        if (!armed_ && Profiler::enabled())
            arm(name);
    }

  private:
    void arm(std::string name);
    void close();

    bool armed_ = false;
    std::string name_;
    std::uint64_t start_ns_ = 0;
};

/**
 * Sampling scope for per-cycle paths: times one invocation in
 * @p every (a power of two), identified by a caller-owned counter.
 * Costs one enabled() load plus one increment when disabled or
 * off-sample.
 *
 * @code
 *   std::uint64_t sample_counter_ = 0;  // member, one per call site
 *   ...
 *   PerfSampledScope scope("fetch.step", 64, sample_counter_);
 * @endcode
 */
class PerfSampledScope
{
  public:
    PerfSampledScope(const char *name, std::uint64_t every,
                     std::uint64_t &counter)
    {
        if (Profiler::enabled() && (counter++ % every) == 0)
            scope_.open(name);
    }

  private:
    PerfScope scope_;
};

// Two-level expansion so __LINE__ pastes into a unique identifier.
#define FETCHSIM_PERF_CONCAT2(a, b) a##b
#define FETCHSIM_PERF_CONCAT(a, b) FETCHSIM_PERF_CONCAT2(a, b)

/** Time the enclosing scope under a static label. */
#define PERF_SCOPE(name)                                               \
    ::fetchsim::PerfScope FETCHSIM_PERF_CONCAT(perf_scope_,           \
                                               __LINE__)(name)

} // namespace fetchsim

#endif // FETCHSIM_PERF_PROFILER_H_
