/**
 * @file
 * Injectable monotonic clock + sleep interface.
 *
 * Host-side timing code (the scoped profiler in perf/profiler.h, the
 * SweepEngine's retry backoff) must be testable without real waiting
 * and without wall-clock flakiness.  Everything that reads time or
 * sleeps goes through this interface: production code uses
 * systemClock() (steady_clock + this_thread::sleep_for), tests inject
 * a ManualClock whose time only moves when the test says so and whose
 * sleep() calls merely advance virtual time -- a retry-backoff test
 * asserts the exact exponential sleep sequence in microseconds of
 * real time.
 */

#ifndef FETCHSIM_PERF_CLOCK_H_
#define FETCHSIM_PERF_CLOCK_H_

#include <cstdint>
#include <mutex>
#include <vector>

namespace fetchsim
{

/**
 * Monotonic nanosecond clock with a sleep primitive.  Implementations
 * must be safe to call from multiple threads concurrently (sweep
 * workers share one clock).
 */
class Clock
{
  public:
    virtual ~Clock() = default;

    /** Monotonic time in nanoseconds from an arbitrary epoch. */
    virtual std::uint64_t nowNs() = 0;

    /** Block the calling thread for @p ns nanoseconds. */
    virtual void sleepNs(std::uint64_t ns) = 0;
};

/**
 * The process-wide real clock: steady_clock now(), real sleep_for().
 */
Clock &systemClock();

/**
 * Deterministic test clock.  nowNs() returns a counter that only
 * advance() and sleepNs() move; sleepNs() never blocks and records
 * every requested duration so tests can assert backoff schedules.
 */
class ManualClock : public Clock
{
  public:
    explicit ManualClock(std::uint64_t start_ns = 0) : now_(start_ns)
    {
    }

    std::uint64_t nowNs() override;
    void sleepNs(std::uint64_t ns) override;

    /** Move virtual time forward without recording a sleep. */
    void advance(std::uint64_t ns);

    /** Every sleepNs() duration, in call order across all threads. */
    std::vector<std::uint64_t> sleeps() const;

    /** Number of sleepNs() calls so far. */
    std::size_t sleepCount() const;

  private:
    mutable std::mutex mutex_;
    std::uint64_t now_;
    std::vector<std::uint64_t> sleeps_;
};

} // namespace fetchsim

#endif // FETCHSIM_PERF_CLOCK_H_
