/**
 * @file
 * Chrome trace-event JSON export of profiler events.
 *
 * writeChromeTrace() renders a drained PerfEvent list as the Trace
 * Event Format's "JSON object" flavour -- a `traceEvents` array of
 * complete ("ph":"X") duration events plus process/thread metadata
 * ("ph":"M") -- which loads directly in chrome://tracing and Perfetto.
 * Every profiler thread becomes one track (pid 1 = "sweep", tid =
 * profiler thread id, named "worker-N"), so a parallel sweep renders
 * as one lane per worker with the per-cell slices and their nested
 * session/cycle/fetch phases stacked inside.
 *
 * Timestamps are microseconds (the format's unit), rebased to the
 * earliest event so traces start at t=0 and ManualClock-driven tests
 * can assert exact output.
 */

#ifndef FETCHSIM_PERF_TRACE_EXPORT_H_
#define FETCHSIM_PERF_TRACE_EXPORT_H_

#include <ostream>
#include <string>
#include <vector>

#include "perf/profiler.h"

namespace fetchsim
{

/** Serialize @p events as a Chrome trace-event JSON document. */
void writeChromeTrace(std::ostream &os,
                      const std::vector<PerfEvent> &events,
                      const std::string &process_name = "sweep");

/**
 * Drain the process profiler and write the trace to @p path.
 * Throws SimException(ErrorKind::Io) when the file cannot be
 * written.  Returns the number of events exported.
 */
std::size_t exportChromeTrace(const std::string &path,
                              const std::string &process_name = "sweep");

} // namespace fetchsim

#endif // FETCHSIM_PERF_TRACE_EXPORT_H_
