#include "perf/profiler.h"

#include <algorithm>

namespace fetchsim
{

std::atomic<bool> Profiler::enabled_{false};

Profiler &
Profiler::instance()
{
    static Profiler profiler;
    return profiler;
}

void
Profiler::setEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

void
Profiler::setClock(Clock *clock)
{
    clock_.store(clock, std::memory_order_relaxed);
}

std::uint64_t
Profiler::nowNs()
{
    Clock *clock = clock_.load(std::memory_order_relaxed);
    return (clock ? *clock : systemClock()).nowNs();
}

Profiler::ThreadBuffer &
Profiler::localBuffer()
{
    // The shared_ptr keeps a buffer alive in the registry even after
    // its owning thread exits, so a drain after a pool join still
    // sees every worker's events.
    thread_local std::shared_ptr<ThreadBuffer> buffer;
    if (!buffer) {
        buffer = std::make_shared<ThreadBuffer>();
        std::lock_guard<std::mutex> lock(registry_mutex_);
        buffer->tid = static_cast<std::uint32_t>(buffers_.size());
        buffers_.push_back(buffer);
    }
    return *buffer;
}

void
Profiler::record(std::string name, std::uint64_t start_ns,
                 std::uint64_t dur_ns)
{
    ThreadBuffer &buffer = localBuffer();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.events.push_back(PerfEvent{std::move(name), start_ns,
                                      dur_ns, buffer.tid,
                                      buffer.next_seq++});
}

std::vector<PerfEvent>
Profiler::drain()
{
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        std::lock_guard<std::mutex> lock(registry_mutex_);
        buffers = buffers_;
    }
    std::vector<PerfEvent> merged;
    for (const auto &buffer : buffers) {
        std::lock_guard<std::mutex> lock(buffer->mutex);
        merged.insert(merged.end(),
                      std::make_move_iterator(buffer->events.begin()),
                      std::make_move_iterator(buffer->events.end()));
        buffer->events.clear();
    }
    // (startNs, tid, seq) is a total order over distinct events, so
    // the merged list is identical however threads were scheduled.
    std::sort(merged.begin(), merged.end(),
              [](const PerfEvent &a, const PerfEvent &b) {
                  if (a.startNs != b.startNs)
                      return a.startNs < b.startNs;
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  return a.seq < b.seq;
              });
    return merged;
}

std::size_t
Profiler::threadBuffers() const
{
    std::lock_guard<std::mutex> lock(registry_mutex_);
    return buffers_.size();
}

void
PerfScope::arm(std::string name)
{
    armed_ = true;
    name_ = std::move(name);
    start_ns_ = Profiler::instance().nowNs();
}

void
PerfScope::close()
{
    const std::uint64_t end_ns = Profiler::instance().nowNs();
    // A clock swap mid-scope (test-only) can move time backward;
    // clamp rather than wrap.
    const std::uint64_t dur_ns =
        end_ns >= start_ns_ ? end_ns - start_ns_ : 0;
    Profiler::instance().record(std::move(name_), start_ns_, dur_ns);
}

} // namespace fetchsim
