#include "perf/clock.h"

#include <chrono>
#include <thread>

namespace fetchsim
{

namespace
{

class SystemClock : public Clock
{
  public:
    std::uint64_t
    nowNs() override
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

    void
    sleepNs(std::uint64_t ns) override
    {
        std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
    }
};

} // anonymous namespace

Clock &
systemClock()
{
    static SystemClock clock;
    return clock;
}

std::uint64_t
ManualClock::nowNs()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return now_;
}

void
ManualClock::sleepNs(std::uint64_t ns)
{
    std::lock_guard<std::mutex> lock(mutex_);
    now_ += ns;
    sleeps_.push_back(ns);
}

void
ManualClock::advance(std::uint64_t ns)
{
    std::lock_guard<std::mutex> lock(mutex_);
    now_ += ns;
}

std::vector<std::uint64_t>
ManualClock::sleeps() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sleeps_;
}

std::size_t
ManualClock::sleepCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sleeps_.size();
}

} // namespace fetchsim
