/**
 * @file
 * Direct-mapped instruction cache model.
 *
 * All three machine models use direct-mapped I-caches whose block size
 * holds exactly one maximum-width fetch group: 32KB/16B (P14),
 * 64KB/32B (P18), 128KB/64B (P112).  Only hit/miss behaviour is
 * modeled; contents are instruction addresses (the simulator reads
 * instruction bytes from the Program image).
 */

#ifndef FETCHSIM_CACHE_ICACHE_H_
#define FETCHSIM_CACHE_ICACHE_H_

#include <cstdint>
#include <memory_resource>
#include <string>
#include <vector>

namespace fetchsim
{

class MetricRegistry;
class Counter;

/**
 * Direct-mapped instruction cache.
 */
class ICache
{
  public:
    /**
     * @param size_bytes  total capacity (power of two)
     * @param block_bytes block size (power of two, <= size)
     * @param banks       number of independently addressable banks;
     *                    consecutive blocks map to consecutive banks
     * @param ways        associativity (power of two; 1 = the
     *                    paper's direct-mapped caches; >1 uses LRU)
     * @param mem         memory resource for the line array (must
     *                    outlive the cache; defaults to the heap)
     */
    ICache(std::uint64_t size_bytes, std::uint64_t block_bytes,
           int banks = 2, int ways = 1,
           std::pmr::memory_resource *mem =
               std::pmr::get_default_resource());

    /**
     * Probe-and-fill: returns true on hit; on miss, fills the block
     * and returns false.
     */
    bool access(std::uint64_t addr);

    /** Probe without side effects. */
    bool probe(std::uint64_t addr) const;

    /** Invalidate all blocks. */
    void flush();

    /** Bank that holds the block containing @p addr. */
    int bankOf(std::uint64_t addr) const;

    /** Block-aligned address of @p addr. */
    std::uint64_t
    blockAlign(std::uint64_t addr) const
    {
        return addr & ~(block_bytes_ - 1);
    }

    /** Block number (address / block size). */
    std::uint64_t
    blockNumber(std::uint64_t addr) const
    {
        return addr >> block_shift_;
    }

    std::uint64_t sizeBytes() const { return size_bytes_; }
    std::uint64_t blockBytes() const { return block_bytes_; }
    int numBanks() const { return banks_; }
    int numWays() const { return ways_; }
    std::uint64_t numSets() const { return num_sets_; }

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }

    /**
     * Register this cache's event counters into @p registry under
     * @p prefix (e.g. "icache.accesses", "icache.misses").  The
     * registry must outlive the cache; unattached caches pay one
     * null-check per access.
     */
    void attachMetrics(MetricRegistry &registry,
                       const std::string &prefix = "icache");

  private:
    struct Line
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0; //!< LRU stamp (ways > 1)
    };

    std::uint64_t size_bytes_;
    std::uint64_t block_bytes_;
    int block_shift_;
    int set_shift_; //!< log2(num_sets_), precomputed for the tag
    int banks_;
    int ways_;
    std::uint64_t num_sets_;
    std::pmr::vector<Line> lines_; //!< set-major:
                                   //!< lines_[set*ways + way]
    std::uint64_t use_clock_ = 0;

    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;

    // Observability hooks (null until attachMetrics()).
    Counter *m_accesses_ = nullptr;
    Counter *m_misses_ = nullptr;
};

} // namespace fetchsim

#endif // FETCHSIM_CACHE_ICACHE_H_
