#include "cache/icache.h"

#include "stats/log.h"
#include "stats/metrics.h"

namespace fetchsim
{

namespace
{

bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

int
log2u(std::uint64_t x)
{
    int shift = 0;
    while ((1ULL << shift) < x)
        ++shift;
    return shift;
}

} // anonymous namespace

ICache::ICache(std::uint64_t size_bytes, std::uint64_t block_bytes,
               int banks, int ways, std::pmr::memory_resource *mem)
    : size_bytes_(size_bytes), block_bytes_(block_bytes),
      banks_(banks), ways_(ways), lines_(mem)
{
    if (!isPow2(size_bytes) || !isPow2(block_bytes) ||
        block_bytes > size_bytes)
        fatal("ICache: size/block must be powers of two with "
              "block <= size");
    if (banks < 1)
        fatal("ICache: need at least one bank");
    if (ways < 1 || !isPow2(static_cast<std::uint64_t>(ways)) ||
        static_cast<std::uint64_t>(ways) * block_bytes > size_bytes)
        fatal("ICache: associativity must be a power of two with "
              "ways*block <= size");
    block_shift_ = log2u(block_bytes_);
    num_sets_ = size_bytes_ / block_bytes_ /
                static_cast<std::uint64_t>(ways_);
    set_shift_ = log2u(num_sets_);
    lines_.resize(num_sets_ * static_cast<std::uint64_t>(ways_));
}

bool
ICache::access(std::uint64_t addr)
{
    ++accesses_;
    ++use_clock_;
    if (m_accesses_)
        m_accesses_->inc();
    const std::uint64_t block = blockNumber(addr);
    const std::uint64_t set = block & (num_sets_ - 1);
    const std::uint64_t tag = block >> set_shift_;
    Line *base = &lines_[set * static_cast<std::uint64_t>(ways_)];
    Line *victim = base;
    for (int w = 0; w < ways_; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = use_clock_;
            return true;
        }
        // Victim: prefer any invalid way, else the least recently
        // used one.
        const bool line_better =
            victim->valid &&
            (!line.valid || line.lastUse < victim->lastUse);
        if (line_better)
            victim = &line;
    }
    ++misses_;
    if (m_misses_)
        m_misses_->inc();
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = use_clock_;
    return false;
}

bool
ICache::probe(std::uint64_t addr) const
{
    const std::uint64_t block = blockNumber(addr);
    const std::uint64_t set = block & (num_sets_ - 1);
    const std::uint64_t tag = block >> set_shift_;
    const Line *base =
        &lines_[set * static_cast<std::uint64_t>(ways_)];
    for (int w = 0; w < ways_; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
ICache::flush()
{
    for (auto &line : lines_)
        line.valid = false;
}

void
ICache::attachMetrics(MetricRegistry &registry,
                      const std::string &prefix)
{
    m_accesses_ = &registry.counter(prefix + ".accesses",
                                    "block lookups in the I-cache");
    m_misses_ = &registry.counter(prefix + ".misses",
                                  "block lookups that missed");
    // Report events observed before attachment too, so the registry
    // and the legacy accessors agree at any attach time.
    m_accesses_->inc(accesses_);
    m_misses_->inc(misses_);
}

int
ICache::bankOf(std::uint64_t addr) const
{
    return static_cast<int>(blockNumber(addr) %
                            static_cast<std::uint64_t>(banks_));
}

} // namespace fetchsim
