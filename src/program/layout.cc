#include "program/layout.h"

#include "isa/encoding.h"
#include "stats/log.h"

namespace fetchsim
{

namespace
{

/** Signed displacement, in instruction units, from @p from to @p to. */
std::int32_t
dispBetween(std::uint64_t from, std::uint64_t to)
{
    std::int64_t diff = static_cast<std::int64_t>(to) -
                        static_cast<std::int64_t>(from);
    simAssert(diff % static_cast<std::int64_t>(kInstBytes) == 0,
              "targets are instruction aligned");
    return static_cast<std::int32_t>(diff /
                                     static_cast<std::int64_t>(
                                         kInstBytes));
}

} // anonymous namespace

std::uint64_t
assignAddresses(Program &prog, std::uint64_t base)
{
    std::uint64_t addr = base;
    for (BlockId id : prog.layoutOrder()) {
        BasicBlock &bb = prog.block(id);
        bb.address = addr;
        addr += static_cast<std::uint64_t>(bb.size()) * kInstBytes;
    }

    // Second pass: patch displacement fields now that targets have
    // addresses.
    for (BlockId id : prog.layoutOrder()) {
        BasicBlock &bb = prog.block(id);
        switch (bb.term) {
          case TermKind::FallThrough:
            break;
          case TermKind::CondBranch: {
            int ci = bb.controlIndex();
            bb.body[ci].imm = dispBetween(
                bb.instAddr(ci), prog.block(bb.takenTarget).address);
            break;
          }
          case TermKind::CondBranchJump: {
            int ci = bb.controlIndex();
            bb.body[ci].imm = dispBetween(
                bb.instAddr(ci), prog.block(bb.takenTarget).address);
            int ji = bb.size() - 1;
            bb.body[ji].imm = dispBetween(
                bb.instAddr(ji), prog.block(bb.fallThrough).address);
            break;
          }
          case TermKind::Jump: {
            int ci = bb.controlIndex();
            bb.body[ci].imm = dispBetween(
                bb.instAddr(ci), prog.block(bb.takenTarget).address);
            break;
          }
          case TermKind::CallFall: {
            int ci = bb.controlIndex();
            const Function &callee = prog.function(bb.callee);
            bb.body[ci].imm = dispBetween(
                bb.instAddr(ci), prog.block(callee.entry).address);
            break;
          }
          case TermKind::Return:
            break;
        }
    }
    return addr;
}

std::uint64_t
controlTargetAddr(const Program &prog, const BasicBlock &bb)
{
    switch (bb.term) {
      case TermKind::CondBranch:
      case TermKind::CondBranchJump:
      case TermKind::Jump:
        return prog.block(bb.takenTarget).address;
      case TermKind::CallFall:
        return prog.block(prog.function(bb.callee).entry).address;
      default:
        return 0;
    }
}

void
checkEncodable(const Program &prog)
{
    for (BlockId id : prog.layoutOrder()) {
        const BasicBlock &bb = prog.block(id);
        for (const StaticInst &inst : bb.body) {
            if (!encodable(inst))
                panic("checkEncodable: displacement exceeds format in "
                      "program " + prog.name());
        }
    }
}

} // namespace fetchsim
