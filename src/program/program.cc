#include "program/program.h"

#include <algorithm>

#include "stats/log.h"

namespace fetchsim
{

Program::Program(std::string name)
    : name_(std::move(name))
{
}

FuncId
Program::addFunction(std::string fn_name)
{
    FuncId id = static_cast<FuncId>(functions_.size());
    Function fn;
    fn.id = id;
    fn.name = std::move(fn_name);
    functions_.push_back(std::move(fn));
    return id;
}

BlockId
Program::addBlock(FuncId func)
{
    simAssert(func < functions_.size(), "addBlock: function exists");
    BlockId id = static_cast<BlockId>(blocks_.size());
    BasicBlock bb;
    bb.id = id;
    bb.func = func;
    blocks_.push_back(std::move(bb));
    functions_[func].blocks.push_back(id);
    layout_order_.push_back(id);
    return id;
}

BasicBlock &
Program::block(BlockId id)
{
    simAssert(id < blocks_.size(), "block id in range");
    return blocks_[id];
}

const BasicBlock &
Program::block(BlockId id) const
{
    simAssert(id < blocks_.size(), "block id in range");
    return blocks_[id];
}

Function &
Program::function(FuncId id)
{
    simAssert(id < functions_.size(), "function id in range");
    return functions_[id];
}

const Function &
Program::function(FuncId id) const
{
    simAssert(id < functions_.size(), "function id in range");
    return functions_[id];
}

std::uint64_t
Program::totalInstructions() const
{
    std::uint64_t total = 0;
    for (const auto &bb : blocks_)
        total += bb.body.size();
    return total;
}

std::uint64_t
Program::totalNops() const
{
    std::uint64_t total = 0;
    for (const auto &bb : blocks_)
        for (const auto &inst : bb.body)
            if (inst.op == OpClass::Nop)
                ++total;
    return total;
}

void
Program::validate() const
{
    simAssert(main_ < functions_.size(), "main function defined");

    // Layout order must be a permutation of all block ids.
    simAssert(layout_order_.size() == blocks_.size(),
              "layout covers all blocks");
    std::vector<bool> seen(blocks_.size(), false);
    for (BlockId id : layout_order_) {
        simAssert(id < blocks_.size(), "layout block id in range");
        simAssert(!seen[id], "layout has no duplicates");
        seen[id] = true;
    }

    for (const auto &fn : functions_) {
        simAssert(fn.entry < blocks_.size(), "function entry exists");
        simAssert(blocks_[fn.entry].func == fn.id,
                  "entry owned by function");
        for (BlockId id : fn.blocks)
            simAssert(blocks_[id].func == fn.id,
                      "block owned by its function");
    }

    for (const auto &bb : blocks_) {
        simAssert(bb.func < functions_.size(), "block has a function");
        const bool empty = bb.body.empty();
        switch (bb.term) {
          case TermKind::FallThrough:
            simAssert(bb.fallThrough != kNoBlock,
                      "fall-through successor set");
            simAssert(block(bb.fallThrough).func == bb.func,
                      "fall-through stays in function");
            break;
          case TermKind::CondBranch:
            simAssert(!empty &&
                          bb.body.back().op == OpClass::CondBranch,
                      "cond block ends in branch");
            simAssert(bb.takenTarget != kNoBlock &&
                          bb.fallThrough != kNoBlock,
                      "cond targets set");
            simAssert(block(bb.takenTarget).func == bb.func &&
                          block(bb.fallThrough).func == bb.func,
                      "cond targets stay in function");
            simAssert(bb.behavior != kNoBehavior,
                      "cond branch has behaviour");
            break;
          case TermKind::CondBranchJump:
            simAssert(bb.size() >= 2, "branch+jump fits in block");
            simAssert(bb.body[bb.size() - 2].op == OpClass::CondBranch,
                      "penultimate inst is the branch");
            simAssert(bb.body.back().op == OpClass::Jump,
                      "last inst is the jump");
            simAssert(bb.takenTarget != kNoBlock &&
                          bb.fallThrough != kNoBlock,
                      "cond+jump targets set");
            simAssert(bb.behavior != kNoBehavior,
                      "cond branch has behaviour");
            break;
          case TermKind::Jump:
            simAssert(!empty && bb.body.back().op == OpClass::Jump,
                      "jump block ends in jump");
            simAssert(bb.takenTarget != kNoBlock, "jump target set");
            simAssert(block(bb.takenTarget).func == bb.func,
                      "jump target stays in function");
            break;
          case TermKind::CallFall:
            simAssert(!empty && bb.body.back().op == OpClass::Call,
                      "call block ends in call");
            simAssert(bb.callee < functions_.size(), "callee exists");
            simAssert(bb.fallThrough != kNoBlock,
                      "call has return-to successor");
            simAssert(block(bb.fallThrough).func == bb.func,
                      "return-to stays in function");
            break;
          case TermKind::Return:
            simAssert(!empty && bb.body.back().op == OpClass::Return,
                      "return block ends in ret");
            break;
        }
    }
}

} // namespace fetchsim
