/**
 * @file
 * Basic blocks and their terminators.
 *
 * A program is a set of functions, each a list of basic blocks.  The
 * block body *includes* its terminating control instruction(s); block
 * addresses are assigned by the layout pass (program/layout.h), so the
 * same CFG can be laid out in source order, reordered trace order, or
 * nop-padded order without rebuilding it.
 */

#ifndef FETCHSIM_PROGRAM_BASIC_BLOCK_H_
#define FETCHSIM_PROGRAM_BASIC_BLOCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "isa/static_inst.h"

namespace fetchsim
{

/** Index of a basic block within its Program. */
using BlockId = std::uint32_t;
/** Index of a function within its Program. */
using FuncId = std::uint32_t;
/** Index of a branch-behaviour model in the workload's table. */
using BehaviorId = std::uint32_t;

constexpr BlockId kNoBlock = ~static_cast<BlockId>(0);
constexpr FuncId kNoFunc = ~static_cast<FuncId>(0);
constexpr BehaviorId kNoBehavior = ~static_cast<BehaviorId>(0);

/** How a basic block transfers control when its body completes. */
enum class TermKind : std::uint8_t
{
    FallThrough,    //!< no control inst; continues at fallThrough
    CondBranch,     //!< cond branch; taken -> takenTarget,
                    //!< not-taken -> fallThrough (next in layout)
    CondBranchJump, //!< cond branch followed by an unconditional jump
                    //!< to fallThrough (layout fix-up; both paths
                    //!< leave the block explicitly)
    Jump,           //!< unconditional jump to takenTarget
    CallFall,       //!< call to callee; resumes at fallThrough
    Return          //!< return to caller
};

/**
 * One basic block.
 */
struct BasicBlock
{
    BlockId id = kNoBlock;          //!< this block's id
    FuncId func = kNoFunc;          //!< owning function
    std::vector<StaticInst> body;   //!< instructions, incl. terminator

    TermKind term = TermKind::FallThrough;
    BlockId takenTarget = kNoBlock; //!< branch/jump taken target
    BlockId fallThrough = kNoBlock; //!< fall-through successor
    FuncId callee = kNoFunc;        //!< CallFall callee function
    BehaviorId behavior = kNoBehavior; //!< cond-branch behaviour model
    bool invertedSense = false;     //!< behaviour polarity flipped by
                                    //!< the code-reordering pass

    std::uint64_t address = 0;      //!< assigned by the layout pass

    /** Number of instructions in the block. */
    int size() const { return static_cast<int>(body.size()); }

    /** Address of instruction @p idx. */
    std::uint64_t
    instAddr(int idx) const
    {
        return address + static_cast<std::uint64_t>(idx) * kInstBytes;
    }

    /** One-past-the-end address of the block. */
    std::uint64_t endAddr() const { return instAddr(size()); }

    /** True if the block ends in a conditional branch. */
    bool
    hasCondBranch() const
    {
        return term == TermKind::CondBranch ||
               term == TermKind::CondBranchJump;
    }

    /**
     * Index of the primary control instruction within the body, or -1
     * for FallThrough blocks.  For CondBranchJump this is the branch;
     * the trailing jump sits at size()-1.
     */
    int
    controlIndex() const
    {
        switch (term) {
          case TermKind::FallThrough:
            return -1;
          case TermKind::CondBranchJump:
            return size() - 2;
          default:
            return size() - 1;
        }
    }
};

/**
 * One function: an entry block plus the blocks it owns, in source
 * order.  Layout order may differ (see Program::layoutOrder).
 */
struct Function
{
    FuncId id = kNoFunc;
    std::string name;
    BlockId entry = kNoBlock;
    std::vector<BlockId> blocks; //!< source order
};

} // namespace fetchsim

#endif // FETCHSIM_PROGRAM_BASIC_BLOCK_H_
