/**
 * @file
 * Address assignment over a Program's layout order.
 *
 * Layout walks Program::layoutOrder(), packs blocks contiguously from
 * a base address, and then resolves every control instruction's
 * displacement field so the static code is a real, encodable 32-bit
 * instruction image.  Compiler passes permute the order (or insert
 * nops) and re-run this.
 */

#ifndef FETCHSIM_PROGRAM_LAYOUT_H_
#define FETCHSIM_PROGRAM_LAYOUT_H_

#include <cstdint>

#include "program/program.h"

namespace fetchsim
{

/** Default code base address (page-aligned, nonzero to catch bugs). */
constexpr std::uint64_t kDefaultCodeBase = 0x10000;

/**
 * Assign block addresses in layout order and resolve control
 * displacements.  Returns the one-past-the-end address of the image.
 */
std::uint64_t assignAddresses(Program &prog,
                              std::uint64_t base = kDefaultCodeBase);

/**
 * Resolve the actual (not predicted) target address of the primary
 * control instruction of @p bb.  Requires addresses to be assigned.
 * For Return the result is 0 (indirect; executor supplies it).
 */
std::uint64_t controlTargetAddr(const Program &prog,
                                const BasicBlock &bb);

/**
 * Verify that every instruction in the laid-out program fits its
 * encoding format (displacement ranges).  Calls panic() on violation.
 */
void checkEncodable(const Program &prog);

} // namespace fetchsim

#endif // FETCHSIM_PROGRAM_LAYOUT_H_
