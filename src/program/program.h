/**
 * @file
 * Whole-program container: functions, blocks, and the layout order.
 */

#ifndef FETCHSIM_PROGRAM_PROGRAM_H_
#define FETCHSIM_PROGRAM_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "program/basic_block.h"

namespace fetchsim
{

/**
 * A complete program over the simulated ISA.
 *
 * Blocks are owned flat (indexed by BlockId); functions reference
 * them.  `layoutOrder` lists every block in memory order; the layout
 * pass turns that order into concrete addresses.  Compiler passes
 * (reordering, padding) permute `layoutOrder` and patch terminators
 * but never change BlockIds, so profiles remain valid across layouts.
 */
class Program
{
  public:
    /** Create an empty program with the given name. */
    explicit Program(std::string name);

    /** Program name (the benchmark name for generated workloads). */
    const std::string &name() const { return name_; }

    /** Append a new function; returns its id. */
    FuncId addFunction(std::string fn_name);

    /**
     * Append a new (empty) block to function @p func; returns its id.
     * The block is also appended to the function's source order and
     * the global layout order.
     */
    BlockId addBlock(FuncId func);

    /** Mutable access to a block. */
    BasicBlock &block(BlockId id);
    /** Immutable access to a block. */
    const BasicBlock &block(BlockId id) const;

    /** Mutable access to a function. */
    Function &function(FuncId id);
    /** Immutable access to a function. */
    const Function &function(FuncId id) const;

    /** Number of blocks / functions. */
    std::size_t numBlocks() const { return blocks_.size(); }
    std::size_t numFunctions() const { return functions_.size(); }

    /** The function where execution starts. */
    FuncId mainFunction() const { return main_; }
    void setMainFunction(FuncId func) { main_ = func; }

    /** Global memory order of blocks (mutated by compiler passes). */
    std::vector<BlockId> &layoutOrder() { return layout_order_; }
    const std::vector<BlockId> &layoutOrder() const
    {
        return layout_order_;
    }

    /** Total static instruction count over all blocks. */
    std::uint64_t totalInstructions() const;

    /** Count of static nops (padding overhead metric for Table 4). */
    std::uint64_t totalNops() const;

    /**
     * Structural validation: every referenced block/function exists,
     * terminators match their bodies, intra-function targets stay in
     * the function, and the layout order is a permutation of all
     * blocks.  Calls panic() on violation (programs are generated, so
     * any breakage is a bug, not user input).
     */
    void validate() const;

  private:
    std::string name_;
    std::vector<Function> functions_;
    std::vector<BasicBlock> blocks_;
    std::vector<BlockId> layout_order_;
    FuncId main_ = kNoFunc;
};

} // namespace fetchsim

#endif // FETCHSIM_PROGRAM_PROGRAM_H_
