#include "program/dump.h"

#include <iomanip>
#include <sstream>

#include "isa/disasm.h"
#include "isa/encoding.h"

namespace fetchsim
{

std::uint64_t
writeListing(const Program &prog, std::ostream &os,
             const ListingOptions &options)
{
    std::uint64_t listed = 0;
    for (BlockId id : prog.layoutOrder()) {
        const BasicBlock &bb = prog.block(id);
        if (options.showBlockHeaders) {
            os << "; block " << bb.id << " ("
               << prog.function(bb.func).name << ")";
            if (bb.invertedSense)
                os << " [branch sense inverted]";
            os << "\n";
        }
        for (int i = 0; i < bb.size(); ++i) {
            const std::uint64_t addr = bb.instAddr(i);
            os << "0x" << std::hex << std::setw(8)
               << std::setfill('0') << addr << std::dec
               << std::setfill(' ') << ":  ";
            if (options.showEncoding) {
                os << std::hex << std::setw(8) << std::setfill('0')
                   << encode(bb.body[i]) << std::dec
                   << std::setfill(' ') << "  ";
            }
            os << disassemble(bb.body[i], addr) << "\n";
            if (++listed == options.maxInsts && options.maxInsts)
                return listed;
        }
    }
    return listed;
}

void
writeDot(const Program &prog, std::ostream &os)
{
    os << "digraph \"" << prog.name() << "\" {\n"
       << "  node [shape=box, fontname=\"monospace\"];\n";

    for (std::size_t f = 0; f < prog.numFunctions(); ++f) {
        const Function &fn = prog.function(static_cast<FuncId>(f));
        os << "  subgraph cluster_fn" << f << " {\n"
           << "    label=\"" << fn.name << "\";\n";
        for (BlockId id : fn.blocks) {
            const BasicBlock &bb = prog.block(id);
            os << "    b" << id << " [label=\"B" << id << "\\n"
               << bb.size() << " inst @0x" << std::hex << bb.address
               << std::dec << "\"];\n";
        }
        os << "  }\n";
    }

    for (std::size_t b = 0; b < prog.numBlocks(); ++b) {
        const BasicBlock &bb = prog.block(static_cast<BlockId>(b));
        switch (bb.term) {
          case TermKind::CondBranch:
          case TermKind::CondBranchJump:
            os << "  b" << bb.id << " -> b" << bb.takenTarget
               << " [label=\"T\"];\n";
            os << "  b" << bb.id << " -> b" << bb.fallThrough
               << " [style=dashed, label=\"N\"];\n";
            break;
          case TermKind::FallThrough:
            os << "  b" << bb.id << " -> b" << bb.fallThrough
               << " [style=dashed];\n";
            break;
          case TermKind::Jump:
            os << "  b" << bb.id << " -> b" << bb.takenTarget
               << ";\n";
            break;
          case TermKind::CallFall: {
            const Function &callee = prog.function(bb.callee);
            os << "  b" << bb.id << " -> b" << callee.entry
               << " [style=dotted, label=\"call\"];\n";
            os << "  b" << bb.id << " -> b" << bb.fallThrough
               << " [style=dashed, label=\"ret-to\"];\n";
            break;
          }
          case TermKind::Return:
            break;
        }
    }
    os << "}\n";
}

std::string
listingString(const Program &prog, const ListingOptions &options)
{
    std::ostringstream os;
    writeListing(prog, os, options);
    return os.str();
}

} // namespace fetchsim
