/**
 * @file
 * Program inspection: full disassembly listings and Graphviz CFG
 * export.  Debugging/teaching aids for the generated workloads and
 * for verifying what the compiler passes did to a layout.
 */

#ifndef FETCHSIM_PROGRAM_DUMP_H_
#define FETCHSIM_PROGRAM_DUMP_H_

#include <ostream>
#include <string>

#include "program/program.h"

namespace fetchsim
{

/** Options for the disassembly listing. */
struct ListingOptions
{
    bool showBlockHeaders = true; //!< "-- block N (fn ...) --" rows
    bool showEncoding = false;    //!< raw 32-bit words
    std::uint64_t maxInsts = 0;   //!< 0 = unlimited
};

/**
 * Write a layout-ordered disassembly listing of @p prog to @p os.
 * Returns the number of instructions listed.
 */
std::uint64_t writeListing(const Program &prog, std::ostream &os,
                           const ListingOptions &options = {});

/**
 * Write @p prog's control-flow graph in Graphviz dot syntax: one
 * cluster per function, taken edges solid, fall-through edges dashed,
 * call edges dotted.
 */
void writeDot(const Program &prog, std::ostream &os);

/** Convenience: the listing as a string (tests, small programs). */
std::string listingString(const Program &prog,
                          const ListingOptions &options = {});

} // namespace fetchsim

#endif // FETCHSIM_PROGRAM_DUMP_H_
