/**
 * @file
 * Operation classes of the simulated 32-bit RISC ISA.
 *
 * The paper captures GCC's intermediate code after PA-RISC register
 * allocation and encodes it in a fixed 32-bit format; the simulator
 * only needs each instruction's class (which functional unit executes
 * it, and whether it transfers control), its registers, and its
 * address.  This header defines those classes and their unit/latency
 * mapping.
 */

#ifndef FETCHSIM_ISA_OPCODE_H_
#define FETCHSIM_ISA_OPCODE_H_

#include <cstdint>

namespace fetchsim
{

/** Size of every instruction in bytes (fixed 32-bit format). */
constexpr std::uint64_t kInstBytes = 4;

/** Operation classes. */
enum class OpClass : std::uint8_t
{
    IntAlu = 0,  //!< fixed-point ALU op (FXU, 1 cycle)
    FpAlu,       //!< floating-point op (FPU, 2 cycles)
    Load,        //!< data-cache load (load unit, 2 cycles)
    Store,       //!< data-cache store (store buffer, 1 cycle)
    CondBranch,  //!< conditional direct branch (branch unit)
    Jump,        //!< unconditional direct jump
    Call,        //!< direct call (pushes return address)
    Return,      //!< indirect return
    Nop,         //!< padding nop (FXU, 1 cycle)
    NumOpClasses
};

/** Number of distinct op classes (array-sizing helper). */
constexpr int kNumOpClasses = static_cast<int>(OpClass::NumOpClasses);

/** Which kind of functional unit executes an op class. */
enum class UnitKind : std::uint8_t
{
    Fxu = 0,     //!< fixed-point unit
    Fpu,         //!< floating-point unit
    BranchUnit,  //!< branch resolution unit
    LoadUnit,    //!< data-cache load port
    StorePort,   //!< store-buffer port
    NumUnitKinds
};

/** Number of distinct unit kinds. */
constexpr int kNumUnitKinds = static_cast<int>(UnitKind::NumUnitKinds);

/** True if @p op redirects control flow (conditionally or not). */
constexpr bool
isControl(OpClass op)
{
    return op == OpClass::CondBranch || op == OpClass::Jump ||
           op == OpClass::Call || op == OpClass::Return;
}

/** True if @p op is an *unconditional* control transfer. */
constexpr bool
isUnconditionalControl(OpClass op)
{
    return op == OpClass::Jump || op == OpClass::Call ||
           op == OpClass::Return;
}

/**
 * Functional-unit kind that executes @p op.
 *
 * Defined inline: the dispatch and fire kernels call this for every
 * in-flight instruction every cycle, so the mapping must fold into
 * the caller rather than cross a translation unit.
 */
constexpr UnitKind
unitFor(OpClass op)
{
    switch (op) {
      case OpClass::FpAlu:
        return UnitKind::Fpu;
      case OpClass::Load:
        return UnitKind::LoadUnit;
      case OpClass::Store:
        return UnitKind::StorePort;
      case OpClass::CondBranch:
      case OpClass::Jump:
      case OpClass::Call:
      case OpClass::Return:
        return UnitKind::BranchUnit;
      case OpClass::IntAlu:
      case OpClass::Nop:
      default:
        return UnitKind::Fxu;
    }
}

/** Execution latency in cycles of @p op (Table 1 latencies). */
constexpr int
latencyOf(OpClass op)
{
    return (op == OpClass::FpAlu || op == OpClass::Load) ? 2 : 1;
}

/** Short mnemonic, e.g. "add", "br", "ld". */
const char *mnemonic(OpClass op);

/** Name of a unit kind, e.g. "FXU". */
const char *unitName(UnitKind kind);

/**
 * Register identifiers: 0..31 are the fixed-point registers r0..r31,
 * 32..63 are the floating-point registers f0..f31.  Register 0 (r0)
 * is hard-wired to zero and never renamed, matching RISC convention.
 */
constexpr std::uint8_t kNumIntRegs = 32;
constexpr std::uint8_t kNumFpRegs = 32;
constexpr std::uint8_t kNumArchRegs = kNumIntRegs + kNumFpRegs;
constexpr std::uint8_t kZeroReg = 0;
constexpr std::uint8_t kFpRegBase = kNumIntRegs;

/** True if @p reg names a floating-point register. */
constexpr bool
isFpReg(std::uint8_t reg)
{
    return reg >= kFpRegBase && reg < kNumArchRegs;
}

} // namespace fetchsim

#endif // FETCHSIM_ISA_OPCODE_H_
