/**
 * @file
 * Decoded form of one static instruction.
 *
 * A StaticInst lives inside a basic block; the fields the pipeline
 * consumes are the op class and the register operands.  Control
 * instructions carry a displacement that is resolved (in instruction
 * units, relative to the instruction's own address) once the program
 * layout assigns addresses.
 */

#ifndef FETCHSIM_ISA_STATIC_INST_H_
#define FETCHSIM_ISA_STATIC_INST_H_

#include <cstdint>

#include "isa/opcode.h"

namespace fetchsim
{

/**
 * One decoded instruction.  Plain aggregate; copied freely.
 */
struct StaticInst
{
    OpClass op = OpClass::Nop;   //!< operation class
    std::uint8_t dest = 0;       //!< destination register (0 if none)
    std::uint8_t src1 = 0;       //!< first source register
    std::uint8_t src2 = 0;       //!< second source register
    std::int32_t imm = 0;        //!< immediate / branch displacement

    /** True if this instruction transfers control. */
    bool isControl() const { return fetchsim::isControl(op); }

    /** True for a conditional branch. */
    bool isCondBranch() const { return op == OpClass::CondBranch; }

    /** True if this instruction produces a register value. */
    bool
    writesRegister() const
    {
        switch (op) {
          case OpClass::IntAlu:
          case OpClass::FpAlu:
          case OpClass::Load:
            return dest != kZeroReg;
          case OpClass::Call:
            return true; // writes the link register
          default:
            return false;
        }
    }
};

/** Convenience factories used by the workload generator and tests. */
StaticInst makeIntAlu(std::uint8_t dest, std::uint8_t src1,
                      std::uint8_t src2, std::int32_t imm = 0);
StaticInst makeFpAlu(std::uint8_t dest, std::uint8_t src1,
                     std::uint8_t src2);
StaticInst makeLoad(std::uint8_t dest, std::uint8_t base,
                    std::int32_t offset);
StaticInst makeStore(std::uint8_t value, std::uint8_t base,
                     std::int32_t offset);
StaticInst makeCondBranch(std::uint8_t src1, std::uint8_t src2);
StaticInst makeJump();
StaticInst makeCall();
StaticInst makeReturn();
StaticInst makeNop();

} // namespace fetchsim

#endif // FETCHSIM_ISA_STATIC_INST_H_
