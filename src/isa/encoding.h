/**
 * @file
 * Bit-level encoder/decoder for the fixed 32-bit instruction format.
 *
 * Three formats share a 4-bit major opcode in bits [31:28]:
 *
 *   R-format (IntAlu, FpAlu, Load, Store, Nop):
 *     [31:28] op | [27:22] dest | [21:16] src1 | [15:10] src2 |
 *     [9:0]   imm10 (signed)
 *
 *   B-format (CondBranch):
 *     [31:28] op | [27:22] src1 | [21:16] src2 | [15:0] disp16 (signed,
 *     instruction units, relative to the branch's own address)
 *
 *   J-format (Jump, Call, Return):
 *     [31:28] op | [27:0] disp28 (signed, instruction units; zero for
 *     Return, whose target is indirect)
 *
 * The simulator operates on decoded StaticInst values; the encoder
 * exists because the paper's instruction stream is a genuine fixed
 * 32-bit format, and round-tripping through it is checked by tests.
 */

#ifndef FETCHSIM_ISA_ENCODING_H_
#define FETCHSIM_ISA_ENCODING_H_

#include <cstdint>

#include "isa/static_inst.h"

namespace fetchsim
{

/** Signed-immediate field limits. */
constexpr std::int32_t kImm10Max = 511;
constexpr std::int32_t kImm10Min = -512;
constexpr std::int32_t kDisp16Max = 32767;
constexpr std::int32_t kDisp16Min = -32768;
constexpr std::int32_t kDisp28Max = (1 << 27) - 1;
constexpr std::int32_t kDisp28Min = -(1 << 27);

/**
 * Encode @p inst into its 32-bit machine form.
 * Calls fatal() if an immediate/displacement exceeds its field.
 */
std::uint32_t encode(const StaticInst &inst);

/** Decode a 32-bit word back into a StaticInst. */
StaticInst decode(std::uint32_t word);

/** True if @p inst fits its format's immediate field. */
bool encodable(const StaticInst &inst);

} // namespace fetchsim

#endif // FETCHSIM_ISA_ENCODING_H_
