#include "isa/static_inst.h"

namespace fetchsim
{

StaticInst
makeIntAlu(std::uint8_t dest, std::uint8_t src1, std::uint8_t src2,
           std::int32_t imm)
{
    StaticInst inst;
    inst.op = OpClass::IntAlu;
    inst.dest = dest;
    inst.src1 = src1;
    inst.src2 = src2;
    inst.imm = imm;
    return inst;
}

StaticInst
makeFpAlu(std::uint8_t dest, std::uint8_t src1, std::uint8_t src2)
{
    StaticInst inst;
    inst.op = OpClass::FpAlu;
    inst.dest = dest;
    inst.src1 = src1;
    inst.src2 = src2;
    return inst;
}

StaticInst
makeLoad(std::uint8_t dest, std::uint8_t base, std::int32_t offset)
{
    StaticInst inst;
    inst.op = OpClass::Load;
    inst.dest = dest;
    inst.src1 = base;
    inst.imm = offset;
    return inst;
}

StaticInst
makeStore(std::uint8_t value, std::uint8_t base, std::int32_t offset)
{
    StaticInst inst;
    inst.op = OpClass::Store;
    inst.src1 = base;
    inst.src2 = value;
    inst.imm = offset;
    return inst;
}

StaticInst
makeCondBranch(std::uint8_t src1, std::uint8_t src2)
{
    StaticInst inst;
    inst.op = OpClass::CondBranch;
    inst.src1 = src1;
    inst.src2 = src2;
    return inst;
}

StaticInst
makeJump()
{
    StaticInst inst;
    inst.op = OpClass::Jump;
    return inst;
}

StaticInst
makeCall()
{
    StaticInst inst;
    inst.op = OpClass::Call;
    inst.dest = 31; // link register r31, RISC convention
    return inst;
}

StaticInst
makeReturn()
{
    StaticInst inst;
    inst.op = OpClass::Return;
    inst.src1 = 31; // reads the link register
    return inst;
}

StaticInst
makeNop()
{
    return StaticInst{};
}

} // namespace fetchsim
