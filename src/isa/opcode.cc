#include "isa/opcode.h"

namespace fetchsim
{

const char *
mnemonic(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu:     return "add";
      case OpClass::FpAlu:      return "fadd";
      case OpClass::Load:       return "ld";
      case OpClass::Store:      return "st";
      case OpClass::CondBranch: return "br";
      case OpClass::Jump:       return "j";
      case OpClass::Call:       return "call";
      case OpClass::Return:     return "ret";
      case OpClass::Nop:        return "nop";
      default:                  return "???";
    }
}

const char *
unitName(UnitKind kind)
{
    switch (kind) {
      case UnitKind::Fxu:        return "FXU";
      case UnitKind::Fpu:        return "FPU";
      case UnitKind::BranchUnit: return "BRU";
      case UnitKind::LoadUnit:   return "LSU";
      case UnitKind::StorePort:  return "STB";
      default:                   return "???";
    }
}

} // namespace fetchsim
