#include "isa/opcode.h"

#include "stats/log.h"

namespace fetchsim
{

UnitKind
unitFor(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu:
      case OpClass::Nop:
        return UnitKind::Fxu;
      case OpClass::FpAlu:
        return UnitKind::Fpu;
      case OpClass::Load:
        return UnitKind::LoadUnit;
      case OpClass::Store:
        return UnitKind::StorePort;
      case OpClass::CondBranch:
      case OpClass::Jump:
      case OpClass::Call:
      case OpClass::Return:
        return UnitKind::BranchUnit;
      default:
        panic("unitFor: bad op class");
    }
}

int
latencyOf(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu:
      case OpClass::Nop:
      case OpClass::Store:
      case OpClass::CondBranch:
      case OpClass::Jump:
      case OpClass::Call:
      case OpClass::Return:
        return 1;
      case OpClass::FpAlu:
      case OpClass::Load:
        return 2;
      default:
        panic("latencyOf: bad op class");
    }
}

const char *
mnemonic(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu:     return "add";
      case OpClass::FpAlu:      return "fadd";
      case OpClass::Load:       return "ld";
      case OpClass::Store:      return "st";
      case OpClass::CondBranch: return "br";
      case OpClass::Jump:       return "j";
      case OpClass::Call:       return "call";
      case OpClass::Return:     return "ret";
      case OpClass::Nop:        return "nop";
      default:                  return "???";
    }
}

const char *
unitName(UnitKind kind)
{
    switch (kind) {
      case UnitKind::Fxu:        return "FXU";
      case UnitKind::Fpu:        return "FPU";
      case UnitKind::BranchUnit: return "BRU";
      case UnitKind::LoadUnit:   return "LSU";
      case UnitKind::StorePort:  return "STB";
      default:                   return "???";
    }
}

} // namespace fetchsim
