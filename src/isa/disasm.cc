#include "isa/disasm.h"

#include <cstdio>

namespace fetchsim
{

std::string
regName(std::uint8_t reg)
{
    char buf[8];
    if (isFpReg(reg))
        std::snprintf(buf, sizeof(buf), "f%d", reg - kFpRegBase);
    else
        std::snprintf(buf, sizeof(buf), "r%d", reg);
    return buf;
}

std::string
disassemble(const StaticInst &inst, std::uint64_t pc)
{
    char buf[96];
    std::uint64_t target =
        pc + static_cast<std::int64_t>(inst.imm) * kInstBytes;
    switch (inst.op) {
      case OpClass::IntAlu:
        std::snprintf(buf, sizeof(buf), "add  %s, %s, %s, #%d",
                      regName(inst.dest).c_str(),
                      regName(inst.src1).c_str(),
                      regName(inst.src2).c_str(), inst.imm);
        break;
      case OpClass::FpAlu:
        std::snprintf(buf, sizeof(buf), "fadd %s, %s, %s",
                      regName(inst.dest).c_str(),
                      regName(inst.src1).c_str(),
                      regName(inst.src2).c_str());
        break;
      case OpClass::Load:
        std::snprintf(buf, sizeof(buf), "ld   %s, %d(%s)",
                      regName(inst.dest).c_str(), inst.imm,
                      regName(inst.src1).c_str());
        break;
      case OpClass::Store:
        std::snprintf(buf, sizeof(buf), "st   %s, %d(%s)",
                      regName(inst.src2).c_str(), inst.imm,
                      regName(inst.src1).c_str());
        break;
      case OpClass::CondBranch:
        std::snprintf(buf, sizeof(buf), "br   %s, %s, 0x%llx",
                      regName(inst.src1).c_str(),
                      regName(inst.src2).c_str(),
                      static_cast<unsigned long long>(target));
        break;
      case OpClass::Jump:
        std::snprintf(buf, sizeof(buf), "j    0x%llx",
                      static_cast<unsigned long long>(target));
        break;
      case OpClass::Call:
        std::snprintf(buf, sizeof(buf), "call 0x%llx",
                      static_cast<unsigned long long>(target));
        break;
      case OpClass::Return:
        std::snprintf(buf, sizeof(buf), "ret");
        break;
      case OpClass::Nop:
        std::snprintf(buf, sizeof(buf), "nop");
        break;
      default:
        std::snprintf(buf, sizeof(buf), "???");
        break;
    }
    return buf;
}

} // namespace fetchsim
