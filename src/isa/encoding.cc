#include "isa/encoding.h"

#include "stats/log.h"

namespace fetchsim
{

namespace
{

/** Extract bits [hi:lo] of @p word. */
std::uint32_t
bits(std::uint32_t word, int hi, int lo)
{
    return (word >> lo) & ((1u << (hi - lo + 1)) - 1u);
}

/** Sign-extend the low @p width bits of @p value. */
std::int32_t
signExtend(std::uint32_t value, int width)
{
    std::uint32_t sign_bit = 1u << (width - 1);
    std::uint32_t mask = (width == 32) ? ~0u : ((1u << width) - 1u);
    value &= mask;
    if (value & sign_bit)
        value |= ~mask;
    return static_cast<std::int32_t>(value);
}

/** Format classification for an op class. */
enum class Format { R, B, J };

Format
formatOf(OpClass op)
{
    switch (op) {
      case OpClass::CondBranch:
        return Format::B;
      case OpClass::Jump:
      case OpClass::Call:
      case OpClass::Return:
        return Format::J;
      default:
        return Format::R;
    }
}

} // anonymous namespace

bool
encodable(const StaticInst &inst)
{
    switch (formatOf(inst.op)) {
      case Format::R:
        return inst.imm >= kImm10Min && inst.imm <= kImm10Max;
      case Format::B:
        return inst.imm >= kDisp16Min && inst.imm <= kDisp16Max;
      case Format::J:
        return inst.imm >= kDisp28Min && inst.imm <= kDisp28Max;
    }
    return false;
}

std::uint32_t
encode(const StaticInst &inst)
{
    if (!encodable(inst))
        fatal("encode: immediate out of range for format");

    std::uint32_t op_field = static_cast<std::uint32_t>(inst.op) << 28;
    switch (formatOf(inst.op)) {
      case Format::R:
        return op_field |
               (static_cast<std::uint32_t>(inst.dest & 0x3f) << 22) |
               (static_cast<std::uint32_t>(inst.src1 & 0x3f) << 16) |
               (static_cast<std::uint32_t>(inst.src2 & 0x3f) << 10) |
               (static_cast<std::uint32_t>(inst.imm) & 0x3ff);
      case Format::B:
        return op_field |
               (static_cast<std::uint32_t>(inst.src1 & 0x3f) << 22) |
               (static_cast<std::uint32_t>(inst.src2 & 0x3f) << 16) |
               (static_cast<std::uint32_t>(inst.imm) & 0xffff);
      case Format::J:
        return op_field |
               (static_cast<std::uint32_t>(inst.imm) & 0x0fffffff);
    }
    panic("encode: unreachable");
}

StaticInst
decode(std::uint32_t word)
{
    StaticInst inst;
    std::uint32_t op_field = bits(word, 31, 28);
    if (op_field >= static_cast<std::uint32_t>(OpClass::NumOpClasses))
        fatal("decode: illegal opcode field");
    inst.op = static_cast<OpClass>(op_field);

    switch (formatOf(inst.op)) {
      case Format::R:
        inst.dest = static_cast<std::uint8_t>(bits(word, 27, 22));
        inst.src1 = static_cast<std::uint8_t>(bits(word, 21, 16));
        inst.src2 = static_cast<std::uint8_t>(bits(word, 15, 10));
        inst.imm = signExtend(bits(word, 9, 0), 10);
        break;
      case Format::B:
        inst.src1 = static_cast<std::uint8_t>(bits(word, 27, 22));
        inst.src2 = static_cast<std::uint8_t>(bits(word, 21, 16));
        inst.imm = signExtend(bits(word, 15, 0), 16);
        break;
      case Format::J:
        inst.imm = signExtend(bits(word, 27, 0), 28);
        if (inst.op == OpClass::Call)
            inst.dest = 31;
        if (inst.op == OpClass::Return)
            inst.src1 = 31;
        break;
    }
    return inst;
}

} // namespace fetchsim
