/**
 * @file
 * Tiny disassembler for debugging dumps and the examples.
 */

#ifndef FETCHSIM_ISA_DISASM_H_
#define FETCHSIM_ISA_DISASM_H_

#include <cstdint>
#include <string>

#include "isa/static_inst.h"

namespace fetchsim
{

/** Render a register name ("r7" / "f3"). */
std::string regName(std::uint8_t reg);

/**
 * Disassemble @p inst at address @p pc.  Control displacements are
 * rendered as absolute target addresses when @p pc is non-zero.
 */
std::string disassemble(const StaticInst &inst, std::uint64_t pc = 0);

} // namespace fetchsim

#endif // FETCHSIM_ISA_DISASM_H_
