/**
 * @file
 * Profile-driven code reordering (trace layout).
 *
 * Lays the program out in selected-trace order and patches
 * terminators so the hot path falls through:
 *
 *  - a conditional branch whose taken target becomes the next block
 *    is *inverted* (sense flip recorded on the block, applied by the
 *    executor), converting a taken branch into a fall-through;
 *  - a conditional branch neither of whose targets is next gains a
 *    trailing unconditional jump (CondBranchJump);
 *  - a fall-through whose successor moved away becomes a jump;
 *  - a jump whose target becomes the next block is *removed*
 *    (becomes a fall-through).
 *
 * This is the optimization the paper evaluates in Section 4/Figure 12
 * and Table 3 (taken-branch reduction).
 */

#ifndef FETCHSIM_COMPILER_CODE_LAYOUT_H_
#define FETCHSIM_COMPILER_CODE_LAYOUT_H_

#include <vector>

#include "compiler/trace_selection.h"
#include "workload/generator.h"

namespace fetchsim
{

/** Outcome of a reordering pass (static fix-up census). */
struct ReorderStats
{
    std::uint64_t inverted = 0;      //!< branches sense-flipped
    std::uint64_t jumpsInserted = 0; //!< new unconditional jumps
    std::uint64_t jumpsRemoved = 0;  //!< jumps turned fall-through
    std::size_t numTraces = 0;
};

/**
 * Reorder @p workload's program into @p traces order and patch
 * terminators.  Re-assigns addresses and validates.  The traces must
 * have been selected on this exact program.
 */
ReorderStats applyTraceLayout(Workload &workload,
                              const std::vector<Trace> &traces);

/**
 * Convenience: profile with the training inputs, select traces, and
 * apply the layout.  Returns the traces (for pad-trace) via
 * @p out_traces when non-null.
 */
ReorderStats reorderWorkload(Workload &workload,
                             const ProfileOptions &profile_options = {},
                             const TraceOptions &trace_options = {},
                             std::vector<Trace> *out_traces = nullptr);

} // namespace fetchsim

#endif // FETCHSIM_COMPILER_CODE_LAYOUT_H_
