#include "compiler/profile.h"

#include "exec/executor.h"
#include "stats/log.h"

namespace fetchsim
{

namespace
{

/** Accumulates counts while an Executor runs. */
class ProfileObserver : public ExecObserver
{
  public:
    explicit ProfileObserver(EdgeProfile &profile) : profile_(profile)
    {
    }

    void onBlock(BlockId block) override
    {
        ++profile_.blockCount[block];
    }

    void
    onCondBranch(BlockId block, bool taken) override
    {
        if (taken)
            ++profile_.takenCount[block];
        else
            ++profile_.notTakenCount[block];
    }

  private:
    EdgeProfile &profile_;
};

} // anonymous namespace

std::uint64_t
EdgeProfile::edgeWeight(const BasicBlock &bb, BlockId succ) const
{
    switch (bb.term) {
      case TermKind::CondBranch:
      case TermKind::CondBranchJump: {
        std::uint64_t weight = 0;
        if (bb.takenTarget == succ)
            weight += takenCount[bb.id];
        if (bb.fallThrough == succ)
            weight += notTakenCount[bb.id];
        return weight;
      }
      case TermKind::FallThrough:
        return bb.fallThrough == succ ? blockCount[bb.id] : 0;
      case TermKind::Jump:
        return bb.takenTarget == succ ? blockCount[bb.id] : 0;
      case TermKind::CallFall:
        // The post-call continuation executes once per call.
        return bb.fallThrough == succ ? blockCount[bb.id] : 0;
      case TermKind::Return:
        return 0;
    }
    return 0;
}

double
EdgeProfile::edgeProb(const BasicBlock &bb, BlockId succ) const
{
    const std::uint64_t total = blockCount[bb.id];
    if (total == 0)
        return 0.0;
    return static_cast<double>(edgeWeight(bb, succ)) /
           static_cast<double>(total);
}

EdgeProfile
collectProfile(const Workload &workload, const ProfileOptions &options)
{
    if (options.numInputs < 1 || options.numInputs > kNumTrainInputs)
        fatal("collectProfile: bad training-input count");

    EdgeProfile profile(workload.program.numBlocks());
    ProfileObserver observer(profile);

    for (int input = 0; input < options.numInputs; ++input) {
        Executor exec(workload, input);
        exec.setObserver(&observer);
        DynInst di;
        for (std::uint64_t i = 0; i < options.instsPerInput; ++i)
            exec.next(di);
    }
    return profile;
}

} // namespace fetchsim
