/**
 * @file
 * Profile-guided function placement (Pettis & Hansen, the paper's
 * reference [8]).
 *
 * Trace layout (code_layout.h) orders blocks *within* functions; this
 * pass orders the functions themselves so that callers and their
 * hottest callees sit adjacent in memory, shrinking the I-cache
 * working set.  The paper applies its reference's intra-procedural
 * half; this pass supplies the inter-procedural half as an extension,
 * evaluated in the hardware ablation bench.
 */

#ifndef FETCHSIM_COMPILER_FUNCTION_LAYOUT_H_
#define FETCHSIM_COMPILER_FUNCTION_LAYOUT_H_

#include <cstdint>
#include <vector>

#include "compiler/profile.h"
#include "workload/generator.h"

namespace fetchsim
{

/** Static census of a function-placement pass. */
struct FunctionLayoutStats
{
    std::size_t numFunctions = 0;
    std::size_t chains = 0;          //!< affinity chains formed
    std::uint64_t adjacentCallWeight = 0; //!< call weight between
                                          //!< now-adjacent functions
    std::uint64_t totalCallWeight = 0;    //!< all dynamic call weight
};

/**
 * Dynamic call-edge weights: weight[caller][callee] = executions of
 * caller blocks that call callee.  Derived from an EdgeProfile.
 */
std::vector<std::vector<std::uint64_t>> callEdgeWeights(
    const Program &prog, const EdgeProfile &profile);

/**
 * Reorder @p workload's functions by greedy call-affinity chaining
 * (heaviest call edges merge their endpoints' chains first), keeping
 * each function's internal block order.  Re-lays-out and validates.
 */
FunctionLayoutStats placeFunctions(Workload &workload,
                                   const EdgeProfile &profile);

} // namespace fetchsim

#endif // FETCHSIM_COMPILER_FUNCTION_LAYOUT_H_
