#include "compiler/trace_selection.h"

#include <algorithm>

#include "stats/log.h"

namespace fetchsim
{

namespace
{

/** Intra-function CFG successors of @p bb (call edges excluded). */
void
successorsOf(const BasicBlock &bb, std::vector<BlockId> &out)
{
    out.clear();
    switch (bb.term) {
      case TermKind::CondBranch:
      case TermKind::CondBranchJump:
        out.push_back(bb.takenTarget);
        if (bb.fallThrough != bb.takenTarget)
            out.push_back(bb.fallThrough);
        break;
      case TermKind::FallThrough:
      case TermKind::CallFall:
        out.push_back(bb.fallThrough);
        break;
      case TermKind::Jump:
        out.push_back(bb.takenTarget);
        break;
      case TermKind::Return:
        break;
    }
}

} // anonymous namespace

std::vector<Trace>
selectTraces(const Program &prog, const EdgeProfile &profile,
             const TraceOptions &options)
{
    const std::size_t n = prog.numBlocks();
    simAssert(profile.blockCount.size() == n,
              "profile matches program");

    // Predecessor lists.
    std::vector<std::vector<BlockId>> preds(n);
    std::vector<BlockId> succs;
    for (std::size_t i = 0; i < n; ++i) {
        const BasicBlock &bb = prog.block(static_cast<BlockId>(i));
        successorsOf(bb, succs);
        for (BlockId s : succs)
            preds[s].push_back(bb.id);
    }

    std::vector<bool> visited(n, false);
    std::vector<Trace> traces;

    auto bestSuccessor = [&](BlockId b) -> BlockId {
        const BasicBlock &bb = prog.block(b);
        successorsOf(bb, succs);
        BlockId best = kNoBlock;
        std::uint64_t best_weight = 0;
        for (BlockId s : succs) {
            const std::uint64_t w = profile.edgeWeight(bb, s);
            if (w > best_weight) {
                best_weight = w;
                best = s;
            }
        }
        if (best == kNoBlock)
            return kNoBlock;
        if (profile.edgeProb(bb, best) < options.threshold)
            return kNoBlock;
        return best;
    };

    auto bestPredecessor = [&](BlockId h) -> BlockId {
        BlockId best = kNoBlock;
        std::uint64_t best_weight = 0;
        for (BlockId p : preds[h]) {
            const std::uint64_t w =
                profile.edgeWeight(prog.block(p), h);
            if (w > best_weight) {
                best_weight = w;
                best = p;
            }
        }
        if (best == kNoBlock)
            return kNoBlock;
        if (profile.edgeProb(prog.block(best), h) < options.threshold)
            return kNoBlock;
        // Only attach if the trace head is also where this
        // predecessor most wants to go, so we do not steal it from a
        // better placement.
        successorsOf(prog.block(best), succs);
        for (BlockId s : succs) {
            if (s != h && profile.edgeWeight(prog.block(best), s) >
                              profile.edgeWeight(prog.block(best), h))
                return kNoBlock;
        }
        return best;
    };

    // Process functions in original order; within each, seed from the
    // hottest unvisited block.
    for (std::size_t f = 0; f < prog.numFunctions(); ++f) {
        const Function &fn = prog.function(static_cast<FuncId>(f));
        std::vector<BlockId> order = fn.blocks;
        std::stable_sort(order.begin(), order.end(),
                         [&](BlockId a, BlockId b) {
                             return profile.blockCount[a] >
                                    profile.blockCount[b];
                         });

        std::size_t first_trace = traces.size();
        for (BlockId seed : order) {
            if (visited[seed])
                continue;
            Trace trace;
            trace.func = fn.id;
            trace.seedWeight = profile.blockCount[seed];
            trace.blocks.push_back(seed);
            visited[seed] = true;

            // Grow forward from the tail.
            for (;;) {
                BlockId next = bestSuccessor(trace.blocks.back());
                if (next == kNoBlock || visited[next] ||
                    prog.block(next).func != fn.id)
                    break;
                trace.blocks.push_back(next);
                visited[next] = true;
            }
            // Grow backward from the head.
            for (;;) {
                BlockId prev = bestPredecessor(trace.blocks.front());
                if (prev == kNoBlock || visited[prev] ||
                    prog.block(prev).func != fn.id)
                    break;
                trace.blocks.insert(trace.blocks.begin(), prev);
                visited[prev] = true;
            }
            traces.push_back(std::move(trace));
        }

        // Chain the function's traces (Pettis-Hansen style): after
        // the hottest trace, prefer the trace whose head is the most
        // likely successor of the current trace's tail, so trace-end
        // fall-throughs connect without inserted jumps.  Fall back to
        // the next-hottest trace when no successor connects.
        std::vector<Trace> pool(
            std::make_move_iterator(
                traces.begin() +
                static_cast<std::ptrdiff_t>(first_trace)),
            std::make_move_iterator(traces.end()));
        traces.resize(first_trace);
        std::stable_sort(pool.begin(), pool.end(),
                         [](const Trace &a, const Trace &b) {
                             return a.seedWeight > b.seedWeight;
                         });
        std::vector<bool> placed(pool.size(), false);
        std::size_t placed_count = 0;
        std::size_t hottest = 0;
        while (placed_count < pool.size()) {
            // Next unplaced hottest trace starts a new chain.
            while (hottest < pool.size() && placed[hottest])
                ++hottest;
            std::size_t current = hottest;
            for (;;) {
                placed[current] = true;
                ++placed_count;
                traces.push_back(std::move(pool[current]));
                const BasicBlock &tail =
                    prog.block(traces.back().blocks.back());
                std::size_t best = pool.size();
                std::uint64_t best_weight = 0;
                for (std::size_t t = 0; t < pool.size(); ++t) {
                    if (placed[t])
                        continue;
                    const std::uint64_t w = profile.edgeWeight(
                        tail, pool[t].blocks.front());
                    if (w > best_weight) {
                        best_weight = w;
                        best = t;
                    }
                }
                if (best == pool.size())
                    break; // no successor connects; new chain
                current = best;
            }
        }
    }
    return traces;
}

} // namespace fetchsim
