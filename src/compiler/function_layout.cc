#include "compiler/function_layout.h"

#include <algorithm>
#include <numeric>

#include "program/layout.h"
#include "stats/log.h"

namespace fetchsim
{

std::vector<std::vector<std::uint64_t>>
callEdgeWeights(const Program &prog, const EdgeProfile &profile)
{
    const std::size_t n = prog.numFunctions();
    std::vector<std::vector<std::uint64_t>> weights(
        n, std::vector<std::uint64_t>(n, 0));
    for (std::size_t b = 0; b < prog.numBlocks(); ++b) {
        const BasicBlock &bb = prog.block(static_cast<BlockId>(b));
        if (bb.term != TermKind::CallFall)
            continue;
        weights[bb.func][bb.callee] += profile.blockCount[bb.id];
    }
    return weights;
}

FunctionLayoutStats
placeFunctions(Workload &workload, const EdgeProfile &profile)
{
    Program &prog = workload.program;
    const std::size_t n = prog.numFunctions();
    FunctionLayoutStats stats;
    stats.numFunctions = n;

    const auto weights = callEdgeWeights(prog, profile);

    // Collect weighted call edges, heaviest first.
    struct Edge
    {
        std::uint64_t weight;
        FuncId from;
        FuncId to;
    };
    std::vector<Edge> edges;
    for (std::size_t f = 0; f < n; ++f) {
        for (std::size_t g = 0; g < n; ++g) {
            stats.totalCallWeight += weights[f][g];
            if (weights[f][g] > 0 && f != g) {
                edges.push_back({weights[f][g],
                                 static_cast<FuncId>(f),
                                 static_cast<FuncId>(g)});
            }
        }
    }
    std::stable_sort(edges.begin(), edges.end(),
                     [](const Edge &a, const Edge &b) {
                         return a.weight > b.weight;
                     });

    // Greedy chain merging (Pettis-Hansen): each function starts as
    // a singleton chain; the heaviest edge whose endpoints are the
    // tail of one chain and the head of another glues them.
    std::vector<std::vector<FuncId>> chains(n);
    std::vector<int> chain_of(n);
    for (std::size_t f = 0; f < n; ++f) {
        chains[f] = {static_cast<FuncId>(f)};
        chain_of[f] = static_cast<int>(f);
    }
    for (const Edge &edge : edges) {
        const int cf = chain_of[edge.from];
        const int cg = chain_of[edge.to];
        if (cf == cg)
            continue;
        // Glue only tail-of(cf) -> head-of(cg) so the call site ends
        // up physically before (and near) the callee entry.
        if (chains[static_cast<std::size_t>(cf)].back() != edge.from)
            continue;
        if (chains[static_cast<std::size_t>(cg)].front() != edge.to)
            continue;
        stats.adjacentCallWeight += edge.weight;
        auto &dst = chains[static_cast<std::size_t>(cf)];
        auto &src = chains[static_cast<std::size_t>(cg)];
        for (FuncId f : src)
            chain_of[f] = cf;
        dst.insert(dst.end(), src.begin(), src.end());
        src.clear();
    }

    // Chain order: by total dynamic weight, main's chain first.
    std::vector<int> chain_ids;
    for (std::size_t c = 0; c < n; ++c)
        if (!chains[c].empty())
            chain_ids.push_back(static_cast<int>(c));
    stats.chains = chain_ids.size();

    auto chainWeight = [&](int c) {
        std::uint64_t total = 0;
        for (FuncId f : chains[static_cast<std::size_t>(c)])
            for (BlockId b : prog.function(f).blocks)
                total += profile.blockCount[b];
        return total;
    };
    const int main_chain = chain_of[prog.mainFunction()];
    std::stable_sort(chain_ids.begin(), chain_ids.end(),
                     [&](int a, int b) {
                         if (a == main_chain || b == main_chain)
                             return a == main_chain;
                         return chainWeight(a) > chainWeight(b);
                     });

    // Rebuild the global layout: functions in chain order, each
    // function's blocks in their current layout-relative order.
    std::vector<std::vector<BlockId>> fn_blocks(n);
    for (BlockId id : prog.layoutOrder())
        fn_blocks[prog.block(id).func].push_back(id);

    std::vector<BlockId> order;
    order.reserve(prog.numBlocks());
    for (int c : chain_ids)
        for (FuncId f : chains[static_cast<std::size_t>(c)])
            order.insert(order.end(), fn_blocks[f].begin(),
                         fn_blocks[f].end());
    simAssert(order.size() == prog.numBlocks(),
              "function placement covers every block");
    prog.layoutOrder() = order;

    assignAddresses(prog);
    prog.validate();
    checkEncodable(prog);
    return stats;
}

} // namespace fetchsim
