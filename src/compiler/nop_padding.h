/**
 * @file
 * Nop insertion for branch-target alignment (paper Section 4.1).
 *
 * Two schemes:
 *  - *pad-all*: after every block, insert nops so the next block
 *    starts at a cache-block boundary (no profile needed);
 *  - *pad-trace*: insert nops only at the end of each selected trace
 *    so the following trace starts block-aligned.  Since trace
 *    selection puts likely-taken branches at trace ends, the nops are
 *    seldom executed.
 *
 * Padding is modeled faithfully as filler blocks in the layout: a
 * padded block's fall-through path executes the nops (exactly as the
 * hardware would fall into them), while taken branches skip them.
 */

#ifndef FETCHSIM_COMPILER_NOP_PADDING_H_
#define FETCHSIM_COMPILER_NOP_PADDING_H_

#include <cstdint>
#include <vector>

#include "compiler/trace_selection.h"
#include "workload/generator.h"

namespace fetchsim
{

/** Static code-growth census of a padding pass (paper Table 4). */
struct PaddingStats
{
    std::uint64_t originalInsts = 0; //!< static size before padding
    std::uint64_t nopsInserted = 0;  //!< nops added

    /** Nop overhead as a percentage of original code size. */
    double
    percent() const
    {
        return originalInsts == 0
                   ? 0.0
                   : 100.0 * static_cast<double>(nopsInserted) /
                         static_cast<double>(originalInsts);
    }
};

/**
 * Pad after every block so each block's successor starts at a
 * @p block_bytes boundary.  Re-lays-out and validates.
 */
PaddingStats padAll(Workload &workload, std::uint64_t block_bytes);

/**
 * Pad only at the last block of each trace (apply after
 * applyTraceLayout with the same traces).  Re-lays-out and validates.
 */
PaddingStats padTrace(Workload &workload,
                      const std::vector<Trace> &traces,
                      std::uint64_t block_bytes);

} // namespace fetchsim

#endif // FETCHSIM_COMPILER_NOP_PADDING_H_
