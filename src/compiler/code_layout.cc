#include "compiler/code_layout.h"

#include "program/layout.h"
#include "stats/log.h"

namespace fetchsim
{

ReorderStats
applyTraceLayout(Workload &workload, const std::vector<Trace> &traces)
{
    Program &prog = workload.program;
    ReorderStats stats;
    stats.numTraces = traces.size();

    // New global layout order: traces back to back.
    std::vector<BlockId> order;
    order.reserve(prog.numBlocks());
    for (const Trace &trace : traces)
        for (BlockId b : trace.blocks)
            order.insert(order.end(), b);
    simAssert(order.size() == prog.numBlocks(),
              "traces cover every block exactly once");
    prog.layoutOrder() = order;

    // Patch terminators against the new adjacency.
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
        BasicBlock &bb = prog.block(order[pos]);
        const BlockId next =
            (pos + 1 < order.size() &&
             prog.block(order[pos + 1]).func == bb.func)
                ? order[pos + 1]
                : kNoBlock;

        switch (bb.term) {
          case TermKind::CondBranch:
          case TermKind::CondBranchJump: {
            // Normalize an existing CondBranchJump back to a plain
            // branch first (drop the trailing jump), then re-derive.
            if (bb.term == TermKind::CondBranchJump) {
                bb.body.pop_back();
                bb.term = TermKind::CondBranch;
            }
            if (bb.fallThrough == next)
                break; // already falls through
            if (bb.takenTarget == next) {
                // Invert: the branch now falls into its old taken
                // target and jumps to its old fall-through.
                std::swap(bb.takenTarget, bb.fallThrough);
                bb.invertedSense = !bb.invertedSense;
                ++stats.inverted;
                break;
            }
            // Neither target is adjacent: branch + explicit jump.
            bb.body.push_back(makeJump());
            bb.term = TermKind::CondBranchJump;
            ++stats.jumpsInserted;
            break;
          }
          case TermKind::FallThrough: {
            if (bb.fallThrough == next)
                break;
            bb.body.push_back(makeJump());
            bb.term = TermKind::Jump;
            bb.takenTarget = bb.fallThrough;
            bb.fallThrough = kNoBlock;
            ++stats.jumpsInserted;
            break;
          }
          case TermKind::Jump: {
            if (bb.takenTarget != next)
                break;
            // The jump target moved right behind us: delete the jump.
            simAssert(!bb.body.empty() &&
                          bb.body.back().op == OpClass::Jump,
                      "jump block shape");
            bb.body.pop_back();
            bb.term = TermKind::FallThrough;
            bb.fallThrough = bb.takenTarget;
            bb.takenTarget = kNoBlock;
            ++stats.jumpsRemoved;
            break;
          }
          case TermKind::CallFall:
          case TermKind::Return:
            // Returns are indirect; the post-call continuation is
            // reached via the return address, not adjacency.
            break;
        }
    }

    assignAddresses(prog);
    prog.validate();
    checkEncodable(prog);
    return stats;
}

ReorderStats
reorderWorkload(Workload &workload,
                const ProfileOptions &profile_options,
                const TraceOptions &trace_options,
                std::vector<Trace> *out_traces)
{
    EdgeProfile profile = collectProfile(workload, profile_options);
    std::vector<Trace> traces =
        selectTraces(workload.program, profile, trace_options);
    ReorderStats stats = applyTraceLayout(workload, traces);
    if (out_traces)
        *out_traces = std::move(traces);
    return stats;
}

} // namespace fetchsim
