/**
 * @file
 * Profile collection for profile-driven code reordering.
 *
 * The paper profiles each benchmark with five distinct training
 * inputs and evaluates with a sixth; this module replays that
 * methodology: the executor is run once per training input and
 * block/edge execution counts are accumulated.
 */

#ifndef FETCHSIM_COMPILER_PROFILE_H_
#define FETCHSIM_COMPILER_PROFILE_H_

#include <cstdint>
#include <vector>

#include "workload/generator.h"

namespace fetchsim
{

/**
 * Block- and edge-execution counts over one or more profiling runs.
 */
struct EdgeProfile
{
    std::vector<std::uint64_t> blockCount;    //!< executions per block
    std::vector<std::uint64_t> takenCount;    //!< cond-taken per block
    std::vector<std::uint64_t> notTakenCount; //!< cond-fall per block

    /** Size the vectors for @p num_blocks. */
    explicit EdgeProfile(std::size_t num_blocks = 0)
        : blockCount(num_blocks), takenCount(num_blocks),
          notTakenCount(num_blocks)
    {
    }

    /**
     * Weight of the control-flow edge from @p bb to its successor
     * @p succ, under the current terminator semantics.  Returns 0 for
     * non-successors.
     */
    std::uint64_t edgeWeight(const BasicBlock &bb, BlockId succ) const;

    /** Probability of the edge bb -> succ (0 when bb never ran). */
    double edgeProb(const BasicBlock &bb, BlockId succ) const;
};

/** Options for profile collection. */
struct ProfileOptions
{
    std::uint64_t instsPerInput = 200000; //!< dynamic length per run
    int numInputs = kNumTrainInputs;      //!< training inputs used
};

/**
 * Run @p workload once per training input and accumulate block/edge
 * counts.  The evaluation input (kEvalInput) is never profiled.
 */
EdgeProfile collectProfile(const Workload &workload,
                           const ProfileOptions &options = {});

} // namespace fetchsim

#endif // FETCHSIM_COMPILER_PROFILE_H_
