#include "compiler/nop_padding.h"

#include <unordered_set>

#include "program/layout.h"
#include "stats/log.h"

namespace fetchsim
{

namespace
{

/**
 * Walk the current layout; after every block selected by
 * @p pad_after, insert a filler block of nops that rounds the running
 * instruction offset up to a block boundary.  The filler is wired
 * into the fall-through chain when the padded block can fall through
 * (so the nops genuinely execute on that path); otherwise it is dead
 * code that only occupies cache space.
 */
PaddingStats
padLayout(Workload &workload, std::uint64_t block_bytes,
          const std::unordered_set<BlockId> &pad_after)
{
    if (block_bytes == 0 || (block_bytes & (block_bytes - 1)) != 0)
        fatal("padLayout: block size must be a power of two");
    Program &prog = workload.program;

    PaddingStats stats;
    stats.originalInsts = prog.totalInstructions();

    const std::uint64_t insts_per_block = block_bytes / kInstBytes;
    const std::vector<BlockId> old_order = prog.layoutOrder();
    std::vector<BlockId> new_order;
    new_order.reserve(old_order.size() * 2);

    std::uint64_t offset = 0; // running instruction offset
    for (std::size_t pos = 0; pos < old_order.size(); ++pos) {
        const BlockId id = old_order[pos];
        new_order.push_back(id);
        offset += static_cast<std::uint64_t>(prog.block(id).size());

        if (pad_after.find(id) == pad_after.end())
            continue;
        const std::uint64_t rem = offset % insts_per_block;
        if (rem == 0)
            continue;
        const std::uint64_t pad = insts_per_block - rem;

        // Create the filler block.  addBlock() appends to the
        // program's layout order; we rebuild the order wholesale at
        // the end, so that side effect is harmless.
        const FuncId func = prog.block(id).func;
        const BlockId filler = prog.addBlock(func);
        BasicBlock &fb = prog.block(filler);
        fb.body.assign(static_cast<std::size_t>(pad), makeNop());
        fb.term = TermKind::FallThrough;

        BasicBlock &bb = prog.block(id);
        switch (bb.term) {
          case TermKind::FallThrough:
          case TermKind::CondBranch:
          case TermKind::CallFall:
            // The fall-through (or post-call) path physically runs
            // into the filler nops before reaching the old successor.
            fb.fallThrough = bb.fallThrough;
            bb.fallThrough = filler;
            break;
          case TermKind::CondBranchJump:
          case TermKind::Jump:
          case TermKind::Return:
            // No fall-through path: the filler is never executed.
            // Give it a valid successor for CFG validity.
            fb.fallThrough =
                prog.function(func).entry == filler
                    ? id
                    : prog.function(func).entry;
            break;
        }

        new_order.push_back(filler);
        offset += pad;
        stats.nopsInserted += pad;
    }

    prog.layoutOrder() = new_order;
    assignAddresses(prog);
    prog.validate();
    checkEncodable(prog);
    return stats;
}

} // anonymous namespace

PaddingStats
padAll(Workload &workload, std::uint64_t block_bytes)
{
    std::unordered_set<BlockId> all;
    for (BlockId id : workload.program.layoutOrder())
        all.insert(id);
    return padLayout(workload, block_bytes, all);
}

PaddingStats
padTrace(Workload &workload, const std::vector<Trace> &traces,
         std::uint64_t block_bytes)
{
    std::unordered_set<BlockId> ends;
    for (const Trace &trace : traces) {
        simAssert(!trace.blocks.empty(), "non-empty trace");
        // Only executed traces are aligned: never-executed blocks are
        // not traces, just cold code dumped after them, and aligning
        // each of them would only bloat the image (the paper's
        // pad-trace overheads are far below pad-all's for exactly
        // this reason).
        if (trace.seedWeight > 0)
            ends.insert(trace.blocks.back());
    }
    return padLayout(workload, block_bytes, ends);
}

} // namespace fetchsim
