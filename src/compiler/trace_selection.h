/**
 * @file
 * Fisher-style trace selection over profiled control-flow graphs.
 *
 * Implements the trace-selection step of profile-driven code
 * reordering (paper Section 4, following Fisher's algorithm as used
 * by Hwu & Chang): traces are grown from unvisited seed blocks in
 * decreasing execution-count order, extending forward through the
 * most likely successor and backward through the most likely
 * predecessor as long as the transition probability clears a
 * threshold and the neighbour is unvisited and in the same function.
 */

#ifndef FETCHSIM_COMPILER_TRACE_SELECTION_H_
#define FETCHSIM_COMPILER_TRACE_SELECTION_H_

#include <cstdint>
#include <vector>

#include "compiler/profile.h"
#include "program/program.h"

namespace fetchsim
{

/** One selected trace: blocks in execution order. */
struct Trace
{
    std::vector<BlockId> blocks;
    std::uint64_t seedWeight = 0; //!< execution count of the seed
    FuncId func = kNoFunc;
};

/** Options for trace selection. */
struct TraceOptions
{
    /** Minimum successor/predecessor probability to extend a trace. */
    double threshold = 0.60;
};

/**
 * Select traces for every function of @p prog using @p profile.
 * Every block (including never-executed ones) lands in exactly one
 * trace; cold blocks form singleton traces.  Traces are returned
 * grouped by function (functions in original order) and, within a
 * function, in decreasing seed weight.
 */
std::vector<Trace> selectTraces(const Program &prog,
                                const EdgeProfile &profile,
                                const TraceOptions &options = {});

} // namespace fetchsim

#endif // FETCHSIM_COMPILER_TRACE_SELECTION_H_
