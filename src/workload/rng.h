/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Everything random in the repository flows from named 64-bit seeds
 * through these generators, so every experiment is bit-reproducible.
 * SplitMix64 is used for seeding/hashing; xoshiro256** is the stream
 * generator (fast, good equidistribution, tiny state).
 */

#ifndef FETCHSIM_WORKLOAD_RNG_H_
#define FETCHSIM_WORKLOAD_RNG_H_

#include <cstdint>

namespace fetchsim
{

/** One SplitMix64 step: hash/seed-expansion primitive. */
constexpr std::uint64_t
splitMix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Combine two 64-bit values into a new seed (order-sensitive). */
constexpr std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    return splitMix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) +
                           (a >> 2)));
}

/**
 * xoshiro256** pseudo-random generator.
 */
class Rng
{
  public:
    /** Seed via four SplitMix64 expansions of @p seed. */
    explicit Rng(std::uint64_t seed = 0)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x = splitMix64(x);
            word = x;
        }
        // xoshiro must not start from the all-zero state.
        if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0)
            state_[0] = 0x9e3779b97f4a7c15ULL;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, n). @p n must be nonzero. */
    std::uint64_t
    uniform(std::uint64_t n)
    {
        // Rejection-free multiply-shift; bias is negligible for the
        // small ranges used here but we debias anyway.
        std::uint64_t threshold = (-n) % n;
        for (;;) {
            std::uint64_t r = next();
            if (r >= threshold)
                return r % n;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        uniform(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool bernoulli(double p) { return real() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace fetchsim

#endif // FETCHSIM_WORKLOAD_RNG_H_
