/**
 * @file
 * Parameter set describing one synthetic benchmark.
 *
 * Each of the paper's 15 workloads (9 integer, 6 floating-point) is
 * described by one WorkloadSpec.  The generator turns a spec into a
 * whole program (CFG + instructions + branch behaviours); the spec
 * parameters control exactly the properties the paper's results hinge
 * on: basic-block lengths, taken-branch density, short-forward-branch
 * (hammock) frequency and skip distance, loop structure, and
 * instruction mix.
 */

#ifndef FETCHSIM_WORKLOAD_SPEC_H_
#define FETCHSIM_WORKLOAD_SPEC_H_

#include <cstdint>
#include <string>

namespace fetchsim
{

/** Generator parameters for one synthetic benchmark. */
struct WorkloadSpec
{
    std::string name;        //!< benchmark name (paper's spelling)
    bool isFp = false;       //!< member of the floating-point suite
    std::uint64_t seed = 1;  //!< root of all randomness for this spec

    // --- program shape -------------------------------------------------
    int numFunctions = 12;       //!< functions incl. main
    int minStmtsPerFunc = 6;     //!< top-level statements per function
    int maxStmtsPerFunc = 14;
    int minBlockLen = 2;         //!< plain-block instruction count
    int maxBlockLen = 8;

    // --- instruction mix (non-control instructions) --------------------
    double fpFraction = 0.0;     //!< FPALU share
    double loadFraction = 0.25;  //!< load share
    double storeFraction = 0.10; //!< store share

    // --- statement mix (remainder is a plain straight-line block) ------
    double hammockProb = 0.15;   //!< short forward skip-branch
    double ifElseProb = 0.12;    //!< diamond with a join jump
    double loopProb = 0.12;      //!< counted loop
    double callProb = 0.10;      //!< call to a later function

    // --- hammock geometry (drives Table 2) ------------------------------
    int hammockLenMin = 1;       //!< skipped-clause length (instrs)
    int hammockLenMax = 4;
    double hammockTakenProb = 0.70; //!< P(skip) == P(short fwd taken)
    double loopHammockProb = -1.0;  //!< probability that a loop body
                                    //!< carries a latch-adjacent
                                    //!< hammock (the hot path);
                                    //!< negative = none
    int loopHammockLenMin = -1;     //!< latch-hammock clause length
    int loopHammockLenMax = -1;     //!< (negative = hammockLen*)

    // --- if/else and loops ----------------------------------------------
    double condBias = 0.65;      //!< if/else taken bias
    int loopBodyStmtsMax = 3;    //!< statements inside a loop body
    int loopTripMin = 4;         //!< loop trip-count range
    int loopTripMax = 40;
    int maxLoopNest = 2;         //!< loop nesting depth limit
    double alternatingProb = 0.10; //!< share of if/else branches that
                                   //!< alternate instead of Bernoulli
};

} // namespace fetchsim

#endif // FETCHSIM_WORKLOAD_SPEC_H_
