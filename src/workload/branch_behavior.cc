#include "workload/branch_behavior.h"

#include <algorithm>

#include "stats/log.h"

namespace fetchsim
{

const BranchBehavior &
BehaviorTable::get(BehaviorId id) const
{
    simAssert(id < entries_.size(), "behaviour id in range");
    return entries_[id];
}

void
BehaviorState::initialize(const BranchBehavior &behavior, BehaviorId id,
                          std::uint64_t seed, int input)
{
    std::uint64_t stream = hashCombine(hashCombine(seed, id),
                                       static_cast<std::uint64_t>(input));
    rng_ = Rng(stream);

    // Input-dependent jitter keeps training and evaluation inputs
    // similar but not identical.
    switch (behavior.kind) {
      case BehaviorKind::Loop: {
        int jitter_span = std::max(1, behavior.trip / 8);
        int jitter = static_cast<int>(
            rng_.range(-jitter_span, jitter_span));
        effective_trip_ = std::max(1, behavior.trip + jitter);
        counter_ = 0;
        break;
      }
      case BehaviorKind::Bernoulli: {
        if (behavior.takenProb <= 0.0 || behavior.takenProb >= 1.0) {
            // Degenerate branches stay deterministic on every input.
            effective_prob_ = behavior.takenProb;
        } else {
            double noise = (rng_.real() - 0.5) * 0.08;
            effective_prob_ =
                std::clamp(behavior.takenProb + noise, 0.01, 0.99);
        }
        break;
      }
      case BehaviorKind::Alternating: {
        counter_ = static_cast<std::uint32_t>(
            rng_.uniform(static_cast<std::uint64_t>(
                std::max(1, behavior.period) * 2)));
        break;
      }
    }
    initialized_ = true;
}

bool
BehaviorState::evaluate(const BranchBehavior &behavior, BehaviorId id,
                        std::uint64_t seed, int input)
{
    if (!initialized_)
        initialize(behavior, id, seed, input);

    switch (behavior.kind) {
      case BehaviorKind::Loop: {
        bool taken = static_cast<int>(counter_) < effective_trip_ - 1;
        ++counter_;
        if (static_cast<int>(counter_) >= effective_trip_)
            counter_ = 0;
        return taken;
      }
      case BehaviorKind::Bernoulli:
        return rng_.bernoulli(effective_prob_);
      case BehaviorKind::Alternating: {
        int period = std::max(1, behavior.period);
        bool taken = static_cast<int>(counter_) < period;
        counter_ = (counter_ + 1) % static_cast<std::uint32_t>(2 * period);
        return taken;
      }
      default:
        panic("BehaviorState::evaluate: bad behaviour kind");
    }
}

} // namespace fetchsim
