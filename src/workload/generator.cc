#include "workload/generator.h"

#include <algorithm>
#include <array>

#include "program/layout.h"
#include "stats/log.h"
#include "workload/rng.h"

namespace fetchsim
{

namespace
{

/**
 * Stateful builder that emits one function at a time.  Blocks are
 * created in source order, which defines the unoptimized layout.
 */
class ProgramBuilder
{
  public:
    ProgramBuilder(const WorkloadSpec &spec, Workload &out)
        : spec_(spec), out_(out), rng_(hashCombine(spec.seed, 0xb111d))
    {
        for (std::size_t i = 0; i < recent_int_.size(); ++i) {
            recent_int_[i] = static_cast<std::uint8_t>(1 + i % 30);
            recent_fp_[i] = static_cast<std::uint8_t>(
                kFpRegBase + i % kNumFpRegs);
        }
    }

    void
    build()
    {
        Program &prog = out_.program;
        for (int i = 0; i < spec_.numFunctions; ++i)
            prog.addFunction("fn" + std::to_string(i));
        prog.setMainFunction(0);
        for (int i = 0; i < spec_.numFunctions; ++i)
            buildFunction(static_cast<FuncId>(i));
        assignAddresses(prog);
        prog.validate();
        checkEncodable(prog);
    }

  private:
    // ----- register-dependency bookkeeping ---------------------------

    std::uint8_t
    pickIntSrc()
    {
        // Read recently-produced values often enough to create
        // dependency chains, but over a window wide enough that
        // several chains stay independent (realistic ILP).
        if (rng_.bernoulli(0.55))
            return recent_int_[rng_.uniform(recent_int_.size())];
        return static_cast<std::uint8_t>(rng_.range(1, 30));
    }

    std::uint8_t
    pickFpSrc()
    {
        if (rng_.bernoulli(0.55))
            return recent_fp_[rng_.uniform(recent_fp_.size())];
        return static_cast<std::uint8_t>(
            kFpRegBase + rng_.range(0, kNumFpRegs - 1));
    }

    std::uint8_t
    newIntDest()
    {
        auto reg = static_cast<std::uint8_t>(rng_.range(1, 30));
        recent_int_[recent_pos_int_++ % recent_int_.size()] = reg;
        return reg;
    }

    std::uint8_t
    newFpDest()
    {
        auto reg = static_cast<std::uint8_t>(
            kFpRegBase + rng_.range(0, kNumFpRegs - 1));
        recent_fp_[recent_pos_fp_++ % recent_fp_.size()] = reg;
        return reg;
    }

    // ----- block plumbing --------------------------------------------

    BasicBlock &cur() { return out_.program.block(cur_); }

    BlockId
    newBlock()
    {
        return out_.program.addBlock(cur_func_);
    }

    /** Append @p count random non-control instructions to cur(). */
    void
    emitPlain(int count)
    {
        for (int i = 0; i < count; ++i) {
            double r = rng_.real();
            StaticInst inst;
            if (r < spec_.fpFraction) {
                inst = makeFpAlu(newFpDest(), pickFpSrc(), pickFpSrc());
            } else if (r < spec_.fpFraction + spec_.loadFraction) {
                bool fp_load = spec_.isFp && rng_.bernoulli(0.5);
                std::uint8_t dest =
                    fp_load ? newFpDest() : newIntDest();
                inst = makeLoad(dest, pickIntSrc(),
                                static_cast<std::int32_t>(
                                    rng_.range(-64, 64)) * 4);
            } else if (r < spec_.fpFraction + spec_.loadFraction +
                               spec_.storeFraction) {
                std::uint8_t value =
                    spec_.isFp && rng_.bernoulli(0.5) ? pickFpSrc()
                                                      : pickIntSrc();
                inst = makeStore(value, pickIntSrc(),
                                 static_cast<std::int32_t>(
                                     rng_.range(-64, 64)) * 4);
            } else {
                inst = makeIntAlu(newIntDest(), pickIntSrc(),
                                  pickIntSrc(),
                                  static_cast<std::int32_t>(
                                      rng_.range(-16, 16)));
            }
            cur().body.push_back(inst);
        }
    }

    int
    plainLen()
    {
        return static_cast<int>(
            rng_.range(spec_.minBlockLen, spec_.maxBlockLen));
    }

    /** Close cur() with a conditional branch; returns the block. */
    BlockId
    closeWithCondBranch(BehaviorId behavior)
    {
        BasicBlock &bb = cur();
        bb.body.push_back(makeCondBranch(pickIntSrc(), pickIntSrc()));
        bb.term = TermKind::CondBranch;
        bb.behavior = behavior;
        return bb.id;
    }

    // ----- statements --------------------------------------------------

    void
    genStatement(int loop_depth)
    {
        double r = rng_.real();
        double acc = spec_.hammockProb;
        if (r < acc) {
            genHammock();
            return;
        }
        acc += spec_.ifElseProb;
        if (r < acc) {
            genIfElse();
            return;
        }
        acc += spec_.loopProb;
        if (r < acc && loop_depth < spec_.maxLoopNest) {
            genLoop(loop_depth);
            return;
        }
        acc += spec_.callProb;
        if (r < acc && genCall())
            return;
        emitPlain(plainLen());
    }

    /**
     * Hammock: `if (p) skip clause;` — a mostly-taken short forward
     * branch whose target lands a few instructions ahead.  This is
     * the intra-block-branch generator that drives Table 2.
     */
    void
    genHammock()
    {
        genHammockOfLength(static_cast<int>(
            rng_.range(spec_.hammockLenMin, spec_.hammockLenMax)));
    }

    void
    genHammockOfLength(int clause_len)
    {
        BranchBehavior b;
        b.kind = BehaviorKind::Bernoulli;
        b.takenProb = spec_.hammockTakenProb;
        BlockId head = closeWithCondBranch(out_.behaviors.add(b));

        BlockId clause = newBlock();
        cur_ = clause;
        emitPlain(clause_len);

        BlockId join = newBlock();
        Program &prog = out_.program;
        prog.block(head).takenTarget = join;
        prog.block(head).fallThrough = clause;
        prog.block(clause).term = TermKind::FallThrough;
        prog.block(clause).fallThrough = join;
        cur_ = join;
    }

    /** If/else diamond with a jump from the then-part to the join. */
    void
    genIfElse()
    {
        BranchBehavior b;
        if (rng_.bernoulli(spec_.alternatingProb)) {
            b.kind = BehaviorKind::Alternating;
            b.period = static_cast<int>(rng_.range(1, 4));
        } else {
            b.kind = BehaviorKind::Bernoulli;
            b.takenProb = rng_.bernoulli(0.5)
                              ? spec_.condBias
                              : 1.0 - spec_.condBias;
        }
        BlockId head = closeWithCondBranch(out_.behaviors.add(b));

        Program &prog = out_.program;
        BlockId then_part = newBlock();
        cur_ = then_part;
        emitPlain(plainLen());
        cur().body.push_back(makeJump());
        cur().term = TermKind::Jump;

        BlockId else_part = newBlock();
        cur_ = else_part;
        emitPlain(plainLen());

        BlockId join = newBlock();
        prog.block(head).takenTarget = else_part;
        prog.block(head).fallThrough = then_part;
        prog.block(then_part).takenTarget = join;
        prog.block(else_part).term = TermKind::FallThrough;
        prog.block(else_part).fallThrough = join;
        cur_ = join;
    }

    /** Counted loop with a backward mostly-taken branch. */
    void
    genLoop(int loop_depth)
    {
        Program &prog = out_.program;
        BlockId header = newBlock();
        prog.block(cur_).term = TermKind::FallThrough;
        prog.block(cur_).fallThrough = header;
        cur_ = header;

        emitPlain(plainLen());
        int body_stmts = static_cast<int>(
            rng_.range(1, std::max(1, spec_.loopBodyStmtsMax)));
        for (int i = 0; i < body_stmts; ++i)
            genStatement(loop_depth + 1);

        // Optional latch-adjacent hammock, decided on a dedicated
        // per-loop stream so every loop carries the same expected
        // short-forward-branch density regardless of how the rest of
        // the program shook out (keeps the Table 2 calibration stable
        // under parameter changes).
        if (spec_.loopHammockProb >= 0.0) {
            Rng loop_rng(hashCombine(spec_.seed,
                                     0x100F00ull +
                                         static_cast<std::uint64_t>(
                                             loop_counter_)));
            if (loop_rng.bernoulli(spec_.loopHammockProb)) {
                const int lo = spec_.loopHammockLenMin > 0
                                   ? spec_.loopHammockLenMin
                                   : spec_.hammockLenMin;
                const int hi = spec_.loopHammockLenMax > 0
                                   ? spec_.loopHammockLenMax
                                   : spec_.hammockLenMax;
                genHammockOfLength(
                    static_cast<int>(loop_rng.range(lo, hi)));
            }
        }
        ++loop_counter_;

        BranchBehavior b;
        b.kind = BehaviorKind::Loop;
        if (loop_depth > 0) {
            // Inner loops get short trips so no single nest's
            // iteration product dwarfs every other region of the
            // program (real codes spread their time over many loops).
            b.trip = static_cast<int>(rng_.range(
                std::min(spec_.loopTripMin, 3),
                std::min(spec_.loopTripMax, 8)));
        } else {
            b.trip = static_cast<int>(
                rng_.range(spec_.loopTripMin, spec_.loopTripMax));
        }
        BlockId latch = closeWithCondBranch(out_.behaviors.add(b));

        BlockId exit = newBlock();
        prog.block(latch).takenTarget = header;
        prog.block(latch).fallThrough = exit;
        cur_ = exit;
    }

    /** Call a later-indexed function (call graph stays acyclic). */
    bool
    genCall()
    {
        int callees = spec_.numFunctions - 1 -
                      static_cast<int>(cur_func_);
        if (callees <= 0)
            return false;
        auto callee = static_cast<FuncId>(
            cur_func_ + 1 +
            rng_.uniform(static_cast<std::uint64_t>(callees)));

        Program &prog = out_.program;
        cur().body.push_back(makeCall());
        cur().term = TermKind::CallFall;
        cur().callee = callee;
        BlockId cont = newBlock();
        prog.block(cur_).fallThrough = cont;
        cur_ = cont;
        ++calls_emitted_;
        return true;
    }

    /**
     * Main is a deterministic driver: it calls a spread of "phase"
     * functions across the whole program.  This mirrors how real
     * benchmarks run through distinct phases, and it keeps the
     * dynamic profile spread over many independent regions instead of
     * being dominated by whichever random loop happened to be
     * hottest (which would make the calibration seed-brittle).
     */
    void
    buildMainDriver()
    {
        cur_func_ = 0;
        Program &prog = out_.program;
        BlockId entry = newBlock();
        prog.function(0).entry = entry;
        cur_ = entry;

        emitPlain(plainLen());
        const int callable = spec_.numFunctions - 1;
        const int phases = std::min(20, callable);
        for (int i = 0; i < phases; ++i) {
            auto callee = static_cast<FuncId>(
                1 + (static_cast<long>(i) * callable) / phases);
            BasicBlock &bb = cur();
            bb.body.push_back(makeCall());
            bb.term = TermKind::CallFall;
            bb.callee = callee;
            BlockId cont = newBlock();
            prog.block(cur_).fallThrough = cont;
            cur_ = cont;
            emitPlain(static_cast<int>(rng_.range(1, 3)));
        }
        cur().body.push_back(makeReturn());
        cur().term = TermKind::Return;
    }

    void
    buildFunction(FuncId func)
    {
        if (func == 0) {
            buildMainDriver();
            return;
        }
        cur_func_ = func;
        calls_emitted_ = 0;
        Program &prog = out_.program;
        BlockId entry = newBlock();
        prog.function(func).entry = entry;
        cur_ = entry;

        emitPlain(plainLen());
        int stmts = static_cast<int>(
            rng_.range(spec_.minStmtsPerFunc, spec_.maxStmtsPerFunc));
        for (int i = 0; i < stmts; ++i)
            genStatement(0);

        // Keep the call graph connected: most functions should reach
        // deeper ones so the dynamic footprint spans the image.
        if (calls_emitted_ == 0 &&
            func + 1 < static_cast<FuncId>(spec_.numFunctions) &&
            rng_.bernoulli(0.85)) {
            genCall();
            emitPlain(plainLen());
        }

        cur().body.push_back(makeReturn());
        cur().term = TermKind::Return;
    }

    const WorkloadSpec &spec_;
    Workload &out_;
    Rng rng_;
    FuncId cur_func_ = kNoFunc;
    BlockId cur_ = kNoBlock;
    int calls_emitted_ = 0;
    int loop_counter_ = 0;
    std::array<std::uint8_t, 12> recent_int_{};
    std::array<std::uint8_t, 12> recent_fp_{};
    std::size_t recent_pos_int_ = 0;
    std::size_t recent_pos_fp_ = 0;
};

} // anonymous namespace

Workload
generateWorkload(const WorkloadSpec &spec)
{
    if (spec.numFunctions < 1)
        fatal("generateWorkload: need at least one function");
    if (spec.minBlockLen < 1 || spec.maxBlockLen < spec.minBlockLen)
        fatal("generateWorkload: bad block-length range");
    if (spec.hammockLenMin < 1 ||
        spec.hammockLenMax < spec.hammockLenMin)
        fatal("generateWorkload: bad hammock-length range");
    if (spec.loopTripMin < 2 || spec.loopTripMax < spec.loopTripMin)
        fatal("generateWorkload: bad loop-trip range");

    Workload workload(spec);
    ProgramBuilder builder(spec, workload);
    builder.build();
    return workload;
}

} // namespace fetchsim
