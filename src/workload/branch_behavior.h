/**
 * @file
 * Behavioural models for conditional branches.
 *
 * The workload generator attaches one behaviour to every conditional
 * branch; the execution engine evaluates it to decide taken/not-taken.
 * Behaviours are parameterized by the *input id* so that the five
 * profiling inputs and the evaluation input exercise the same program
 * with similar-but-not-identical branch statistics, mirroring the
 * paper's profile/test input methodology.
 */

#ifndef FETCHSIM_WORKLOAD_BRANCH_BEHAVIOR_H_
#define FETCHSIM_WORKLOAD_BRANCH_BEHAVIOR_H_

#include <cstdint>
#include <vector>

#include "program/basic_block.h"
#include "workload/rng.h"

namespace fetchsim
{

/** Number of profiling (training) inputs. */
constexpr int kNumTrainInputs = 5;
/** Input id used for the measured simulation runs. */
constexpr int kEvalInput = kNumTrainInputs;

/** Kinds of branch behaviour. */
enum class BehaviorKind : std::uint8_t
{
    Loop,       //!< taken trip-1 times, then not-taken once (repeats)
    Bernoulli,  //!< independently taken with probability takenProb
    Alternating //!< taken for `period` evals, then not, repeating
};

/** Static description of one branch's behaviour. */
struct BranchBehavior
{
    BehaviorKind kind = BehaviorKind::Bernoulli;
    int trip = 0;           //!< Loop trip count
    double takenProb = 0.5; //!< Bernoulli probability
    int period = 1;         //!< Alternating half-period
};

/**
 * Table of behaviours, indexed by BehaviorId.  Owned by the Workload
 * alongside the Program.
 */
class BehaviorTable
{
  public:
    /** Append a behaviour; returns its id. */
    BehaviorId
    add(const BranchBehavior &behavior)
    {
        entries_.push_back(behavior);
        return static_cast<BehaviorId>(entries_.size() - 1);
    }

    /** Look up a behaviour. */
    const BranchBehavior &get(BehaviorId id) const;

    /** Number of behaviours. */
    std::size_t size() const { return entries_.size(); }

  private:
    std::vector<BranchBehavior> entries_;
};

/**
 * Per-branch dynamic evaluation state.  One instance per behaviour id
 * lives inside each Executor; it is (re)derived from the global seed,
 * the behaviour id, and the input id, so two executors configured
 * identically replay identical outcome sequences.
 */
class BehaviorState
{
  public:
    BehaviorState() = default;

    /**
     * Evaluate the next dynamic outcome of this branch.
     *
     * @param behavior the static behaviour description
     * @param id       the behaviour id (stream derivation)
     * @param seed     the workload's global seed
     * @param input    input id (0..kNumTrainInputs)
     * @return true if the branch is taken (before sense inversion)
     */
    bool evaluate(const BranchBehavior &behavior, BehaviorId id,
                  std::uint64_t seed, int input);

  private:
    void initialize(const BranchBehavior &behavior, BehaviorId id,
                    std::uint64_t seed, int input);

    bool initialized_ = false;
    std::uint32_t counter_ = 0;    //!< loop / alternating position
    int effective_trip_ = 0;       //!< input-jittered trip count
    double effective_prob_ = 0.5;  //!< input-jittered probability
    Rng rng_{0};
};

} // namespace fetchsim

#endif // FETCHSIM_WORKLOAD_BRANCH_BEHAVIOR_H_
