#include "workload/benchmark_suite.h"

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>

#include "core/error.h"
#include "stats/log.h"

namespace fetchsim
{

namespace
{

/**
 * Runtime-registered specs.  Heap-owned so benchmarkByName() hands
 * out references that survive map rebalancing; the mutex serializes
 * registration against concurrent sweep lookups.
 */
std::shared_mutex &
dynamicMutex()
{
    static std::shared_mutex mutex;
    return mutex;
}

std::map<std::string, std::unique_ptr<WorkloadSpec>> &
dynamicSuite()
{
    static std::map<std::string, std::unique_ptr<WorkloadSpec>> suite;
    return suite;
}

/** Baseline integer-benchmark spec; per-benchmark fields override. */
WorkloadSpec
intBase(const char *name, std::uint64_t seed)
{
    WorkloadSpec s;
    s.name = name;
    s.isFp = false;
    s.seed = seed;
    s.numFunctions = 120;
    s.minStmtsPerFunc = 6;
    s.maxStmtsPerFunc = 14;
    s.minBlockLen = 2;
    s.maxBlockLen = 7;
    s.fpFraction = 0.0;
    s.loadFraction = 0.26;
    s.storeFraction = 0.10;
    s.hammockProb = 0.16;
    s.ifElseProb = 0.14;
    s.loopProb = 0.12;
    s.callProb = 0.14;
    s.hammockLenMin = 2;
    s.hammockLenMax = 5;
    s.hammockTakenProb = 0.85;
    s.condBias = 0.82;
    s.loopBodyStmtsMax = 3;
    s.loopTripMin = 3;
    s.loopTripMax = 24;
    s.maxLoopNest = 2;
    s.alternatingProb = 0.04;
    return s;
}

/** Baseline floating-point spec: long blocks, deep counted loops. */
WorkloadSpec
fpBase(const char *name, std::uint64_t seed)
{
    WorkloadSpec s;
    s.name = name;
    s.isFp = true;
    s.seed = seed;
    s.numFunctions = 36;
    s.minStmtsPerFunc = 5;
    s.maxStmtsPerFunc = 10;
    s.minBlockLen = 6;
    s.maxBlockLen = 18;
    s.fpFraction = 0.40;
    s.loadFraction = 0.26;
    s.storeFraction = 0.09;
    s.hammockProb = 0.04;
    s.ifElseProb = 0.05;
    s.loopProb = 0.28;
    s.callProb = 0.07;
    s.hammockLenMin = 3;
    s.hammockLenMax = 8;
    s.hammockTakenProb = 0.84;
    s.condBias = 0.84;
    s.loopBodyStmtsMax = 4;
    s.loopTripMin = 10;
    s.loopTripMax = 60;
    s.maxLoopNest = 2;
    s.alternatingProb = 0.02;
    return s;
}

std::vector<WorkloadSpec>
makeIntegerSuite()
{
    std::vector<WorkloadSpec> suite;

    // bison: parser tables -- branchy, short hammocks, modest loops.
    {
        WorkloadSpec s = intBase("bison", 0x6150);
        s.hammockProb = 0.20;
        s.hammockLenMin = 1;
        s.hammockLenMax = 5;
        suite.push_back(s);
    }
    // compress: tight dictionary loops with very short skip branches;
    // intra-block branches appear even at 16B blocks (Table 2).
    {
        WorkloadSpec s = intBase("compress", 0xC03B);
        s.numFunctions = 60;
        s.hammockProb = 0.26;
        s.hammockLenMin = 1;
        s.hammockLenMax = 2;
        s.hammockTakenProb = 0.88;
        s.loopProb = 0.16;
        s.loopTripMin = 8;
        s.loopTripMax = 64;
        suite.push_back(s);
    }
    // eqntott: dominated by short compare-and-skip sequences.
    {
        WorkloadSpec s = intBase("eqntott", 0xE611);
        s.numFunctions = 80;
        s.hammockProb = 0.34;
        s.hammockLenMin = 1;
        s.hammockLenMax = 4;
        s.hammockTakenProb = 0.86;
        s.loopProb = 0.14;
        suite.push_back(s);
    }
    // espresso: hammocks with slightly longer clauses -- intra-block
    // share explodes only at large block sizes.
    {
        WorkloadSpec s = intBase("espresso", 0xE590);
        s.hammockProb = 0.30;
        s.hammockLenMin = 2;
        s.hammockLenMax = 8;
        s.hammockTakenProb = 0.85;
        suite.push_back(s);
    }
    // flex: scanner loops, longer skip distances.
    {
        WorkloadSpec s = intBase("flex", 0xF1E8);
        s.hammockProb = 0.24;
        s.hammockLenMin = 12;
        s.hammockLenMax = 20;
        s.loopHammockProb = 0.60;
        s.loopHammockLenMin = 4;
        s.loopHammockLenMax = 9;
        s.loopProb = 0.15;
        s.loopTripMin = 6;
        s.loopTripMax = 48;
        suite.push_back(s);
    }
    // gcc: large footprint, mixed branch distances.
    {
        WorkloadSpec s = intBase("gcc", 0x6CC0);
        s.numFunctions = 220;
        s.minStmtsPerFunc = 8;
        s.maxStmtsPerFunc = 18;
        s.hammockProb = 0.18;
        s.hammockLenMin = 2;
        s.hammockLenMax = 8;
        s.callProb = 0.14;
        suite.push_back(s);
    }
    // li: lisp interpreter -- call heavy, medium hammocks.
    {
        WorkloadSpec s = intBase("li", 0x1150);
        s.numFunctions = 140;
        s.hammockProb = 0.08;
        s.loopHammockProb = 0.30;
        s.hammockLenMin = 5;
        s.hammockLenMax = 11;
        s.callProb = 0.18;
        s.ifElseProb = 0.18;
        suite.push_back(s);
    }
    // mpeg_play: media kernel -- loopier than the others, few
    // hammocks, so intra-block share stays low.
    {
        WorkloadSpec s = intBase("mpeg_play", 0x3E60);
        s.numFunctions = 70;
        s.minBlockLen = 3;
        s.maxBlockLen = 10;
        s.hammockProb = 0.10;
        s.hammockLenMin = 18;
        s.hammockLenMax = 30;
        s.loopHammockProb = 0.40;
        s.loopHammockLenMin = 18;
        s.loopHammockLenMax = 30;
        s.loopProb = 0.24;
        s.loopTripMin = 8;
        s.loopTripMax = 96;
        suite.push_back(s);
    }
    // sc: spreadsheet -- mixed, medium-distance skips.
    {
        WorkloadSpec s = intBase("sc", 0x5C01);
        s.hammockProb = 0.14;
        s.hammockLenMin = 4;
        s.hammockLenMax = 10;
        suite.push_back(s);
    }
    return suite;
}

std::vector<WorkloadSpec>
makeFpSuite()
{
    std::vector<WorkloadSpec> suite;

    // doduc: branchy for an FP code -- Monte Carlo kernels.
    {
        WorkloadSpec s = fpBase("doduc", 0xD0D0);
        s.hammockProb = 0.10;
        s.loopHammockProb = 0.25;
        s.ifElseProb = 0.10;
        s.hammockLenMin = 3;
        s.hammockLenMax = 8;
        s.minBlockLen = 4;
        s.maxBlockLen = 12;
        s.loopTripMin = 6;
        s.loopTripMax = 48;
        suite.push_back(s);
    }
    // mdljdp2: short inner loops with small skip branches; almost all
    // taken branches become intra-block at 64B blocks (Table 2).
    {
        WorkloadSpec s = fpBase("mdljdp2", 0x3D1D);
        s.hammockProb = 0.30;
        s.loopHammockProb = 0.80;
        s.hammockLenMin = 2;
        s.hammockLenMax = 5;
        s.hammockTakenProb = 0.88;
        s.minBlockLen = 4;
        s.maxBlockLen = 10;
        s.loopProb = 0.14;
        s.loopTripMin = 8;
        s.loopTripMax = 40;
        suite.push_back(s);
    }
    // nasa7: pure long vector loops -- essentially no short branches.
    {
        WorkloadSpec s = fpBase("nasa7", 0x4A57);
        s.numFunctions = 30;
        s.hammockProb = 0.0;
        s.ifElseProb = 0.02;
        s.minBlockLen = 10;
        s.maxBlockLen = 26;
        s.loopProb = 0.34;
        s.loopTripMin = 32;
        s.loopTripMax = 128;
        suite.push_back(s);
    }
    // ora: ray tracing -- long straight-line FP blocks, occasional
    // medium skips.
    {
        WorkloadSpec s = fpBase("ora", 0x0A17);
        s.hammockProb = 0.12;
        s.loopHammockProb = 0.12;
        s.hammockLenMin = 3;
        s.hammockLenMax = 7;
        s.minBlockLen = 8;
        s.maxBlockLen = 22;
        s.loopTripMin = 12;
        s.loopTripMax = 48;
        suite.push_back(s);
    }
    // tomcatv: mesh kernel -- long blocks; its few forward skips are
    // long enough to be intra-block only at 64B.
    {
        WorkloadSpec s = fpBase("tomcatv", 0x70CA);
        s.hammockProb = 0.10;
        s.loopHammockProb = 0.40;
        s.hammockLenMin = 8;
        s.hammockLenMax = 13;
        s.minBlockLen = 10;
        s.maxBlockLen = 24;
        s.loopProb = 0.30;
        s.loopTripMin = 16;
        s.loopTripMax = 64;
        suite.push_back(s);
    }
    // wave5: particle loops with short conditional updates.
    {
        WorkloadSpec s = fpBase("wave5", 0x3A5E);
        s.hammockProb = 0.18;
        s.loopHammockProb = 0.55;
        s.loopHammockLenMin = 2;
        s.loopHammockLenMax = 4;
        s.hammockLenMin = 2;
        s.hammockLenMax = 6;
        s.hammockTakenProb = 0.86;
        s.minBlockLen = 5;
        s.maxBlockLen = 14;
        s.loopProb = 0.22;
        s.loopTripMin = 10;
        s.loopTripMax = 80;
        suite.push_back(s);
    }
    return suite;
}

} // anonymous namespace

const std::vector<WorkloadSpec> &
integerSuite()
{
    static const std::vector<WorkloadSpec> suite = makeIntegerSuite();
    return suite;
}

const std::vector<WorkloadSpec> &
fpSuite()
{
    static const std::vector<WorkloadSpec> suite = makeFpSuite();
    return suite;
}

const std::vector<WorkloadSpec> &
fullSuite()
{
    static const std::vector<WorkloadSpec> suite = [] {
        std::vector<WorkloadSpec> all = integerSuite();
        const auto &fp = fpSuite();
        all.insert(all.end(), fp.begin(), fp.end());
        return all;
    }();
    return suite;
}

bool
hasBenchmark(const std::string &name)
{
    for (const auto &spec : fullSuite())
        if (spec.name == name)
            return true;
    std::shared_lock<std::shared_mutex> read(dynamicMutex());
    return dynamicSuite().count(name) != 0;
}

const WorkloadSpec &
benchmarkByName(const std::string &name)
{
    for (const auto &spec : fullSuite())
        if (spec.name == name)
            return spec;
    {
        std::shared_lock<std::shared_mutex> read(dynamicMutex());
        auto it = dynamicSuite().find(name);
        if (it != dynamicSuite().end())
            return *it->second;
    }
    fatal("unknown benchmark: " + name);
}

void
registerDynamicBenchmark(const WorkloadSpec &spec)
{
    if (spec.name.empty())
        throw SimException(ErrorKind::Config,
                           "dynamic benchmark needs a name");
    for (const auto &fixed : fullSuite()) {
        if (fixed.name == spec.name)
            throw SimException(ErrorKind::Config,
                               "dynamic benchmark '" + spec.name +
                                   "' would shadow a suite "
                                   "benchmark");
    }
    std::unique_lock<std::shared_mutex> write(dynamicMutex());
    dynamicSuite()[spec.name] =
        std::make_unique<WorkloadSpec>(spec);
}

bool
unregisterDynamicBenchmark(const std::string &name)
{
    std::unique_lock<std::shared_mutex> write(dynamicMutex());
    return dynamicSuite().erase(name) != 0;
}

} // namespace fetchsim
