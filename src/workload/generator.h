/**
 * @file
 * Synthetic-program generator.
 *
 * Turns a WorkloadSpec into a Workload: a structured, reducible CFG of
 * functions built from plain blocks, hammocks (short forward skip
 * branches), if/else diamonds, counted loops and calls, with a branch
 * behaviour attached to every conditional branch.  The generated
 * program is laid out in source order and fully addressed; compiler
 * passes may later re-lay it out.
 */

#ifndef FETCHSIM_WORKLOAD_GENERATOR_H_
#define FETCHSIM_WORKLOAD_GENERATOR_H_

#include "program/program.h"
#include "workload/branch_behavior.h"
#include "workload/spec.h"

namespace fetchsim
{

/**
 * A generated benchmark: the program, its branch behaviours, and the
 * spec it came from.
 */
struct Workload
{
    WorkloadSpec spec;
    Program program;
    BehaviorTable behaviors;

    explicit Workload(const WorkloadSpec &s)
        : spec(s), program(s.name)
    {
    }
};

/**
 * Generate the benchmark described by @p spec.  Deterministic in
 * spec.seed.  The returned program is validated and encodable.
 */
Workload generateWorkload(const WorkloadSpec &spec);

} // namespace fetchsim

#endif // FETCHSIM_WORKLOAD_GENERATOR_H_
