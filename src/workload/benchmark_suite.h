/**
 * @file
 * The paper's 15-benchmark workload suite.
 *
 * Nine integer programs (the six SPECint92 benchmarks plus mpeg_play,
 * bison and flex) and six SPECfp92 programs.  Each is a calibrated
 * WorkloadSpec whose generated program matches the regime the paper
 * reports for that benchmark: dynamic taken-branch density, hammock
 * (short forward branch) frequency and skip distance (Table 2's
 * intra-block percentages), loop behaviour and instruction mix.
 */

#ifndef FETCHSIM_WORKLOAD_BENCHMARK_SUITE_H_
#define FETCHSIM_WORKLOAD_BENCHMARK_SUITE_H_

#include <string>
#include <vector>

#include "workload/spec.h"

namespace fetchsim
{

/** The nine integer benchmarks, in the paper's order. */
const std::vector<WorkloadSpec> &integerSuite();

/** The six floating-point benchmarks, in the paper's order. */
const std::vector<WorkloadSpec> &fpSuite();

/** All fifteen benchmarks (integer then floating-point). */
const std::vector<WorkloadSpec> &fullSuite();

/** Look up a benchmark by name; calls fatal() if unknown. */
const WorkloadSpec &benchmarkByName(const std::string &name);

/** True if a benchmark with this name exists. */
bool hasBenchmark(const std::string &name);

/**
 * @name Dynamic benchmarks
 * The static 15-benchmark suite can be extended at runtime with
 * generated specs -- the workload fuzzer (sim/fuzz.h) registers one
 * randomized spec per scenario so the whole driver stack (Session,
 * plans, checkpoints) treats it exactly like a suite benchmark.
 * Registration is thread-safe and may not shadow a static suite
 * name (SimException(Config)); re-registering a dynamic name
 * replaces it, and references returned by benchmarkByName() stay
 * valid until that name is re-registered or unregistered.
 */
///@{

/** Register (or replace) a runtime benchmark spec keyed by its
 *  spec.name. */
void registerDynamicBenchmark(const WorkloadSpec &spec);

/** Drop a runtime benchmark; true when it existed. */
bool unregisterDynamicBenchmark(const std::string &name);

///@}

} // namespace fetchsim

#endif // FETCHSIM_WORKLOAD_BENCHMARK_SUITE_H_
