#include "stats/log.h"

#include <cstdio>

namespace fetchsim
{

void
logMessage(const char *label, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", label, msg.c_str());
}

void
fatal(const std::string &msg)
{
    logMessage("fatal", msg);
    std::exit(1);
}

void
panic(const std::string &msg)
{
    logMessage("panic", msg);
    std::abort();
}

void
warn(const std::string &msg)
{
    logMessage("warn", msg);
}

void
inform(const std::string &msg)
{
    logMessage("info", msg);
}

} // namespace fetchsim
