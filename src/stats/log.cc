#include "stats/log.h"

#include <ctime>
#include <mutex>

#include "stats/json.h"

namespace fetchsim
{

Expected<void> applyLogSpecTo(Logger &logger, const std::string &spec);

std::atomic<std::uint8_t> Logger::threshold_{
    static_cast<std::uint8_t>(LogLevel::Info)};

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug:
        return "debug";
      case LogLevel::Info:
        return "info";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Error:
        return "error";
      case LogLevel::Off:
        return "off";
    }
    return "info";
}

const char *
logFormatName(LogFormat format)
{
    return format == LogFormat::Jsonl ? "json" : "text";
}

Expected<LogLevel>
parseLogLevel(const std::string &text)
{
    if (text == "debug")
        return LogLevel::Debug;
    if (text == "info")
        return LogLevel::Info;
    if (text == "warn" || text == "warning")
        return LogLevel::Warn;
    if (text == "error")
        return LogLevel::Error;
    if (text == "off" || text == "none")
        return LogLevel::Off;
    return SimError{ErrorKind::Config,
                    "unknown log level '" + text +
                        "' (expected debug|info|warn|error|off)"};
}

Expected<LogFormat>
parseLogFormat(const std::string &text)
{
    if (text == "text" || text == "logfmt")
        return LogFormat::Text;
    if (text == "json" || text == "jsonl")
        return LogFormat::Jsonl;
    return SimError{ErrorKind::Config,
                    "unknown log format '" + text +
                        "' (expected text|json)"};
}

struct Logger::Impl
{
    std::mutex mutex;
    std::FILE *file = nullptr;       //!< nullptr = stderr
    std::string *capture = nullptr;  //!< test hook
    LogFormat format = LogFormat::Text;
    bool timestamps = true;
};

Logger::Logger() : impl_(new Impl) {}

// The Logger is never destroyed (instance() leaks it deliberately so
// logging works during static destruction), but keep the destructor
// well-formed for completeness.
Logger::~Logger()
{
    if (impl_->file)
        std::fclose(impl_->file);
    delete impl_;
}

Logger &
Logger::instance()
{
    static Logger *logger = [] {
        Logger *made = new Logger();
        // Environment config is best-effort: a malformed field keeps
        // the default rather than killing the process before main().
        if (const char *env = std::getenv("FETCHSIM_LOG")) {
            if (*env) {
                try {
                    (void)applyLogSpecTo(*made, env);
                } catch (...) {
                }
            }
        }
        return made;
    }();
    return *logger;
}

void
Logger::setLevel(LogLevel level)
{
    threshold_.store(static_cast<std::uint8_t>(level),
                     std::memory_order_relaxed);
}

void
Logger::setFormat(LogFormat format)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->format = format;
}

LogFormat
Logger::format() const
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->format;
}

void
Logger::openFile(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "a");
    if (!file)
        throw SimException(ErrorKind::Io,
                           "cannot open log file '" + path + "'");
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->file)
        std::fclose(impl_->file);
    impl_->file = file;
}

void
Logger::setCapture(std::string *capture)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->capture = capture;
}

void
Logger::setTimestamps(bool enabled)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->timestamps = enabled;
}

namespace
{

/** "2026-08-08T12:34:56.123456Z" (UTC, microsecond precision). */
std::string
formatTimestamp()
{
    timespec ts{};
    clock_gettime(CLOCK_REALTIME, &ts);
    std::tm tm{};
    gmtime_r(&ts.tv_sec, &tm);
    char buf[40];
    std::snprintf(buf, sizeof(buf),
                  "%04d-%02d-%02dT%02d:%02d:%02d.%06ldZ",
                  tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday,
                  tm.tm_hour, tm.tm_min, tm.tm_sec,
                  ts.tv_nsec / 1000);
    return buf;
}

/** logfmt value: raw when it needs no quoting, "quoted" otherwise. */
void
appendTextValue(std::string &out, const std::string &value, bool quoted)
{
    bool needs_quotes = quoted || value.empty();
    for (char c : value) {
        if (c == ' ' || c == '"' || c == '=' || c == '\\' ||
            c == '\n' || c == '\t') {
            needs_quotes = true;
            break;
        }
    }
    if (!needs_quotes) {
        out += value;
        return;
    }
    out += '"';
    for (char c : value) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out += c;
        }
    }
    out += '"';
}

void
appendJsonValue(std::string &out, const std::string &value, bool quoted)
{
    if (!quoted) {
        // Numbers and booleans go out raw; an empty rendering would
        // produce invalid JSON, so guard with null.
        out += value.empty() ? "null" : value;
        return;
    }
    out += '"';
    out += jsonEscape(value);
    out += '"';
}

} // namespace

std::string
Logger::formatLine(LogLevel level, const std::string &msg,
                   const LogField *fields, std::size_t count) const
{
    // Caller holds impl_->mutex.
    std::string out;
    out.reserve(64 + msg.size() + count * 24);
    if (impl_->format == LogFormat::Jsonl) {
        out += '{';
        if (impl_->timestamps) {
            out += "\"ts\":\"";
            out += formatTimestamp();
            out += "\",";
        }
        out += "\"level\":\"";
        out += logLevelName(level);
        out += "\",\"msg\":\"";
        out += jsonEscape(msg);
        out += '"';
        for (std::size_t i = 0; i < count; ++i) {
            out += ",\"";
            out += jsonEscape(fields[i].key);
            out += "\":";
            appendJsonValue(out, fields[i].value, fields[i].quoted);
        }
        out += '}';
    } else {
        if (impl_->timestamps) {
            out += "ts=";
            out += formatTimestamp();
            out += ' ';
        }
        out += "level=";
        out += logLevelName(level);
        out += " msg=";
        appendTextValue(out, msg, true);
        for (std::size_t i = 0; i < count; ++i) {
            out += ' ';
            out += fields[i].key;
            out += '=';
            appendTextValue(out, fields[i].value, fields[i].quoted);
        }
    }
    return out;
}

void
Logger::writeLine(const std::string &line)
{
    // Caller holds impl_->mutex: one line, one write, no interleave.
    if (impl_->capture) {
        impl_->capture->append(line);
        impl_->capture->push_back('\n');
        return;
    }
    std::FILE *sink = impl_->file ? impl_->file : stderr;
    std::fprintf(sink, "%s\n", line.c_str());
    std::fflush(sink);
}

void
Logger::log(LogLevel level, const std::string &msg,
            std::initializer_list<LogField> fields)
{
    if (!enabledFor(level))
        return;
    std::lock_guard<std::mutex> lock(impl_->mutex);
    writeLine(formatLine(level, msg, fields.begin(), fields.size()));
}

void
Logger::log(LogLevel level, const std::string &msg,
            const std::vector<LogField> &fields)
{
    if (!enabledFor(level))
        return;
    std::lock_guard<std::mutex> lock(impl_->mutex);
    writeLine(formatLine(level, msg, fields.data(), fields.size()));
}

void
Logger::logAlways(LogLevel level, const std::string &msg,
                  std::initializer_list<LogField> fields)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    writeLine(formatLine(level, msg, fields.begin(), fields.size()));
}

Expected<void>
applyLogSpecTo(Logger &logger, const std::string &spec)
{
    // "level[:format[:path]]"; empty fields keep the current setting.
    // The path is everything after the second ':' so absolute paths
    // containing ':' survive (rare, but cheap to honor).
    std::string level_text, format_text, path;
    const std::size_t first = spec.find(':');
    if (first == std::string::npos) {
        level_text = spec;
    } else {
        level_text = spec.substr(0, first);
        const std::size_t second = spec.find(':', first + 1);
        if (second == std::string::npos) {
            format_text = spec.substr(first + 1);
        } else {
            format_text = spec.substr(first + 1, second - first - 1);
            path = spec.substr(second + 1);
        }
    }
    if (!level_text.empty()) {
        Expected<LogLevel> level = parseLogLevel(level_text);
        if (!level.ok())
            return level.error();
        logger.setLevel(level.value());
    }
    if (!format_text.empty()) {
        Expected<LogFormat> format = parseLogFormat(format_text);
        if (!format.ok())
            return format.error();
        logger.setFormat(format.value());
    }
    if (!path.empty())
        logger.openFile(path); // throws SimException(Io) on failure
    return {};
}

Expected<void>
applyLogSpec(const std::string &spec)
{
    return applyLogSpecTo(Logger::instance(), spec);
}

void
fatal(const std::string &msg)
{
    // Dead-end diagnostics bypass the threshold: a process that is
    // about to exit(1) must say why even at --log-level off.
    Logger::instance().logAlways(LogLevel::Error, msg,
                                 {{"fatal", true}});
    std::exit(1);
}

void
panic(const std::string &msg)
{
    Logger::instance().logAlways(LogLevel::Error, msg,
                                 {{"panic", true}});
    std::abort();
}

void
warn(const std::string &msg)
{
    LOG_WARN(msg);
}

void
inform(const std::string &msg)
{
    LOG_INFO(msg);
}

} // namespace fetchsim
