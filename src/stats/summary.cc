#include "stats/summary.h"

#include <cmath>

#include "stats/log.h"

namespace fetchsim
{

double
harmonicMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double denom = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            fatal("harmonicMean: non-positive rate");
        denom += 1.0 / v;
    }
    return static_cast<double>(values.size()) / denom;
}

double
arithmeticMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            fatal("geometricMean: non-positive value");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
percentOf(double a, double b)
{
    return b == 0.0 ? 0.0 : 100.0 * a / b;
}

} // namespace fetchsim
