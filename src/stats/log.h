/**
 * @file
 * Structured, leveled, thread-safe logging.
 *
 * Grown out of the original gem5-style fatal()/panic()/warn()/inform()
 * helpers, which wrote raw unsynchronized fprintf lines -- acceptable
 * for a single-run CLI, corrupting for a service handling concurrent
 * requests or a parallel sweep whose workers warn at the same instant.
 * This header keeps those four entry points (every existing call site
 * compiles unchanged) but routes them through a process-wide Logger:
 *
 *  - LogLevel / LogFormat -- severity ladder (debug < info < warn <
 *    error < off) and sink encoding (logfmt-style text, or JSONL with
 *    one object per line).
 *  - LogField -- one key=value pair attached to a line.  Strings are
 *    quoted, numbers and bools emitted raw, so JSONL lines are
 *    machine-parseable without a schema.
 *  - Logger   -- the process-wide singleton.  Writes are serialized
 *    under a mutex (one line = one write, never interleaved); the
 *    level check is a single relaxed atomic load so a disabled level
 *    costs the same as the PR 4 profiler's disabled PERF_SCOPE.
 *  - LOG_DEBUG/LOG_INFO/LOG_WARN/LOG_ERROR -- call-site macros that
 *    evaluate their field arguments only when the level is enabled.
 *
 * Configuration: `--log-level/--log-format/--log-file` on the CLI, or
 * the FETCHSIM_LOG environment variable ("level[:format[:path]]",
 * e.g. "debug:json:/tmp/fetchsim.log"), applied lazily on first use.
 * CLI flags override the environment.
 *
 * Contract (same as src/perf): logging is host-side observability and
 * must never perturb simulation results.  Sinks are stderr or a file,
 * never stdout, so result documents stay byte-identical whether
 * logging is off or at debug.
 */

#ifndef FETCHSIM_STATS_LOG_H_
#define FETCHSIM_STATS_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/error.h"

namespace fetchsim
{

/** Severity ladder; Off disables every level. */
enum class LogLevel : std::uint8_t
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    Off = 4,
};

/** Sink encoding: logfmt-style text or one JSON object per line. */
enum class LogFormat : std::uint8_t
{
    Text,
    Jsonl,
};

/** Lower-case display name ("debug", "info", "warn", "error", "off"). */
const char *logLevelName(LogLevel level);

/** Display name of a format ("text", "json"). */
const char *logFormatName(LogFormat format);

/** Parse "debug|info|warn|error|off" (Config error otherwise). */
Expected<LogLevel> parseLogLevel(const std::string &text);

/** Parse "text|json|jsonl" (Config error otherwise). */
Expected<LogFormat> parseLogFormat(const std::string &text);

/**
 * One key=value pair on a log line.  The constructor family decides
 * the wire representation: strings are quoted/escaped, arithmetic
 * values and bools are emitted raw so JSONL consumers get real
 * numbers.
 */
struct LogField
{
    std::string key;
    std::string value;
    bool quoted = true; //!< quote + escape in JSONL / text sinks

    LogField(std::string k, std::string v)
        : key(std::move(k)), value(std::move(v)), quoted(true)
    {
    }

    LogField(std::string k, const char *v)
        : key(std::move(k)), value(v ? v : ""), quoted(true)
    {
    }

    template <typename T,
              std::enable_if_t<std::is_arithmetic_v<T>, int> = 0>
    LogField(std::string k, T v) : key(std::move(k)), quoted(false)
    {
        if constexpr (std::is_same_v<T, bool>) {
            value = v ? "true" : "false";
        } else if constexpr (std::is_floating_point_v<T>) {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.6g",
                          static_cast<double>(v));
            value = buf;
        } else {
            value = std::to_string(v);
        }
    }
};

/**
 * The process-wide structured logger.  All writes are serialized
 * under an internal mutex; the level gate is a single relaxed atomic
 * load (see enabledFor()), so callers on hot paths pay nothing for
 * disabled levels beyond that load.
 */
class Logger
{
  public:
    /**
     * The singleton.  First call applies the FETCHSIM_LOG environment
     * variable ("level[:format[:path]]"); malformed specs are
     * ignored field-by-field rather than fatal.
     */
    static Logger &instance();

    /**
     * One relaxed atomic load: is @p level at or above the current
     * threshold?  Safe to call before instance() -- the threshold
     * defaults to Info until the environment is applied.
     */
    static bool
    enabledFor(LogLevel level)
    {
        return static_cast<std::uint8_t>(level) >=
               threshold_.load(std::memory_order_relaxed);
    }

    /** Current threshold level. */
    static LogLevel
    level()
    {
        return static_cast<LogLevel>(
            threshold_.load(std::memory_order_relaxed));
    }

    void setLevel(LogLevel level);
    void setFormat(LogFormat format);
    LogFormat format() const;

    /**
     * Redirect output to @p path (append mode).  Throws
     * SimException(Io) when the file cannot be opened; the previous
     * sink stays active in that case.
     */
    void openFile(const std::string &path);

    /**
     * Test hook: capture formatted lines into @p capture instead of
     * writing to stderr/file.  Pass nullptr to restore the normal
     * sink.  The pointee must outlive the redirection.
     */
    void setCapture(std::string *capture);

    /**
     * Test hook: suppress the ts= field so tests can assert exact
     * line bytes.  Defaults to on (timestamps emitted).
     */
    void setTimestamps(bool enabled);

    /** Emit one line.  Callers should gate on enabledFor() first. */
    void log(LogLevel level, const std::string &msg,
             std::initializer_list<LogField> fields = {});

    /** Vector-based overload for dynamically-built field sets. */
    void log(LogLevel level, const std::string &msg,
             const std::vector<LogField> &fields);

    /**
     * Emit unconditionally, ignoring the threshold.  Reserved for
     * dead-end diagnostics (fatal/panic): a process about to exit
     * must say why even at --log-level off.
     */
    void logAlways(LogLevel level, const std::string &msg,
                   std::initializer_list<LogField> fields = {});

    Logger(const Logger &) = delete;
    Logger &operator=(const Logger &) = delete;

  private:
    Logger();
    ~Logger();

    void writeLine(const std::string &line);
    std::string formatLine(LogLevel level, const std::string &msg,
                           const LogField *fields,
                           std::size_t count) const;

    static std::atomic<std::uint8_t> threshold_;

    struct Impl;
    Impl *impl_; //!< never freed: loggers outlive static destructors
};

/**
 * Parse and apply a FETCHSIM_LOG-style spec "level[:format[:path]]"
 * to the global logger.  Returns a Config error naming the bad field
 * on malformed level/format, an Io error when the path cannot be
 * opened.  Empty fields keep the current setting ("::file.log" only
 * redirects the sink).
 */
Expected<void> applyLogSpec(const std::string &spec);

/**
 * Call-site macros: one relaxed load when the level is disabled, and
 * the field list is not evaluated at all.  Usage:
 *   LOG_INFO("job.submitted", {{"job", id}, {"cells", n}});
 */
#define FETCHSIM_LOG_AT(lvl, ...)                                     \
    do {                                                              \
        if (::fetchsim::Logger::enabledFor(lvl))                      \
            ::fetchsim::Logger::instance().log(lvl, __VA_ARGS__);     \
    } while (0)

#define LOG_DEBUG(...) FETCHSIM_LOG_AT(::fetchsim::LogLevel::Debug, __VA_ARGS__)
#define LOG_INFO(...) FETCHSIM_LOG_AT(::fetchsim::LogLevel::Info, __VA_ARGS__)
#define LOG_WARN(...) FETCHSIM_LOG_AT(::fetchsim::LogLevel::Warn, __VA_ARGS__)
#define LOG_ERROR(...) FETCHSIM_LOG_AT(::fetchsim::LogLevel::Error, __VA_ARGS__)

/** Terminate with exit(1): the condition is the user's fault. */
[[noreturn]] void fatal(const std::string &msg);

/** Terminate with abort(): the condition is a simulator bug. */
[[noreturn]] void panic(const std::string &msg);

/** Non-fatal warning about questionable but survivable conditions. */
void warn(const std::string &msg);

/** Status message with no connotation of incorrect behaviour. */
void inform(const std::string &msg);

/**
 * Check an internal invariant.  Unlike assert(), this is active in all
 * build types, because a silently-corrupt cycle-level simulation is
 * worse than a slow one.
 */
inline void
simAssert(bool condition, const char *what)
{
    if (!condition)
        panic(std::string("assertion failed: ") + what);
}

} // namespace fetchsim

#endif // FETCHSIM_STATS_LOG_H_
