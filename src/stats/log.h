/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * fetchsim::fatal() is for user errors (bad configuration, impossible
 * experiment requests): it prints a message and exits with status 1.
 * fetchsim::panic() is for internal invariant violations (simulator
 * bugs): it prints a message and aborts so a core dump / debugger can
 * capture the state.  warn() and inform() are purely informational.
 */

#ifndef FETCHSIM_STATS_LOG_H_
#define FETCHSIM_STATS_LOG_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace fetchsim
{

/** Print a formatted message prefixed with a severity label. */
void logMessage(const char *label, const std::string &msg);

/** Terminate with exit(1): the condition is the user's fault. */
[[noreturn]] void fatal(const std::string &msg);

/** Terminate with abort(): the condition is a simulator bug. */
[[noreturn]] void panic(const std::string &msg);

/** Non-fatal warning about questionable but survivable conditions. */
void warn(const std::string &msg);

/** Status message with no connotation of incorrect behaviour. */
void inform(const std::string &msg);

/**
 * Check an internal invariant.  Unlike assert(), this is active in all
 * build types, because a silently-corrupt cycle-level simulation is
 * worse than a slow one.
 */
inline void
simAssert(bool condition, const char *what)
{
    if (!condition)
        panic(std::string("assertion failed: ") + what);
}

} // namespace fetchsim

#endif // FETCHSIM_STATS_LOG_H_
