/**
 * @file
 * Cross-benchmark summary statistics.
 *
 * The paper reports the harmonic mean of per-benchmark IPC values
 * (appropriate for rates); this header provides that plus the
 * arithmetic/geometric means used in sanity checks.
 */

#ifndef FETCHSIM_STATS_SUMMARY_H_
#define FETCHSIM_STATS_SUMMARY_H_

#include <vector>

namespace fetchsim
{

/**
 * Harmonic mean of a set of strictly-positive rates.
 * Returns 0 for an empty input; calls fatal() on non-positive values,
 * because a zero IPC would make the mean undefined and always
 * indicates a broken run.
 */
double harmonicMean(const std::vector<double> &values);

/** Arithmetic mean; 0 for an empty input. */
double arithmeticMean(const std::vector<double> &values);

/** Geometric mean of strictly-positive values; 0 for an empty input. */
double geometricMean(const std::vector<double> &values);

/**
 * Percentage ratio helper: 100 * a / b, or 0 when b == 0.
 * Used for the EIR/EIR(perfect) series of Figure 10.
 */
double percentOf(double a, double b);

} // namespace fetchsim

#endif // FETCHSIM_STATS_SUMMARY_H_
