/**
 * @file
 * Opt-in structured event trace (JSON Lines).
 *
 * A TraceSink turns per-cycle simulator events into one compact JSON
 * object per line, suitable for jq/pandas-style post-processing:
 *
 * @code
 *   {"ev":"fetch","cycle":12,"pc":4096,"delivered":4,"stop":"issue_limit"}
 * @endcode
 *
 * The sink is built for near-zero cost when disabled: a
 * default-constructed sink has no stream, enabled() is a single
 * pointer test, and instrumented components additionally keep a
 * null-guarded `TraceSink *` so an unattached processor pays one
 * predictable branch per cycle and allocates nothing (asserted by
 * test_metrics).
 *
 * Events are emitted through a begin/field/end protocol; fields
 * appear in call order and the line is terminated by end().  Calls on
 * a disabled sink are no-ops.
 */

#ifndef FETCHSIM_STATS_TRACE_SINK_H_
#define FETCHSIM_STATS_TRACE_SINK_H_

#include <cstdint>
#include <ostream>
#include <string>

namespace fetchsim
{

/**
 * JSONL event writer.  Not thread-safe: give each simulated
 * processor its own sink (runs never share mutable state).
 */
class TraceSink
{
  public:
    /** A disabled sink: every call is a cheap no-op. */
    TraceSink() = default;

    /**
     * An enabled sink writing to @p os (must outlive the sink).
     */
    explicit TraceSink(std::ostream &os) : os_(&os) {}

    TraceSink(const TraceSink &) = delete;
    TraceSink &operator=(const TraceSink &) = delete;

    /** True when events will actually be written. */
    bool enabled() const { return os_ != nullptr; }

    /** Number of complete events emitted so far. */
    std::uint64_t events() const { return events_; }

    /**
     * Open an event of type @p type at simulation time @p cycle.
     * Fatal if the previous event was not closed with end().
     */
    void begin(const char *type, std::uint64_t cycle);

    /** @name Field emitters
     * Append one "key":value pair to the open event.  Strings are
     * JSON-escaped; doubles round-trip (stats/json.h formatting).
     */
    ///@{
    TraceSink &field(const char *key, std::uint64_t value);
    TraceSink &field(const char *key, std::int64_t value);
    TraceSink &field(const char *key, int value);
    TraceSink &field(const char *key, double value);
    TraceSink &field(const char *key, bool value);
    TraceSink &field(const char *key, const char *value);
    TraceSink &field(const char *key, const std::string &value);
    ///@}

    /**
     * Close the open event and write the line.  A stream in a failed
     * state afterwards (disk full, broken pipe) throws
     * SimException(Io), which a sweep's isolation boundary records as
     * that run's failure.
     */
    void end();

  private:
    void rawField(const char *key, const std::string &rendered);

    std::ostream *os_ = nullptr; //!< null = disabled
    std::string line_;           //!< event under construction
    bool open_ = false;
    std::uint64_t events_ = 0;
};

} // namespace fetchsim

#endif // FETCHSIM_STATS_TRACE_SINK_H_
