/**
 * @file
 * Minimal streaming JSON writer for structured result output.
 *
 * The experiment layer serializes RunResults and whole sweeps to JSON
 * for downstream tooling (plotting scripts, regression dashboards).
 * This writer is deliberately tiny: objects, arrays, string/number/
 * bool/null scalars, correct escaping, and round-trip-safe double
 * formatting.  No parsing -- fetchsim only ever emits JSON.
 */

#ifndef FETCHSIM_STATS_JSON_H_
#define FETCHSIM_STATS_JSON_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace fetchsim
{

/** Escape a string for inclusion inside JSON double quotes. */
std::string jsonEscape(const std::string &text);

/** Format a double so that it parses back to the same value. */
std::string jsonNumber(double value);

/**
 * Streaming JSON writer with automatic comma/indentation handling.
 *
 * Usage:
 * @code
 *   JsonWriter json(os);
 *   json.beginObject();
 *   json.key("ipc").value(3.14);
 *   json.key("runs").beginArray();
 *   json.value("a").value("b");
 *   json.endArray();
 *   json.endObject();
 * @endcode
 *
 * The writer panics (simulator bug) on structural misuse such as a
 * key outside an object or unbalanced begin/end calls.
 */
class JsonWriter
{
  public:
    /**
     * @param os     destination stream
     * @param indent spaces per nesting level; 0 = compact one-line
     */
    explicit JsonWriter(std::ostream &os, int indent = 2);
    ~JsonWriter();

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; the next call must emit its value. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &text);
    JsonWriter &value(const char *text);
    JsonWriter &value(std::uint64_t number);
    JsonWriter &value(std::int64_t number);
    JsonWriter &value(int number);
    JsonWriter &value(double number);
    JsonWriter &value(bool flag);
    JsonWriter &null();

    /** Depth of currently open containers (testing hook). */
    std::size_t depth() const { return stack_.size(); }

  private:
    enum class Frame : std::uint8_t { Object, Array };

    void beforeValue();
    void newline();

    std::ostream &os_;
    int indent_;
    std::vector<Frame> stack_;
    std::vector<bool> has_items_;
    bool key_pending_ = false;
    bool done_ = false;
};

} // namespace fetchsim

#endif // FETCHSIM_STATS_JSON_H_
