#include "stats/json_parse.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace fetchsim
{

namespace
{

/** Deepest container nesting parseJson() accepts. */
constexpr int kMaxDepth = 64;

SimError
protocolError(const std::string &what, std::size_t offset)
{
    return SimError{ErrorKind::Protocol,
                    "invalid JSON: " + what,
                    "offset=" + std::to_string(offset)};
}

/** Recursive-descent parser over one in-memory document. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Expected<JsonValue> parse()
    {
        JsonValue value;
        if (SimError *error = parseValue(value, 0))
            return *error;
        skipWhitespace();
        if (pos_ != text_.size())
            return protocolError("trailing garbage after document",
                                 pos_);
        return value;
    }

  private:
    // Each parse step returns nullptr on success or a pointer to
    // error_ -- keeping the recursion exception-free so malformed
    // input is an ordinary result, never control flow.
    SimError *fail(const std::string &what)
    {
        error_ = protocolError(what, pos_);
        return &error_;
    }

    void skipWhitespace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool consume(char want)
    {
        if (pos_ < text_.size() && text_[pos_] == want) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool consumeLiteral(const char *word)
    {
        std::size_t len = 0;
        while (word[len])
            ++len;
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    SimError *parseValue(JsonValue &out, int depth)
    {
        skipWhitespace();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char ch = text_[pos_];
        if (ch == '{')
            return parseObject(out, depth);
        if (ch == '[')
            return parseArray(out, depth);
        if (ch == '"')
            return parseString(out);
        if (ch == '-' || (ch >= '0' && ch <= '9'))
            return parseNumber(out);
        if (consumeLiteral("true")) {
            out = JsonValue::boolean(true);
            return nullptr;
        }
        if (consumeLiteral("false")) {
            out = JsonValue::boolean(false);
            return nullptr;
        }
        if (consumeLiteral("null")) {
            out = JsonValue::null();
            return nullptr;
        }
        return fail("unexpected character");
    }

    SimError *parseObject(JsonValue &out, int depth)
    {
        if (depth >= kMaxDepth)
            return fail("nesting too deep");
        ++pos_; // '{'
        out = JsonValue::object();
        skipWhitespace();
        if (consume('}'))
            return nullptr;
        for (;;) {
            skipWhitespace();
            JsonValue key;
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key string");
            if (SimError *error = parseString(key))
                return error;
            skipWhitespace();
            if (!consume(':'))
                return fail("expected ':' after object key");
            JsonValue value;
            if (SimError *error = parseValue(value, depth + 1))
                return error;
            out.set(key.asString(), std::move(value));
            skipWhitespace();
            if (consume(','))
                continue;
            if (consume('}'))
                return nullptr;
            return fail("expected ',' or '}' in object");
        }
    }

    SimError *parseArray(JsonValue &out, int depth)
    {
        if (depth >= kMaxDepth)
            return fail("nesting too deep");
        ++pos_; // '['
        std::vector<JsonValue> elements;
        skipWhitespace();
        if (consume(']')) {
            out = JsonValue::array(std::move(elements));
            return nullptr;
        }
        for (;;) {
            JsonValue value;
            if (SimError *error = parseValue(value, depth + 1))
                return error;
            elements.push_back(std::move(value));
            skipWhitespace();
            if (consume(','))
                continue;
            if (consume(']')) {
                out = JsonValue::array(std::move(elements));
                return nullptr;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    SimError *parseString(JsonValue &out)
    {
        ++pos_; // '"'
        std::string text;
        while (pos_ < text_.size()) {
            const char ch = text_[pos_];
            if (ch == '"') {
                ++pos_;
                out = JsonValue::string(std::move(text));
                return nullptr;
            }
            if (static_cast<unsigned char>(ch) < 0x20)
                return fail("unescaped control character in string");
            if (ch != '\\') {
                text += ch;
                ++pos_;
                continue;
            }
            ++pos_;
            if (pos_ >= text_.size())
                return fail("truncated escape sequence");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':
                text += '"';
                break;
              case '\\':
                text += '\\';
                break;
              case '/':
                text += '/';
                break;
              case 'b':
                text += '\b';
                break;
              case 'f':
                text += '\f';
                break;
              case 'n':
                text += '\n';
                break;
              case 'r':
                text += '\r';
                break;
              case 't':
                text += '\t';
                break;
              case 'u': {
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    if (pos_ >= text_.size())
                        return fail("truncated \\u escape");
                    const char hex = text_[pos_++];
                    code <<= 4;
                    if (hex >= '0' && hex <= '9')
                        code |= static_cast<unsigned>(hex - '0');
                    else if (hex >= 'a' && hex <= 'f')
                        code |= static_cast<unsigned>(hex - 'a' + 10);
                    else if (hex >= 'A' && hex <= 'F')
                        code |= static_cast<unsigned>(hex - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // Encode the code point as UTF-8.  Surrogate pairs
                // are passed through unpaired (the service protocol
                // is ASCII in practice).
                if (code < 0x80) {
                    text += static_cast<char>(code);
                } else if (code < 0x800) {
                    text += static_cast<char>(0xc0 | (code >> 6));
                    text += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    text += static_cast<char>(0xe0 | (code >> 12));
                    text += static_cast<char>(0x80 |
                                              ((code >> 6) & 0x3f));
                    text += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                return fail("unknown escape character");
            }
        }
        return fail("unterminated string");
    }

    SimError *parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        consume('-');
        if (pos_ >= text_.size() ||
            !std::isdigit(static_cast<unsigned char>(text_[pos_])))
            return fail("malformed number");
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (consume('.')) {
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                return fail("malformed number fraction");
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                return fail("malformed number exponent");
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        const std::string token = text_.substr(start, pos_ - start);
        out = JsonValue::number(std::strtod(token.c_str(), nullptr));
        return nullptr;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    SimError error_;
};

[[noreturn]] void
throwTypeMismatch(const char *wanted, JsonValue::Type got)
{
    throw SimException(ErrorKind::Protocol,
                       std::string("expected JSON ") + wanted +
                           ", got " + JsonValue::typeName(got));
}

} // anonymous namespace

const char *
JsonValue::typeName(Type type)
{
    switch (type) {
      case Type::Null:
        return "null";
      case Type::Bool:
        return "bool";
      case Type::Number:
        return "number";
      case Type::String:
        return "string";
      case Type::Array:
        return "array";
      case Type::Object:
        return "object";
    }
    return "null";
}

bool
JsonValue::asBool() const
{
    if (!isBool())
        throwTypeMismatch("bool", type_);
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (!isNumber())
        throwTypeMismatch("number", type_);
    return number_;
}

std::uint64_t
JsonValue::asU64() const
{
    const double value = asNumber();
    if (value < 0 || value != std::floor(value) ||
        value >= 9007199254740992.0) { // 2^53
        throw SimException(ErrorKind::Protocol,
                           "expected a non-negative JSON integer");
    }
    return static_cast<std::uint64_t>(value);
}

const std::string &
JsonValue::asString() const
{
    if (!isString())
        throwTypeMismatch("string", type_);
    return string_;
}

const std::vector<JsonValue> &
JsonValue::elements() const
{
    if (!isArray() && !isObject())
        throwTypeMismatch("array", type_);
    return elements_;
}

const std::vector<std::string> &
JsonValue::keys() const
{
    if (!isObject())
        throwTypeMismatch("object", type_);
    return keys_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (!isObject())
        return nullptr;
    // Last occurrence wins for duplicate keys.
    for (std::size_t i = keys_.size(); i > 0; --i)
        if (keys_[i - 1] == key)
            return &elements_[i - 1];
    return nullptr;
}

JsonValue
JsonValue::null()
{
    return JsonValue();
}

JsonValue
JsonValue::boolean(bool flag)
{
    JsonValue value;
    value.type_ = Type::Bool;
    value.bool_ = flag;
    return value;
}

JsonValue
JsonValue::number(double number)
{
    JsonValue value;
    value.type_ = Type::Number;
    value.number_ = number;
    return value;
}

JsonValue
JsonValue::string(std::string text)
{
    JsonValue value;
    value.type_ = Type::String;
    value.string_ = std::move(text);
    return value;
}

JsonValue
JsonValue::array(std::vector<JsonValue> elements)
{
    JsonValue value;
    value.type_ = Type::Array;
    value.elements_ = std::move(elements);
    return value;
}

JsonValue
JsonValue::object()
{
    JsonValue value;
    value.type_ = Type::Object;
    return value;
}

void
JsonValue::set(const std::string &key, JsonValue value)
{
    if (!isObject())
        throwTypeMismatch("object", type_);
    for (std::size_t i = 0; i < keys_.size(); ++i) {
        if (keys_[i] == key) {
            elements_[i] = std::move(value);
            return;
        }
    }
    keys_.push_back(key);
    elements_.push_back(std::move(value));
}

Expected<JsonValue>
parseJson(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace fetchsim
