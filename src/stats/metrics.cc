#include "stats/metrics.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "core/error.h"
#include "stats/log.h"

namespace fetchsim
{

// ------------------------------------------------------------------
// Histogram
// ------------------------------------------------------------------

Histogram::Histogram(std::string path, std::string desc,
                     std::vector<std::uint64_t> bounds)
    : path_(std::move(path)), desc_(std::move(desc)),
      bounds_(std::move(bounds))
{
    if (bounds_.empty())
        throw SimException(ErrorKind::Config,
                           "Histogram " + path_ +
                               ": needs at least one bound");
    for (std::size_t i = 1; i < bounds_.size(); ++i) {
        if (bounds_[i] <= bounds_[i - 1])
            throw SimException(
                ErrorKind::Config,
                "Histogram " + path_ +
                    ": bounds must be strictly increasing");
    }
    counts_.assign(bounds_.size() + 1, 0);
}

void
Histogram::record(std::uint64_t sample)
{
    const auto it =
        std::lower_bound(bounds_.begin(), bounds_.end(), sample);
    ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
    if (count_ == 0 || sample < min_)
        min_ = sample;
    if (sample > max_)
        max_ = sample;
    ++count_;
    sum_ += sample;
}

double
Histogram::mean() const
{
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
}

std::uint64_t
Histogram::bucketCount(std::size_t bucket) const
{
    if (bucket >= counts_.size())
        fatal("Histogram " + path_ + ": bucket out of range");
    return counts_[bucket];
}

std::string
Histogram::bucketLabel(std::size_t bucket) const
{
    if (bucket >= counts_.size())
        fatal("Histogram " + path_ + ": bucket out of range");
    std::ostringstream label;
    if (bucket == 0) {
        label << "[0," << bounds_[0] << "]";
    } else if (bucket == bounds_.size()) {
        label << "(" << bounds_.back() << ",inf)";
    } else {
        label << "(" << bounds_[bucket - 1] << "," << bounds_[bucket]
              << "]";
    }
    return label.str();
}

// ------------------------------------------------------------------
// MetricRegistry
// ------------------------------------------------------------------

bool
MetricRegistry::validPath(const std::string &path)
{
    if (path.empty() || path.front() == '.' || path.back() == '.')
        return false;
    bool prev_dot = false;
    for (char c : path) {
        if (c == '.') {
            if (prev_dot)
                return false;
            prev_dot = true;
            continue;
        }
        prev_dot = false;
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= '0' && c <= '9') || c == '_';
        if (!ok)
            return false;
    }
    return true;
}

Counter &
MetricRegistry::counter(const std::string &path,
                        const std::string &description)
{
    if (!validPath(path))
        throw SimException(ErrorKind::Config,
                           "MetricRegistry: invalid metric path: '" +
                               path + "'");
    if (histograms_.count(path) != 0)
        throw SimException(ErrorKind::Config,
                           "MetricRegistry: " + path +
                               " already registered as a histogram");
    if (gauges_.count(path) != 0)
        throw SimException(ErrorKind::Config,
                           "MetricRegistry: " + path +
                               " already registered as a gauge");
    auto &slot = counters_[path];
    if (!slot)
        slot.reset(new Counter(path, description));
    return *slot;
}

Gauge &
MetricRegistry::gauge(const std::string &path,
                      const std::string &description)
{
    if (!validPath(path))
        throw SimException(ErrorKind::Config,
                           "MetricRegistry: invalid metric path: '" +
                               path + "'");
    if (counters_.count(path) != 0)
        throw SimException(ErrorKind::Config,
                           "MetricRegistry: " + path +
                               " already registered as a counter");
    if (histograms_.count(path) != 0)
        throw SimException(ErrorKind::Config,
                           "MetricRegistry: " + path +
                               " already registered as a histogram");
    auto &slot = gauges_[path];
    if (!slot)
        slot.reset(new Gauge(path, description));
    return *slot;
}

Histogram &
MetricRegistry::histogram(const std::string &path,
                          const std::vector<std::uint64_t> &bounds,
                          const std::string &description)
{
    if (!validPath(path))
        throw SimException(ErrorKind::Config,
                           "MetricRegistry: invalid metric path: '" +
                               path + "'");
    if (counters_.count(path) != 0)
        throw SimException(ErrorKind::Config,
                           "MetricRegistry: " + path +
                               " already registered as a counter");
    if (gauges_.count(path) != 0)
        throw SimException(ErrorKind::Config,
                           "MetricRegistry: " + path +
                               " already registered as a gauge");
    auto &slot = histograms_[path];
    if (!slot) {
        slot.reset(new Histogram(path, description, bounds));
    } else if (slot->bounds() != bounds) {
        throw SimException(
            ErrorKind::Config,
            "MetricRegistry: " + path +
                " re-registered with different bounds");
    }
    return *slot;
}

const Counter *
MetricRegistry::findCounter(const std::string &path) const
{
    auto it = counters_.find(path);
    return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge *
MetricRegistry::findGauge(const std::string &path) const
{
    auto it = gauges_.find(path);
    return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram *
MetricRegistry::findHistogram(const std::string &path) const
{
    auto it = histograms_.find(path);
    return it == histograms_.end() ? nullptr : it->second.get();
}

std::vector<const Counter *>
MetricRegistry::counters() const
{
    std::vector<const Counter *> out;
    out.reserve(counters_.size());
    for (const auto &[path, ctr] : counters_)
        out.push_back(ctr.get());
    return out;
}

std::vector<const Gauge *>
MetricRegistry::gauges() const
{
    std::vector<const Gauge *> out;
    out.reserve(gauges_.size());
    for (const auto &[path, gauge] : gauges_)
        out.push_back(gauge.get());
    return out;
}

std::vector<const Histogram *>
MetricRegistry::histograms() const
{
    std::vector<const Histogram *> out;
    out.reserve(histograms_.size());
    for (const auto &[path, hist] : histograms_)
        out.push_back(hist.get());
    return out;
}

std::vector<std::string>
MetricRegistry::children(const std::string &prefix) const
{
    const std::string want =
        prefix.empty() ? std::string() : prefix + ".";
    std::set<std::string> kids;
    auto visit = [&](const std::string &path) {
        if (path.size() <= want.size() ||
            path.compare(0, want.size(), want) != 0)
            return;
        const std::string rest = path.substr(want.size());
        kids.insert(rest.substr(0, rest.find('.')));
    };
    for (const auto &[path, ctr] : counters_)
        visit(path);
    for (const auto &[path, gauge] : gauges_)
        visit(path);
    for (const auto &[path, hist] : histograms_)
        visit(path);
    return {kids.begin(), kids.end()};
}

void
MetricRegistry::merge(const MetricRegistry &other)
{
    for (const auto &[path, ctr] : other.counters_)
        counter(path, ctr->description()).inc(ctr->value());
    for (const auto &[path, g] : other.gauges_)
        gauge(path, g->description()).add(g->value());
    for (const auto &[path, hist] : other.histograms_) {
        Histogram &mine =
            histogram(path, hist->bounds(), hist->description());
        if (hist->count_ == 0)
            continue;
        for (std::size_t b = 0; b < hist->counts_.size(); ++b)
            mine.counts_[b] += hist->counts_[b];
        if (mine.count_ == 0 || hist->min_ < mine.min_)
            mine.min_ = hist->min_;
        if (hist->max_ > mine.max_)
            mine.max_ = hist->max_;
        mine.count_ += hist->count_;
        mine.sum_ += hist->sum_;
    }
}

void
MetricRegistry::reset()
{
    for (auto &[path, ctr] : counters_)
        ctr->value_ = 0;
    for (auto &[path, gauge] : gauges_)
        gauge->value_ = 0;
    for (auto &[path, hist] : histograms_) {
        std::fill(hist->counts_.begin(), hist->counts_.end(), 0);
        hist->count_ = hist->sum_ = hist->min_ = hist->max_ = 0;
    }
}

void
MetricRegistry::writeJson(JsonWriter &json) const
{
    json.beginObject();
    json.key("counters").beginObject();
    for (const auto &[path, ctr] : counters_)
        json.key(path).value(ctr->value());
    json.endObject();
    json.key("gauges").beginObject();
    for (const auto &[path, gauge] : gauges_)
        json.key(path).value(gauge->value());
    json.endObject();
    json.key("histograms").beginObject();
    for (const auto &[path, hist] : histograms_) {
        json.key(path).beginObject();
        json.key("count").value(hist->count());
        json.key("sum").value(hist->sum());
        json.key("min").value(hist->min());
        json.key("max").value(hist->max());
        json.key("buckets").beginArray();
        for (std::size_t b = 0; b < hist->numBuckets(); ++b) {
            json.beginObject();
            if (b < hist->bounds().size())
                json.key("le").value(hist->bounds()[b]);
            else
                json.key("le").value("inf");
            json.key("count").value(hist->bucketCount(b));
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endObject();
    json.endObject();
}

std::string
MetricRegistry::formatText() const
{
    std::ostringstream os;
    for (const auto &[path, ctr] : counters_) {
        os << path << " = " << ctr->value();
        if (!ctr->description().empty())
            os << "  # " << ctr->description();
        os << "\n";
    }
    for (const auto &[path, gauge] : gauges_) {
        os << path << " = " << gauge->value() << " (gauge)";
        if (!gauge->description().empty())
            os << "  # " << gauge->description();
        os << "\n";
    }
    for (const auto &[path, hist] : histograms_) {
        os << path << " (histogram) count=" << hist->count()
           << " mean=" << hist->mean() << " min=" << hist->min()
           << " max=" << hist->max();
        if (!hist->description().empty())
            os << "  # " << hist->description();
        os << "\n";
        for (std::size_t b = 0; b < hist->numBuckets(); ++b) {
            os << "  " << hist->bucketLabel(b) << " = "
               << hist->bucketCount(b) << "\n";
        }
    }
    return os.str();
}

namespace
{

/** "service.queue_depth" -> "service_queue_depth". */
std::string
promName(const std::string &path)
{
    std::string name = path;
    for (char &c : name) {
        if (c == '.')
            c = '_';
    }
    return name;
}

/** HELP text escaping: backslash and newline per the exposition spec. */
std::string
promHelpEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

void
promHeader(std::ostringstream &os, const std::string &name,
           const std::string &description, const char *type)
{
    if (!description.empty())
        os << "# HELP " << name << " " << promHelpEscape(description)
           << "\n";
    os << "# TYPE " << name << " " << type << "\n";
}

} // namespace

std::string
MetricRegistry::formatPrometheus() const
{
    std::ostringstream os;
    for (const auto &[path, ctr] : counters_) {
        const std::string name = promName(path);
        promHeader(os, name, ctr->description(), "counter");
        os << name << " " << ctr->value() << "\n";
    }
    for (const auto &[path, gauge] : gauges_) {
        const std::string name = promName(path);
        promHeader(os, name, gauge->description(), "gauge");
        os << name << " " << gauge->value() << "\n";
    }
    for (const auto &[path, hist] : histograms_) {
        const std::string name = promName(path);
        promHeader(os, name, hist->description(), "histogram");
        // Prometheus buckets are cumulative: each le sample counts
        // everything at or below that bound, and le="+Inf" equals
        // the total sample count.
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < hist->bounds().size(); ++b) {
            cumulative += hist->bucketCount(b);
            os << name << "_bucket{le=\"" << hist->bounds()[b]
               << "\"} " << cumulative << "\n";
        }
        os << name << "_bucket{le=\"+Inf\"} " << hist->count()
           << "\n";
        os << name << "_sum " << hist->sum() << "\n";
        os << name << "_count " << hist->count() << "\n";
    }
    return os.str();
}

const std::vector<std::uint64_t> &
latencyBucketBoundsUs()
{
    // 1-2-5 ladder, 1us .. 10s.  22 bounds + overflow = 23 buckets.
    static const std::vector<std::uint64_t> bounds = {
        1,      2,      5,      10,      20,      50,      100,    200,
        500,    1000,   2000,   5000,    10000,   20000,   50000,
        100000, 200000, 500000, 1000000, 2000000, 5000000, 10000000,
    };
    return bounds;
}

} // namespace fetchsim
