#include "stats/csv.h"

#include <cmath>

#include "stats/json.h"
#include "stats/log.h"

namespace fetchsim
{

std::string
csvEscape(const std::string &field)
{
    const bool needs_quotes =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes)
        return field;
    std::string out = "\"";
    for (char ch : field) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

CsvWriter::CsvWriter(std::ostream &os) : os_(os) {}

CsvWriter::~CsvWriter()
{
    if (in_row_ != 0)
        warn("CsvWriter destroyed mid-row");
}

CsvWriter &
CsvWriter::header(const std::vector<std::string> &names)
{
    if (header_done_)
        panic("CsvWriter: header emitted twice");
    if (names.empty())
        panic("CsvWriter: empty header");
    header_done_ = true;
    columns_ = names.size();
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (i)
            os_ << ',';
        os_ << csvEscape(names[i]);
    }
    os_ << '\n';
    return *this;
}

void
CsvWriter::rawField(const std::string &text)
{
    if (!header_done_)
        panic("CsvWriter: field before header");
    if (in_row_ >= columns_)
        panic("CsvWriter: too many fields in row");
    if (in_row_)
        os_ << ',';
    os_ << text;
    ++in_row_;
}

CsvWriter &
CsvWriter::field(const std::string &text)
{
    rawField(csvEscape(text));
    return *this;
}

CsvWriter &
CsvWriter::field(const char *text)
{
    return field(std::string(text));
}

CsvWriter &
CsvWriter::field(std::uint64_t number)
{
    rawField(std::to_string(number));
    return *this;
}

CsvWriter &
CsvWriter::field(std::int64_t number)
{
    rawField(std::to_string(number));
    return *this;
}

CsvWriter &
CsvWriter::field(int number)
{
    rawField(std::to_string(number));
    return *this;
}

CsvWriter &
CsvWriter::field(double number)
{
    if (!std::isfinite(number))
        panic("CsvWriter: non-finite value");
    // Shortest round-trippable rendering, shared with the JSON
    // writer so BENCH/report numbers survive a parse->emit cycle
    // identically in both formats.
    rawField(jsonNumber(number));
    return *this;
}

CsvWriter &
CsvWriter::field(bool flag)
{
    rawField(flag ? "true" : "false");
    return *this;
}

CsvWriter &
CsvWriter::endRow()
{
    if (in_row_ != columns_)
        panic("CsvWriter: row is missing fields");
    os_ << '\n';
    in_row_ = 0;
    ++rows_;
    return *this;
}

} // namespace fetchsim
