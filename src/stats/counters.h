/**
 * @file
 * Statistics counters collected by one processor-simulation run.
 *
 * Every counter is a plain integral value; derived quantities (IPC,
 * EIR, ratios) are computed on demand so a half-finished run can still
 * be inspected.  The counter set mirrors the quantities the paper
 * reports: retired instructions (IPC), instructions delivered to the
 * decoders (EIR), taken-branch census (Tables 2 and 3) and the fetch
 * stall breakdown used in the analysis sections.
 */

#ifndef FETCHSIM_STATS_COUNTERS_H_
#define FETCHSIM_STATS_COUNTERS_H_

#include <cstdint>
#include <string>

namespace fetchsim
{

/** Why a fetch group was terminated before reaching the issue rate. */
enum class FetchStop : std::uint8_t
{
    IssueLimit,       //!< group reached the machine issue rate
    BlockEnd,         //!< scheme ran out of fetchable cache block(s)
    TakenBranch,      //!< predicted-taken branch the scheme cannot cross
    IntraBlock,       //!< intra-block branch (banked sequential limit)
    BackwardIntra,    //!< backward intra-block target (collapsing limit)
    BankConflict,     //!< successor block collides with fetch block bank
    Mispredict,       //!< BTB disagreed with the actual outcome
    BtbMissControl,   //!< unconditional control inst absent from BTB
    CacheMiss,        //!< instruction cache miss on a needed block
    SpecDepth,        //!< speculation depth limit reached
    WindowFull,       //!< no free window/ROB entries
    StreamEnd,        //!< dynamic instruction stream exhausted
    NumStopReasons
};

/** Number of distinct FetchStop reasons (array-sizing helper). */
constexpr int kNumFetchStops =
    static_cast<int>(FetchStop::NumStopReasons);

/** Human-readable name of a stop reason. */
const char *fetchStopName(FetchStop reason);

/**
 * Aggregate statistics for one simulation run.
 */
struct RunCounters
{
    std::uint64_t cycles = 0;          //!< simulated clock cycles
    std::uint64_t retired = 0;         //!< instructions leaving the ROB
    std::uint64_t delivered = 0;       //!< instructions sent to decode
    std::uint64_t fetchGroups = 0;     //!< non-empty fetch groups formed

    std::uint64_t condBranches = 0;    //!< retired conditional branches
    std::uint64_t takenBranches = 0;   //!< retired taken ctrl transfers
    std::uint64_t intraBlockTaken = 0; //!< taken, target in same block
    std::uint64_t mispredicts = 0;     //!< wrong conditional predictions
    std::uint64_t controlMispredicts = 0; //!< all wrong predictions
                                          //!< (cond + indirect/stale)

    std::uint64_t icacheAccesses = 0;  //!< block lookups in the I-cache
    std::uint64_t icacheMisses = 0;    //!< block lookups that missed
    std::uint64_t btbLookups = 0;      //!< BTB queries
    std::uint64_t btbHits = 0;         //!< BTB queries that hit

    std::uint64_t stallCycles = 0;     //!< cycles fetch delivered nothing
    std::uint64_t nopsRetired = 0;     //!< padding nops that retired
    std::uint64_t nopsDelivered = 0;   //!< padding nops sent to decode

    /** Histogram of group-termination reasons. */
    std::uint64_t stops[kNumFetchStops] = {};

    /** Instructions retired per cycle (the paper's headline metric).
     *  Padding nops do no useful work and are excluded, so padded and
     *  unpadded layouts are comparable. */
    double ipc() const;

    /** Effective issue rate: useful instructions delivered to
     *  decode per cycle (padding nops excluded). */
    double eir() const;

    /** Raw retirement rate including padding nops. */
    double rawIpc() const;

    /** Fraction of resolved conditional branches predicted wrongly. */
    double mispredictRate() const;

    /** I-cache miss ratio over block accesses. */
    double icacheMissRatio() const;

    /** Taken branches with intra-block targets / all taken branches. */
    double intraBlockRatio() const;

    /** Record one group-stop event. */
    void noteStop(FetchStop reason);

    /** Multi-line human-readable dump (used by examples and tests). */
    std::string format() const;
};

} // namespace fetchsim

#endif // FETCHSIM_STATS_COUNTERS_H_
