#include "stats/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "stats/log.h"

namespace fetchsim
{

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (unsigned char ch : text) {
        switch (ch) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b";  break;
          case '\f': out += "\\f";  break;
          case '\n': out += "\\n";  break;
          case '\r': out += "\\r";  break;
          case '\t': out += "\\t";  break;
          default:
            if (ch < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                out += buf;
            } else {
                out += static_cast<char>(ch);
            }
        }
    }
    return out;
}

std::string
jsonNumber(double value)
{
    // JSON has no NaN/Inf; emit null-compatible 0 and warn loudly via
    // panic, since a non-finite statistic is always a simulator bug.
    if (!std::isfinite(value))
        panic("jsonNumber: non-finite value");
    // std::to_chars emits the shortest decimal string that parses
    // back to exactly this double (round-trippable, unlike default
    // operator<< precision, and minimal, unlike %.17g's
    // 0.10000000000000001-style noise).
    char buf[32];
    const auto result =
        std::to_chars(buf, buf + sizeof(buf), value);
    if (result.ec != std::errc())
        panic("jsonNumber: to_chars failed");
    return std::string(buf, result.ptr);
}

JsonWriter::JsonWriter(std::ostream &os, int indent)
    : os_(os), indent_(indent)
{
}

JsonWriter::~JsonWriter()
{
    // Unbalanced writers are a caller bug, but destructors must not
    // panic during exception unwinding; flag via stderr only.
    if (!stack_.empty())
        warn("JsonWriter destroyed with open containers");
}

void
JsonWriter::newline()
{
    if (indent_ <= 0)
        return;
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        for (int s = 0; s < indent_; ++s)
            os_ << ' ';
}

void
JsonWriter::beforeValue()
{
    if (done_)
        panic("JsonWriter: write after document end");
    if (!stack_.empty() && stack_.back() == Frame::Object &&
        !key_pending_) {
        panic("JsonWriter: object value without a key");
    }
    if (!stack_.empty() && stack_.back() == Frame::Array) {
        if (has_items_.back())
            os_ << ',';
        newline();
        has_items_.back() = true;
    }
    key_pending_ = false;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    if (stack_.empty() || stack_.back() != Frame::Object)
        panic("JsonWriter: key outside an object");
    if (key_pending_)
        panic("JsonWriter: two keys in a row");
    if (has_items_.back())
        os_ << ',';
    newline();
    has_items_.back() = true;
    os_ << '"' << jsonEscape(name) << (indent_ > 0 ? "\": " : "\":");
    key_pending_ = true;
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    os_ << '{';
    stack_.push_back(Frame::Object);
    has_items_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (stack_.empty() || stack_.back() != Frame::Object ||
        key_pending_) {
        panic("JsonWriter: mismatched endObject");
    }
    const bool had = has_items_.back();
    stack_.pop_back();
    has_items_.pop_back();
    if (had)
        newline();
    os_ << '}';
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    os_ << '[';
    stack_.push_back(Frame::Array);
    has_items_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (stack_.empty() || stack_.back() != Frame::Array)
        panic("JsonWriter: mismatched endArray");
    const bool had = has_items_.back();
    stack_.pop_back();
    has_items_.pop_back();
    if (had)
        newline();
    os_ << ']';
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &text)
{
    beforeValue();
    os_ << '"' << jsonEscape(text) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *text)
{
    return value(std::string(text));
}

JsonWriter &
JsonWriter::value(std::uint64_t number)
{
    beforeValue();
    os_ << number;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t number)
{
    beforeValue();
    os_ << number;
    return *this;
}

JsonWriter &
JsonWriter::value(int number)
{
    beforeValue();
    os_ << number;
    return *this;
}

JsonWriter &
JsonWriter::value(double number)
{
    beforeValue();
    os_ << jsonNumber(number);
    return *this;
}

JsonWriter &
JsonWriter::value(bool flag)
{
    beforeValue();
    os_ << (flag ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    beforeValue();
    os_ << "null";
    return *this;
}

} // namespace fetchsim
