/**
 * @file
 * Minimal JSON parser for the sweep-service wire protocol.
 *
 * stats/json.h deliberately only *emits* JSON; the sweep service
 * (sim/service.h) is the first component that must also *read* it --
 * experiment-plan requests arrive as JSON bodies over a local socket.
 * This parser is the matching minimal consumer: the full JSON value
 * grammar (object, array, string, number, bool, null) parsed
 * recursively into an immutable JsonValue tree, with structured
 * Protocol errors instead of exceptions on malformed input, a
 * nesting-depth cap against adversarial payloads, and nothing else --
 * no streaming, no comments, no schema layer.
 *
 * Accessors come in two flavors: typed getters (asString(),
 * asNumber(), ...) that throw SimException(ErrorKind::Protocol) on a
 * type mismatch -- the service's request handlers let that propagate
 * into a 400 response -- and null-returning lookups (find()) for
 * optional fields.
 */

#ifndef FETCHSIM_STATS_JSON_PARSE_H_
#define FETCHSIM_STATS_JSON_PARSE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/error.h"

namespace fetchsim
{

/**
 * An immutable parsed JSON value.
 *
 * Values form a tree of plain value members (object children are two
 * parallel vectors, key[i] naming element[i]), so copying, moving and
 * destroying are the compiler-generated operations.  Object members
 * keep document order; duplicate keys keep the *last* occurrence
 * visible through find() (matching common parser behaviour).
 */
class JsonValue
{
  public:
    /** The JSON value kinds. */
    enum class Type : std::uint8_t
    {
        Null,   //!< `null`
        Bool,   //!< `true` / `false`
        Number, //!< any JSON number, held as double
        String, //!< a string (unescaped)
        Array,  //!< `[ ... ]`
        Object, //!< `{ ... }`
    };

    /** A `null` value. */
    JsonValue() = default;

    /** This value's kind. */
    Type type() const { return type_; }

    /** Display name of a value kind ("object", "number", ...). */
    static const char *typeName(Type type);

    ///@{
    /** Kind predicate. */
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }
    ///@}

    /**
     * The boolean payload.  Throws SimException(Protocol) unless
     * isBool().
     */
    bool asBool() const;

    /**
     * The numeric payload.  Throws SimException(Protocol) unless
     * isNumber().
     */
    double asNumber() const;

    /**
     * The numeric payload as an unsigned integer.  Throws
     * SimException(Protocol) unless isNumber() and the value is a
     * non-negative integer that a double represents exactly
     * (< 2^53).
     */
    std::uint64_t asU64() const;

    /**
     * The string payload.  Throws SimException(Protocol) unless
     * isString().
     */
    const std::string &asString() const;

    /**
     * The elements of an array -- or, for an object, its member
     * values in document order (parallel to keys()).  Throws
     * SimException(Protocol) unless isArray() or isObject().
     */
    const std::vector<JsonValue> &elements() const;

    /**
     * The member names of an object, in document order (parallel to
     * elements()).  Throws SimException(Protocol) unless isObject().
     */
    const std::vector<std::string> &keys() const;

    /**
     * The value of object member @p key, or nullptr when this is not
     * an object or has no such member.  Duplicate keys resolve to the
     * last occurrence.
     */
    const JsonValue *find(const std::string &key) const;

    /**
     * @name Construction (used by the parser, tests and request
     * builders)
     * Factories produce each kind explicitly rather than via
     * overloaded constructors, so `JsonValue::string("true")` can
     * never silently become a boolean.
     */
    ///@{
    /** A `null` value (same as default construction). */
    static JsonValue null();
    /** A boolean value. */
    static JsonValue boolean(bool flag);
    /** A numeric value. */
    static JsonValue number(double value);
    /** A string value. */
    static JsonValue string(std::string text);
    /** An array of @p elements. */
    static JsonValue array(std::vector<JsonValue> elements);
    /** An empty object; populate with set(). */
    static JsonValue object();
    ///@}

    /**
     * Append object member @p key with @p value, replacing an
     * existing member of the same name.  Throws
     * SimException(Protocol) unless isObject().
     */
    void set(const std::string &key, JsonValue value);

  private:
    Type type_ = Type::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> elements_;
    std::vector<std::string> keys_; //!< parallel to elements_
};

/**
 * Parse @p text as exactly one JSON document (leading/trailing
 * whitespace allowed, trailing garbage is an error).  Returns the
 * parsed tree or a structured Protocol error naming the byte offset
 * and what went wrong.  Nesting deeper than 64 containers is
 * rejected.
 */
Expected<JsonValue> parseJson(const std::string &text);

} // namespace fetchsim

#endif // FETCHSIM_STATS_JSON_PARSE_H_
