/**
 * @file
 * Fixed-width ASCII table printer used by the benchmark harnesses.
 *
 * Every bench binary regenerates one of the paper's tables or figure
 * series; this class gives them a uniform, aligned text rendering with
 * a caption, a header row, and typed cells (string / integer / fixed-
 * point double / percentage).
 */

#ifndef FETCHSIM_STATS_TABLE_H_
#define FETCHSIM_STATS_TABLE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace fetchsim
{

/**
 * A simple column-aligned table.  Cells are stored as formatted
 * strings; numeric helpers control precision at insertion time.
 */
class TextTable
{
  public:
    /** @param caption Title printed above the table. */
    explicit TextTable(std::string caption);

    /** Set the column headers (defines the column count). */
    void setHeader(const std::vector<std::string> &names);

    /** Begin a new row. */
    void startRow();

    /** Append a string cell to the current row. */
    void addCell(const std::string &text);

    /** Append an integer cell. */
    void addCell(std::uint64_t value);

    /** Append a fixed-point cell with @p precision decimals. */
    void addCell(double value, int precision = 2);

    /** Append a percentage cell rendered as "12.34%". */
    void addPercent(double value, int precision = 2);

    /** Insert a horizontal separator row. */
    void addSeparator();

    /** Render the table. */
    std::string render() const;

    /** Render to a stream (convenience for benches). */
    void print(std::ostream &os) const;

    /** Number of data rows added so far (separators excluded). */
    std::size_t rowCount() const { return dataRows_; }

  private:
    std::string caption_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::size_t dataRows_ = 0;

    static const char *separatorTag();
};

} // namespace fetchsim

#endif // FETCHSIM_STATS_TABLE_H_
