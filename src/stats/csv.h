/**
 * @file
 * Minimal CSV writer (RFC 4180 quoting) for sweep result export.
 *
 * Counterpart of stats/json.h for spreadsheet-bound output: a header
 * row followed by typed data rows.  The writer enforces that every
 * row has exactly as many fields as the header, so a sweep CSV is
 * always rectangular.
 */

#ifndef FETCHSIM_STATS_CSV_H_
#define FETCHSIM_STATS_CSV_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace fetchsim
{

/** Quote a field if it contains commas, quotes or newlines. */
std::string csvEscape(const std::string &field);

/**
 * Row-oriented CSV writer.
 *
 * Usage:
 * @code
 *   CsvWriter csv(os);
 *   csv.header({"benchmark", "ipc"});
 *   csv.field("gcc").field(2.31).endRow();
 * @endcode
 */
class CsvWriter
{
  public:
    explicit CsvWriter(std::ostream &os);
    ~CsvWriter();

    CsvWriter(const CsvWriter &) = delete;
    CsvWriter &operator=(const CsvWriter &) = delete;

    /** Emit the header row; defines the column count. */
    CsvWriter &header(const std::vector<std::string> &names);

    CsvWriter &field(const std::string &text);
    CsvWriter &field(const char *text);
    CsvWriter &field(std::uint64_t number);
    CsvWriter &field(std::int64_t number);
    CsvWriter &field(int number);
    CsvWriter &field(double number);
    CsvWriter &field(bool flag);

    /** Finish the current row; panics if it is not column-complete. */
    CsvWriter &endRow();

    /** Data rows completed so far (header excluded). */
    std::size_t rowCount() const { return rows_; }

  private:
    void rawField(const std::string &text);

    std::ostream &os_;
    std::size_t columns_ = 0;
    std::size_t in_row_ = 0;
    std::size_t rows_ = 0;
    bool header_done_ = false;
};

} // namespace fetchsim

#endif // FETCHSIM_STATS_CSV_H_
