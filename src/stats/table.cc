#include "stats/table.h"

#include <algorithm>
#include <cstdio>

#include "stats/log.h"

namespace fetchsim
{

const char *
TextTable::separatorTag()
{
    return "\x01--";
}

TextTable::TextTable(std::string caption)
    : caption_(std::move(caption))
{
}

void
TextTable::setHeader(const std::vector<std::string> &names)
{
    header_ = names;
}

void
TextTable::startRow()
{
    rows_.emplace_back();
    ++dataRows_;
}

void
TextTable::addCell(const std::string &text)
{
    simAssert(!rows_.empty(), "startRow before addCell");
    rows_.back().push_back(text);
}

void
TextTable::addCell(std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    addCell(std::string(buf));
}

void
TextTable::addCell(double value, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    addCell(std::string(buf));
}

void
TextTable::addPercent(double value, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, value);
    addCell(std::string(buf));
}

void
TextTable::addSeparator()
{
    rows_.push_back({separatorTag()});
}

std::string
TextTable::render() const
{
    // Compute column widths over the header and all data rows.
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (cells.size() == 1 && cells[0] == separatorTag())
            return;
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &row : rows_)
        grow(row);

    auto renderRow = [&](const std::vector<std::string> &cells) {
        std::string line;
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string cell = i < cells.size() ? cells[i] : "";
            line += "| ";
            line += cell;
            line.append(widths[i] - cell.size() + 1, ' ');
        }
        line += "|\n";
        return line;
    };

    std::string rule = "+";
    for (std::size_t w : widths)
        rule += std::string(w + 2, '-') + "+";
    rule += "\n";

    std::string out;
    if (!caption_.empty())
        out += caption_ + "\n";
    out += rule;
    if (!header_.empty()) {
        out += renderRow(header_);
        out += rule;
    }
    for (const auto &row : rows_) {
        if (row.size() == 1 && row[0] == separatorTag())
            out += rule;
        else
            out += renderRow(row);
    }
    out += rule;
    return out;
}

void
TextTable::print(std::ostream &os) const
{
    os << render();
}

} // namespace fetchsim
