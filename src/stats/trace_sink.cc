#include "stats/trace_sink.h"

#include "core/error.h"
#include "stats/json.h"
#include "stats/log.h"

namespace fetchsim
{

void
TraceSink::begin(const char *type, std::uint64_t cycle)
{
    if (!os_)
        return;
    if (open_)
        panic("TraceSink::begin: previous event still open");
    open_ = true;
    line_.clear();
    line_ += "{\"ev\":\"";
    line_ += jsonEscape(type);
    line_ += "\",\"cycle\":";
    line_ += std::to_string(cycle);
}

void
TraceSink::rawField(const char *key, const std::string &rendered)
{
    if (!os_)
        return;
    if (!open_)
        panic("TraceSink::field: no open event");
    line_ += ",\"";
    line_ += jsonEscape(key);
    line_ += "\":";
    line_ += rendered;
}

TraceSink &
TraceSink::field(const char *key, std::uint64_t value)
{
    rawField(key, std::to_string(value));
    return *this;
}

TraceSink &
TraceSink::field(const char *key, std::int64_t value)
{
    rawField(key, std::to_string(value));
    return *this;
}

TraceSink &
TraceSink::field(const char *key, int value)
{
    rawField(key, std::to_string(value));
    return *this;
}

TraceSink &
TraceSink::field(const char *key, double value)
{
    rawField(key, jsonNumber(value));
    return *this;
}

TraceSink &
TraceSink::field(const char *key, bool value)
{
    rawField(key, value ? "true" : "false");
    return *this;
}

TraceSink &
TraceSink::field(const char *key, const char *value)
{
    return field(key, std::string(value));
}

TraceSink &
TraceSink::field(const char *key, const std::string &value)
{
    std::string rendered = "\"";
    rendered += jsonEscape(value);
    rendered += '"';
    rawField(key, rendered);
    return *this;
}

void
TraceSink::end()
{
    if (!os_)
        return;
    if (!open_)
        panic("TraceSink::end: no open event");
    open_ = false;
    line_ += "}\n";
    *os_ << line_;
    if (!*os_)
        throw SimException(ErrorKind::Io,
                           "TraceSink: event write failed (stream "
                           "error after " + std::to_string(events_) +
                           " events)");
    ++events_;
}

} // namespace fetchsim
