#include "stats/counters.h"

#include <cstdio>

#include "stats/log.h"

namespace fetchsim
{

const char *
fetchStopName(FetchStop reason)
{
    switch (reason) {
      case FetchStop::IssueLimit:     return "issue-limit";
      case FetchStop::BlockEnd:       return "block-end";
      case FetchStop::TakenBranch:    return "taken-branch";
      case FetchStop::IntraBlock:     return "intra-block";
      case FetchStop::BackwardIntra:  return "backward-intra";
      case FetchStop::BankConflict:   return "bank-conflict";
      case FetchStop::Mispredict:     return "mispredict";
      case FetchStop::BtbMissControl: return "btb-miss-control";
      case FetchStop::CacheMiss:      return "cache-miss";
      case FetchStop::SpecDepth:      return "spec-depth";
      case FetchStop::WindowFull:     return "window-full";
      case FetchStop::StreamEnd:      return "stream-end";
      default:                        return "unknown";
    }
}

double
RunCounters::ipc() const
{
    return cycles == 0 ? 0.0
                       : static_cast<double>(retired - nopsRetired) /
                             static_cast<double>(cycles);
}

double
RunCounters::eir() const
{
    return cycles == 0
               ? 0.0
               : static_cast<double>(delivered - nopsDelivered) /
                     static_cast<double>(cycles);
}

double
RunCounters::rawIpc() const
{
    return cycles == 0 ? 0.0
                       : static_cast<double>(retired) /
                             static_cast<double>(cycles);
}

double
RunCounters::mispredictRate() const
{
    std::uint64_t resolved = condBranches;
    return resolved == 0 ? 0.0
                         : static_cast<double>(mispredicts) /
                               static_cast<double>(resolved);
}

double
RunCounters::icacheMissRatio() const
{
    return icacheAccesses == 0 ? 0.0
                               : static_cast<double>(icacheMisses) /
                                     static_cast<double>(icacheAccesses);
}

double
RunCounters::intraBlockRatio() const
{
    return takenBranches == 0 ? 0.0
                              : static_cast<double>(intraBlockTaken) /
                                    static_cast<double>(takenBranches);
}

void
RunCounters::noteStop(FetchStop reason)
{
    int idx = static_cast<int>(reason);
    simAssert(idx >= 0 && idx < kNumFetchStops, "stop reason in range");
    ++stops[idx];
}

std::string
RunCounters::format() const
{
    char buf[1024];
    std::snprintf(buf, sizeof(buf),
                  "cycles=%llu retired=%llu delivered=%llu\n"
                  "IPC=%.3f EIR=%.3f mispredict=%.2f%% "
                  "icache-miss=%.3f%% intra-block=%.2f%%\n",
                  static_cast<unsigned long long>(cycles),
                  static_cast<unsigned long long>(retired),
                  static_cast<unsigned long long>(delivered),
                  ipc(), eir(), 100.0 * mispredictRate(),
                  100.0 * icacheMissRatio(), 100.0 * intraBlockRatio());
    std::string out(buf);
    for (int i = 0; i < kNumFetchStops; ++i) {
        if (stops[i] == 0)
            continue;
        std::snprintf(buf, sizeof(buf), "  stop[%s]=%llu\n",
                      fetchStopName(static_cast<FetchStop>(i)),
                      static_cast<unsigned long long>(stops[i]));
        out += buf;
    }
    return out;
}

} // namespace fetchsim
