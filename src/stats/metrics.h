/**
 * @file
 * Hierarchical metric registry: named counters and histograms that
 * simulator components register into.
 *
 * RunCounters (stats/counters.h) is the fixed, paper-facing counter
 * block every run produces.  The MetricRegistry is the open-ended
 * observability layer on top of it: Processor, the fetch mechanisms,
 * the I-cache and the predictor suite register counters and
 * histograms under dot-separated hierarchical names
 * ("fetch.stop.bank_conflict", "icache.misses",
 * "fetch.run_length"), and tools walk the registry generically --
 * text dumps, JSON export, cross-run aggregation -- without knowing
 * any metric by name.
 *
 * Determinism contract: a registry's contents depend only on the
 * registrations and record/inc calls made against it.  Iteration is
 * in sorted path order, and merge() is commutative and associative,
 * so merging the per-run registries of a parallel sweep produces a
 * bit-identical aggregate regardless of thread count or completion
 * order (asserted by test_metrics).
 *
 * Cost contract: a registered Counter is a plain 64-bit increment
 * through a stable pointer; components instrument hot paths with a
 * null-guarded pointer that costs one predictable branch when no
 * registry is attached.
 */

#ifndef FETCHSIM_STATS_METRICS_H_
#define FETCHSIM_STATS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "stats/json.h"

namespace fetchsim
{

/**
 * A monotonically increasing 64-bit event counter owned by a
 * MetricRegistry.  The address is stable for the registry's lifetime,
 * so components cache `Counter *` and increment without lookups.
 */
class Counter
{
  public:
    /** Add @p n events (the hot-path operation). */
    void inc(std::uint64_t n = 1) { value_ += n; }

    /** Current value. */
    std::uint64_t value() const { return value_; }

    /** Full dot-separated registration path. */
    const std::string &path() const { return path_; }

    /** One-line human description (may be empty). */
    const std::string &description() const { return desc_; }

  private:
    friend class MetricRegistry;
    Counter(std::string path, std::string desc)
        : path_(std::move(path)), desc_(std::move(desc))
    {
    }

    std::string path_;
    std::string desc_;
    std::uint64_t value_ = 0;
};

/**
 * A point-in-time 64-bit signed value owned by a MetricRegistry.
 *
 * Counters only ever go up (events observed); gauges report the
 * current magnitude of something that rises and falls -- queue
 * depth, cache entries, resident bytes.  The distinction matters to
 * downstream consumers: Prometheus-style scrapers apply rate() to
 * counters and would misread a shrinking queue exported as one.
 *
 * merge() sums gauges, which treats each per-shard registry's gauge
 * as that shard's contribution to the whole (total queued cells
 * across workers); it keeps merge commutative/associative like every
 * other metric kind.
 */
class Gauge
{
  public:
    /** Replace the value (the common operation for snapshots). */
    void set(std::int64_t value) { value_ = value; }

    /** Adjust up or down. */
    void add(std::int64_t delta) { value_ += delta; }
    void inc() { value_ += 1; }
    void dec() { value_ -= 1; }

    /** Current value. */
    std::int64_t value() const { return value_; }

    /** Full dot-separated registration path. */
    const std::string &path() const { return path_; }

    /** One-line human description (may be empty). */
    const std::string &description() const { return desc_; }

  private:
    friend class MetricRegistry;
    Gauge(std::string path, std::string desc)
        : path_(std::move(path)), desc_(std::move(desc))
    {
    }

    std::string path_;
    std::string desc_;
    std::int64_t value_ = 0;
};

/**
 * A fixed-bucket histogram of unsigned samples owned by a
 * MetricRegistry.
 *
 * Buckets are defined by strictly increasing *inclusive* upper
 * bounds; one implicit overflow bucket catches everything above the
 * last bound, so bounds {1, 2, 4} yield the four buckets
 * [0,1], (1,2], (2,4], (4,inf).
 */
class Histogram
{
  public:
    /** Record one sample (the hot-path operation). */
    void record(std::uint64_t sample);

    /** Number of samples recorded. */
    std::uint64_t count() const { return count_; }

    /** Sum of all samples. */
    std::uint64_t sum() const { return sum_; }

    /** Smallest sample (0 when empty). */
    std::uint64_t min() const { return count_ == 0 ? 0 : min_; }

    /** Largest sample (0 when empty). */
    std::uint64_t max() const { return max_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const;

    /** The inclusive upper bounds the histogram was registered with. */
    const std::vector<std::uint64_t> &bounds() const { return bounds_; }

    /** Number of buckets, overflow bucket included. */
    std::size_t numBuckets() const { return counts_.size(); }

    /** Samples in bucket @p bucket (fatal on out-of-range). */
    std::uint64_t bucketCount(std::size_t bucket) const;

    /** Render bucket @p bucket's range, e.g. "(2,4]" or "(4,inf)". */
    std::string bucketLabel(std::size_t bucket) const;

    /** Full dot-separated registration path. */
    const std::string &path() const { return path_; }

    /** One-line human description (may be empty). */
    const std::string &description() const { return desc_; }

  private:
    friend class MetricRegistry;
    Histogram(std::string path, std::string desc,
              std::vector<std::uint64_t> bounds);

    std::string path_;
    std::string desc_;
    std::vector<std::uint64_t> bounds_;  //!< inclusive upper bounds
    std::vector<std::uint64_t> counts_;  //!< bounds_.size() + 1 buckets
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * Registry of hierarchically named metrics.
 *
 * Paths are dot-separated, non-empty, lower-case segments matching
 * [a-z0-9_]+ ("fetch.stop.bank_conflict"); registration with an
 * invalid path, or the same path as both a counter and a histogram,
 * is fatal.  Registering an existing path again returns the existing
 * object (idempotent), so components may re-attach freely; a
 * histogram re-registration must repeat the original bounds.
 *
 * The registry is single-threaded by design: parallel sweeps give
 * each run its own registry and merge() them afterwards, which keeps
 * the hot increment path free of atomics and makes aggregation
 * deterministic (merge is commutative: counters add, histograms add
 * bucket-wise).
 */
class MetricRegistry
{
  public:
    MetricRegistry() = default;

    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    /**
     * The counter registered at @p path, creating it on first use.
     * @param path dot-separated hierarchical name (fatal if invalid)
     * @param description one-line description, recorded on first
     *        registration and ignored afterwards
     * @return a reference owned by this registry, address-stable for
     *         the registry's lifetime
     */
    Counter &counter(const std::string &path,
                     const std::string &description = "");

    /**
     * The gauge registered at @p path, creating it on first use.
     * Same path rules and idempotence as counter(); a path may not
     * be registered as more than one metric kind.
     */
    Gauge &gauge(const std::string &path,
                 const std::string &description = "");

    /**
     * The histogram registered at @p path, creating it on first use.
     * @param path   dot-separated hierarchical name (fatal if invalid)
     * @param bounds strictly increasing inclusive bucket upper
     *               bounds; fatal if empty, not increasing, or
     *               different from an earlier registration of the
     *               same path
     * @param description recorded on first registration
     */
    Histogram &histogram(const std::string &path,
                         const std::vector<std::uint64_t> &bounds,
                         const std::string &description = "");

    /** The counter at @p path, or nullptr if never registered. */
    const Counter *findCounter(const std::string &path) const;

    /** The gauge at @p path, or nullptr if never registered. */
    const Gauge *findGauge(const std::string &path) const;

    /** The histogram at @p path, or nullptr if never registered. */
    const Histogram *findHistogram(const std::string &path) const;

    /** All counters, sorted by path. */
    std::vector<const Counter *> counters() const;

    /** All gauges, sorted by path. */
    std::vector<const Gauge *> gauges() const;

    /** All histograms, sorted by path. */
    std::vector<const Histogram *> histograms() const;

    /**
     * The immediate child segments below @p prefix, sorted and
     * deduplicated.  An empty prefix lists the roots: with counters
     * "fetch.stop.mispredict" and "icache.misses",
     * children("") is {"fetch", "icache"} and children("fetch") is
     * {"stop"}.
     */
    std::vector<std::string>
    children(const std::string &prefix) const;

    /** Total number of registered metrics. */
    std::size_t size() const
    {
        return counters_.size() + gauges_.size() +
               histograms_.size();
    }

    /**
     * Fold @p other into this registry: counters add, histograms add
     * bucket-wise (bounds must match), metrics missing here are
     * created.  Commutative and associative, so any merge tree over
     * the same per-run registries yields the same aggregate.
     */
    void merge(const MetricRegistry &other);

    /** Zero every counter and histogram, keeping registrations. */
    void reset();

    /**
     * Serialize as one JSON object:
     * @code
     *   { "counters":   { "path": value, ... },
     *     "gauges":     { "path": value, ... },
     *     "histograms": { "path": { "count":..., "sum":..., "min":...,
     *                               "max":..., "buckets":
     *                               [ {"le":..., "count":...}, ...,
     *                                 {"le":"inf", "count":...} ] } } }
     * @endcode
     * Keys are in sorted path order (deterministic output).
     */
    void writeJson(JsonWriter &json) const;

    /** Multi-line human-readable dump, sorted by path. */
    std::string formatText() const;

    /**
     * Prometheus text exposition format (version 0.0.4): for each
     * metric a `# HELP` line (when a description was registered), a
     * `# TYPE` line, and sample lines.  Dot-separated paths become
     * underscore-separated names ("service.queue_depth" ->
     * "service_queue_depth").  Histograms follow the Prometheus
     * convention: *cumulative* `name_bucket{le="B"}` samples ending
     * in `le="+Inf"`, plus `name_sum` and `name_count`.  Output is
     * in sorted path order within each kind (deterministic).
     */
    std::string formatPrometheus() const;

    /** True when @p path is a valid hierarchical metric name. */
    static bool validPath(const std::string &path);

  private:
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/**
 * The shared log-scaled bucket bounds for latency histograms, in
 * microseconds: a 1-2-5 decade ladder from 1us to 10s.  Fixed across
 * the codebase so latency histograms from different shards merge
 * (merge() requires identical bounds) and dashboards can overlay
 * them.
 */
const std::vector<std::uint64_t> &latencyBucketBoundsUs();

} // namespace fetchsim

#endif // FETCHSIM_STATS_METRICS_H_
