#include "fetch/trace_cache.h"

#include <algorithm>

#include "stats/log.h"
#include "stats/metrics.h"

namespace fetchsim
{

TraceCacheFetch::TraceCacheFetch(const MachineConfig &cfg,
                                 std::pmr::memory_resource *mem)
    : FetchMechanism(cfg),
      miss_rules_(rulesFor(SchemeKind::Sequential)),
      mbp_(cfg.mbpEntries, cfg.traceMaxBranches, mem),
      lines_(static_cast<std::size_t>(cfg.traceSets) *
                 static_cast<std::size_t>(cfg.traceWays),
             TraceLine{}, mem),
      pcs_store_(mem),
      sets_(cfg.traceSets), ways_(cfg.traceWays),
      line_insts_(cfg.traceLineLength())
{
    simAssert(sets_ > 0 && (sets_ & (sets_ - 1)) == 0,
              "trace sets power of two");
    simAssert(ways_ > 0, "trace ways positive");
    simAssert(line_insts_ > 0, "trace line length positive");
    pcs_store_.resize(lines_.size() *
                      static_cast<std::size_t>(line_insts_));
}

std::size_t
TraceCacheFetch::setOf(std::uint64_t pc) const
{
    return static_cast<std::size_t>(
        (pc / kInstBytes) & static_cast<std::uint64_t>(sets_ - 1));
}

TraceLine *
TraceCacheFetch::lookup(std::uint64_t pc, const BranchVector &vec)
{
    const std::size_t base = setOf(pc) * static_cast<std::size_t>(ways_);
    for (int w = 0; w < ways_; ++w) {
        TraceLine &line = lines_[base + static_cast<std::size_t>(w)];
        if (!line.valid || line.startPc != pc)
            continue;
        // The vector must cover and agree with every branch the line
        // spans; fewer predicted branches means the upcoming path
        // cannot follow this line to its end.
        if (line.branches > vec.count)
            continue;
        const std::uint32_t mask =
            line.branches >= 32 ? ~0u : (1u << line.branches) - 1u;
        if (((line.outcomes ^ vec.bits) & mask) != 0)
            continue;
        return &line;
    }
    return nullptr;
}

TraceLine *
TraceCacheFetch::lookupExact(std::uint64_t pc, std::uint32_t outcomes,
                             int branches)
{
    const std::size_t base = setOf(pc) * static_cast<std::size_t>(ways_);
    for (int w = 0; w < ways_; ++w) {
        TraceLine &line = lines_[base + static_cast<std::size_t>(w)];
        if (line.valid && line.startPc == pc &&
            line.branches == branches && line.outcomes == outcomes)
            return &line;
    }
    return nullptr;
}

TraceLine &
TraceCacheFetch::victimIn(std::uint64_t pc)
{
    const std::size_t base = setOf(pc) * static_cast<std::size_t>(ways_);
    TraceLine *victim = &lines_[base];
    for (int w = 0; w < ways_; ++w) {
        TraceLine &line = lines_[base + static_cast<std::size_t>(w)];
        if (!line.valid)
            return line;
        if (line.lastUse < victim->lastUse)
            victim = &line;
    }
    return *victim;
}

FetchOutcome
TraceCacheFetch::deliverFromTrace(FetchContext &ctx,
                                  const BranchVector &vec,
                                  const TraceLine &line)
{
    FetchOutcome out;
    const MachineConfig &cfg = *ctx.cfg;
    const int cap = std::min({cfg.issueRate, ctx.windowSpace,
                              ctx.streamLen, line.length});
    const std::uint64_t *pcs = pcsOf(line);
    int new_cond = 0;
    int branch_index = 0;
    for (int i = 0; i < cap; ++i) {
        const DynInst &di = ctx.stream[i];
        simAssert(pcs[i] == di.pc,
                  "trace line matches the correct path");
        if (di.isCondBranch() && new_cond >= ctx.specHeadroom) {
            out.stop = FetchStop::SpecDepth;
            return out;
        }
        out.delivered = i + 1;
        // The suite is still consulted once per delivered instruction
        // so BTB/RAS speculative state and statistics stay coherent;
        // its direction/target verdicts are overridden by the trace
        // contents (the line embeds all targets) and by the
        // multi-branch predictor's outcome bits.
        const InstPrediction pred = ctx.predictor->predict(di);
        if (pred.cond)
            ++new_cond;
        if (di.isCondBranch()) {
            const bool predicted_taken = vec.taken(branch_index);
            ++branch_index;
            if (predicted_taken != di.taken) {
                if (m_mbp_wrong_)
                    m_mbp_wrong_->inc();
                out.stop = FetchStop::Mispredict;
                out.mispredict = true;
                return out;
            }
        }
    }
    if (out.delivered >= cfg.issueRate)
        out.stop = FetchStop::IssueLimit;
    else if (out.delivered >= ctx.windowSpace)
        out.stop = FetchStop::WindowFull;
    else if (out.delivered >= ctx.streamLen)
        out.stop = FetchStop::StreamEnd;
    else
        out.stop = FetchStop::BlockEnd; // trace line exhausted
    return out;
}

void
TraceCacheFetch::fillFromStream(const DynInst *stream, int len)
{
    const int scan = std::min(line_insts_, len);
    std::uint32_t outcomes = 0;
    int branches = 0;
    int length = 0;
    for (int i = 0; i < scan; ++i) {
        const DynInst &di = stream[i];
        // Returns end a trace: their targets depend on the call site,
        // so embedding one would make the line path-ambiguous.
        if (di.si.op == OpClass::Return)
            break;
        if (di.isCondBranch()) {
            if (branches >= mbp_.maxBranches())
                break;
            if (di.taken)
                outcomes |= 1u << branches;
            ++branches;
        }
        ++length;
    }
    if (length == 0)
        return;

    if (TraceLine *existing =
            lookupExact(stream[0].pc, outcomes, branches)) {
        existing->lastUse = ++tick_;
        return;
    }
    TraceLine &line = victimIn(stream[0].pc);
    line.valid = true;
    line.startPc = stream[0].pc;
    line.outcomes = outcomes;
    line.branches = branches;
    line.length = length;
    std::uint64_t *pcs = pcsOf(line);
    for (int i = 0; i < length; ++i)
        pcs[i] = stream[i].pc;
    line.lastUse = ++tick_;
    ++fills_;
    if (m_fills_)
        m_fills_->inc();
}

FetchOutcome
TraceCacheFetch::formGroup(FetchContext &ctx)
{
    simAssert(ctx.cfg && ctx.predictor && ctx.icache,
              "context wired");
    if (ctx.streamLen == 0) {
        FetchOutcome out;
        out.stop = FetchStop::StreamEnd;
        return out;
    }
    if (ctx.windowSpace <= 0) {
        FetchOutcome out;
        out.stop = FetchStop::WindowFull;
        return out;
    }

    const BranchVector vec =
        mbp_.predict(ctx.stream, ctx.streamLen, line_insts_);

    FetchOutcome out;
    if (TraceLine *line = lookup(ctx.stream[0].pc, vec)) {
        line->lastUse = ++tick_;
        ++hits_;
        if (m_hits_)
            m_hits_->inc();
        out = deliverFromTrace(ctx, vec, *line);
        if (out.delivered < line->length) {
            ++partial_hits_;
            if (m_partial_hits_)
                m_partial_hits_->inc();
        }
    } else {
        ++misses_;
        if (m_misses_)
            m_misses_->inc();
        out = runWalk(miss_rules_, ctx);
        // Fill unit: in this trace-driven model the upcoming stream
        // *is* the retired correct path, so a missing line can be
        // built immediately, keyed by the actual outcomes.
        fillFromStream(ctx.stream, ctx.streamLen);
    }

    // Train the multi-branch predictor on every delivered conditional
    // branch -- each dynamic branch is delivered exactly once, so the
    // counters see the same update stream a retirement-fed table
    // would.
    for (int i = 0; i < out.delivered; ++i)
        if (ctx.stream[i].isCondBranch())
            mbp_.train(ctx.stream[i]);
    return out;
}

void
TraceCacheFetch::attachMetrics(MetricRegistry &registry)
{
    m_hits_ = &registry.counter(
        "fetch.trace_cache.hits",
        "group formations served from a trace line");
    m_misses_ = &registry.counter(
        "fetch.trace_cache.misses",
        "group formations that fell back to sequential fetch");
    m_fills_ = &registry.counter(
        "fetch.trace_cache.fills",
        "trace lines built by the fill unit");
    m_partial_hits_ = &registry.counter(
        "fetch.trace_cache.partial_hits",
        "trace hits delivering fewer instructions than the line holds");
    m_mbp_wrong_ = &registry.counter(
        "fetch.trace_cache.mbp_mispredicts",
        "trace hits ended by a wrong multi-branch outcome bit");
}

} // namespace fetchsim
