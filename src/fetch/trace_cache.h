/**
 * @file
 * Trace-cache fetch mechanism (beyond-paper study).
 *
 * The paper's collapsing buffer fetches past taken branches by
 * merging at most two cache blocks; the natural successor (Rotenberg
 * et al., MICRO-29) stores dynamic instruction sequences -- traces --
 * so a single access supplies up to one fetch width of instructions
 * spanning arbitrarily many basic blocks.  A trace line is indexed by
 * (start PC, branch-outcome vector); a multi-branch predictor
 * (branch/multi_branch_predictor.h) supplies the vector each cycle.
 *
 * On a vector-match hit the line's instructions are delivered with no
 * alignment or bank constraints; the group still respects the issue
 * rate, window space and speculation-depth gates, and each delivered
 * conditional branch checks its predicted bit against the actual
 * outcome -- a wrong bit ends the group exactly like a BTB direction
 * mispredict (FetchStop::Mispredict, fetch resumes at resolution plus
 * the fetch penalty).  On a miss the mechanism falls back to the
 * paper's single-block sequential fetch (the conventional I-cache
 * path that backs every real trace cache) and the fill unit builds a
 * new line from the correct-path stream -- the trace-driven analogue
 * of filling from retirement -- keyed by the *actual* outcomes.
 */

#ifndef FETCHSIM_FETCH_TRACE_CACHE_H_
#define FETCHSIM_FETCH_TRACE_CACHE_H_

#include <cstdint>
#include <memory_resource>
#include <vector>

#include "branch/multi_branch_predictor.h"
#include "fetch/fetch_mechanism.h"
#include "stats/metrics.h"

namespace fetchsim
{

/**
 * One trace line: a dynamic instruction sequence plus its index.
 * The stored instruction PCs live in the cache's flat PC slab
 * (one line_insts_-sized stripe per line), so refilling a line in
 * steady state never touches the allocator.
 */
struct TraceLine
{
    bool valid = false;
    std::uint64_t startPc = 0;  //!< PC of the first instruction
    std::uint32_t outcomes = 0; //!< bit k = k-th cond branch taken
    int branches = 0;           //!< conditional branches in the line
    int length = 0;             //!< instructions in the line
    std::uint64_t lastUse = 0;  //!< LRU tick
};

/**
 * SchemeKind::TraceCache: trace cache + multi-branch predictor with a
 * sequential-fetch miss path.  Geometry comes from MachineConfig
 * (traceSets/traceWays/traceLineInsts/traceMaxBranches/mbpEntries);
 * all mutable state is owned by the instance, so a fresh mechanism
 * per run keeps simulations deterministic.
 */
class TraceCacheFetch final : public FetchMechanism
{
  public:
    /**
     * @param cfg machine model (trace-cache geometry knobs)
     * @param mem memory resource for the line array, the PC slab
     *            and the multi-branch predictor's counter table
     */
    explicit TraceCacheFetch(const MachineConfig &cfg,
                             std::pmr::memory_resource *mem =
                                 std::pmr::get_default_resource());

    FetchOutcome formGroup(FetchContext &ctx) override;
    SchemeKind kind() const override { return SchemeKind::TraceCache; }
    void attachMetrics(MetricRegistry &registry) override;

    /** @name Introspection (tests + metrics) */
    ///@{
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t fills() const { return fills_; }
    std::uint64_t partialHits() const { return partial_hits_; }
    const MultiBranchPredictor &mbp() const { return mbp_; }
    int sets() const { return sets_; }
    int ways() const { return ways_; }
    int lineInsts() const { return line_insts_; }
    ///@}

  private:
    /** Deliver instructions out of a matching trace line. */
    FetchOutcome deliverFromTrace(FetchContext &ctx,
                                  const BranchVector &vec,
                                  const TraceLine &line);

    /** Fill unit: build a line from the correct-path stream. */
    void fillFromStream(const DynInst *stream, int len);

    TraceLine *lookup(std::uint64_t pc, const BranchVector &vec);
    TraceLine *lookupExact(std::uint64_t pc, std::uint32_t outcomes,
                           int branches);
    TraceLine &victimIn(std::uint64_t pc);

    std::size_t setOf(std::uint64_t pc) const;

    /** Stored-PC stripe of @p line inside the flat slab. */
    std::uint64_t *
    pcsOf(const TraceLine &line)
    {
        const auto idx =
            static_cast<std::size_t>(&line - lines_.data());
        return pcs_store_.data() +
               idx * static_cast<std::size_t>(line_insts_);
    }

    WalkRules miss_rules_;      //!< sequential core fetch on a miss
    MultiBranchPredictor mbp_;
    std::pmr::vector<TraceLine> lines_; //!< sets_ x ways_, set-major
    std::pmr::vector<std::uint64_t> pcs_store_; //!< lines_ x
                                                //!< line_insts_
    int sets_;
    int ways_;
    int line_insts_;
    std::uint64_t tick_ = 0;    //!< LRU clock

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t fills_ = 0;
    std::uint64_t partial_hits_ = 0;

    Counter *m_hits_ = nullptr;
    Counter *m_misses_ = nullptr;
    Counter *m_fills_ = nullptr;
    Counter *m_partial_hits_ = nullptr;
    Counter *m_mbp_wrong_ = nullptr;
};

} // namespace fetchsim

#endif // FETCHSIM_FETCH_TRACE_CACHE_H_
