/**
 * @file
 * Abstract fetch mechanism plus the walk-based concrete schemes.
 *
 * Each scheme here corresponds to one of the paper's designs
 * (Sections 3-3.3) or its related-work comparator and is exercised by
 * the Processor once per cycle.  The classes are deliberately thin:
 * the per-cycle walk is shared (fetch/walker.h) and parameterized by
 * each scheme's WalkRules; the class carries the scheme identity, its
 * fetch-misprediction penalty and, for the collapsing buffer, the
 * implementation choice (crossbar vs shifter) that determines that
 * penalty.  Stateful mechanisms live in their own headers (the trace
 * cache in fetch/trace_cache.h); construction goes through
 * fetch/scheme_registry.h, which maps SchemeKind and CLI names to
 * factories and metadata.
 */

#ifndef FETCHSIM_FETCH_FETCH_MECHANISM_H_
#define FETCHSIM_FETCH_FETCH_MECHANISM_H_

#include <memory>

#include "fetch/walker.h"

namespace fetchsim
{

class MetricRegistry;

/**
 * Base class of all fetch mechanisms.
 */
class FetchMechanism
{
  public:
    explicit FetchMechanism(const MachineConfig &cfg) : cfg_(cfg) {}
    virtual ~FetchMechanism() = default;

    FetchMechanism(const FetchMechanism &) = delete;
    FetchMechanism &operator=(const FetchMechanism &) = delete;

    /** Form this cycle's fetch group. */
    virtual FetchOutcome formGroup(FetchContext &ctx) = 0;

    /** Scheme identity. */
    virtual SchemeKind kind() const = 0;

    /** Display name (paper terminology). */
    const char *name() const { return schemeName(kind()); }

    /**
     * Fetch-side misprediction penalty in cycles: the fetch pipeline
     * is three stages (BTB, Cache, Interchange/Valid or Collapse)
     * with a BTB->Cache bypass, giving two cycles; the shifter-based
     * collapsing buffer pays three (paper Section 3.3 / Figure 11).
     */
    virtual int mispredictPenalty() const { return cfg_.fetchPenalty; }

    /**
     * Register mechanism-internal observability counters (trace-cache
     * hit/fill statistics and the like).  The stateless walk-based
     * schemes have nothing beyond the processor's fetch.* metrics, so
     * the default is a no-op.
     */
    virtual void attachMetrics(MetricRegistry &registry)
    {
        (void)registry;
    }

  protected:
    /** Private copy: mechanisms never dangle on a caller's config. */
    MachineConfig cfg_;
};

/** Section 3: single-block fetch with masking (lower bound). */
class SequentialFetch : public FetchMechanism
{
  public:
    explicit SequentialFetch(const MachineConfig &cfg);
    FetchOutcome formGroup(FetchContext &ctx) override;
    SchemeKind kind() const override { return SchemeKind::Sequential; }

  private:
    WalkRules rules_;
};

/** Section 3.1: two banks, one sequential prefetch block. */
class InterleavedSequentialFetch : public FetchMechanism
{
  public:
    explicit InterleavedSequentialFetch(const MachineConfig &cfg);
    FetchOutcome formGroup(FetchContext &ctx) override;
    SchemeKind
    kind() const override
    {
        return SchemeKind::InterleavedSequential;
    }

  private:
    WalkRules rules_;
};

/** Section 3.2: fetch block + BTB-predicted successor block. */
class BankedSequentialFetch : public FetchMechanism
{
  public:
    explicit BankedSequentialFetch(const MachineConfig &cfg);
    FetchOutcome formGroup(FetchContext &ctx) override;
    SchemeKind
    kind() const override
    {
        return SchemeKind::BankedSequential;
    }

  private:
    WalkRules rules_;
};

/** Section 3.3: the collapsing buffer. */
class CollapsingBufferFetch : public FetchMechanism
{
  public:
    /** Crossbar vs shifter implementation (paper Figure 8). */
    enum class Impl
    {
        Crossbar, //!< 2-cycle fetch misprediction penalty
        Shifter   //!< 3-cycle penalty (Figure 11's sensitivity study)
    };

    /**
     * @param cfg   machine parameters
     * @param impl  crossbar (2-cycle penalty) or shifter (3-cycle)
     * @param allow_backward extended crossbar controller that also
     *        follows backward intra-block targets (the capability
     *        the paper mentions but did not model; crossbar only)
     */
    CollapsingBufferFetch(const MachineConfig &cfg,
                          Impl impl = Impl::Crossbar,
                          bool allow_backward = false);
    FetchOutcome formGroup(FetchContext &ctx) override;
    SchemeKind
    kind() const override
    {
        return SchemeKind::CollapsingBuffer;
    }
    int mispredictPenalty() const override { return penalty_; }

    Impl impl() const { return impl_; }

    /** True when backward intra-block collapsing is enabled. */
    bool allowsBackward() const { return allow_backward_; }

  private:
    WalkRules rules_;
    Impl impl_;
    bool allow_backward_;
    int penalty_;
};

/**
 * Related-work comparator (paper Section 1): a POWER2-style fetch
 * unit whose I-cache has eight independently addressable banks, so
 * several non-sequential blocks can be read per cycle; its paper-
 * described weakness -- static branch prediction -- is modeled by
 * pairing it with PredictorKind::StaticBtfnt in the ablation bench.
 */
class MultiBankedFetch : public FetchMechanism
{
  public:
    explicit MultiBankedFetch(const MachineConfig &cfg);
    FetchOutcome formGroup(FetchContext &ctx) override;
    SchemeKind kind() const override { return SchemeKind::MultiBanked; }

  private:
    WalkRules rules_;
};

/** The perfect upper bound: unlimited alignment. */
class PerfectFetch : public FetchMechanism
{
  public:
    explicit PerfectFetch(const MachineConfig &cfg);
    FetchOutcome formGroup(FetchContext &ctx) override;
    SchemeKind kind() const override { return SchemeKind::Perfect; }

  private:
    WalkRules rules_;
};

/**
 * Convenience factory with default construction parameters;
 * equivalent to FetchSchemeRegistry::instance().make(kind, cfg).
 * Callers that need the collapsing buffer's implementation choice or
 * backward-collapse switch pass SchemeParams through the registry.
 */
std::unique_ptr<FetchMechanism> makeFetchMechanism(
    SchemeKind kind, const MachineConfig &cfg);

/** Collapsing-buffer factory with explicit implementation choice. */
std::unique_ptr<FetchMechanism> makeCollapsingBuffer(
    const MachineConfig &cfg, CollapsingBufferFetch::Impl impl);

} // namespace fetchsim

#endif // FETCHSIM_FETCH_FETCH_MECHANISM_H_
