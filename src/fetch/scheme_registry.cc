#include "fetch/scheme_registry.h"

#include "fetch/trace_cache.h"
#include "stats/log.h"

namespace fetchsim
{

namespace
{

std::unique_ptr<FetchMechanism>
makeSequential(const MachineConfig &cfg, const SchemeParams &)
{
    return std::make_unique<SequentialFetch>(cfg);
}

std::unique_ptr<FetchMechanism>
makeInterleaved(const MachineConfig &cfg, const SchemeParams &)
{
    return std::make_unique<InterleavedSequentialFetch>(cfg);
}

std::unique_ptr<FetchMechanism>
makeBanked(const MachineConfig &cfg, const SchemeParams &)
{
    return std::make_unique<BankedSequentialFetch>(cfg);
}

std::unique_ptr<FetchMechanism>
makeCollapsing(const MachineConfig &cfg, const SchemeParams &params)
{
    return std::make_unique<CollapsingBufferFetch>(
        cfg, params.cbImpl, params.cbAllowBackward);
}

std::unique_ptr<FetchMechanism>
makePerfect(const MachineConfig &cfg, const SchemeParams &)
{
    return std::make_unique<PerfectFetch>(cfg);
}

std::unique_ptr<FetchMechanism>
makeMultiBanked(const MachineConfig &cfg, const SchemeParams &)
{
    return std::make_unique<MultiBankedFetch>(cfg);
}

std::unique_ptr<FetchMechanism>
makeTraceCache(const MachineConfig &cfg, const SchemeParams &params)
{
    return std::make_unique<TraceCacheFetch>(
        cfg, params.mem ? params.mem
                        : std::pmr::get_default_resource());
}

} // anonymous namespace

FetchSchemeRegistry::FetchSchemeRegistry()
{
    // Ordered by SchemeKind value; the paper's five-scheme grid
    // first, then the related-work and beyond-paper schemes.
    schemes_ = {
        {SchemeKind::Sequential, "sequential", "sequential",
         "single-block masked fetch (paper Section 3, lower bound)",
         true, false, PredictorKind::BtbCounter, &makeSequential},
        {SchemeKind::InterleavedSequential, "interleaved",
         "interleaved-sequential",
         "two-bank sequential prefetch (paper Section 3.1)",
         true, false, PredictorKind::BtbCounter, &makeInterleaved},
        {SchemeKind::BankedSequential, "banked", "banked-sequential",
         "fetch block + BTB-predicted successor (paper Section 3.2)",
         true, false, PredictorKind::BtbCounter, &makeBanked},
        {SchemeKind::CollapsingBuffer, "collapsing",
         "collapsing-buffer",
         "banked fetch + intra-block collapsing (paper Section 3.3)",
         true, true, PredictorKind::BtbCounter, &makeCollapsing},
        {SchemeKind::Perfect, "perfect", "perfect",
         "unlimited alignment (paper upper bound)",
         true, false, PredictorKind::BtbCounter, &makePerfect},
        {SchemeKind::MultiBanked, "multi-banked", "multi-banked",
         "POWER2-style 8-bank fetch (related work, paper Section 1)",
         false, false, PredictorKind::StaticBtfnt, &makeMultiBanked},
        {SchemeKind::TraceCache, "trace-cache", "trace-cache",
         "trace cache + multi-branch predictor (beyond-paper study)",
         false, false, PredictorKind::BtbCounter, &makeTraceCache},
    };
    simAssert(static_cast<int>(schemes_.size()) == kNumSchemes,
              "every SchemeKind registered");
    for (std::size_t i = 0; i < schemes_.size(); ++i)
        simAssert(static_cast<std::size_t>(schemes_[i].kind) == i,
                  "registry ordered by SchemeKind value");
}

const FetchSchemeRegistry &
FetchSchemeRegistry::instance()
{
    static const FetchSchemeRegistry registry;
    return registry;
}

const SchemeInfo &
FetchSchemeRegistry::info(SchemeKind kind) const
{
    const auto index = static_cast<std::size_t>(kind);
    simAssert(index < schemes_.size(), "registered scheme");
    return schemes_[index];
}

const SchemeInfo *
FetchSchemeRegistry::find(std::string_view key_or_name) const
{
    for (const SchemeInfo &scheme : schemes_) {
        if (key_or_name == scheme.key ||
            key_or_name == scheme.display)
            return &scheme;
    }
    return nullptr;
}

std::vector<SchemeKind>
FetchSchemeRegistry::paperSchemes() const
{
    std::vector<SchemeKind> kinds;
    for (const SchemeInfo &scheme : schemes_)
        if (scheme.paperScheme)
            kinds.push_back(scheme.kind);
    return kinds;
}

std::string
FetchSchemeRegistry::keyList(const char *sep) const
{
    std::string joined;
    for (const SchemeInfo &scheme : schemes_) {
        if (!joined.empty())
            joined += sep;
        joined += scheme.key;
    }
    return joined;
}

std::unique_ptr<FetchMechanism>
FetchSchemeRegistry::make(SchemeKind kind, const MachineConfig &cfg,
                          const SchemeParams &params) const
{
    return info(kind).factory(cfg, params);
}

} // namespace fetchsim
