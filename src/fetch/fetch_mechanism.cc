#include "fetch/fetch_mechanism.h"

#include "fetch/scheme_registry.h"
#include "stats/log.h"

namespace fetchsim
{

SequentialFetch::SequentialFetch(const MachineConfig &cfg)
    : FetchMechanism(cfg), rules_(rulesFor(SchemeKind::Sequential))
{
}

FetchOutcome
SequentialFetch::formGroup(FetchContext &ctx)
{
    return runWalk(rules_, ctx);
}

InterleavedSequentialFetch::InterleavedSequentialFetch(
    const MachineConfig &cfg)
    : FetchMechanism(cfg),
      rules_(rulesFor(SchemeKind::InterleavedSequential))
{
}

FetchOutcome
InterleavedSequentialFetch::formGroup(FetchContext &ctx)
{
    return runWalk(rules_, ctx);
}

BankedSequentialFetch::BankedSequentialFetch(const MachineConfig &cfg)
    : FetchMechanism(cfg),
      rules_(rulesFor(SchemeKind::BankedSequential))
{
}

FetchOutcome
BankedSequentialFetch::formGroup(FetchContext &ctx)
{
    return runWalk(rules_, ctx);
}

CollapsingBufferFetch::CollapsingBufferFetch(const MachineConfig &cfg,
                                             Impl impl,
                                             bool allow_backward)
    : FetchMechanism(cfg),
      rules_(rulesFor(SchemeKind::CollapsingBuffer)), impl_(impl),
      allow_backward_(allow_backward),
      penalty_(impl == Impl::Crossbar ? cfg.fetchPenalty
                                      : cfg.fetchPenalty + 1)
{
    if (allow_backward && impl != Impl::Crossbar)
        fatal("backward collapsing requires the crossbar "
              "implementation (paper Section 3.3)");
    rules_.collapseIntraBackward = allow_backward;
}

FetchOutcome
CollapsingBufferFetch::formGroup(FetchContext &ctx)
{
    return runWalk(rules_, ctx);
}

MultiBankedFetch::MultiBankedFetch(const MachineConfig &cfg)
    : FetchMechanism(cfg), rules_(rulesFor(SchemeKind::MultiBanked))
{
}

FetchOutcome
MultiBankedFetch::formGroup(FetchContext &ctx)
{
    return runWalk(rules_, ctx);
}

PerfectFetch::PerfectFetch(const MachineConfig &cfg)
    : FetchMechanism(cfg), rules_(rulesFor(SchemeKind::Perfect))
{
}

FetchOutcome
PerfectFetch::formGroup(FetchContext &ctx)
{
    return runWalk(rules_, ctx);
}

std::unique_ptr<FetchMechanism>
makeFetchMechanism(SchemeKind kind, const MachineConfig &cfg)
{
    return FetchSchemeRegistry::instance().make(kind, cfg);
}

std::unique_ptr<FetchMechanism>
makeCollapsingBuffer(const MachineConfig &cfg,
                     CollapsingBufferFetch::Impl impl)
{
    return std::make_unique<CollapsingBufferFetch>(cfg, impl);
}

} // namespace fetchsim
