/**
 * @file
 * FetchSchemeRegistry: the single authority on fetch schemes.
 *
 * Before this registry existed, adding a scheme meant editing switch
 * statements scattered across the fetch factory, the CLI parser and
 * help text, the plan validator and the report tables.  Now each
 * scheme registers once, carrying everything the rest of the system
 * asks about it:
 *
 *  - a stable CLI key ("collapsing") and the display name used in
 *    reports ("collapsing-buffer");
 *  - a one-line summary (CLI `list`/`help` output);
 *  - metadata: membership in the paper's five-scheme grid, whether
 *    the collapsing-buffer implementation axis applies, and the
 *    direction predictor the scheme assumes by default;
 *  - a factory constructing the mechanism (absorbing what used to be
 *    a special case for the collapsing buffer's extra parameters).
 *
 * SchemeKind itself stays an interned id: its numeric values feed
 * checkpoint content hashes and existing configs, so the enum is
 * append-only and the registry is ordered by it.
 */

#ifndef FETCHSIM_FETCH_SCHEME_REGISTRY_H_
#define FETCHSIM_FETCH_SCHEME_REGISTRY_H_

#include <memory>
#include <memory_resource>
#include <string>
#include <string_view>
#include <vector>

#include "fetch/fetch_mechanism.h"

namespace fetchsim
{

/**
 * Construction parameters a scheme factory may consume beyond the
 * machine configuration.  Schemes ignore fields that do not apply to
 * them (the registry's cbImplApplies metadata says which do).
 */
struct SchemeParams
{
    CollapsingBufferFetch::Impl cbImpl =
        CollapsingBufferFetch::Impl::Crossbar;
    bool cbAllowBackward = false;
    /**
     * Memory resource for the mechanism's per-run tables (trace
     * lines, PC slab, multi-branch counters).  Null means the
     * default heap resource.  Sweep workers point this at their
     * per-worker Arena (core/arena.h); the resource must then
     * outlive the mechanism.
     */
    std::pmr::memory_resource *mem = nullptr;
};

/** Everything the system knows about one fetch scheme. */
struct SchemeInfo
{
    SchemeKind kind;       //!< interned id (append-only enum)
    const char *key;       //!< stable CLI key, e.g. "collapsing"
    const char *display;   //!< report/display name, e.g.
                           //!< "collapsing-buffer" (paper terminology)
    const char *summary;   //!< one-line description for `list`/`help`
    bool paperScheme;      //!< member of the paper's 5-scheme grid
    bool cbImplApplies;    //!< crossbar/shifter implementation axis
                           //!< meaningful for this scheme
    PredictorKind defaultPredictor; //!< direction predictor the
                                    //!< scheme assumes by default
    std::unique_ptr<FetchMechanism> (*factory)(
        const MachineConfig &cfg, const SchemeParams &params);
};

/**
 * Immutable, process-wide table of registered schemes, ordered by
 * SchemeKind value.
 */
class FetchSchemeRegistry
{
  public:
    /** The registry (constructed on first use, immutable after). */
    static const FetchSchemeRegistry &instance();

    /** All registered schemes, in SchemeKind order. */
    const std::vector<SchemeInfo> &schemes() const { return schemes_; }

    /** Metadata of one scheme (fatal on an unregistered kind). */
    const SchemeInfo &info(SchemeKind kind) const;

    /**
     * Look up a scheme by CLI key or display name; nullptr when the
     * string matches neither.
     */
    const SchemeInfo *find(std::string_view key_or_name) const;

    /** The paper's evaluation grid, in SchemeKind order. */
    std::vector<SchemeKind> paperSchemes() const;

    /** All CLI keys joined by @p sep (error messages, help text). */
    std::string keyList(const char *sep = "|") const;

    /** Construct the mechanism for @p kind. */
    std::unique_ptr<FetchMechanism>
    make(SchemeKind kind, const MachineConfig &cfg,
         const SchemeParams &params = {}) const;

  private:
    FetchSchemeRegistry();

    std::vector<SchemeInfo> schemes_;
};

} // namespace fetchsim

#endif // FETCHSIM_FETCH_SCHEME_REGISTRY_H_
