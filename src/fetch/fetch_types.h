/**
 * @file
 * Shared types of the instruction-fetch subsystem.
 */

#ifndef FETCHSIM_FETCH_FETCH_TYPES_H_
#define FETCHSIM_FETCH_FETCH_TYPES_H_

#include <cstdint>

#include "branch/predictor_suite.h"
#include "cache/icache.h"
#include "core/machine_config.h"
#include "exec/dyn_inst.h"
#include "stats/counters.h"

namespace fetchsim
{

/** The fetch mechanisms studied in the paper, plus the bounds. */
enum class SchemeKind : std::uint8_t
{
    Sequential = 0,        //!< single-block masked fetch (lower bound)
    InterleavedSequential, //!< two-bank sequential prefetch
    BankedSequential,      //!< fetch + BTB-predicted successor block
    CollapsingBuffer,      //!< banked + intra-block collapsing
    Perfect,               //!< unlimited alignment (upper bound)
    MultiBanked,           //!< POWER2-style 8-bank fetch (related
                           //!< work the paper compares against)
    TraceCache,            //!< Rotenberg-style trace cache with a
                           //!< multi-branch predictor (beyond-paper
                           //!< study; append-only: the numeric value
                           //!< feeds checkpoint content hashes)
    NumSchemes
};

/** Number of schemes. */
constexpr int kNumSchemes = static_cast<int>(SchemeKind::NumSchemes);

/** Display name of a scheme (paper's terminology). */
const char *schemeName(SchemeKind kind);

/**
 * Everything a fetch mechanism sees in one cycle: the upcoming
 * correct-path instructions, the predictor and cache it may query,
 * and the backend's acceptance limits.
 */
struct FetchContext
{
    const DynInst *stream = nullptr; //!< upcoming correct-path insts
    int streamLen = 0;               //!< how many are visible
    PredictorSuite *predictor = nullptr;
    ICache *icache = nullptr;
    const MachineConfig *cfg = nullptr;
    int specHeadroom = 0;  //!< additional unresolved cond branches
                           //!< the machine may put in flight
    int windowSpace = 0;   //!< window/ROB entries available
};

/**
 * Result of one group-formation attempt.
 */
struct FetchOutcome
{
    int delivered = 0;          //!< stream insts delivered this cycle
    FetchStop stop = FetchStop::IssueLimit; //!< why the group ended
    int stallAfter = 0;         //!< extra idle cycles (cache refill)
    bool mispredict = false;    //!< last delivered inst mispredicted;
                                //!< fetch resumes at resolve+penalty
    bool decodeRedirect = false; //!< BTB-miss unconditional direct
                                 //!< jump: one redirect bubble
    int collapsed = 0;          //!< intra-block taken branches the
                                //!< group continued past (collapse
                                //!< network events; observability)
};

} // namespace fetchsim

#endif // FETCHSIM_FETCH_FETCH_TYPES_H_
