#include "fetch/hw_models.h"

#include <cmath>

#include "isa/opcode.h"
#include "stats/log.h"

namespace fetchsim
{

BtbBlockQuery
queryBtbBlock(const Btb &btb, std::uint64_t fetch_addr,
              int insts_per_block)
{
    simAssert(insts_per_block > 0 && insts_per_block <= 32,
              "sane interleave factor");
    const std::uint64_t block_bytes =
        static_cast<std::uint64_t>(insts_per_block) * kInstBytes;
    const std::uint64_t block_base = fetch_addr & ~(block_bytes - 1);
    const int start_slot =
        static_cast<int>((fetch_addr - block_base) / kInstBytes);

    BtbBlockQuery query;
    query.successorAddr = block_base + block_bytes;

    // Comparator chain: walk slots in order; slots before the fetch
    // slot are invalid, and the first predicted-taken slot terminates
    // the valid run and supplies the successor address.
    for (int slot = start_slot; slot < insts_per_block; ++slot) {
        query.validMask |= 1u << slot;
        const std::uint64_t pc =
            block_base + static_cast<std::uint64_t>(slot) * kInstBytes;
        BtbPrediction pred = btb.probe(pc);
        if (pred.hit && pred.predictTaken) {
            query.firstTakenSlot = slot;
            query.successorAddr = pred.target;
            query.successorIsSequential = false;
            break;
        }
    }
    return query;
}

InterchangeSwitch::InterchangeSwitch(int insts_per_block)
    : k_(insts_per_block)
{
    simAssert(k_ > 0, "positive block width");
}

std::vector<FetchSlot>
InterchangeSwitch::apply(const std::vector<FetchSlot> &bank0,
                         const std::vector<FetchSlot> &bank1,
                         bool fetch_in_bank1) const
{
    simAssert(static_cast<int>(bank0.size()) == k_ &&
                  static_cast<int>(bank1.size()) == k_,
              "bank width matches block width");
    std::vector<FetchSlot> out;
    out.reserve(2 * static_cast<std::size_t>(k_));
    const auto &first = fetch_in_bank1 ? bank1 : bank0;
    const auto &second = fetch_in_bank1 ? bank0 : bank1;
    out.insert(out.end(), first.begin(), first.end());
    out.insert(out.end(), second.begin(), second.end());
    return out;
}

HwCost
InterchangeSwitch::cost() const
{
    HwCost cost;
    cost.transmissionGates = 64ull * static_cast<std::uint64_t>(k_);
    cost.bestCaseDelay = 2;
    cost.worstCaseDelay = 2;
    return cost;
}

ValidSelectLogic::ValidSelectLogic(int insts_per_block)
    : k_(insts_per_block)
{
    simAssert(k_ > 0, "positive block width");
}

std::vector<std::uint32_t>
ValidSelectLogic::apply(const std::vector<FetchSlot> &slots) const
{
    simAssert(static_cast<int>(slots.size()) == 2 * k_,
              "valid select consumes two blocks");
    std::vector<std::uint32_t> out;
    out.reserve(static_cast<std::size_t>(k_));
    // The valid bits of each block form one contiguous run (the BTB
    // comparator chain guarantees it); the mux array forwards the
    // first k valid words in order.
    for (const FetchSlot &slot : slots) {
        if (!slot.valid)
            continue;
        out.push_back(slot.word);
        if (static_cast<int>(out.size()) == k_)
            break;
    }
    return out;
}

HwCost
ValidSelectLogic::cost() const
{
    // Figure 6b: 3 k-to-1, 3 (k-1)-to-1 and 3 2-to-1 32-bit muxes.
    HwCost cost;
    cost.muxes = 9;
    cost.bestCaseDelay = 4;
    cost.worstCaseDelay = 4;
    return cost;
}

CollapsingBufferLogic::CollapsingBufferLogic(int insts_per_block,
                                             Impl impl)
    : k_(insts_per_block), impl_(impl)
{
    simAssert(k_ > 0, "positive block width");
}

std::vector<std::uint32_t>
CollapsingBufferLogic::apply(const std::vector<FetchSlot> &slots) const
{
    simAssert(static_cast<int>(slots.size()) == 2 * k_,
              "collapsing buffer consumes two blocks");
    std::vector<std::uint32_t> out;
    out.reserve(static_cast<std::size_t>(k_));
    // Unlike valid select, gaps may appear anywhere: the buffer
    // left-compacts every valid word.
    for (const FetchSlot &slot : slots) {
        if (!slot.valid)
            continue;
        out.push_back(slot.word);
        if (static_cast<int>(out.size()) == k_)
            break;
    }
    return out;
}

HwCost
CollapsingBufferLogic::cost() const
{
    HwCost cost;
    const auto k = static_cast<std::uint64_t>(k_);
    if (impl_ == Impl::Shifter) {
        // Figure 8a: 64k 1-bit registers, 64k-32 transmission gates;
        // best case one latch delay, worst (lg(k)-1) latch delays.
        cost.latches = 64 * k;
        cost.transmissionGates = 64 * k - 32;
        cost.bestCaseDelay = 1;
        int lg = 0;
        while ((1u << lg) < static_cast<unsigned>(k_))
            ++lg;
        cost.worstCaseDelay = lg > 1 ? lg - 1 : 1;
    } else {
        // Figure 8b: 2k 1-to-k 32-bit demuxes, 1 gate + bus delay.
        cost.muxes = 2 * k;
        cost.bestCaseDelay = 1;
        cost.worstCaseDelay = 2; // one gate plus bus propagation
    }
    return cost;
}

} // namespace fetchsim
