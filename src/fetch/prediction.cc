#include "fetch/fetch_types.h"

#include "stats/log.h"

namespace fetchsim
{

const char *
schemeName(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::Sequential:
        return "sequential";
      case SchemeKind::InterleavedSequential:
        return "interleaved-sequential";
      case SchemeKind::BankedSequential:
        return "banked-sequential";
      case SchemeKind::CollapsingBuffer:
        return "collapsing-buffer";
      case SchemeKind::Perfect:
        return "perfect";
      case SchemeKind::MultiBanked:
        return "multi-banked";
      default:
        return "???";
    }
}

} // namespace fetchsim
