#include "fetch/fetch_types.h"

#include "fetch/scheme_registry.h"

namespace fetchsim
{

const char *
schemeName(SchemeKind kind)
{
    if (static_cast<int>(kind) >= kNumSchemes)
        return "???";
    return FetchSchemeRegistry::instance().info(kind).display;
}

} // namespace fetchsim
