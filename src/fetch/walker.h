/**
 * @file
 * Shared group-formation walk used by all fetch mechanisms.
 *
 * Every scheme forms its per-cycle fetch group by walking the
 * predicted instruction path from the fetch PC; they differ only in
 * which cache blocks are reachable in one cycle and in their ability
 * to continue past a predicted-taken branch.  WalkRules captures
 * those differences; runWalk() executes the walk.
 */

#ifndef FETCHSIM_FETCH_WALKER_H_
#define FETCHSIM_FETCH_WALKER_H_

#include "fetch/fetch_types.h"

namespace fetchsim
{

/**
 * Scheme-specific group-formation capabilities.
 */
struct WalkRules
{
    /** How many distinct cache blocks one group may span. */
    int maxBlocks = 1;

    /**
     * May the group continue past a correctly-predicted taken branch
     * whose target is in a *different* block (consuming the second
     * block)?  True for banked sequential and the collapsing buffer.
     */
    bool crossTakenInterBlock = false;

    /**
     * May the group collapse a correctly-predicted taken branch whose
     * target is *forward in the same block*?  True for the collapsing
     * buffer only.
     */
    bool collapseIntraForward = false;

    /**
     * May the group also follow *backward* intra-block targets?  The
     * paper notes the bus-based crossbar is capable of this but the
     * controller they modeled did not support it (Section 3.3); this
     * flag enables that extension for the ablation study.
     */
    bool collapseIntraBackward = false;

    /**
     * Must the target block avoid the fetch block's bank?  True for
     * banked sequential and the collapsing buffer, whose second cache
     * access happens in parallel with the first.  (Interleaved
     * sequential's second block is always the next sequential block,
     * which lives in the other bank by construction.)
     */
    bool checkBankConflict = false;

    /**
     * Perfect fetch: no block or alignment bookkeeping at all; cache
     * blocks are still accessed and misses still stall.
     */
    bool unlimitedAlignment = false;

    /**
     * Bank count used for conflict checking.  0 = the I-cache's own
     * bank count (the paper's two-bank schemes).  The POWER2-style
     * multi-banked comparator sets 8 independently addressable
     * banks.
     */
    int banksOverride = 0;
};

/** Canonical rules for each scheme. */
WalkRules rulesFor(SchemeKind kind);

/**
 * Form one fetch group under @p rules.  See FetchOutcome for the
 * contract; the caller (Processor) applies stalls and penalties.
 */
FetchOutcome runWalk(const WalkRules &rules, FetchContext &ctx);

} // namespace fetchsim

#endif // FETCHSIM_FETCH_WALKER_H_
