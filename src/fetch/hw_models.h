/**
 * @file
 * Structural models of the paper's fetch-datapath building blocks.
 *
 * These classes model, at the functional level plus gate-count/delay
 * annotations, the hardware entities the paper details:
 *
 *  - the interleaved BTB block query with its comparator chain
 *    producing per-slot valid bits and the successor block address
 *    (Figure 5);
 *  - the interchange switch that reorders the two fetched cache
 *    blocks (Figure 6a);
 *  - the valid-select logic that extracts the first k valid
 *    instructions from the two blocks (Figure 6b);
 *  - the collapsing buffer itself, in both the shifter and bus-based
 *    crossbar implementations (Figure 8).
 *
 * The cycle-level simulator's group-formation walk (fetch/walker.h)
 * is the timing abstraction of this datapath; these models are the
 * datapath itself, and tests assert that the two agree on what a
 * cycle can align.
 */

#ifndef FETCHSIM_FETCH_HW_MODELS_H_
#define FETCHSIM_FETCH_HW_MODELS_H_

#include <cstdint>
#include <vector>

#include "branch/btb.h"

namespace fetchsim
{

/** Gate-count / delay annotation for one datapath structure. */
struct HwCost
{
    std::uint64_t transmissionGates = 0;
    std::uint64_t latches = 0;
    std::uint64_t muxes = 0;
    int bestCaseDelay = 0;  //!< gate delays
    int worstCaseDelay = 0; //!< gate delays
};

/**
 * One slot of a fetched cache block as the alignment datapath sees
 * it: the 32-bit instruction word plus its validity bit.
 */
struct FetchSlot
{
    std::uint32_t word = 0;
    bool valid = false;
};

/**
 * Result of querying the interleaved BTB for one cache block
 * (Figure 5): per-slot valid bits from the comparator chain, plus the
 * predicted successor block address.
 */
struct BtbBlockQuery
{
    std::uint32_t validMask = 0;     //!< bit i = slot i valid
    int firstTakenSlot = -1;         //!< predicted-taken slot, or -1
    std::uint64_t successorAddr = 0; //!< predicted next fetch address
    bool successorIsSequential = true; //!< no predicted-taken branch
};

/**
 * Query the interleaved BTB for the block containing @p fetch_addr,
 * beginning at that address's slot, for @p insts_per_block slots.
 * Implements the comparator-chain semantics of Figure 5: a slot is
 * valid iff it is at or after the fetch slot and no earlier valid
 * slot holds a predicted-taken branch; the successor address is the
 * first predicted-taken slot's cached target, else the next
 * sequential block.
 */
BtbBlockQuery queryBtbBlock(const Btb &btb, std::uint64_t fetch_addr,
                            int insts_per_block);

/**
 * Interchange switch (Figure 6a): presents the fetch block and the
 * successor block to the merge datapath in predicted order,
 * reversing them when the successor bank precedes the fetch bank.
 */
class InterchangeSwitch
{
  public:
    /** @param insts_per_block the k of the paper's cost formulas. */
    explicit InterchangeSwitch(int insts_per_block);

    /**
     * @param bank0 slots read from bank 0
     * @param bank1 slots read from bank 1
     * @param fetch_in_bank1 true when the fetch block came from
     *        bank 1 (the two blocks must be swapped)
     * @return 2k slots in fetch-block-first order
     */
    std::vector<FetchSlot> apply(const std::vector<FetchSlot> &bank0,
                                 const std::vector<FetchSlot> &bank1,
                                 bool fetch_in_bank1) const;

    /** 64*k transmission gates, 2 gate delays (Figure 6a). */
    HwCost cost() const;

  private:
    int k_;
};

/**
 * Valid-select logic (Figure 6b): from 2k slots with valid bits,
 * select the first k valid instructions in order.  Used by the
 * interleaved and banked sequential schemes.
 */
class ValidSelectLogic
{
  public:
    explicit ValidSelectLogic(int insts_per_block);

    /**
     * @param slots 2k slots in fetch-order (post interchange)
     * @return up to k selected instruction words, in order
     */
    std::vector<std::uint32_t>
    apply(const std::vector<FetchSlot> &slots) const;

    /** Mux inventory and 4 gate delays (Figure 6b). */
    HwCost cost() const;

  private:
    int k_;
};

/**
 * The collapsing buffer (Figure 8): removes invalid gaps *anywhere*
 * in the 2k input slots, producing a dense run of up to k valid
 * instructions.  Functionally the shifter and crossbar produce the
 * same result; they differ in cost and in the fetch pipeline depth
 * (misprediction penalty), which the cycle model charges.
 */
class CollapsingBufferLogic
{
  public:
    /** Implementation choice (cost model only; function identical). */
    enum class Impl { Shifter, Crossbar };

    CollapsingBufferLogic(int insts_per_block, Impl impl);

    /** Collapse the gaps; returns up to k instruction words. */
    std::vector<std::uint32_t>
    apply(const std::vector<FetchSlot> &slots) const;

    /** Figure 8's per-implementation cost. */
    HwCost cost() const;

    Impl impl() const { return impl_; }

  private:
    int k_;
    Impl impl_;
};

} // namespace fetchsim

#endif // FETCHSIM_FETCH_HW_MODELS_H_
