#include "fetch/walker.h"

#include <algorithm>

#include "stats/log.h"

namespace fetchsim
{

WalkRules
rulesFor(SchemeKind kind)
{
    WalkRules rules;
    switch (kind) {
      case SchemeKind::Sequential:
        rules.maxBlocks = 1;
        break;
      case SchemeKind::InterleavedSequential:
        rules.maxBlocks = 2;
        break;
      case SchemeKind::BankedSequential:
        rules.maxBlocks = 2;
        rules.crossTakenInterBlock = true;
        rules.checkBankConflict = true;
        break;
      case SchemeKind::CollapsingBuffer:
        rules.maxBlocks = 2;
        rules.crossTakenInterBlock = true;
        rules.collapseIntraForward = true;
        rules.checkBankConflict = true;
        break;
      case SchemeKind::Perfect:
        rules.unlimitedAlignment = true;
        break;
      case SchemeKind::MultiBanked:
        // Section 1's POWER2 comparator: eight independently
        // addressable banks can serve several arbitrary blocks per
        // cycle; alignment limited only by bank conflicts.
        rules.maxBlocks = 4;
        rules.crossTakenInterBlock = true;
        rules.collapseIntraForward = true;
        rules.checkBankConflict = true;
        rules.banksOverride = 8;
        break;
      default:
        panic("rulesFor: bad scheme");
    }
    return rules;
}

FetchOutcome
runWalk(const WalkRules &rules, FetchContext &ctx)
{
    FetchOutcome out;
    simAssert(ctx.cfg && ctx.predictor && ctx.icache,
              "context wired");

    if (ctx.streamLen == 0) {
        out.stop = FetchStop::StreamEnd;
        return out;
    }
    if (ctx.windowSpace <= 0) {
        out.stop = FetchStop::WindowFull;
        return out;
    }

    const MachineConfig &cfg = *ctx.cfg;
    const std::uint64_t bsize = cfg.blockBytes;
    auto align = [bsize](std::uint64_t a) { return a & ~(bsize - 1); };

    // Demand access to the fetch block: a miss costs the full refill.
    const std::uint64_t block_a = align(ctx.stream[0].pc);
    if (!ctx.icache->access(block_a)) {
        out.stop = FetchStop::CacheMiss;
        out.stallAfter = cfg.icacheMissPenalty;
        return out;
    }

    const int limit =
        std::min({cfg.issueRate, ctx.windowSpace, ctx.streamLen});
    std::uint64_t cur_block = block_a;
    int blocks_used = 1;
    int new_cond = 0;

    // Bank-conflict tracking: two blocks fetched in one cycle must
    // come from distinct banks.
    const int banks = rules.banksOverride > 0
                          ? rules.banksOverride
                          : ctx.icache->numBanks();
    auto bank_of = [&](std::uint64_t block_addr) {
        return static_cast<int>(
            (block_addr / bsize) % static_cast<std::uint64_t>(banks));
    };
    std::uint32_t used_banks = 0;
    if (rules.checkBankConflict)
        used_banks = 1u << bank_of(block_a);

    for (int i = 0; i < limit; ++i) {
        const DynInst &di = ctx.stream[i];
        const std::uint64_t blk = align(di.pc);

        if (blk != cur_block) {
            // Predicted flow enters a new cache block (sequential
            // fall-through or a crossed taken branch).
            if (rules.unlimitedAlignment) {
                if (!ctx.icache->access(blk)) {
                    out.stop = FetchStop::CacheMiss;
                    out.stallAfter = cfg.icacheMissPenalty;
                    return out;
                }
                cur_block = blk;
            } else {
                if (blocks_used >= rules.maxBlocks) {
                    out.stop = FetchStop::BlockEnd;
                    return out;
                }
                if (rules.checkBankConflict) {
                    const std::uint32_t bank_bit =
                        1u << bank_of(blk);
                    if (used_banks & bank_bit) {
                        out.stop = FetchStop::BankConflict;
                        return out;
                    }
                    used_banks |= bank_bit;
                }
                if (!ctx.icache->access(blk)) {
                    out.stop = FetchStop::CacheMiss;
                    out.stallAfter = cfg.icacheMissPenalty;
                    return out;
                }
                cur_block = blk;
                ++blocks_used;
            }
        }

        // Speculation-depth gate: delivering another unresolved
        // conditional branch beyond the machine limit must wait.
        if (di.isCondBranch() && new_cond >= ctx.specHeadroom) {
            out.stop = FetchStop::SpecDepth;
            return out;
        }

        out.delivered = i + 1;

        const InstPrediction pred = ctx.predictor->predict(di);
        if (pred.cond)
            ++new_cond;

        if (pred.mispredict) {
            out.stop = FetchStop::Mispredict;
            out.mispredict = true;
            return out;
        }
        if (pred.decodeRedirect) {
            out.stop = FetchStop::BtbMissControl;
            out.decodeRedirect = true;
            return out;
        }
        if (!pred.control || !pred.predTaken)
            continue; // sequential (or correctly not-taken) flow

        // Correctly-predicted taken control transfer.
        if (rules.unlimitedAlignment)
            continue;

        const std::uint64_t tblk = align(di.actualTarget);
        if (tblk == blk) {
            // Intra-block target.
            const bool forward = di.actualTarget > di.pc;
            if (forward && rules.collapseIntraForward) {
                ++out.collapsed; // collapse network removes the gap
                continue;
            }
            if (!forward && rules.collapseIntraBackward) {
                ++out.collapsed; // extended crossbar controller
                continue;
            }
            if (!rules.crossTakenInterBlock) {
                out.stop = FetchStop::TakenBranch;
            } else {
                out.stop = forward ? FetchStop::IntraBlock
                                   : FetchStop::BackwardIntra;
            }
            return out;
        }
        // Inter-block target.
        if (!rules.crossTakenInterBlock) {
            out.stop = FetchStop::TakenBranch;
            return out;
        }
        // The block transition is validated (bank conflict, block
        // budget, cache) when the target instruction is examined on
        // the next iteration.
    }

    if (out.delivered >= cfg.issueRate)
        out.stop = FetchStop::IssueLimit;
    else if (out.delivered >= ctx.windowSpace)
        out.stop = FetchStop::WindowFull;
    else
        out.stop = FetchStop::StreamEnd;
    return out;
}

} // namespace fetchsim
