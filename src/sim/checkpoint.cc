#include "sim/checkpoint.h"

#include <cctype>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "ingest/trace_registry.h"
#include "perf/profiler.h"
#include "stats/log.h"
#include "workload/benchmark_suite.h"

namespace fetchsim
{

namespace
{

/** The scalar RunCounters fields, in journal order. */
struct CounterField
{
    const char *name;
    std::uint64_t RunCounters::*member;
};

const CounterField kCounterFields[] = {
    {"cycles", &RunCounters::cycles},
    {"retired", &RunCounters::retired},
    {"delivered", &RunCounters::delivered},
    {"fetch_groups", &RunCounters::fetchGroups},
    {"cond_branches", &RunCounters::condBranches},
    {"taken_branches", &RunCounters::takenBranches},
    {"intra_block_taken", &RunCounters::intraBlockTaken},
    {"mispredicts", &RunCounters::mispredicts},
    {"control_mispredicts", &RunCounters::controlMispredicts},
    {"icache_accesses", &RunCounters::icacheAccesses},
    {"icache_misses", &RunCounters::icacheMisses},
    {"btb_lookups", &RunCounters::btbLookups},
    {"btb_hits", &RunCounters::btbHits},
    {"stall_cycles", &RunCounters::stallCycles},
    {"nops_retired", &RunCounters::nopsRetired},
    {"nops_delivered", &RunCounters::nopsDelivered},
};

std::uint64_t
fnv1a(std::uint64_t hash, const void *data, std::size_t len)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        hash ^= bytes[i];
        hash *= 1099511628211ull;
    }
    return hash;
}

std::uint64_t
fnv1aU64(std::uint64_t hash, std::uint64_t value)
{
    return fnv1a(hash, &value, sizeof(value));
}

/** Parse an unsigned decimal at @p pos, advancing it. */
bool
parseU64(const std::string &line, std::size_t &pos,
         std::uint64_t &out)
{
    if (pos >= line.size() ||
        !std::isdigit(static_cast<unsigned char>(line[pos])))
        return false;
    std::uint64_t value = 0;
    while (pos < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[pos]))) {
        value = value * 10 + static_cast<std::uint64_t>(line[pos] - '0');
        ++pos;
    }
    out = value;
    return true;
}

/** Expect the literal @p want at @p pos, advancing past it. */
bool
expect(const std::string &line, std::size_t &pos, const char *want)
{
    const std::size_t len = std::strlen(want);
    if (line.compare(pos, len, want) != 0)
        return false;
    pos += len;
    return true;
}

SimError
tornLine(const std::string &why)
{
    return SimError{ErrorKind::Io, "unusable checkpoint line: " + why,
                    ""};
}

} // anonymous namespace

std::uint64_t
runKey(const RunConfig &config)
{
    // FNV-1a offset basis.
    std::uint64_t hash = 14695981039346656037ull;

    // The workload's root seed: the journal must not survive a
    // recalibration of the benchmark specs.  An external trace has
    // no spec; its FNV-1a content hash plays the same role, so the
    // journal never survives swapping the file behind the name.
    std::uint64_t seed = 0;
    if (isExternalBenchmark(config.benchmark)) {
        const auto info = ExternalTraceRegistry::instance().find(
            externalTraceName(config.benchmark));
        seed = info.ok() ? info.value().contentHash : 0;
    } else if (hasBenchmark(config.benchmark)) {
        seed = benchmarkByName(config.benchmark).seed;
    }
    hash = fnv1aU64(hash, seed);
    hash = fnv1a(hash, config.benchmark.data(),
                 config.benchmark.size());
    hash = fnv1aU64(hash, static_cast<std::uint64_t>(config.machine));
    hash = fnv1aU64(hash, static_cast<std::uint64_t>(config.scheme));
    hash = fnv1aU64(hash, static_cast<std::uint64_t>(config.layout));
    hash = fnv1aU64(hash, static_cast<std::uint64_t>(config.cbImpl));
    const std::uint64_t budget =
        config.maxRetired ? config.maxRetired : defaultDynInsts();
    hash = fnv1aU64(hash, budget);
    hash = fnv1aU64(hash, static_cast<std::uint64_t>(config.input));
    hash = fnv1aU64(hash,
                    static_cast<std::uint64_t>(config.predictorKind));
    hash = fnv1aU64(hash, config.useRas ? 1 : 0);
    hash = fnv1aU64(hash, config.cbAllowBackward ? 1 : 0);
    hash = fnv1aU64(
        hash, static_cast<std::uint64_t>(config.specDepthOverride));
    hash = fnv1aU64(
        hash, static_cast<std::uint64_t>(config.btbEntriesOverride));
    hash = fnv1aU64(
        hash, static_cast<std::uint64_t>(config.windowSizeOverride));
    hash = fnv1aU64(
        hash, static_cast<std::uint64_t>(config.missPenaltyOverride));
    hash = fnv1aU64(
        hash, static_cast<std::uint64_t>(config.icacheWaysOverride));
    return hash;
}

std::string
runKeyHex(std::uint64_t key)
{
    static const char *digits = "0123456789abcdef";
    std::string hex(16, '0');
    for (int i = 15; i >= 0; --i) {
        hex[static_cast<std::size_t>(i)] = digits[key & 0xf];
        key >>= 4;
    }
    return hex;
}

std::string
checkpointLine(std::uint64_t key, const RunCounters &c)
{
    std::ostringstream os;
    os << "{\"key\":\"" << runKeyHex(key) << "\"";
    for (const CounterField &field : kCounterFields)
        os << ",\"" << field.name << "\":" << c.*(field.member);
    os << ",\"stops\":[";
    for (int i = 0; i < kNumFetchStops; ++i)
        os << (i ? "," : "") << c.stops[i];
    os << "]}";
    return os.str();
}

Expected<std::pair<std::uint64_t, RunCounters>>
parseCheckpointLine(const std::string &line)
{
    std::size_t pos = 0;
    if (!expect(line, pos, "{\"key\":\""))
        return tornLine("missing key prefix");

    std::uint64_t key = 0;
    for (int i = 0; i < 16; ++i, ++pos) {
        if (pos >= line.size())
            return tornLine("truncated key");
        const char ch = line[pos];
        int digit;
        if (ch >= '0' && ch <= '9')
            digit = ch - '0';
        else if (ch >= 'a' && ch <= 'f')
            digit = ch - 'a' + 10;
        else
            return tornLine("non-hex key digit");
        key = (key << 4) | static_cast<std::uint64_t>(digit);
    }
    if (!expect(line, pos, "\""))
        return tornLine("unterminated key");

    RunCounters counters;
    for (const CounterField &field : kCounterFields) {
        if (!expect(line, pos, ",\"") ||
            !expect(line, pos, field.name) ||
            !expect(line, pos, "\":"))
            return tornLine(std::string("missing field ") + field.name);
        if (!parseU64(line, pos, counters.*(field.member)))
            return tornLine(std::string("bad value for ") + field.name);
    }

    if (!expect(line, pos, ",\"stops\":["))
        return tornLine("missing stops array");
    for (int i = 0; i < kNumFetchStops; ++i) {
        if (i != 0 && !expect(line, pos, ","))
            return tornLine("short stops array");
        if (!parseU64(line, pos, counters.stops[i]))
            return tornLine("bad stops value");
    }
    if (!expect(line, pos, "]}") || pos != line.size())
        return tornLine("trailing garbage");

    return std::make_pair(key, counters);
}

Expected<std::map<std::uint64_t, RunCounters>>
loadCheckpoint(const std::string &path)
{
    PERF_SCOPE("checkpoint.load");
    std::map<std::uint64_t, RunCounters> entries;
    std::ifstream is(path);
    if (!is) {
        // Resuming before the first checkpoint was ever written is
        // an empty resume, not a failure.
        if (::access(path.c_str(), F_OK) != 0)
            return entries;
        return SimError{ErrorKind::Io,
                        "cannot read checkpoint: " + path, ""};
    }
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        auto parsed = parseCheckpointLine(line);
        if (!parsed.ok()) {
            warn("checkpoint " + path + " line " +
                 std::to_string(lineno) + " skipped: " +
                 parsed.error().message);
            continue;
        }
        // Last write wins: a cell journaled twice (e.g. two sweeps
        // appending to one journal) resolves deterministically.
        entries[parsed.value().first] = parsed.value().second;
    }
    return entries;
}

CheckpointJournal::CheckpointJournal(const std::string &path,
                                     bool append)
    : path_(path)
{
    const int flags =
        O_WRONLY | O_CREAT | (append ? O_APPEND : O_TRUNC);
    fd_ = ::open(path.c_str(), flags, 0644);
    if (fd_ < 0) {
        throw SimException(ErrorKind::Io,
                           "cannot open checkpoint journal: " + path +
                               ": " + std::strerror(errno));
    }
}

CheckpointJournal::~CheckpointJournal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
CheckpointJournal::record(std::uint64_t key,
                          const RunCounters &counters)
{
    PERF_SCOPE("checkpoint.record");
    const std::string line = checkpointLine(key, counters) + "\n";
    std::lock_guard<std::mutex> lock(mutex_);
    if (!healthy_)
        return;
    std::size_t written = 0;
    while (written < line.size()) {
        const ssize_t n = ::write(fd_, line.data() + written,
                                  line.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            healthy_ = false;
            warn("checkpoint journal " + path_ +
                 " disabled after write error: " +
                 std::strerror(errno));
            return;
        }
        written += static_cast<std::size_t>(n);
    }
    ++recorded_;
}

} // namespace fetchsim
