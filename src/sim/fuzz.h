/**
 * @file
 * Property-based workload fuzzer for the sweep invariants.
 *
 * The determinism and soundness claims this repository leans on --
 * byte-identical sweeps at any thread count, replay on/off identity,
 * checkpoint/resume identity, result-cache hit identity, and the
 * paper's perfect-scheme dominance -- are asserted by the test suite
 * at hand-picked points.  The fuzzer asserts them over the input
 * space: each scenario draws a random WorkloadSpec and machine/plan
 * configuration from documented envelopes, runs a mini-sweep, and
 * checks every invariant; a violation is shrunk to a minimal
 * reproducer and printed as a replayable `--fuzz-seed` line.
 *
 * Randomization envelopes (all inside the generator's documented
 * preconditions, see makeFuzzScenario):
 *  - program shape: 2-16 functions, 2-14 statements/function,
 *    block lengths 1-16;
 *  - instruction mix: fp <= 0.5, loads <= 0.35, stores <= 0.15;
 *  - statement mix: hammocks <= 0.3, if/else <= 0.2, loops <= 0.3,
 *    calls <= 0.15; hammock clauses 1-12 instructions; loop trips
 *    2-60, nesting <= 3;
 *  - plan: one machine model, the perfect scheme plus 1-2 real
 *    schemes, one layout, 600-3000 retired instructions, eval or
 *    training input;
 *  - machine overrides (half of the scenarios): speculation depth
 *    1-4, BTB 16-512 entries, window 8-64, miss penalty 0-12 cycles,
 *    I-cache 1/2/4 ways, RAS on/off.  (Depth 0 is rejected by config
 *    validation: it describes a machine that can never fetch a
 *    conditional branch -- the fuzzer found the hang that motivated
 *    that check.)
 *
 * Scenarios derive deterministically from (campaign seed, index), so
 * a campaign is reproducible end-to-end and any single failure is
 * replayable in isolation: `fetchsim_cli fuzz --fuzz-seed <seed>
 * --shrink-level <level>`.  Shrinking is a fixed ladder of
 * simplifying transforms (drop schemes, drop layout/overrides,
 * quarter the budget, simplify the program shape); the reported
 * reproducer is the deepest level that still fails, so the replay is
 * the smallest scenario the ladder can reach.
 */

#ifndef FETCHSIM_SIM_FUZZ_H_
#define FETCHSIM_SIM_FUZZ_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/plan.h"
#include "workload/spec.h"

namespace fetchsim
{

/** Deepest rung of the shrinking ladder. */
constexpr int kMaxShrinkLevel = 4;

/**
 * Tolerance on the perfect-dominance property.  The perfect scheme
 * removes every alignment constraint but still shares the BTB and
 * branch-history state machines with the real schemes, whose
 * different fetch-group boundaries can perturb predictor training by
 * a hair; the paper-shape tests use the same 2% envelope.
 */
constexpr double kFuzzDominanceTolerance = 0.02;

/** One mini-sweep scenario, fully derived from (seed, shrink level). */
struct FuzzScenario
{
    std::uint64_t seed = 0;    //!< scenario seed (reproducer)
    int shrinkLevel = 0;       //!< ladder rung this was built at
    WorkloadSpec spec;         //!< randomized generator parameters
    MachineModel machine = MachineModel::P14;
    std::vector<SchemeKind> schemes; //!< perfect first, then real
    LayoutKind layout = LayoutKind::Unordered;
    std::uint64_t maxRetired = 0;
    int input = 0;

    /**
     * Proto config carrying the randomized machine overrides (RAS,
     * speculation depth, BTB/window/miss-penalty/ways); benchmark,
     * machine, scheme, layout, budget and input are filled by plan().
     */
    RunConfig base;

    /** The expanded mini-sweep grid for this scenario. */
    ExperimentPlan plan() const;
};

/** One invariant violation, shrunk and replayable. */
struct FuzzFailure
{
    std::uint64_t seed = 0;   //!< scenario seed
    int shrinkLevel = 0;      //!< deepest still-failing rung
    std::string property;     //!< which invariant broke
    std::string detail;       //!< what was observed
    std::string reproducer;   //!< fetchsim_cli fuzz ... line
};

/** Options for one fuzzing campaign. */
struct FuzzOptions
{
    std::uint64_t runs = 100; //!< scenarios to generate
    std::uint64_t seed = 1;   //!< campaign seed
    int threads = 4;          //!< width of the parallel-identity sweep
    std::ostream *log = nullptr; //!< progress lines (null = silent)

    /** Stop the campaign after this many failures (0 = unbounded). */
    std::uint64_t maxFailures = 5;
};

/** Outcome of a campaign (or of one replayed scenario). */
struct FuzzReport
{
    std::uint64_t scenarios = 0; //!< scenarios executed
    std::uint64_t cells = 0;     //!< sweep cells simulated
    std::vector<FuzzFailure> failures;

    bool ok() const { return failures.empty(); }
};

/**
 * Build the scenario for @p seed at @p shrink_level (0 = the full
 * randomized scenario; deeper levels are progressively simpler).
 * Pure: no simulation, no registration.
 */
FuzzScenario makeFuzzScenario(std::uint64_t seed, int shrink_level);

/**
 * Run every invariant check for one scenario.  Registers the
 * scenario's spec as a dynamic benchmark for the duration.  Returns
 * the violations (empty = all invariants held); @p cells, when
 * non-null, accumulates the number of sweep cells simulated.
 */
std::vector<FuzzFailure> checkFuzzScenario(std::uint64_t seed,
                                           int shrink_level,
                                           int threads,
                                           std::uint64_t *cells =
                                               nullptr);

/** Run a campaign of FuzzOptions::runs scenarios with shrinking. */
FuzzReport runFuzz(const FuzzOptions &options);

/** The replayable reproducer line for (seed, level). */
std::string fuzzReproducer(std::uint64_t seed, int shrink_level);

} // namespace fetchsim

#endif // FETCHSIM_SIM_FUZZ_H_
