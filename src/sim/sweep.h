/**
 * @file
 * SweepEngine: parallel, deterministic, fault-tolerant execution of
 * experiment plans.
 *
 * Experiment points are embarrassingly parallel -- each run reads a
 * shared immutable Workload and keeps all mutable state (processor,
 * caches, predictors, behaviour RNG streams) private -- so a sweep
 * scales with cores.  The engine executes the expanded configs of an
 * ExperimentPlan on an N-worker thread pool and merges results *by
 * plan index*, which makes the output order-stable and bit-identical
 * whether the sweep runs on 1 thread or 64.
 *
 * Determinism contract: for a fixed plan, SweepResult::runs[i] is the
 * same RunResult (identical counters, not merely close) for any
 * thread count, because runs never share mutable state and the merge
 * position is the plan index, never the completion order.
 *
 * Fault tolerance (the failure-domain extension of that contract):
 * every run executes inside an isolation boundary.  A throwing cell
 * is recorded as a per-run RunStatus carrying the structured SimError
 * instead of taking down the pool; the FailurePolicy decides whether
 * the sweep stops claiming new cells (fail-fast, the default, which
 * rethrows the first error after draining) or completes every other
 * cell (keep-going), optionally retrying failed attempts with
 * exponential backoff for transient I/O faults.  Completed runs can
 * be journaled to a JSONL checkpoint (sim/checkpoint.h) keyed by a
 * content hash of (workload seed, RunConfig); a resumed sweep fills
 * journaled cells without re-running them and -- because runs are
 * bit-deterministic -- produces output byte-identical to an
 * uninterrupted sweep.  SIGINT (via installSweepSigintHandler) or a
 * programmatic stop request triggers a graceful drain: in-flight
 * runs finish and are checkpointed, unclaimed cells are marked
 * Skipped, and SweepResult::stopped is set.
 */

#ifndef FETCHSIM_SIM_SWEEP_H_
#define FETCHSIM_SIM_SWEEP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/error.h"
#include "perf/clock.h"
#include "perf/host_stats.h"
#include "sim/fault_injection.h"
#include "sim/plan.h"
#include "sim/session.h"

namespace fetchsim
{

/** What happened to one cell of a sweep. */
enum class RunOutcome : std::uint8_t
{
    Ok,      //!< counters are valid (run or resumed from checkpoint)
    Failed,  //!< every attempt threw; `error` holds the last one
    Skipped, //!< never claimed (fail-fast drain or stop request)
};

/** Display name of a run outcome ("ok", "failed", "skipped"). */
const char *runOutcomeName(RunOutcome outcome);

/** Per-cell execution record, parallel to SweepResult::runs. */
struct RunStatus
{
    RunOutcome outcome = RunOutcome::Skipped;
    SimError error;      //!< valid when outcome == Failed
    int attempts = 0;    //!< run attempts made (retries included)
    bool fromCheckpoint = false; //!< filled from the resume journal
};

/** When a cell's run throws, what does the sweep do? */
enum class FailureMode : std::uint8_t
{
    FailFast,  //!< stop claiming cells, drain, rethrow first error
    KeepGoing, //!< record the failure, complete every other cell
};

/** Failure handling for one sweep. */
struct FailurePolicy
{
    FailureMode mode = FailureMode::FailFast;

    /**
     * Extra attempts per failing cell (0 = none).  Intended for
     * transient I/O faults; every error kind is retried, because a
     * deterministic failure simply fails identically N more times
     * and is then recorded.
     */
    int maxRetries = 0;

    /**
     * Sleep before retry attempt k of a cell: backoffMs * 2^(k-1)
     * milliseconds, slept through SweepOptions::clock.  0 disables
     * sleeping; tests that want a nonzero schedule inject a
     * ManualClock and assert the recorded sleeps instead of waiting.
     */
    int backoffMs = 0;
};

/**
 * Live-progress snapshot passed to SweepOptions::tick after each
 * completed cell.  Unlike the plain progress callback it carries
 * enough to render an ETA line: elapsed host time and the retry
 * count so far.
 */
struct SweepTick
{
    std::size_t done = 0;       //!< cells finished (checkpoint incl.)
    std::size_t total = 0;      //!< cells in the sweep
    std::uint64_t elapsedNs = 0; //!< wall time since run() started
    std::uint64_t retries = 0;  //!< retry attempts made so far
};

/** Options controlling a SweepEngine. */
struct SweepOptions
{
    /**
     * Worker threads.  0 = automatic: the FETCHSIM_THREADS
     * environment variable if set, else the hardware concurrency.
     */
    int threads = 0;

    /**
     * Called after each run completes, with the number of finished
     * runs, the total, and the just-finished result.  Invocations are
     * serialized (safe to print from) but may arrive out of plan
     * order under parallel execution.  Cells resumed from a
     * checkpoint count toward `done` but do not invoke the callback.
     */
    std::function<void(std::size_t done, std::size_t total,
                       const RunResult &result)>
        progress;

    /**
     * Richer progress callback for live status lines: called after
     * each completed cell (serialized with `progress`, same thread)
     * with done/total, elapsed wall time and the cumulative retry
     * count.  Independent of `progress`; either may be unset.
     */
    std::function<void(const SweepTick &)> tick;

    /** Failure handling (isolation, retries). */
    FailurePolicy failure;

    /**
     * Replay-cache policy for every cell (sim/session.h).  With a
     * non-Off policy the first cell for each (benchmark, layout,
     * block, input, budget) key records the dynamic stream and every
     * other cell sharing the key replays the immutable recording
     * concurrently instead of re-executing the CFG.  Counters are
     * bit-identical either way, so this is purely a host-throughput
     * knob (docs/TRACES.md quantifies it).
     */
    ReplayOptions replay;

    /**
     * Time source for retry backoff sleeps and host-stat wall clocks
     * (perf/clock.h).  Null = systemClock().  Tests inject a
     * ManualClock so backoff schedules are asserted without real
     * sleeping.
     */
    Clock *clock = nullptr;

    /**
     * Fault-injection schedule.  Defaults to FaultPlan::fromEnv(),
     * so FETCHSIM_FAULT drives end-to-end tests without code
     * changes; tests set it directly.
     */
    FaultPlan faults = FaultPlan::fromEnv();

    /**
     * JSONL checkpoint journal path; empty disables checkpointing.
     * Completed runs are appended as they finish.
     */
    std::string checkpointPath;

    /**
     * Load `checkpointPath` before running and fill cells whose
     * content key is journaled (their status reports fromCheckpoint)
     * instead of re-running them.  New completions append to the
     * same journal.  Without this flag an existing journal file is
     * truncated (a fresh sweep).
     */
    bool resume = false;
};

/** Results of one sweep, in plan-expansion order. */
struct SweepResult
{
    std::vector<RunResult> runs;

    /**
     * Per-cell outcomes, parallel to `runs` (empty only for
     * hand-assembled results).  runs[i].counters is meaningful only
     * when statuses[i].outcome == Ok.
     */
    std::vector<RunStatus> statuses;

    /**
     * Host-side cost of each cell, parallel to `runs` (empty for
     * hand-assembled results).  Cells resumed from a checkpoint or
     * never run report zeroed stats.  Nondeterministic by nature;
     * never serialized into the deterministic report outputs.
     */
    std::vector<HostStats> host;

    /** Wall time of the whole sweep (run() entry to exit). */
    std::uint64_t wallNs = 0;

    /** Process peak RSS sampled when the sweep finished (bytes). */
    std::uint64_t peakRssBytes = 0;

    /** True when a stop request drained the sweep early. */
    bool stopped = false;

    /** True when cell @p index holds valid counters. */
    bool cellOk(std::size_t index) const;

    /** True when every cell completed Ok and nothing was skipped. */
    bool allOk() const;

    /** Number of cells with the given outcome. */
    std::size_t countWith(RunOutcome outcome) const;

    /** Indices of failed cells, in plan order. */
    std::vector<std::size_t> failedCells() const;

    /**
     * Runs matching a config predicate, in plan order.  Only Ok
     * cells are returned: a failed or skipped cell has no counters
     * and must not contaminate aggregates.
     */
    std::vector<RunResult>
    where(const std::function<bool(const RunConfig &)> &pred) const;

    /** Harmonic-mean aggregation over runs matching @p pred. */
    SuiteResult
    suiteWhere(const std::function<bool(const RunConfig &)> &pred) const;

    /** Aggregation over one (machine, scheme) cell. */
    SuiteResult suite(MachineModel machine, SchemeKind scheme) const;

    /** Aggregation over one (machine, scheme, layout) cell. */
    SuiteResult suite(MachineModel machine, SchemeKind scheme,
                      LayoutKind layout) const;

    /**
     * The unique Ok run matching @p pred; throws
     * SimException(ErrorKind::Config) when none matches.  (Use
     * where() when several may, tryFind() to branch without
     * exceptions.)
     */
    const RunResult &
    find(const std::function<bool(const RunConfig &)> &pred) const;

    /** The first Ok run matching @p pred, or nullptr. */
    const RunResult *
    tryFind(const std::function<bool(const RunConfig &)> &pred) const;
};

/** @name Cooperative sweep interruption
 * A stop request makes every running SweepEngine drain gracefully:
 * workers finish (and checkpoint) their in-flight runs, unclaimed
 * cells are marked Skipped, and run() returns with
 * SweepResult::stopped set.  installSweepSigintHandler() routes
 * SIGINT here, which is how `fetchsim_cli report` turns ^C into a
 * resumable checkpoint instead of a lost grid.
 */
///@{
void requestSweepStop();
bool sweepStopRequested();
void clearSweepStop();
void installSweepSigintHandler();
///@}

/**
 * Executes plans against one shared Session.
 */
class SweepEngine
{
  public:
    /**
     * @param session workload cache shared by all runs (must outlive
     *                the engine)
     * @param options thread count, progress callback, failure
     *                policy, checkpointing and fault injection
     */
    explicit SweepEngine(Session &session, SweepOptions options = {});

    /**
     * Expand @p plan and execute it.  Plan-level validation errors
     * (no benchmark, unknown names) throw SimException(Config)
     * before any run starts.
     */
    SweepResult run(const ExperimentPlan &plan);

    /**
     * Execute an explicit config list (for grids too irregular for
     * one plan -- concatenate several plans' expansions and submit
     * them as one parallel batch).
     */
    SweepResult run(const std::vector<RunConfig> &configs);

    /** The resolved worker-thread count. */
    int threads() const { return threads_; }

  private:
    Session &session_;
    SweepOptions options_;
    int threads_;
};

/**
 * Harmonic-mean aggregation of a run list into a SuiteResult
 * (computed from any run set, however it was produced).
 */
SuiteResult makeSuite(std::vector<RunResult> runs);

} // namespace fetchsim

#endif // FETCHSIM_SIM_SWEEP_H_
