/**
 * @file
 * SweepEngine: parallel, deterministic execution of experiment plans.
 *
 * Experiment points are embarrassingly parallel -- each run reads a
 * shared immutable Workload and keeps all mutable state (processor,
 * caches, predictors, behaviour RNG streams) private -- so a sweep
 * scales with cores.  The engine executes the expanded configs of an
 * ExperimentPlan on an N-worker thread pool and merges results *by
 * plan index*, which makes the output order-stable and bit-identical
 * whether the sweep runs on 1 thread or 64.
 *
 * Determinism contract: for a fixed plan, SweepResult::runs[i] is the
 * same RunResult (identical counters, not merely close) for any
 * thread count, because runs never share mutable state and the merge
 * position is the plan index, never the completion order.
 */

#ifndef FETCHSIM_SIM_SWEEP_H_
#define FETCHSIM_SIM_SWEEP_H_

#include <functional>
#include <vector>

#include "sim/plan.h"
#include "sim/session.h"

namespace fetchsim
{

/** Options controlling a SweepEngine. */
struct SweepOptions
{
    /**
     * Worker threads.  0 = automatic: the FETCHSIM_THREADS
     * environment variable if set, else the hardware concurrency.
     */
    int threads = 0;

    /**
     * Called after each run completes, with the number of finished
     * runs, the total, and the just-finished result.  Invocations are
     * serialized (safe to print from) but may arrive out of plan
     * order under parallel execution.
     */
    std::function<void(std::size_t done, std::size_t total,
                       const RunResult &result)>
        progress;
};

/** Results of one sweep, in plan-expansion order. */
struct SweepResult
{
    std::vector<RunResult> runs;

    /** Runs matching a config predicate, in plan order. */
    std::vector<RunResult>
    where(const std::function<bool(const RunConfig &)> &pred) const;

    /** Harmonic-mean aggregation over runs matching @p pred. */
    SuiteResult
    suiteWhere(const std::function<bool(const RunConfig &)> &pred) const;

    /** Aggregation over one (machine, scheme) cell. */
    SuiteResult suite(MachineModel machine, SchemeKind scheme) const;

    /** Aggregation over one (machine, scheme, layout) cell. */
    SuiteResult suite(MachineModel machine, SchemeKind scheme,
                      LayoutKind layout) const;

    /**
     * The unique run matching @p pred; fatal if none matches.  (Use
     * where() when several may.)
     */
    const RunResult &
    find(const std::function<bool(const RunConfig &)> &pred) const;
};

/**
 * Executes plans against one shared Session.
 */
class SweepEngine
{
  public:
    /**
     * @param session workload cache shared by all runs (must outlive
     *                the engine)
     * @param options thread count and progress callback
     */
    explicit SweepEngine(Session &session, SweepOptions options = {});

    /** Expand @p plan and execute it. */
    SweepResult run(const ExperimentPlan &plan);

    /**
     * Execute an explicit config list (for grids too irregular for
     * one plan -- concatenate several plans' expansions and submit
     * them as one parallel batch).
     */
    SweepResult run(const std::vector<RunConfig> &configs);

    /** The resolved worker-thread count. */
    int threads() const { return threads_; }

  private:
    Session &session_;
    SweepOptions options_;
    int threads_;
};

/**
 * Harmonic-mean aggregation of a run list (the SuiteResult the
 * deprecated runSuite() returned, computed from any run set).
 */
SuiteResult makeSuite(std::vector<RunResult> runs);

} // namespace fetchsim

#endif // FETCHSIM_SIM_SWEEP_H_
