/**
 * @file
 * Sweep checkpointing: a JSONL journal of completed runs.
 *
 * A long sweep (the full report grid is several hundred cells) must
 * survive interruption -- SIGINT, a crash, a power cut -- without
 * redoing finished work.  The mechanism is an append-only journal:
 * every completed run appends one self-contained JSON line
 *
 * @code
 *   {"key":"1f3a...","cycles":...,"retired":...,...,"stops":[...]}
 * @endcode
 *
 * keyed by runKey(), a 64-bit FNV-1a content hash over the workload
 * seed and every RunConfig field that can change the counters
 * (including the *resolved* retirement budget, so a journal written
 * under one FETCHSIM_DYN_INSTS never satisfies a sweep run under
 * another).  On --resume the journal is loaded into a key->counters
 * map and cells whose key is present are filled without running.
 *
 * Why this is safe to resume from: Session::run is bit-deterministic
 * for a fixed RunConfig (sim/session.h), so journaled counters are
 * exactly the counters a re-run would produce, and a resumed sweep's
 * output -- including a byte-identical docs/RESULTS.md -- matches an
 * uninterrupted one.  Each line is written under a lock and flushed
 * whole; a torn final line from a hard kill is detected and skipped
 * on load (the affected cell simply re-runs).
 */

#ifndef FETCHSIM_SIM_CHECKPOINT_H_
#define FETCHSIM_SIM_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>

#include "core/error.h"
#include "sim/experiment.h"

namespace fetchsim
{

/**
 * Content hash identifying one run: FNV-1a over the workload seed
 * (looked up from the benchmark name; 0 when unknown) and every
 * counter-affecting RunConfig field.  maxRetired is hashed in its
 * resolved form (0 becomes defaultDynInsts()), so journals are only
 * reused at the budget they were written under.
 */
std::uint64_t runKey(const RunConfig &config);

/** runKey() rendered as fixed-width lower-case hex. */
std::string runKeyHex(std::uint64_t key);

/** Serialize one journal line (no trailing newline). */
std::string checkpointLine(std::uint64_t key, const RunCounters &c);

/**
 * Parse one journal line.  Returns the (key, counters) pair or a
 * structured Io error describing why the line is unusable (torn
 * write, wrong field count, non-numeric payload).
 */
Expected<std::pair<std::uint64_t, RunCounters>>
parseCheckpointLine(const std::string &line);

/**
 * Load a journal into a key->counters map.  A missing file is an
 * empty (successful) load -- resuming a sweep that never started is
 * a no-op, not an error.  Unparseable lines are skipped with a
 * warn(); only an unreadable file is an Io error.
 */
Expected<std::map<std::uint64_t, RunCounters>>
loadCheckpoint(const std::string &path);

/**
 * Append-only, thread-safe journal writer.  record() serializes the
 * line under an internal mutex and flushes, so concurrent sweep
 * workers interleave whole lines and an interrupt loses at most the
 * line being written.
 */
class CheckpointJournal
{
  public:
    /**
     * Open @p path for appending (@p append true, the resume case)
     * or truncating (false, a fresh sweep).  Throws
     * SimException(ErrorKind::Io) when the file cannot be opened.
     */
    CheckpointJournal(const std::string &path, bool append);
    ~CheckpointJournal();

    CheckpointJournal(const CheckpointJournal &) = delete;
    CheckpointJournal &operator=(const CheckpointJournal &) = delete;

    /**
     * Append one completed run.  A write failure disables the
     * journal with a warn() instead of throwing: losing resumability
     * must never take down the sweep that checkpointing exists to
     * protect.
     */
    void record(std::uint64_t key, const RunCounters &counters);

    /** False after a write failure disabled the journal. */
    bool healthy() const { return healthy_; }

    /** Lines successfully appended. */
    std::uint64_t recorded() const { return recorded_; }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::mutex mutex_;
    int fd_ = -1;
    bool healthy_ = true;
    std::uint64_t recorded_ = 0;
};

} // namespace fetchsim

#endif // FETCHSIM_SIM_CHECKPOINT_H_
