/**
 * @file
 * SweepService: a long-lived daemon serving experiment-plan jobs over
 * a local socket, with a shared Session and a content-addressed
 * result cache.
 *
 * One-shot `fetchsim_cli sweep` pays the whole cost of its grid every
 * invocation.  The service amortizes that cost across *clients*: a
 * persistent process owns one Session (so workloads are prepared once
 * and the dynamic-trace replay cache is shared by every job, see
 * docs/TRACES.md) and one ResultCache (sim/result_cache.h, so a cell
 * simulated for any job is never simulated again -- not in this job,
 * not in a job submitted tomorrow).  Clients talk HTTP/1.1 + JSON
 * over an AF_UNIX stream socket; docs/SERVICE.md is the full protocol
 * reference.
 *
 * Execution model:
 *  - Submitted plans expand to cells exactly like `sweep` (same
 *    ExperimentPlan, same row-major order), so a job's result
 *    document is byte-identical to the one-shot `sweep --json`
 *    output for the same plan.
 *  - Cells from all jobs feed one priority queue drained by an
 *    N-worker pool; higher `priority` first, FIFO within a priority,
 *    plan order within a job.  Queue admission is bounded
 *    (ServiceOptions::maxQueuedCells): a submission that would
 *    overflow is rejected with 503 -- backpressure, not buffering.
 *  - Each cell resolves through the ResultCache first (single-flight:
 *    concurrent jobs racing on one key simulate it once); misses run
 *    on the shared Session and publish under the cell's runKey()
 *    content hash.
 *  - Jobs are cancellable (POST .../cancel): cells not yet claimed
 *    are skipped; the in-flight cell finishes (and is cached -- work
 *    done is never thrown away).
 *  - drain() -- wired to SIGTERM by the CLI -- stops accepting
 *    connections, skips every unclaimed cell, finishes and journals
 *    in-flight cells, wakes every long-poll waiter with a terminal
 *    state, and leaves the result-cache journal resumable: a service
 *    restarted on the same journal serves the drained cells from
 *    cache.
 *
 * Threading: one acceptor thread, one short-lived thread per
 * connection (requests are single-shot, `Connection: close`), N
 * simulation workers.  All shared state is guarded by one service
 * mutex; simulation itself runs outside it.
 */

#ifndef FETCHSIM_SIM_SERVICE_H_
#define FETCHSIM_SIM_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "core/error.h"
#include "perf/profiler.h"
#include "sim/result_cache.h"
#include "sim/sweep.h"
#include "stats/json_parse.h"
#include "stats/metrics.h"

namespace fetchsim
{

/** Lifecycle states of one submitted job (docs/SERVICE.md). */
enum class JobState : std::uint8_t
{
    Queued,    //!< accepted; no cell claimed yet
    Running,   //!< at least one cell claimed by a worker
    Done,      //!< every cell accounted (failures included)
    Cancelled, //!< cancel requested; unclaimed cells were skipped
    Drained,   //!< service drained before the job finished
};

/** Display name of a job state ("queued", "running", ...). */
const char *jobStateName(JobState state);

/** Options controlling one SweepService. */
struct ServiceOptions
{
    /**
     * Filesystem path of the AF_UNIX listening socket.  A stale
     * socket file with no listener behind it is replaced; a live one
     * makes start() throw (one service per path).
     */
    std::string socketPath;

    /**
     * Simulation worker threads.  0 = automatic, resolved exactly
     * like SweepOptions::threads (FETCHSIM_THREADS, else hardware
     * concurrency).
     */
    int threads = 0;

    /**
     * Backpressure bound: the maximum number of cells queued (not
     * yet claimed by a worker) across all jobs.  A submission whose
     * cells would not fit is rejected outright with 503 rather than
     * queued -- bounded memory, and the client knows immediately.
     */
    std::size_t maxQueuedCells = 4096;

    /**
     * Result-cache configuration (journal path, entry budget).  The
     * journal makes the service resumable across restarts.
     */
    ResultCacheOptions resultCache;

    /**
     * Replay-cache policy shared by every job (sim/session.h); the
     * same stream recorded for one job replays for all of them.
     */
    ReplayOptions replay;
};

/** Aggregate counters for one service (see also ResultCacheStats). */
struct ServiceStats
{
    std::uint64_t jobsSubmitted = 0; //!< accepted submissions
    std::uint64_t jobsRejected = 0;  //!< submissions refused (503)
    std::uint64_t jobsCompleted = 0; //!< jobs reaching Done
    std::uint64_t jobsCancelled = 0; //!< jobs reaching Cancelled
    std::uint64_t cellsSimulated = 0;   //!< cells run on the Session
    std::uint64_t cellsCacheServed = 0; //!< cells served by the cache
    std::uint64_t cellsFailed = 0;      //!< cells whose run threw
    std::uint64_t cellsSkipped = 0; //!< cells skipped (cancel/drain)
    std::uint64_t queuedCells = 0;  //!< cells currently queued
    std::uint64_t requests = 0;     //!< HTTP requests handled
};

/**
 * Nearest-rank percentile summary of one latency sample set, in
 * microseconds.  All zeros when no samples were recorded yet.
 */
struct LatencySummary
{
    std::uint64_t count = 0; //!< samples summarized
    std::uint64_t p50Us = 0; //!< median (nearest-rank)
    std::uint64_t p95Us = 0; //!< 95th percentile (nearest-rank)
    std::uint64_t maxUs = 0; //!< largest sample
};

/** One job's externally visible progress snapshot. */
struct JobSnapshot
{
    std::uint64_t id = 0;     //!< job id (assigned at submission)
    JobState state = JobState::Queued; //!< lifecycle state
    int priority = 0;         //!< scheduling priority (higher first)
    std::size_t cells = 0;    //!< cells in the job's plan
    std::size_t done = 0;     //!< cells accounted so far
    std::size_t cacheHits = 0;  //!< cells served from the cache
    std::size_t simulated = 0;  //!< cells simulated for this job
    std::size_t failed = 0;     //!< cells whose run threw
    std::size_t skipped = 0;    //!< cells skipped (cancel/drain)
    bool cancelRequested = false; //!< cancel() was called on the job
    std::string traceId;      //!< hex trace id (assigned at submission)
    LatencySummary queueWait; //!< enqueue -> worker-claim latency
    LatencySummary cell;      //!< worker-claim -> accounted latency
};

/**
 * The sweep service: socket server, priority job queue, worker pool,
 * shared Session + ResultCache.
 *
 * Typical use (the CLI's `serve` command):
 * @code
 *   SweepService service(options);
 *   service.start();
 *   while (!serviceStopRequested() && !service.shutdownRequested())
 *       ...sleep...
 *   service.drain();
 * @endcode
 * Tests drive the same object through the in-process API (submit(),
 * jobSnapshot(), cancel()) and through real socket clients
 * (serviceRequest()).
 */
class SweepService
{
  public:
    /**
     * Configure the service and open the result cache.  Throws
     * SimException(ErrorKind::Io) when the result-cache journal
     * exists but cannot be read or opened for appending.  No threads
     * or sockets exist until start().
     */
    explicit SweepService(ServiceOptions options);

    /** Drains (if still running) and removes the socket file. */
    ~SweepService();

    SweepService(const SweepService &) = delete;
    SweepService &operator=(const SweepService &) = delete;

    /**
     * Bind the socket and spawn the acceptor and worker threads.
     * A stale socket file (no listener answering) is replaced.
     * Throws SimException(ErrorKind::Io) when the socket cannot be
     * bound, including when another live service owns the path.
     */
    void start();

    /**
     * Graceful shutdown: close the listener, skip every unclaimed
     * cell, let in-flight cells finish (and journal), finalize every
     * job, wake all waiters, join all threads.  Idempotent; called
     * by the destructor if the CLI did not.
     */
    void drain();

    /** True once drain() has begun. */
    bool draining() const;

    /**
     * Ask the owning loop to drain (used by the `/v1/shutdown`
     * endpoint, which must not join the connection thread it runs
     * on).  The CLI's serve loop polls shutdownRequested().
     */
    void requestShutdown();

    /** True once requestShutdown() was called. */
    bool shutdownRequested() const;

    /**
     * Submit a job: expand and validate nothing here -- @p configs
     * is the already expanded plan (use planConfigsFromJson() or
     * ExperimentPlan::expand()).  Returns the job id, or a
     * structured error when admission fails: Config for an empty
     * plan, Io ("queue full", the 503 backpressure signal) when the
     * cells would overflow ServiceOptions::maxQueuedCells or the
     * service is draining.
     */
    Expected<std::uint64_t> submit(std::vector<RunConfig> configs,
                                   int priority = 0);

    /**
     * Request cancellation of @p job: unclaimed cells are skipped
     * (the in-flight cell finishes).  Returns false when the job id
     * is unknown or the job is already terminal.
     */
    bool cancel(std::uint64_t job);

    /**
     * Snapshot @p job's progress.  Returns a Config error for an
     * unknown id.  With @p wait true, blocks until the job reaches a
     * terminal state (Done/Cancelled/Drained).
     */
    Expected<JobSnapshot> jobSnapshot(std::uint64_t job,
                                      bool wait = false) const;

    /** Snapshots of every job, in submission order. */
    std::vector<JobSnapshot> jobs() const;

    /**
     * The completed job's result document -- the exact bytes
     * `fetchsim_cli sweep --json` would emit for the same plan
     * (sim/report.h writeRunsJson).  Returns a Config error for an
     * unknown id and an Io error ("job not finished") for a
     * non-terminal job.
     */
    Expected<std::string> jobResult(std::uint64_t job) const;

    /** Aggregate service counters. */
    ServiceStats stats() const;

    /**
     * The `/metrics` document: a MetricRegistry text dump combining
     * service.* counters and gauges, the request/queue/simulation
     * latency histograms, result_cache.*
     * (ResultCache::exportMetrics), replay.*
     * (Session::exportReplayMetrics) and host.*
     * (exportProcessMetrics).
     */
    std::string metricsText() const;

    /**
     * The same registry as metricsText() in Prometheus text
     * exposition format (MetricRegistry::formatPrometheus), served
     * from `/metrics?format=prometheus`.
     */
    std::string metricsPrometheus() const;

    /**
     * The completed or in-flight job's span timeline as
     * Chrome-trace/Perfetto JSON (perf/trace_export.h): one
     * queue-wait and one cell-claim span per claimed cell, with
     * nested simulate / cache-serve phases and the final
     * result-render, on one track per worker.  Returns a Config
     * error for an unknown id.  Served from `GET /v1/jobs/ID/trace`.
     */
    Expected<std::string> jobTrace(std::uint64_t job) const;

    /** The resolved worker-thread count. */
    int threads() const { return threads_; }

    /** The listening socket path. */
    const std::string &socketPath() const
    {
        return options_.socketPath;
    }

    /** The shared session (testing hook). */
    Session &session() { return session_; }

    /** The shared result cache (testing hook). */
    ResultCache &resultCache() { return cache_; }

  private:
    /** One queued unit of work: one cell of one job. */
    struct Unit
    {
        int priority = 0;        //!< job priority (higher first)
        std::uint64_t job = 0;   //!< job id (lower = earlier, FIFO)
        std::size_t cell = 0;    //!< plan index within the job
        std::uint64_t enqueueNs = 0; //!< queue-wait span start
    };

    /** Priority order: priority desc, job asc, cell asc. */
    struct UnitOrder
    {
        bool operator()(const Unit &a, const Unit &b) const
        {
            if (a.priority != b.priority)
                return a.priority < b.priority;
            if (a.job != b.job)
                return a.job > b.job;
            return a.cell > b.cell;
        }
    };

    /** Everything the service knows about one job. */
    struct Job
    {
        std::uint64_t id = 0;
        int priority = 0;
        JobState state = JobState::Queued;
        bool cancelRequested = false;
        std::vector<RunConfig> configs;
        std::vector<std::uint64_t> keys;
        std::vector<RunResult> runs;
        std::vector<RunStatus> statuses;
        std::size_t done = 0;
        std::size_t cacheHits = 0;
        std::size_t simulated = 0;
        std::size_t failed = 0;
        std::size_t skipped = 0;
        std::string resultJson; //!< built once at completion
        std::string traceId;    //!< hex trace id (submission time)
        std::vector<PerfEvent> spans; //!< per-job span timeline
        std::uint64_t spanSeq = 0;    //!< next span sequence number
        std::vector<std::uint64_t> queueWaitUs; //!< per-cell samples
        std::vector<std::uint64_t> cellUs;      //!< per-cell samples
    };

    void workerLoop(std::uint32_t worker);
    void acceptLoop();
    void handleConnection(int fd);
    void runCell(Job &job, std::size_t cell, std::uint32_t worker);
    void accountCell(Job &job, std::size_t cell, RunOutcome outcome,
                     const SimError &error, bool cache_hit,
                     std::uint32_t worker, std::uint64_t claim_ns,
                     std::vector<PerfEvent> spans);
    void finalizeJobLocked(Job &job, std::uint32_t worker);
    void exportMetrics(MetricRegistry &registry) const;
    JobSnapshot snapshotLocked(const Job &job) const;
    bool allTerminalLocked() const;

    ServiceOptions options_;
    int threads_;
    Session session_;
    ResultCache cache_;

    mutable std::mutex mutex_;
    std::condition_variable work_cv_;  //!< queue/push, drain, stop
    mutable std::condition_variable job_cv_; //!< job state changes
    std::priority_queue<Unit, std::vector<Unit>, UnitOrder> queue_;
    std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
    std::uint64_t next_job_id_ = 1;
    ServiceStats stats_;
    /**
     * Service-side latency histograms (request latency, queue wait,
     * per-cell simulation), guarded by mutex_ and merged into each
     * /metrics scrape's registry.  Shared latencyBucketBoundsUs()
     * buckets, so shards of a future multi-process deployment merge.
     */
    MetricRegistry latency_metrics_;
    std::atomic<std::uint64_t> next_request_id_{0};

    std::atomic<bool> draining_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> shutdown_requested_{false};
    std::mutex drain_mutex_; //!< serializes drain() callers
    bool started_ = false;
    bool drained_ = false;   //!< guarded by drain_mutex_
    int listen_fd_ = -1;
    std::uint64_t start_ns_ = 0;
    std::thread acceptor_;
    std::vector<std::thread> workers_;
    std::atomic<int> active_connections_{0};
    mutable std::mutex conn_mutex_;
    std::condition_variable conn_cv_; //!< active_connections_ -> 0
};

/**
 * @name Service process signals
 * installServiceSignalHandlers() routes SIGTERM and SIGINT to a
 * cooperative stop flag the serve loop polls, which is how
 * `fetchsim_cli serve` turns SIGTERM into a graceful drain.
 */
///@{
void installServiceSignalHandlers();
bool serviceStopRequested();
void clearServiceStop();
///@}

/**
 * Expand a submission request object into the plan's RunConfig list.
 *
 * Request schema (docs/SERVICE.md): `benchmarks` (array of strings,
 * required), `machines` / `schemes` / `layouts` (arrays of strings;
 * defaults: all machines, the paper schemes, unordered), `insts`
 * (number, 0 = default budget).  Unknown names and malformed shapes
 * return Protocol errors; plan validation failures return Config
 * errors -- the HTTP layer maps them to 400 and 422.
 */
Expected<std::vector<RunConfig>>
planConfigsFromJson(const JsonValue &request);

/**
 * Serialize a submission request body for POST /v1/jobs from
 * name lists (the `submit` client's half of planConfigsFromJson()).
 * Empty vectors omit the field, selecting the server-side default.
 */
std::string planRequestJson(const std::vector<std::string> &benchmarks,
                            const std::vector<std::string> &machines,
                            const std::vector<std::string> &schemes,
                            const std::vector<std::string> &layouts,
                            std::uint64_t insts, int priority);

/** One parsed HTTP response from serviceRequest(). */
struct ServiceResponse
{
    int status = 0;          //!< HTTP status code
    std::string contentType; //!< Content-Type header value
    std::string body;        //!< response body, verbatim
};

/**
 * Single-shot HTTP client for the service socket: connect to
 * @p socket_path, send one @p method @p target request with @p body,
 * and return the parsed response.  Throws SimException(Io) when the
 * socket cannot be reached and SimException(Protocol) when the
 * response cannot be parsed.  This is the transport behind
 * `fetchsim_cli submit` and the end-to-end tests.
 */
ServiceResponse serviceRequest(const std::string &socket_path,
                               const std::string &method,
                               const std::string &target,
                               const std::string &body = "");

} // namespace fetchsim

#endif // FETCHSIM_SIM_SERVICE_H_
