/**
 * @file
 * ExperimentPlan: a builder that expands configuration grids.
 *
 * Every figure and table in the paper is a cross product -- benchmarks
 * x machines x schemes x layouts, sometimes with per-point overrides.
 * An ExperimentPlan describes that grid declaratively and expands it
 * into a flat, deterministically ordered vector of RunConfigs that a
 * SweepEngine can execute in parallel:
 *
 * @code
 *   ExperimentPlan plan;
 *   plan.benchmarks(integerNames())
 *       .machines({MachineModel::P14, MachineModel::P18})
 *       .schemes({SchemeKind::Sequential, SchemeKind::Perfect})
 *       .maxRetired(20000);
 *   std::vector<RunConfig> grid = plan.expand(); // 2*2*9 configs
 * @endcode
 *
 * Expansion order is row-major over (machine, scheme, layout, cbImpl,
 * benchmark) with the benchmark axis innermost, so the runs belonging
 * to one suite aggregation cell are contiguous.  Precedence, lowest
 * to highest: proto() fields, axis values, then override() functors
 * in registration order.
 */

#ifndef FETCHSIM_SIM_PLAN_H_
#define FETCHSIM_SIM_PLAN_H_

#include <functional>
#include <string>
#include <vector>

#include "core/error.h"
#include "sim/experiment.h"

namespace fetchsim
{

class ExperimentPlan
{
  public:
    /** Mutator applied to each expanded config (highest precedence). */
    using Override = std::function<void(RunConfig &)>;

    ExperimentPlan() = default;

    /** Base config copied into every grid point (lowest precedence). */
    ExperimentPlan &proto(const RunConfig &base);

    /** @name Axes
     * Setting an axis replaces any previous value for that axis; an
     * unset axis contributes the proto's field unchanged.
     */
    ///@{
    ExperimentPlan &benchmarks(std::vector<std::string> names);
    ExperimentPlan &benchmark(const std::string &name);
    ExperimentPlan &machines(std::vector<MachineModel> machines);
    ExperimentPlan &machine(MachineModel machine);
    ExperimentPlan &schemes(std::vector<SchemeKind> schemes);
    ExperimentPlan &scheme(SchemeKind scheme);
    ExperimentPlan &layouts(std::vector<LayoutKind> layouts);
    ExperimentPlan &layout(LayoutKind layout);
    ExperimentPlan &
    cbImpls(std::vector<CollapsingBufferFetch::Impl> impls);
    ExperimentPlan &cbImpl(CollapsingBufferFetch::Impl impl);
    ///@}

    /** Dynamic-instruction budget for every point (0 = default). */
    ExperimentPlan &maxRetired(std::uint64_t budget);

    /** Executor input id for every point. */
    ExperimentPlan &input(int input_id);

    /**
     * Register a mutator run on every expanded config, after proto
     * and axis fields are applied.  Multiple overrides run in
     * registration order, so later ones win on conflict.
     */
    ExperimentPlan &override(Override fn);

    /** Number of configs expand() will produce. */
    std::size_t size() const;

    /**
     * Every violation in the plan, as structured Config errors
     * (empty = valid): a missing benchmark axis, unknown benchmark
     * names, bad input ids.  Collects ALL problems so a sweep driver
     * can report the whole grid's damage before running anything.
     */
    std::vector<SimError> validate() const;

    /**
     * Expand the grid.  Deterministic: same plan, same vector.
     * Throws SimException(Config) listing every validate() violation
     * when the plan is invalid.
     */
    std::vector<RunConfig> expand() const;

  private:
    RunConfig proto_;
    std::vector<std::string> benchmarks_;
    std::vector<MachineModel> machines_;
    std::vector<SchemeKind> schemes_;
    std::vector<LayoutKind> layouts_;
    std::vector<CollapsingBufferFetch::Impl> cb_impls_;
    std::vector<Override> overrides_;
};

} // namespace fetchsim

#endif // FETCHSIM_SIM_PLAN_H_
