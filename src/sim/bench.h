/**
 * @file
 * Perf-regression bench harness: pinned grid, repeated runs,
 * median±MAD statistics, machine-readable BENCH output and baseline
 * comparison.
 *
 * The harness answers one question reproducibly: "did the simulator
 * get slower?"  It runs a pinned benchmark grid (every fetch scheme
 * over representative workloads and machines) N times through the
 * ordinary Session/SweepEngine path, summarizes each cell's host
 * throughput as median and median-absolute-deviation of simulated
 * cycles per second (robust against scheduler noise, unlike mean and
 * stddev), and writes a BENCH_sweep.json document.  A committed
 * baseline of the same schema can then gate changes:
 * findBenchRegressions() flags every cell whose current median
 * throughput dropped more than a threshold below the baseline, and
 * `fetchsim_cli bench --baseline` / `scripts/run_bench.sh --check`
 * exit non-zero when any cell regressed.
 *
 * Baselines are machine-specific (they record absolute host
 * throughput); regenerate them on the machine that checks them.
 */

#ifndef FETCHSIM_SIM_BENCH_H_
#define FETCHSIM_SIM_BENCH_H_

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "core/error.h"
#include "sim/sweep.h"

namespace fetchsim
{

/** Options for runBench(). */
struct BenchOptions
{
    /** Measured repetitions of the whole grid (median over these). */
    int iterations = 5;

    /**
     * Sweep worker threads per iteration.  1 (the default) measures
     * single-worker throughput, which is the stable quantity for
     * regression gating; raise it to measure scaling instead.
     */
    int threads = 1;

    /** Retired-instruction budget per run; 0 = defaultDynInsts(). */
    std::uint64_t dynInsts = 0;

    /**
     * Schema-validation mode: one iteration at a small fixed budget
     * (kBenchSmokeInsts).  Numbers are meaningless; the output file
     * is structurally complete.  Used by CI on every PR.
     */
    bool smoke = false;

    /** Time source (null = systemClock()). */
    Clock *clock = nullptr;

    /** Called after each completed iteration (1-based, total). */
    std::function<void(int iteration, int total)> progress;

    /**
     * Replay-cache policy for the measured sweeps (sim/session.h).
     * Traces are recorded during the preparation phase -- alongside
     * workload generation -- so recording cost never pollutes the
     * measured samples; the policy is echoed in the BENCH JSON so
     * replay-on and replay-off documents are distinguishable.
     */
    ReplayOptions replay;
};

/** The smoke-mode retirement budget. */
constexpr std::uint64_t kBenchSmokeInsts = 20000;

/** Per-cell bench summary. */
struct BenchCellStats
{
    RunConfig config;
    std::string id; //!< "benchmark/machine/scheme/layout"

    /** Per-iteration samples, in iteration order. */
    std::vector<double> samplesCyclesPerSec;

    double medianCyclesPerSec = 0.0;
    double madCyclesPerSec = 0.0; //!< median absolute deviation
    double medianInstsPerSec = 0.0;
    std::uint64_t medianWallNs = 0;
};

/** One full bench run (the BENCH_sweep.json document). */
struct BenchReport
{
    std::vector<BenchCellStats> cells;
    int iterations = 0;
    int threads = 0;
    std::uint64_t dynInsts = 0;    //!< resolved per-run budget
    std::uint64_t totalWallNs = 0; //!< whole harness wall time
    std::uint64_t peakRssBytes = 0;
    ReplayPolicy replay = ReplayPolicy::Off; //!< stream source used
};

/** Stable cell identifier used to match baseline entries. */
std::string benchCellId(const RunConfig &config);

/**
 * The pinned regression grid: {eqntott, compress, gcc} x {P14, P112}
 * x {sequential, collapsing, perfect, trace-cache}, unordered
 * layout, at @p dyn_insts retired instructions per run (0 =
 * defaultDynInsts()).  Pinned so BENCH documents from different
 * commits are comparable cell by cell.
 */
std::vector<RunConfig> benchGrid(std::uint64_t dyn_insts);

/** Median of @p values (0 when empty); the argument is consumed. */
double medianOf(std::vector<double> values);

/** Median absolute deviation of @p values around @p median. */
double madOf(const std::vector<double> &values, double median);

/**
 * Run the pinned grid @p options.iterations times against
 * @p session and summarize.  Workloads are prepared before the
 * first measured iteration so generation cost never pollutes the
 * simulation-throughput samples.  A failing cell throws (fail-fast):
 * a bench over a broken simulator must not produce numbers.
 */
BenchReport runBench(Session &session, const BenchOptions &options = {});

/** Serialize @p report as the BENCH_sweep.json document. */
void writeBenchJson(std::ostream &os, const BenchReport &report);

/**
 * Load the per-cell median throughput map (id ->
 * median_cycles_per_sec) from a BENCH JSON file written by
 * writeBenchJson().  This is a schema-specific reader, not a general
 * JSON parser; an unreadable file or a file without any cell entries
 * is an Io error.
 */
Expected<std::map<std::string, double>>
loadBenchBaseline(const std::string &path);

/** One cell slower than the baseline allows. */
struct BenchRegression
{
    std::string id;
    double baselineCyclesPerSec = 0.0;
    double currentCyclesPerSec = 0.0;
    double slowdownPct = 0.0; //!< 100 * (1 - current/baseline)
};

/**
 * Cells of @p report whose median throughput is more than
 * @p max_slowdown_pct percent below the baseline median.  Cells
 * missing from the baseline are ignored (new cells are not
 * regressions); baseline entries missing from the report are
 * ignored likewise.
 */
std::vector<BenchRegression>
findBenchRegressions(const BenchReport &report,
                     const std::map<std::string, double> &baseline,
                     double max_slowdown_pct);

} // namespace fetchsim

#endif // FETCHSIM_SIM_BENCH_H_
