#include "sim/plan.h"

#include "fetch/scheme_registry.h"
#include "ingest/trace_registry.h"
#include "workload/benchmark_suite.h"
#include "workload/branch_behavior.h"

namespace fetchsim
{

namespace
{

/** A name the plan may expand: suite, dynamic, or registered
 *  external trace. */
bool
knownBenchmark(const std::string &name)
{
    if (isExternalBenchmark(name))
        return ExternalTraceRegistry::instance().has(
            externalTraceName(name));
    return hasBenchmark(name);
}

} // anonymous namespace

ExperimentPlan &
ExperimentPlan::proto(const RunConfig &base)
{
    proto_ = base;
    return *this;
}

ExperimentPlan &
ExperimentPlan::benchmarks(std::vector<std::string> names)
{
    benchmarks_ = std::move(names);
    return *this;
}

ExperimentPlan &
ExperimentPlan::benchmark(const std::string &name)
{
    benchmarks_ = {name};
    return *this;
}

ExperimentPlan &
ExperimentPlan::machines(std::vector<MachineModel> machines)
{
    machines_ = std::move(machines);
    return *this;
}

ExperimentPlan &
ExperimentPlan::machine(MachineModel machine)
{
    machines_ = {machine};
    return *this;
}

ExperimentPlan &
ExperimentPlan::schemes(std::vector<SchemeKind> schemes)
{
    schemes_ = std::move(schemes);
    return *this;
}

ExperimentPlan &
ExperimentPlan::scheme(SchemeKind scheme)
{
    schemes_ = {scheme};
    return *this;
}

ExperimentPlan &
ExperimentPlan::layouts(std::vector<LayoutKind> layouts)
{
    layouts_ = std::move(layouts);
    return *this;
}

ExperimentPlan &
ExperimentPlan::layout(LayoutKind layout)
{
    layouts_ = {layout};
    return *this;
}

ExperimentPlan &
ExperimentPlan::cbImpls(std::vector<CollapsingBufferFetch::Impl> impls)
{
    cb_impls_ = std::move(impls);
    return *this;
}

ExperimentPlan &
ExperimentPlan::cbImpl(CollapsingBufferFetch::Impl impl)
{
    cb_impls_ = {impl};
    return *this;
}

ExperimentPlan &
ExperimentPlan::maxRetired(std::uint64_t budget)
{
    proto_.maxRetired = budget;
    return *this;
}

ExperimentPlan &
ExperimentPlan::input(int input_id)
{
    proto_.input = input_id;
    return *this;
}

ExperimentPlan &
ExperimentPlan::override(Override fn)
{
    overrides_.push_back(std::move(fn));
    return *this;
}

std::size_t
ExperimentPlan::size() const
{
    auto axis = [](std::size_t n) { return n ? n : 1; };
    return axis(benchmarks_.size()) * axis(machines_.size()) *
           axis(schemes_.size()) * axis(layouts_.size()) *
           axis(cb_impls_.size());
}

std::vector<SimError>
ExperimentPlan::validate() const
{
    std::vector<SimError> errors;
    if (benchmarks_.empty() && proto_.benchmark.empty()) {
        errors.push_back(SimError{
            ErrorKind::Config,
            "ExperimentPlan: no benchmark set (use .benchmarks() "
            "or a proto with a benchmark name)",
            ""});
    }
    // Validate the names the expansion will actually use: the axis
    // when set, the proto's single name otherwise.
    if (!benchmarks_.empty()) {
        for (const std::string &name : benchmarks_) {
            if (!knownBenchmark(name))
                errors.push_back(SimError{
                    ErrorKind::Config,
                    "unknown benchmark '" + name + "'",
                    "ExperimentPlan"});
        }
    } else if (!proto_.benchmark.empty() &&
               !knownBenchmark(proto_.benchmark)) {
        errors.push_back(SimError{
            ErrorKind::Config,
            "unknown benchmark '" + proto_.benchmark + "'",
            "ExperimentPlan"});
    }
    if (proto_.input < 0 || proto_.input > kEvalInput) {
        errors.push_back(SimError{
            ErrorKind::Config,
            "input id " + std::to_string(proto_.input) +
                " out of range [0, " + std::to_string(kEvalInput) +
                "]",
            "ExperimentPlan"});
    }
    // Scheme/CB-impl compatibility comes from registry metadata: a
    // non-default collapsing-buffer implementation is meaningless on
    // schemes without that axis, so sweeping it across them would
    // silently duplicate cells.  The ubiquitous Crossbar default is
    // always accepted.  Every bad pairing is reported.
    const auto &registry = FetchSchemeRegistry::instance();
    const std::vector<SchemeKind> scheme_axis =
        schemes_.empty() ? std::vector<SchemeKind>{proto_.scheme}
                         : schemes_;
    const std::vector<CollapsingBufferFetch::Impl> impl_axis =
        cb_impls_.empty()
            ? std::vector<CollapsingBufferFetch::Impl>{proto_.cbImpl}
            : cb_impls_;
    for (SchemeKind scheme : scheme_axis) {
        const SchemeInfo &info = registry.info(scheme);
        if (info.cbImplApplies)
            continue;
        for (CollapsingBufferFetch::Impl impl : impl_axis) {
            if (impl == CollapsingBufferFetch::Impl::Crossbar)
                continue;
            errors.push_back(SimError{
                ErrorKind::Config,
                std::string("scheme '") + info.display +
                    "' does not take a collapsing-buffer "
                    "implementation (the shifter/crossbar axis "
                    "applies only to schemes with cbImplApplies "
                    "metadata)",
                "ExperimentPlan"});
        }
    }
    return errors;
}

std::vector<RunConfig>
ExperimentPlan::expand() const
{
    const std::vector<SimError> errors = validate();
    if (!errors.empty())
        throw SimException(SimError{ErrorKind::Config,
                                    formatErrors(errors), ""});

    // Unset axes contribute the proto's field: model that as a
    // single-element axis holding a sentinel meaning "keep proto".
    const std::size_t nb = benchmarks_.empty() ? 1 : benchmarks_.size();
    const std::size_t nm = machines_.empty() ? 1 : machines_.size();
    const std::size_t ns = schemes_.empty() ? 1 : schemes_.size();
    const std::size_t nl = layouts_.empty() ? 1 : layouts_.size();
    const std::size_t nc = cb_impls_.empty() ? 1 : cb_impls_.size();

    std::vector<RunConfig> configs;
    configs.reserve(nb * nm * ns * nl * nc);
    for (std::size_t m = 0; m < nm; ++m) {
        for (std::size_t s = 0; s < ns; ++s) {
            for (std::size_t l = 0; l < nl; ++l) {
                for (std::size_t c = 0; c < nc; ++c) {
                    for (std::size_t b = 0; b < nb; ++b) {
                        RunConfig config = proto_;
                        if (!machines_.empty())
                            config.machine = machines_[m];
                        if (!schemes_.empty())
                            config.scheme = schemes_[s];
                        if (!layouts_.empty())
                            config.layout = layouts_[l];
                        if (!cb_impls_.empty())
                            config.cbImpl = cb_impls_[c];
                        if (!benchmarks_.empty())
                            config.benchmark = benchmarks_[b];
                        for (const Override &fn : overrides_)
                            fn(config);
                        configs.push_back(std::move(config));
                    }
                }
            }
        }
    }
    return configs;
}

} // namespace fetchsim
