/**
 * @file
 * Structured result output: JSON and CSV serialization of runs and
 * sweeps (built on the generic writers in stats/json.h, stats/csv.h).
 *
 * The JSON document for a sweep is:
 * @code
 *   {
 *     "runs": [ { "config": {...}, "counters": {...},
 *                 "ipc": ..., "eir": ... }, ... ],
 *     "hmean_ipc": ...,     // only when every run has positive IPC
 *     "hmean_eir": ...
 *   }
 * @endcode
 * and the CSV is one row per run with a fixed header, so files from
 * different sweeps concatenate cleanly.
 */

#ifndef FETCHSIM_SIM_REPORT_H_
#define FETCHSIM_SIM_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

#include "sim/sweep.h"
#include "stats/csv.h"
#include "stats/json.h"

namespace fetchsim
{

/** Display name of a collapsing-buffer implementation. */
const char *cbImplName(CollapsingBufferFetch::Impl impl);

/** Serialize one run (config + counters + derived rates) to JSON. */
void writeRunJson(JsonWriter &json, const RunResult &result);

/** Serialize a run list as the sweep document described above. */
void writeRunsJson(std::ostream &os, const std::vector<RunResult> &runs,
                   int indent = 2);

/** The fixed CSV column set, in order. */
const std::vector<std::string> &runCsvHeader();

/** Append one run as a CSV row (header must match runCsvHeader()). */
void writeRunCsv(CsvWriter &csv, const RunResult &result);

/** Serialize a run list as a CSV table with header. */
void writeRunsCsv(std::ostream &os,
                  const std::vector<RunResult> &runs);

} // namespace fetchsim

#endif // FETCHSIM_SIM_REPORT_H_
