#include "sim/session.h"

#include "compiler/code_layout.h"
#include "compiler/function_layout.h"
#include "compiler/nop_padding.h"
#include "core/error.h"
#include "perf/profiler.h"
#include "stats/log.h"
#include "workload/benchmark_suite.h"
#include "workload/branch_behavior.h"

namespace fetchsim
{

namespace
{

/** Generate and lay out one workload (slow path, run exactly once). */
std::unique_ptr<Workload>
prepare(const std::string &benchmark, LayoutKind layout,
        std::uint64_t block_bytes)
{
    PERF_SCOPE("session.prepare");
    if (!hasBenchmark(benchmark))
        throw SimException(ErrorKind::Config,
                           "unknown benchmark '" + benchmark + "'");
    const WorkloadSpec &spec = benchmarkByName(benchmark);
    auto workload = std::make_unique<Workload>(spec);
    *workload = generateWorkload(spec);

    switch (layout) {
      case LayoutKind::Unordered:
        break;
      case LayoutKind::Reordered:
        reorderWorkload(*workload);
        break;
      case LayoutKind::PadAll:
        if (block_bytes == 0)
            throw SimException(ErrorKind::Config,
                               "pad-all layout needs a block size");
        padAll(*workload, block_bytes);
        break;
      case LayoutKind::PadTrace: {
        if (block_bytes == 0)
            throw SimException(ErrorKind::Config,
                               "pad-trace layout needs a block size");
        std::vector<Trace> traces;
        reorderWorkload(*workload, {}, {}, &traces);
        padTrace(*workload, traces, block_bytes);
        break;
      }
      case LayoutKind::ReorderedPlaced: {
        EdgeProfile profile = collectProfile(*workload);
        std::vector<Trace> traces =
            selectTraces(workload->program, profile);
        applyTraceLayout(*workload, traces);
        placeFunctions(*workload, profile);
        break;
      }
      default:
        throw SimException(ErrorKind::Internal,
                           "prepare: bad layout kind");
    }
    return workload;
}

} // anonymous namespace

std::vector<SimError>
validateRunConfig(const RunConfig &config)
{
    std::vector<SimError> errors;
    const std::string context = config.benchmark.empty()
                                    ? std::string("run config")
                                    : config.benchmark;
    if (config.benchmark.empty()) {
        errors.push_back(SimError{ErrorKind::Config,
                                  "no benchmark set", context});
    } else if (!hasBenchmark(config.benchmark)) {
        errors.push_back(SimError{
            ErrorKind::Config,
            "unknown benchmark '" + config.benchmark + "'", context});
    }
    if (config.layout >= LayoutKind::NumLayouts) {
        errors.push_back(SimError{
            ErrorKind::Config,
            "bad layout kind " +
                std::to_string(static_cast<int>(config.layout)),
            context});
    }
    if (config.input < 0 || config.input > kEvalInput) {
        errors.push_back(SimError{
            ErrorKind::Config,
            "input id " + std::to_string(config.input) +
                " out of range [0, " + std::to_string(kEvalInput) +
                "]",
            context});
    }
    if (config.btbEntriesOverride == 0) {
        errors.push_back(SimError{ErrorKind::Config,
                                  "btbEntriesOverride must be "
                                  "positive (or negative = default)",
                                  context});
    }
    if (config.windowSizeOverride == 0) {
        errors.push_back(SimError{ErrorKind::Config,
                                  "windowSizeOverride must be "
                                  "positive (or negative = default)",
                                  context});
    }
    if (config.icacheWaysOverride == 0) {
        errors.push_back(SimError{ErrorKind::Config,
                                  "icacheWaysOverride must be "
                                  "positive (or negative = default)",
                                  context});
    }
    return errors;
}

const Workload &
Session::workload(const std::string &benchmark, LayoutKind layout,
                  std::uint64_t block_bytes)
{
    // Padded layouts depend on the block size; the others do not.
    const std::uint64_t key_block =
        (layout == LayoutKind::PadAll || layout == LayoutKind::PadTrace)
            ? block_bytes
            : 0;
    const Key key{benchmark, layout, key_block};

    Entry *entry = nullptr;
    {
        std::shared_lock<std::shared_mutex> read(mutex_);
        auto it = cache_.find(key);
        if (it != cache_.end())
            entry = it->second.get();
    }
    if (!entry) {
        std::unique_lock<std::shared_mutex> write(mutex_);
        auto &slot = cache_[key];
        if (!slot)
            slot = std::make_unique<Entry>();
        entry = slot.get();
    }

    // Populate outside the map lock so concurrent requests for other
    // keys are never serialized behind a slow generation, and
    // concurrent requests for the same key each get the one prepared
    // object.
    std::call_once(entry->once, [&] {
        entry->workload = prepare(benchmark, layout, key_block);
    });
    simAssert(entry->workload != nullptr,
              "Session workload populated");
    return *entry->workload;
}

RunResult
Session::run(const RunConfig &config)
{
    return run(config, RunInstrumentation{});
}

RunResult
Session::run(const RunConfig &config, const RunInstrumentation &inst,
             std::uint64_t watchdog_cycles)
{
    PERF_SCOPE("session.run");
    const std::vector<SimError> errors = validateRunConfig(config);
    if (!errors.empty())
        throw SimException(SimError{ErrorKind::Config,
                                    formatErrors(errors), ""});

    MachineConfig cfg = makeMachine(config.machine);
    cfg.predictorKind = config.predictorKind;
    cfg.useRas = config.useRas;
    if (config.specDepthOverride >= 0)
        cfg.specDepth = config.specDepthOverride;
    if (config.btbEntriesOverride > 0)
        cfg.btbEntries = config.btbEntriesOverride;
    if (config.windowSizeOverride > 0)
        cfg.windowSize = config.windowSizeOverride;
    if (config.missPenaltyOverride >= 0)
        cfg.icacheMissPenalty = config.missPenaltyOverride;
    if (config.icacheWaysOverride > 0)
        cfg.icacheWays = config.icacheWaysOverride;

    const Workload &wl =
        workload(config.benchmark, config.layout, cfg.blockBytes);

    std::unique_ptr<FetchMechanism> mechanism;
    if (config.scheme == SchemeKind::CollapsingBuffer) {
        mechanism = std::make_unique<CollapsingBufferFetch>(
            cfg, config.cbImpl, config.cbAllowBackward);
    } else {
        mechanism = makeFetchMechanism(config.scheme, cfg);
    }

    Processor proc(wl, config.input, cfg, std::move(mechanism));
    if (inst.metrics)
        proc.attachMetrics(*inst.metrics);
    if (inst.trace)
        proc.attachTrace(*inst.trace);
    if (watchdog_cycles != 0)
        proc.setCycleLimit(watchdog_cycles);
    const std::uint64_t budget =
        config.maxRetired ? config.maxRetired : defaultDynInsts();
    proc.run(budget);

    RunResult result;
    result.config = config;
    result.counters = proc.counters();
    return result;
}

std::size_t
Session::cachedWorkloads() const
{
    std::shared_lock<std::shared_mutex> read(mutex_);
    std::size_t prepared = 0;
    for (const auto &[key, entry] : cache_)
        prepared += entry && entry->workload ? 1 : 0;
    return prepared;
}

Session &
defaultSession()
{
    static Session session;
    return session;
}

} // namespace fetchsim
