#include "sim/session.h"

#include <filesystem>

#include <unistd.h>

#include "compiler/code_layout.h"
#include "compiler/function_layout.h"
#include "compiler/nop_padding.h"
#include "core/arena.h"
#include "core/error.h"
#include "exec/executor.h"
#include "exec/trace_file.h"
#include "fetch/scheme_registry.h"
#include "ingest/trace_registry.h"
#include "perf/profiler.h"
#include "stats/log.h"
#include "workload/benchmark_suite.h"
#include "workload/branch_behavior.h"

namespace fetchsim
{

namespace
{

/** Generate and lay out one workload (slow path, run exactly once). */
std::unique_ptr<Workload>
prepare(const std::string &benchmark, LayoutKind layout,
        std::uint64_t block_bytes)
{
    PERF_SCOPE("session.prepare");
    if (!hasBenchmark(benchmark))
        throw SimException(ErrorKind::Config,
                           "unknown benchmark '" + benchmark + "'");
    const WorkloadSpec &spec = benchmarkByName(benchmark);
    auto workload = std::make_unique<Workload>(spec);
    *workload = generateWorkload(spec);

    switch (layout) {
      case LayoutKind::Unordered:
        break;
      case LayoutKind::Reordered:
        reorderWorkload(*workload);
        break;
      case LayoutKind::PadAll:
        if (block_bytes == 0)
            throw SimException(ErrorKind::Config,
                               "pad-all layout needs a block size");
        padAll(*workload, block_bytes);
        break;
      case LayoutKind::PadTrace: {
        if (block_bytes == 0)
            throw SimException(ErrorKind::Config,
                               "pad-trace layout needs a block size");
        std::vector<Trace> traces;
        reorderWorkload(*workload, {}, {}, &traces);
        padTrace(*workload, traces, block_bytes);
        break;
      }
      case LayoutKind::ReorderedPlaced: {
        EdgeProfile profile = collectProfile(*workload);
        std::vector<Trace> traces =
            selectTraces(workload->program, profile);
        applyTraceLayout(*workload, traces);
        placeFunctions(*workload, profile);
        break;
      }
      default:
        throw SimException(ErrorKind::Internal,
                           "prepare: bad layout kind");
    }
    return workload;
}

/** The block-size component of a workload/replay cache key. */
std::uint64_t
layoutKeyBlock(LayoutKind layout, std::uint64_t block_bytes)
{
    // Padded layouts depend on the block size; the others do not.
    return (layout == LayoutKind::PadAll ||
            layout == LayoutKind::PadTrace)
               ? block_bytes
               : 0;
}

/** On-disk bytes of an FSTR v2 trace of @p n records. */
constexpr std::uint64_t
spillFileBytes(std::uint64_t n)
{
    return 24 + n * 32;
}

} // anonymous namespace

const char *
replayPolicyName(ReplayPolicy policy)
{
    switch (policy) {
      case ReplayPolicy::Off:
        return "off";
      case ReplayPolicy::InMemory:
        return "mem";
      case ReplayPolicy::SpillToDisk:
        return "disk";
    }
    return "off";
}

Expected<ReplayPolicy>
parseReplayPolicy(const std::string &name)
{
    if (name == "off")
        return ReplayPolicy::Off;
    if (name == "mem")
        return ReplayPolicy::InMemory;
    if (name == "disk")
        return ReplayPolicy::SpillToDisk;
    return SimError{ErrorKind::Config,
                    "unknown replay policy: " + name +
                        " (off|mem|disk)",
                    ""};
}

std::vector<SimError>
validateRunConfig(const RunConfig &config)
{
    std::vector<SimError> errors;
    const std::string context = config.benchmark.empty()
                                    ? std::string("run config")
                                    : config.benchmark;
    if (config.benchmark.empty()) {
        errors.push_back(SimError{ErrorKind::Config,
                                  "no benchmark set", context});
    } else if (isExternalBenchmark(config.benchmark)) {
        // External traces are fixed dynamic streams: there is no CFG
        // for the layout transforms to act on.
        if (!ExternalTraceRegistry::instance().has(
                externalTraceName(config.benchmark))) {
            errors.push_back(SimError{
                ErrorKind::Config,
                "external trace '" +
                    externalTraceName(config.benchmark) +
                    "' is not registered (use --external NAME=PATH)",
                context});
        }
        if (config.layout != LayoutKind::Unordered) {
            errors.push_back(SimError{
                ErrorKind::Config,
                "external traces only support the unordered layout "
                "(the recorded stream cannot be re-laid-out)",
                context});
        }
    } else if (!hasBenchmark(config.benchmark)) {
        errors.push_back(SimError{
            ErrorKind::Config,
            "unknown benchmark '" + config.benchmark + "'", context});
    }
    if (config.layout >= LayoutKind::NumLayouts) {
        errors.push_back(SimError{
            ErrorKind::Config,
            "bad layout kind " +
                std::to_string(static_cast<int>(config.layout)),
            context});
    }
    if (config.input < 0 || config.input > kEvalInput) {
        errors.push_back(SimError{
            ErrorKind::Config,
            "input id " + std::to_string(config.input) +
                " out of range [0, " + std::to_string(kEvalInput) +
                "]",
            context});
    }
    if (config.specDepthOverride == 0) {
        // Found by the sweep fuzzer: with zero speculation depth no
        // conditional branch can ever be delivered (headroom is
        // always exhausted), so the machine wedges at the first one
        // and trips the no-progress panic instead of simulating.
        errors.push_back(SimError{ErrorKind::Config,
                                  "specDepthOverride must be "
                                  "positive (or negative = default): "
                                  "a machine with zero speculation "
                                  "depth can never fetch a "
                                  "conditional branch",
                                  context});
    }
    if (config.btbEntriesOverride == 0) {
        errors.push_back(SimError{ErrorKind::Config,
                                  "btbEntriesOverride must be "
                                  "positive (or negative = default)",
                                  context});
    }
    if (config.windowSizeOverride == 0) {
        errors.push_back(SimError{ErrorKind::Config,
                                  "windowSizeOverride must be "
                                  "positive (or negative = default)",
                                  context});
    }
    if (config.icacheWaysOverride == 0) {
        errors.push_back(SimError{ErrorKind::Config,
                                  "icacheWaysOverride must be "
                                  "positive (or negative = default)",
                                  context});
    }
    return errors;
}

Session::~Session()
{
    // Spill-directory hygiene: remove every trace file this Session
    // wrote, and the private root when we created it.  Best-effort --
    // a vanished file is not worth a throwing destructor.
    std::lock_guard<std::mutex> lock(spill_mutex_);
    std::error_code ec;
    for (const std::string &file : spill_files_)
        std::filesystem::remove(file, ec);
    if (own_spill_root_ && !spill_root_.empty())
        std::filesystem::remove(spill_root_, ec);
}

const Workload &
Session::workload(const std::string &benchmark, LayoutKind layout,
                  std::uint64_t block_bytes)
{
    const Key key{benchmark, layout,
                  layoutKeyBlock(layout, block_bytes)};

    Entry *entry = nullptr;
    {
        std::shared_lock<std::shared_mutex> read(mutex_);
        auto it = cache_.find(key);
        if (it != cache_.end())
            entry = it->second.get();
    }
    if (!entry) {
        std::unique_lock<std::shared_mutex> write(mutex_);
        auto &slot = cache_[key];
        if (!slot)
            slot = std::make_unique<Entry>();
        entry = slot.get();
    }

    // Populate outside the map lock so concurrent requests for other
    // keys are never serialized behind a slow generation, and
    // concurrent requests for the same key each get the one prepared
    // object.
    std::call_once(entry->once, [&] {
        entry->workload =
            prepare(benchmark, layout, std::get<2>(key));
    });
    simAssert(entry->workload != nullptr,
              "Session workload populated");
    return *entry->workload;
}

std::string
Session::nextSpillPath(const ReplayOptions &replay)
{
    std::lock_guard<std::mutex> lock(spill_mutex_);
    if (spill_root_.empty()) {
        std::error_code ec;
        if (!replay.spillDir.empty()) {
            spill_root_ = replay.spillDir;
            own_spill_root_ = false;
        } else {
            // One private directory per Session instance, so
            // concurrent processes (and concurrent Sessions) never
            // collide.
            static std::atomic<std::uint64_t> g_root_seq{0};
            spill_root_ =
                (std::filesystem::temp_directory_path(ec) /
                 ("fetchsim-replay-" + std::to_string(::getpid()) +
                  "-" +
                  std::to_string(g_root_seq.fetch_add(
                      1, std::memory_order_relaxed))))
                    .string();
            own_spill_root_ = true;
        }
        std::filesystem::create_directories(spill_root_, ec);
        if (ec) {
            const std::string dir = spill_root_;
            spill_root_.clear();
            throw SimException(ErrorKind::Io,
                               "replay: cannot create spill dir " +
                                   dir + ": " + ec.message());
        }
    }
    std::string path =
        spill_root_ + "/trace-" +
        std::to_string(
            spill_seq_.fetch_add(1, std::memory_order_relaxed)) +
        ".fstr";
    spill_files_.push_back(path);
    return path;
}

void
Session::recordReplay(ReplayEntry &entry, const ReplayOptions &replay,
                      const Workload &wl, int input,
                      std::uint64_t length)
{
    PERF_SCOPE("replay.record");
    std::atomic<std::uint64_t> &held =
        replay.policy == ReplayPolicy::InMemory
            ? replay_bytes_mem_
            : replay_bytes_spilled_;
    const std::uint64_t estimate =
        replay.policy == ReplayPolicy::InMemory
            ? length * DynTrace::kBytesPerInst
            : spillFileBytes(length);

    // Reserve the estimate against the size budget before recording,
    // so concurrent recordings of different keys cannot jointly
    // overshoot; trim to the actual size afterwards (the stream can
    // end early, never late).
    if (replay.budgetBytes != 0) {
        const std::uint64_t before =
            held.fetch_add(estimate, std::memory_order_relaxed);
        if (before + estimate > replay.budgetBytes) {
            held.fetch_sub(estimate, std::memory_order_relaxed);
            return; // over budget: entry stays !ready, runs go live
        }
    }

    try {
        if (replay.policy == ReplayPolicy::InMemory) {
            Executor exec(wl, input);
            entry.trace = recordStream(exec, length);
            const std::uint64_t actual = entry.trace.bytes();
            if (replay.budgetBytes != 0)
                held.fetch_sub(estimate - actual,
                               std::memory_order_relaxed);
            else
                held.fetch_add(actual, std::memory_order_relaxed);
            replay_recorded_insts_.fetch_add(
                entry.trace.size(), std::memory_order_relaxed);
            entry.ready = true;
        } else {
            const std::string path = nextSpillPath(replay);
            Executor exec(wl, input);
            const std::uint64_t written =
                recordTrace(exec, path, length);
            const std::uint64_t actual = spillFileBytes(written);
            if (replay.budgetBytes != 0)
                held.fetch_sub(estimate - actual,
                               std::memory_order_relaxed);
            else
                held.fetch_add(actual, std::memory_order_relaxed);
            replay_recorded_insts_.fetch_add(
                written, std::memory_order_relaxed);
            entry.spillPath = path;
            entry.ready = true;
        }
    } catch (const SimException &e) {
        // Recording is an optimization; a spill failure (full disk,
        // unwritable dir) must cost throughput, not the sweep.
        if (replay.budgetBytes != 0)
            held.fetch_sub(estimate, std::memory_order_relaxed);
        warn("replay: recording failed, falling back to live "
             "execution: " +
             std::string(e.what()));
    }
}

Session::ReplayEntry &
Session::replayEntry(const RunConfig &config,
                     const ReplayOptions &replay, const Workload &wl,
                     std::uint64_t key_block, std::uint64_t budget,
                     bool *recorded_here)
{
    const std::uint64_t length = budget + kReplayStreamSlack;
    const ReplayKey key{config.benchmark, config.layout, key_block,
                        config.input, length};

    ReplayEntry *entry = nullptr;
    {
        std::shared_lock<std::shared_mutex> read(replay_mutex_);
        auto it = replay_cache_.find(key);
        if (it != replay_cache_.end())
            entry = it->second.get();
    }
    if (!entry) {
        std::unique_lock<std::shared_mutex> write(replay_mutex_);
        auto &slot = replay_cache_[key];
        if (!slot)
            slot = std::make_unique<ReplayEntry>();
        entry = slot.get();
    }

    bool first = false;
    std::call_once(entry->once, [&] {
        first = true;
        recordReplay(*entry, replay, wl, config.input, length);
    });
    if (first)
        replay_misses_.fetch_add(1, std::memory_order_relaxed);
    if (recorded_here)
        *recorded_here = first;
    return *entry;
}

void
Session::prepareReplay(const RunConfig &config,
                       const ReplayOptions &replay)
{
    // An external trace already lives on disk in replayable form;
    // there is nothing to record.
    if (replay.policy == ReplayPolicy::Off ||
        isExternalBenchmark(config.benchmark))
        return;
    const std::vector<SimError> errors = validateRunConfig(config);
    if (!errors.empty())
        throw SimException(SimError{ErrorKind::Config,
                                    formatErrors(errors), ""});
    const MachineConfig cfg = makeMachine(config.machine);
    const Workload &wl =
        workload(config.benchmark, config.layout, cfg.blockBytes);
    const std::uint64_t budget =
        config.maxRetired ? config.maxRetired : defaultDynInsts();
    replayEntry(config, replay, wl,
                layoutKeyBlock(config.layout, cfg.blockBytes),
                budget);
}

RunResult
Session::run(const RunConfig &config)
{
    return run(config, RunInstrumentation{});
}

RunResult
Session::run(const RunConfig &config, const RunInstrumentation &inst,
             std::uint64_t watchdog_cycles,
             const ReplayOptions &replay, Arena *arena)
{
    PERF_SCOPE("session.run");
    // Per-run transient state (processor slabs, predictor tables,
    // mechanism storage) draws from the caller's arena when given.
    // Everything allocated from it dies before this function
    // returns, which is what makes the caller's reset() safe.
    std::pmr::memory_resource *mem =
        arena ? arena->resource() : std::pmr::get_default_resource();
    const std::vector<SimError> errors = validateRunConfig(config);
    if (!errors.empty())
        throw SimException(SimError{ErrorKind::Config,
                                    formatErrors(errors), ""});

    MachineConfig cfg = makeMachine(config.machine);
    cfg.predictorKind = config.predictorKind;
    cfg.useRas = config.useRas;
    if (config.specDepthOverride >= 0)
        cfg.specDepth = config.specDepthOverride;
    if (config.btbEntriesOverride > 0)
        cfg.btbEntries = config.btbEntriesOverride;
    if (config.windowSizeOverride > 0)
        cfg.windowSize = config.windowSizeOverride;
    if (config.missPenaltyOverride >= 0)
        cfg.icacheMissPenalty = config.missPenaltyOverride;
    if (config.icacheWaysOverride > 0)
        cfg.icacheWays = config.icacheWaysOverride;

    // External benchmark: replay the registered FSTR file directly.
    // Each run opens its own reader (runs must not share cursors),
    // and the retirement budget is clamped to the trace length so a
    // short trace ends the run instead of starving the fetch unit.
    // The replay cache is bypassed -- the file is the recording.
    if (isExternalBenchmark(config.benchmark)) {
        const ExternalTraceInfo info =
            ExternalTraceRegistry::instance()
                .find(externalTraceName(config.benchmark))
                .value();
        std::unique_ptr<FetchMechanism> ext_mechanism =
            FetchSchemeRegistry::instance().make(
                config.scheme, cfg,
                {config.cbImpl, config.cbAllowBackward, mem});
        TraceReader reader(info.path);
        std::uint64_t budget =
            config.maxRetired ? config.maxRetired : defaultDynInsts();
        if (budget > reader.count())
            budget = reader.count();
        Processor proc(reader, cfg, std::move(ext_mechanism), mem);
        if (inst.metrics)
            proc.attachMetrics(*inst.metrics);
        if (inst.trace)
            proc.attachTrace(*inst.trace);
        if (watchdog_cycles != 0)
            proc.setCycleLimit(watchdog_cycles);
        proc.run(budget);
        RunResult result;
        result.config = config;
        result.counters = proc.counters();
        return result;
    }

    const Workload &wl =
        workload(config.benchmark, config.layout, cfg.blockBytes);

    std::unique_ptr<FetchMechanism> mechanism =
        FetchSchemeRegistry::instance().make(
            config.scheme, cfg,
            {config.cbImpl, config.cbAllowBackward, mem});

    const std::uint64_t budget =
        config.maxRetired ? config.maxRetired : defaultDynInsts();

    // Stream source: a cached recording when the replay policy allows
    // it, the live Executor otherwise.  The replayed stream is the
    // exact stream the Executor would produce (with slack beyond the
    // budget so the fetch lookahead never starves), which keeps
    // replayed counters bit-identical to live ones.
    std::unique_ptr<TraceReplaySource> replay_source;
    std::unique_ptr<TraceReader> spill_reader;
    std::unique_ptr<Processor> proc;
    if (replay.policy != ReplayPolicy::Off) {
        bool recorded_here = false;
        const ReplayEntry &entry = replayEntry(
            config, replay, wl,
            layoutKeyBlock(config.layout, cfg.blockBytes), budget,
            &recorded_here);
        if (!entry.ready)
            replay_fallbacks_.fetch_add(1,
                                        std::memory_order_relaxed);
        else if (!recorded_here)
            replay_hits_.fetch_add(1, std::memory_order_relaxed);
        if (entry.ready) {
            PERF_SCOPE("replay.attach");
            if (replay.policy == ReplayPolicy::InMemory) {
                replay_source =
                    std::make_unique<TraceReplaySource>(entry.trace);
                proc = std::make_unique<Processor>(
                    *replay_source, cfg, std::move(mechanism), mem);
            } else {
                spill_reader =
                    std::make_unique<TraceReader>(entry.spillPath);
                proc = std::make_unique<Processor>(
                    *spill_reader, cfg, std::move(mechanism), mem);
            }
        }
    }
    if (!proc) {
        proc = std::make_unique<Processor>(
            wl, config.input, cfg, std::move(mechanism), mem);
    }
    if (inst.metrics)
        proc->attachMetrics(*inst.metrics);
    if (inst.trace)
        proc->attachTrace(*inst.trace);
    if (watchdog_cycles != 0)
        proc->setCycleLimit(watchdog_cycles);
    proc->run(budget);

    RunResult result;
    result.config = config;
    result.counters = proc->counters();
    return result;
}

std::size_t
Session::cachedWorkloads() const
{
    std::shared_lock<std::shared_mutex> read(mutex_);
    std::size_t prepared = 0;
    for (const auto &[key, entry] : cache_)
        prepared += entry && entry->workload ? 1 : 0;
    return prepared;
}

std::size_t
Session::cachedReplayTraces() const
{
    std::shared_lock<std::shared_mutex> read(replay_mutex_);
    std::size_t ready = 0;
    for (const auto &[key, entry] : replay_cache_)
        ready += entry && entry->ready ? 1 : 0;
    return ready;
}

ReplayStats
Session::replayStats() const
{
    ReplayStats stats;
    stats.hits = replay_hits_.load(std::memory_order_relaxed);
    stats.misses = replay_misses_.load(std::memory_order_relaxed);
    stats.fallbacks =
        replay_fallbacks_.load(std::memory_order_relaxed);
    stats.recordedInsts =
        replay_recorded_insts_.load(std::memory_order_relaxed);
    stats.bytesInMemory =
        replay_bytes_mem_.load(std::memory_order_relaxed);
    stats.bytesSpilled =
        replay_bytes_spilled_.load(std::memory_order_relaxed);
    return stats;
}

void
Session::exportReplayMetrics(MetricRegistry &registry) const
{
    const ReplayStats stats = replayStats();
    registry
        .counter("replay.hits",
                 "runs served from a cached trace recording")
        .inc(stats.hits);
    registry
        .counter("replay.misses",
                 "runs that recorded a trace (first per key)")
        .inc(stats.misses);
    registry
        .counter("replay.fallbacks",
                 "runs forced live under a non-off replay policy")
        .inc(stats.fallbacks);
    registry
        .counter("replay.recorded_insts",
                 "dynamic instructions recorded into the cache")
        .inc(stats.recordedInsts);
    // Byte occupancy is point-in-time (entries can be dropped), so
    // both export as gauges.
    registry
        .gauge("replay.bytes_in_memory",
               "DynTrace bytes held by the cache")
        .set(static_cast<std::int64_t>(stats.bytesInMemory));
    registry
        .gauge("replay.bytes_spilled",
               "FSTR spill-file bytes written by the cache")
        .set(static_cast<std::int64_t>(stats.bytesSpilled));
}

} // namespace fetchsim
