#include "sim/fuzz.h"

#include <cstdio>
#include <filesystem>
#include <sstream>

#include <unistd.h>

#include "sim/checkpoint.h"
#include "sim/result_cache.h"
#include "sim/sweep.h"
#include "workload/benchmark_suite.h"
#include "workload/branch_behavior.h"
#include "workload/rng.h"

namespace fetchsim
{

namespace
{

/** Real (non-perfect) schemes the scenario pool draws from. */
const SchemeKind kRealSchemes[] = {
    SchemeKind::Sequential,    SchemeKind::InterleavedSequential,
    SchemeKind::BankedSequential, SchemeKind::CollapsingBuffer,
    SchemeKind::MultiBanked,   SchemeKind::TraceCache,
};
constexpr int kNumRealSchemes =
    static_cast<int>(sizeof(kRealSchemes) / sizeof(kRealSchemes[0]));

/** Layouts a scenario may draw (all of them are stream-valid). */
const LayoutKind kFuzzLayouts[] = {
    LayoutKind::Unordered, LayoutKind::Reordered, LayoutKind::PadAll,
    LayoutKind::PadTrace,  LayoutKind::ReorderedPlaced,
};
constexpr int kNumFuzzLayouts =
    static_cast<int>(sizeof(kFuzzLayouts) / sizeof(kFuzzLayouts[0]));

std::string
hexSeed(std::uint64_t seed)
{
    static const char *digits = "0123456789abcdef";
    std::string hex(16, '0');
    for (int i = 15; i >= 0; --i) {
        hex[static_cast<std::size_t>(i)] = digits[seed & 0xf];
        seed >>= 4;
    }
    return hex;
}

/**
 * Cycle watchdog for every fuzz sweep: generous enough that no
 * legitimate configuration (deep miss penalties, tiny windows) can
 * trip it, tight enough that a hang surfaces as a structured
 * Workload error instead of wedging the campaign.
 */
std::uint64_t
fuzzWatchdog(const FuzzScenario &scenario)
{
    return (scenario.maxRetired + kReplayStreamSlack) * 1000;
}

/** Registers the scenario's spec for the duration of the checks. */
class DynamicBenchmarkGuard
{
  public:
    explicit DynamicBenchmarkGuard(const WorkloadSpec &spec)
        : name_(spec.name)
    {
        registerDynamicBenchmark(spec);
    }
    ~DynamicBenchmarkGuard() { unregisterDynamicBenchmark(name_); }

    DynamicBenchmarkGuard(const DynamicBenchmarkGuard &) = delete;
    DynamicBenchmarkGuard &
    operator=(const DynamicBenchmarkGuard &) = delete;

  private:
    std::string name_;
};

/** A temp file removed on scope exit (checkpoint/journal props). */
class TempFileGuard
{
  public:
    explicit TempFileGuard(const std::string &tag)
    {
        std::error_code ec;
        path_ = (std::filesystem::temp_directory_path(ec) /
                 ("fetchsim-fuzz-" + std::to_string(::getpid()) +
                  "-" + tag))
                    .string();
        std::remove(path_.c_str());
    }
    ~TempFileGuard() { std::remove(path_.c_str()); }

    TempFileGuard(const TempFileGuard &) = delete;
    TempFileGuard &operator=(const TempFileGuard &) = delete;

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** Canonical byte-exact rendering of one sweep's counters. */
std::string
sweepFingerprint(const std::vector<RunConfig> &configs,
                 const SweepResult &result)
{
    std::string out;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        out += checkpointLine(runKey(configs[i]),
                              result.runs[i].counters);
        out += "\n";
    }
    return out;
}

/** First cell where two fingerprints differ (diagnostics). */
std::string
firstDivergence(const std::string &a, const std::string &b)
{
    std::istringstream sa(a);
    std::istringstream sb(b);
    std::string la;
    std::string lb;
    std::size_t cell = 0;
    while (true) {
        const bool ga = static_cast<bool>(std::getline(sa, la));
        const bool gb = static_cast<bool>(std::getline(sb, lb));
        if (!ga && !gb)
            return "identical";
        if (ga != gb || la != lb)
            return "cell " + std::to_string(cell);
        ++cell;
    }
}

/** Sweep options shared by every property sweep of one scenario. */
SweepOptions
fuzzSweepOptions(const FuzzScenario &scenario, int threads)
{
    SweepOptions options;
    options.threads = threads;
    options.failure.mode = FailureMode::KeepGoing;
    options.faults = FaultPlan{};
    options.faults.watchdogCycles = fuzzWatchdog(scenario);
    return options;
}

/** Run the scenario's plan; *first_error = "" when every cell Ok. */
SweepResult
runSweep(Session &session, const FuzzScenario &scenario,
         const SweepOptions &options, std::string *first_error)
{
    SweepEngine engine(session, options);
    SweepResult result = engine.run(scenario.plan());
    if (first_error) {
        first_error->clear();
        for (std::size_t i = 0; i < result.statuses.size(); ++i) {
            if (result.statuses[i].outcome == RunOutcome::Ok)
                continue;
            *first_error =
                "cell " + std::to_string(i) + ": " +
                (result.statuses[i].outcome == RunOutcome::Failed
                     ? result.statuses[i].error.format()
                     : std::string("skipped"));
            break;
        }
    }
    return result;
}

} // anonymous namespace

std::string
fuzzReproducer(std::uint64_t seed, int shrink_level)
{
    std::string line = "fetchsim_cli fuzz --fuzz-seed 0x" +
                       hexSeed(seed);
    if (shrink_level != 0)
        line += " --shrink-level " + std::to_string(shrink_level);
    return line;
}

ExperimentPlan
FuzzScenario::plan() const
{
    RunConfig proto = base;
    proto.benchmark = spec.name;
    proto.input = input;
    ExperimentPlan plan;
    plan.proto(proto)
        .machine(machine)
        .schemes(schemes)
        .layout(layout)
        .maxRetired(maxRetired);
    return plan;
}

FuzzScenario
makeFuzzScenario(std::uint64_t seed, int shrink_level)
{
    // Every random draw happens unconditionally and in a fixed order,
    // so scenario (seed, L) is scenario (seed, 0) with the first L
    // shrinking transforms applied -- never a different scenario.
    Rng rng(splitMix64(seed));
    FuzzScenario scenario;
    scenario.seed = seed;
    scenario.shrinkLevel = shrink_level;

    WorkloadSpec &spec = scenario.spec;
    spec.numFunctions = static_cast<int>(rng.range(2, 16));
    spec.minStmtsPerFunc = static_cast<int>(rng.range(2, 6));
    spec.maxStmtsPerFunc =
        spec.minStmtsPerFunc + static_cast<int>(rng.range(0, 8));
    spec.minBlockLen = static_cast<int>(rng.range(1, 6));
    spec.maxBlockLen =
        spec.minBlockLen + static_cast<int>(rng.range(0, 10));
    const bool fp = rng.bernoulli(0.3);
    const double fp_draw = rng.real() * 0.5;
    spec.fpFraction = fp ? fp_draw : 0.0;
    spec.isFp = fp;
    spec.loadFraction = rng.real() * 0.35;
    spec.storeFraction = rng.real() * 0.15;
    spec.hammockProb = rng.real() * 0.30;
    spec.ifElseProb = rng.real() * 0.20;
    spec.loopProb = rng.real() * 0.30;
    spec.callProb = rng.real() * 0.15;
    spec.hammockLenMin = static_cast<int>(rng.range(1, 4));
    spec.hammockLenMax =
        spec.hammockLenMin + static_cast<int>(rng.range(0, 8));
    spec.hammockTakenProb = 0.50 + rng.real() * 0.45;
    const bool loop_hammocks = rng.bernoulli(0.4);
    const double loop_hammock_draw = rng.real();
    spec.loopHammockProb = loop_hammocks ? loop_hammock_draw : -1.0;
    spec.condBias = 0.50 + rng.real() * 0.45;
    spec.loopBodyStmtsMax = static_cast<int>(rng.range(1, 4));
    spec.loopTripMin = static_cast<int>(rng.range(2, 10));
    spec.loopTripMax =
        spec.loopTripMin + static_cast<int>(rng.range(0, 50));
    spec.maxLoopNest = static_cast<int>(rng.range(1, 3));
    spec.alternatingProb = rng.real() * 0.15;
    spec.seed = rng.next();

    scenario.machine = static_cast<MachineModel>(rng.uniform(
        static_cast<std::uint64_t>(MachineModel::NumMachineModels)));

    // Perfect first, then two distinct real schemes.
    const int first = static_cast<int>(rng.uniform(kNumRealSchemes));
    const int second_offset =
        static_cast<int>(rng.uniform(kNumRealSchemes - 1));
    const int second = (first + 1 + second_offset) % kNumRealSchemes;
    scenario.schemes = {SchemeKind::Perfect, kRealSchemes[first],
                        kRealSchemes[second]};

    scenario.layout = kFuzzLayouts[rng.uniform(kNumFuzzLayouts)];
    scenario.maxRetired =
        static_cast<std::uint64_t>(rng.range(600, 3000));
    scenario.input = static_cast<int>(rng.range(0, kEvalInput));

    // Machine-override envelope (applied to half the scenarios).
    RunConfig &base = scenario.base;
    const bool overrides = rng.bernoulli(0.5);
    const bool use_ras = rng.bernoulli(0.3);
    const int spec_depth = static_cast<int>(rng.range(1, 4));
    const int btb = 16 << rng.range(0, 5);
    const int window = static_cast<int>(rng.range(8, 64));
    const int penalty = static_cast<int>(rng.range(0, 12));
    const int ways = 1 << rng.range(0, 2);
    if (overrides) {
        base.useRas = use_ras;
        if (rng.bernoulli(0.4))
            base.specDepthOverride = spec_depth;
        if (rng.bernoulli(0.4))
            base.btbEntriesOverride = btb;
        if (rng.bernoulli(0.4))
            base.windowSizeOverride = window;
        if (rng.bernoulli(0.4))
            base.missPenaltyOverride = penalty;
        if (rng.bernoulli(0.4))
            base.icacheWaysOverride = ways;
    } else {
        // Burn the same number of draws so the spec above is
        // identical whether or not overrides apply.
        rng.bernoulli(0.4);
        rng.bernoulli(0.4);
        rng.bernoulli(0.4);
        rng.bernoulli(0.4);
        rng.bernoulli(0.4);
    }

    // The shrinking ladder: cumulative simplifications.
    if (shrink_level >= 1)
        scenario.schemes = {SchemeKind::Perfect, scenario.schemes[1]};
    if (shrink_level >= 2) {
        scenario.layout = LayoutKind::Unordered;
        scenario.base = RunConfig{};
    }
    if (shrink_level >= 3) {
        scenario.maxRetired =
            std::max<std::uint64_t>(300, scenario.maxRetired / 4);
    }
    if (shrink_level >= 4) {
        WorkloadSpec simple;
        simple.seed = spec.seed;
        simple.numFunctions = 3;
        simple.minStmtsPerFunc = 2;
        simple.maxStmtsPerFunc = 6;
        simple.minBlockLen = 2;
        simple.maxBlockLen = 6;
        simple.hammockProb = 0.10;
        simple.ifElseProb = 0.10;
        simple.loopProb = 0.10;
        simple.callProb = 0.05;
        simple.hammockLenMin = 1;
        simple.hammockLenMax = 3;
        simple.loopTripMin = 2;
        simple.loopTripMax = 8;
        simple.maxLoopNest = 1;
        simple.alternatingProb = 0.0;
        scenario.spec = simple;
    }

    scenario.spec.name =
        "fuzz-" + hexSeed(seed) + "-l" + std::to_string(shrink_level);
    return scenario;
}

std::vector<FuzzFailure>
checkFuzzScenario(std::uint64_t seed, int shrink_level, int threads,
                  std::uint64_t *cells)
{
    const FuzzScenario scenario =
        makeFuzzScenario(seed, shrink_level);
    const int wide = threads > 1 ? threads : 4;

    std::vector<FuzzFailure> failures;
    auto fail = [&](const std::string &property,
                    const std::string &detail) {
        failures.push_back(FuzzFailure{
            seed, shrink_level, property, detail,
            fuzzReproducer(seed, shrink_level)});
    };

    try {
        DynamicBenchmarkGuard bench(scenario.spec);
        const std::vector<RunConfig> configs =
            scenario.plan().expand();
        auto count = [&] {
            if (cells)
                *cells += configs.size();
        };

        // Baseline: one thread, replay off.
        Session base_session;
        std::string base_error;
        const SweepResult baseline =
            runSweep(base_session, scenario,
                     fuzzSweepOptions(scenario, 1), &base_error);
        count();
        if (!base_error.empty()) {
            fail("all-cells-ok", base_error);
            return failures;
        }
        const std::string base_print =
            sweepFingerprint(configs, baseline);

        // Invariant: byte-identity across thread counts (and across
        // Sessions -- generation itself must be deterministic).
        {
            Session session;
            std::string error;
            const SweepResult wide_result =
                runSweep(session, scenario,
                         fuzzSweepOptions(scenario, wide), &error);
            count();
            if (!error.empty()) {
                fail("thread-identity", "parallel sweep failed: " +
                                            error);
            } else {
                const std::string print =
                    sweepFingerprint(configs, wide_result);
                if (print != base_print)
                    fail("thread-identity",
                         "1-thread and " + std::to_string(wide) +
                             "-thread sweeps diverge at " +
                             firstDivergence(base_print, print));
            }
        }

        // Invariant: replay on/off identity.
        {
            Session session;
            SweepOptions options = fuzzSweepOptions(scenario, wide);
            options.replay.policy = ReplayPolicy::InMemory;
            std::string error;
            const SweepResult replayed =
                runSweep(session, scenario, options, &error);
            count();
            if (!error.empty()) {
                fail("replay-identity",
                     "replayed sweep failed: " + error);
            } else {
                const std::string print =
                    sweepFingerprint(configs, replayed);
                if (print != base_print)
                    fail("replay-identity",
                         "replay off/mem diverge at " +
                             firstDivergence(base_print, print));
            }
        }

        // Invariant: checkpoint/resume identity.
        {
            TempFileGuard journal(hexSeed(seed) + "-l" +
                                  std::to_string(shrink_level) +
                                  ".ckpt");
            {
                Session session;
                SweepOptions options =
                    fuzzSweepOptions(scenario, 1);
                options.checkpointPath = journal.path();
                std::string error;
                runSweep(session, scenario, options, &error);
                count();
                if (!error.empty())
                    fail("resume-identity",
                         "checkpointed sweep failed: " + error);
            }
            {
                Session session;
                SweepOptions options =
                    fuzzSweepOptions(scenario, 1);
                options.checkpointPath = journal.path();
                options.resume = true;
                std::string error;
                const SweepResult resumed =
                    runSweep(session, scenario, options, &error);
                if (!error.empty()) {
                    fail("resume-identity",
                         "resumed sweep failed: " + error);
                } else {
                    const std::string print =
                        sweepFingerprint(configs, resumed);
                    if (print != base_print)
                        fail("resume-identity",
                             "resumed sweep diverges at " +
                                 firstDivergence(base_print, print));
                    for (std::size_t i = 0;
                         i < resumed.statuses.size(); ++i) {
                        if (!resumed.statuses[i].fromCheckpoint) {
                            fail("resume-identity",
                                 "cell " + std::to_string(i) +
                                     " re-simulated on resume "
                                     "(journal miss)");
                            break;
                        }
                    }
                }
            }
        }

        // Invariant: a result-cache hit returns the journaled bytes.
        {
            TempFileGuard journal(hexSeed(seed) + "-l" +
                                  std::to_string(shrink_level) +
                                  ".rcache");
            {
                ResultCache cache(
                    ResultCacheOptions{journal.path(), 0});
                for (std::size_t i = 0; i < configs.size(); ++i) {
                    RunCounters out;
                    if (cache.acquire(runKey(configs[i]), out) ==
                        ResultCache::Outcome::Miss)
                        cache.fulfill(runKey(configs[i]),
                                      baseline.runs[i].counters);
                }
            }
            ResultCache warmed(
                ResultCacheOptions{journal.path(), 0});
            for (std::size_t i = 0; i < configs.size(); ++i) {
                RunCounters out;
                const std::uint64_t key = runKey(configs[i]);
                if (warmed.acquire(key, out) !=
                    ResultCache::Outcome::Hit) {
                    warmed.abandon(key);
                    fail("result-cache-identity",
                         "cell " + std::to_string(i) +
                             " missed after journal reload");
                    break;
                }
                if (checkpointLine(key, out) !=
                    checkpointLine(key,
                                   baseline.runs[i].counters)) {
                    fail("result-cache-identity",
                         "cell " + std::to_string(i) +
                             " returned different bytes from the "
                             "journal round-trip");
                    break;
                }
            }
        }

        // Invariant: the perfect scheme dominates the paper's real
        // schemes (within the shared 2% predictor-training envelope;
        // the beyond-paper trace cache is exempt -- its multi-branch
        // predictor is a different state machine, so dominance over
        // it is not a claim the paper or this repo makes).
        {
            const RunResult *perfect = nullptr;
            for (std::size_t i = 0; i < configs.size(); ++i) {
                if (configs[i].scheme == SchemeKind::Perfect)
                    perfect = &baseline.runs[i];
            }
            for (std::size_t i = 0;
                 perfect && i < configs.size(); ++i) {
                if (configs[i].scheme == SchemeKind::Perfect ||
                    configs[i].scheme == SchemeKind::TraceCache)
                    continue;
                const double real_ipc = baseline.runs[i].ipc();
                const double bound =
                    perfect->ipc() *
                    (1.0 + kFuzzDominanceTolerance);
                if (real_ipc > bound) {
                    std::ostringstream os;
                    os << "scheme "
                       << static_cast<int>(configs[i].scheme)
                       << " ipc " << real_ipc
                       << " exceeds perfect ipc "
                       << perfect->ipc() << " by more than "
                       << kFuzzDominanceTolerance * 100 << "%";
                    fail("perfect-dominance", os.str());
                }
            }
        }
    } catch (const SimException &e) {
        fail("exception", e.error().format());
    } catch (const std::exception &e) {
        fail("exception", e.what());
    }
    return failures;
}

FuzzReport
runFuzz(const FuzzOptions &options)
{
    FuzzReport report;
    for (std::uint64_t i = 0; i < options.runs; ++i) {
        const std::uint64_t seed = hashCombine(options.seed, i);
        std::vector<FuzzFailure> failures =
            checkFuzzScenario(seed, 0, options.threads,
                              &report.cells);
        ++report.scenarios;

        if (!failures.empty()) {
            // Shrink: walk down the ladder while it still fails;
            // report the deepest failing rung.
            for (int level = 1; level <= kMaxShrinkLevel; ++level) {
                std::vector<FuzzFailure> shrunk =
                    checkFuzzScenario(seed, level, options.threads,
                                      &report.cells);
                if (shrunk.empty())
                    break;
                failures = std::move(shrunk);
            }
            for (const FuzzFailure &failure : failures)
                report.failures.push_back(failure);
            if (options.log) {
                for (const FuzzFailure &failure : failures) {
                    *options.log
                        << "fuzz: FAIL " << failure.property << " ("
                        << failure.detail << ")\n"
                        << "fuzz: reproduce: " << failure.reproducer
                        << "\n";
                }
            }
            if (options.maxFailures != 0 &&
                report.failures.size() >= options.maxFailures) {
                if (options.log)
                    *options.log << "fuzz: stopping after "
                                 << report.failures.size()
                                 << " failures\n";
                break;
            }
        }

        if (options.log && (i + 1) % 50 == 0) {
            *options.log << "fuzz: " << (i + 1) << "/"
                         << options.runs << " scenarios, "
                         << report.failures.size() << " failures, "
                         << report.cells << " cells\n";
        }
    }
    if (options.log) {
        *options.log << "fuzz: done: " << report.scenarios
                     << " scenarios, " << report.cells << " cells, "
                     << report.failures.size() << " failures\n";
    }
    return report;
}

} // namespace fetchsim
