#include "sim/fault_injection.h"

#include <cstdlib>
#include <vector>

#include "stats/log.h"

namespace fetchsim
{

namespace
{

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::string::size_type start = 0;
    while (start <= text.size()) {
        std::string::size_type end = text.find(sep, start);
        if (end == std::string::npos)
            end = text.size();
        if (end > start)
            parts.push_back(text.substr(start, end - start));
        start = end + 1;
    }
    return parts;
}

Expected<std::uint64_t>
parseNumber(const std::string &text, const std::string &what)
{
    if (text.empty())
        return SimError{ErrorKind::Config,
                        "fault plan: empty value for " + what, ""};
    std::uint64_t value = 0;
    for (char ch : text) {
        if (ch < '0' || ch > '9')
            return SimError{ErrorKind::Config,
                            "fault plan: bad number '" + text +
                                "' for " + what,
                            ""};
        value = value * 10 + static_cast<std::uint64_t>(ch - '0');
    }
    return value;
}

Expected<ErrorKind>
parseKind(const std::string &name)
{
    if (name == "config")
        return ErrorKind::Config;
    if (name == "workload")
        return ErrorKind::Workload;
    if (name == "io")
        return ErrorKind::Io;
    if (name == "internal")
        return ErrorKind::Internal;
    return SimError{ErrorKind::Config,
                    "fault plan: unknown error kind '" + name +
                        "' (config|workload|io|internal)",
                    ""};
}

} // anonymous namespace

void
FaultPlan::checkThrow(std::size_t cell, int attempt) const
{
    if (!shouldFail(cell, attempt))
        return;
    throw SimException(
        failKind,
        "injected fault at cell " + std::to_string(cell) +
            ", attempt " + std::to_string(attempt),
        "fault-injection");
}

Expected<FaultPlan>
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    for (const std::string &segment : split(spec, ';')) {
        if (segment.rfind("watchdog=", 0) == 0) {
            auto cycles =
                parseNumber(segment.substr(9), "watchdog");
            if (!cycles.ok())
                return cycles.error();
            plan.watchdogCycles = cycles.value();
            continue;
        }
        // A cell segment: comma-separated key=value pairs.
        for (const std::string &field : split(segment, ',')) {
            const std::string::size_type eq = field.find('=');
            if (eq == std::string::npos)
                return SimError{ErrorKind::Config,
                                "fault plan: expected key=value, "
                                "got '" + field + "'",
                                ""};
            const std::string key = field.substr(0, eq);
            const std::string value = field.substr(eq + 1);
            if (key == "cell") {
                auto cell = parseNumber(value, "cell");
                if (!cell.ok())
                    return cell.error();
                plan.failCell =
                    static_cast<long long>(cell.value());
            } else if (key == "times") {
                auto times = parseNumber(value, "times");
                if (!times.ok())
                    return times.error();
                plan.failTimes = static_cast<int>(times.value());
            } else if (key == "kind") {
                auto kind = parseKind(value);
                if (!kind.ok())
                    return kind.error();
                plan.failKind = kind.value();
            } else {
                return SimError{ErrorKind::Config,
                                "fault plan: unknown key '" + key +
                                    "'",
                                ""};
            }
        }
    }
    return plan;
}

FaultPlan
FaultPlan::fromEnv()
{
    const char *env = std::getenv("FETCHSIM_FAULT");
    if (!env || !*env)
        return FaultPlan{};
    auto parsed = parse(env);
    if (!parsed.ok()) {
        warn("ignoring FETCHSIM_FAULT: " + parsed.error().message);
        return FaultPlan{};
    }
    return parsed.value();
}

} // namespace fetchsim
