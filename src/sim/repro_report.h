/**
 * @file
 * Self-regenerating reproduction report.
 *
 * generateReproReport() runs the paper's whole evaluation grid --
 * Figures 3 and 9-13 plus the branch-census Tables 2 and 3 -- through
 * one Session/SweepEngine batch and renders a Markdown document
 * (docs/RESULTS.md) containing:
 *
 *  - the measured tables for every figure (harmonic-mean IPC, EIR
 *    ratios, census percentages), with ASCII bar charts,
 *  - the paper's published values where the paper prints numbers
 *    (Tables 2 and 3), and
 *  - the paper's qualitative claims as *computed* verdicts: each
 *    claim is re-evaluated against the measured data every time the
 *    report is generated, so the document can never silently drift
 *    out of sync with the simulator.
 *
 * Determinism contract: for a fixed dynamic-instruction budget the
 * output is byte-identical on every invocation at any thread count
 * (the SweepEngine merges by plan index; the document embeds no
 * timestamps, hostnames or thread counts).  This is what lets the
 * generated document be checked in and its freshness enforced by a
 * test (scripts/check_docs_fresh.sh).
 */

#ifndef FETCHSIM_SIM_REPRO_REPORT_H_
#define FETCHSIM_SIM_REPRO_REPORT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "sim/session.h"

namespace fetchsim
{

/** Options for generateReproReport(). */
struct ReproReportOptions
{
    /**
     * Sweep worker threads; 0 = automatic (FETCHSIM_THREADS or the
     * hardware concurrency).  Never affects the report's bytes.
     */
    int threads = 0;

    /**
     * Retired-instruction budget per run; 0 = defaultDynInsts().
     * The resolved value is embedded in the report header, so two
     * reports are comparable only at equal budgets.
     */
    std::uint64_t dynInsts = 0;

    /**
     * Called after each processor run completes with (done, total).
     * Invocations are serialized; may arrive out of plan order.
     */
    std::function<void(std::size_t done, std::size_t total)> progress;
};

/**
 * Run the paper's experiment grid and render the reproduction report.
 *
 * @param session workload cache the runs share (reused across calls)
 * @param options thread count, budget and progress callback
 * @return the complete Markdown document
 */
std::string generateReproReport(Session &session,
                                const ReproReportOptions &options = {});

} // namespace fetchsim

#endif // FETCHSIM_SIM_REPRO_REPORT_H_
