/**
 * @file
 * Self-regenerating reproduction report.
 *
 * generateReproReport() runs the paper's whole evaluation grid --
 * Figures 3 and 9-13 plus the branch-census Tables 2 and 3 -- through
 * one Session/SweepEngine batch and renders a Markdown document
 * (docs/RESULTS.md) containing:
 *
 *  - the measured tables for every figure (harmonic-mean IPC, EIR
 *    ratios, census percentages), with ASCII bar charts,
 *  - the paper's published values where the paper prints numbers
 *    (Tables 2 and 3), and
 *  - the paper's qualitative claims as *computed* verdicts: each
 *    claim is re-evaluated against the measured data every time the
 *    report is generated, so the document can never silently drift
 *    out of sync with the simulator.
 *
 * Determinism contract: for a fixed dynamic-instruction budget the
 * output is byte-identical on every invocation at any thread count
 * (the SweepEngine merges by plan index; the document embeds no
 * timestamps, hostnames or thread counts).  This is what lets the
 * generated document be checked in and its freshness enforced by a
 * test (scripts/check_docs_fresh.sh).
 */

#ifndef FETCHSIM_SIM_REPRO_REPORT_H_
#define FETCHSIM_SIM_REPRO_REPORT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "sim/session.h"
#include "sim/sweep.h"

namespace fetchsim
{

/** Options for generateReproReport(). */
struct ReproReportOptions
{
    /**
     * Sweep worker threads; 0 = automatic (FETCHSIM_THREADS or the
     * hardware concurrency).  Never affects the report's bytes.
     */
    int threads = 0;

    /**
     * Retired-instruction budget per run; 0 = defaultDynInsts().
     * The resolved value is embedded in the report header, so two
     * reports are comparable only at equal budgets.
     */
    std::uint64_t dynInsts = 0;

    /**
     * Called after each processor run completes with (done, total).
     * Invocations are serialized; may arrive out of plan order.
     */
    std::function<void(std::size_t done, std::size_t total)> progress;

    /**
     * Failure handling for the grid sweep.  Under KeepGoing a failed
     * cell is excluded from the aggregates and listed in a "Failed
     * cells" section appended to the report (the section exists only
     * when failures exist, so clean reports stay byte-identical).
     */
    FailurePolicy failure;

    /**
     * JSONL checkpoint journal for the grid sweep (empty = off).
     * With `resume`, cells already journaled are loaded instead of
     * re-run; because runs are bit-deterministic, a resumed report is
     * byte-identical to an uninterrupted one.
     */
    std::string checkpointPath;
    bool resume = false;

    /**
     * Replay-cache policy for the grid sweep (sim/session.h).  The
     * rendered document is byte-identical with replay on or off --
     * replayed runs are bit-identical to live ones -- so this is
     * purely a generation-speed knob; enforced by test_replay.
     */
    ReplayOptions replay;
};

/**
 * Run the paper's experiment grid and render the reproduction report.
 *
 * Interruption: when a sweep stop request (e.g. SIGINT through
 * installSweepSigintHandler()) drains the grid early, the completed
 * cells are already checkpointed and this function throws
 * SimException(Io) with context "interrupted" instead of rendering a
 * partial document.
 *
 * @param session workload cache the runs share (reused across calls)
 * @param options thread count, budget, progress callback, failure
 *                policy and checkpointing
 * @param grid    when non-null, receives the grid sweep's per-cell
 *                statuses (so a driver can print failure summaries
 *                and pick an exit code without re-parsing the
 *                document)
 * @return the complete Markdown document
 */
std::string generateReproReport(Session &session,
                                const ReproReportOptions &options = {},
                                SweepResult *grid = nullptr);

} // namespace fetchsim

#endif // FETCHSIM_SIM_REPRO_REPORT_H_
