/**
 * @file
 * Session: an explicit, thread-safe owner of experiment state.
 *
 * The historical API (sim/experiment.h) kept the prepared-workload
 * cache in hidden per-process globals, which made the driver layer
 * impossible to thread.  A Session makes that state explicit: it owns
 * the cache of prepared workloads (generated programs plus the
 * profiled/reordered/padded layout variants) and hands out
 * stable references that remain valid -- including across concurrent
 * use from many threads -- for the lifetime of the Session.
 *
 * Concurrency contract:
 *  - workload() and run() may be called from any number of threads
 *    concurrently on the same Session.
 *  - Each distinct (benchmark, layout, block) key is prepared exactly
 *    once (per-entry std::call_once); other threads requesting the
 *    same key block until preparation finishes.
 *  - Returned Workload references are never invalidated or mutated:
 *    entries are heap-owned, the cache only grows, and simulation
 *    reads workloads through const references only.  This is asserted
 *    (not just documented): debug-checked in tests and guarded by a
 *    simAssert in workload().
 *  - run() is deterministic: the same RunConfig produces bit-identical
 *    RunCounters on every call, on any thread, regardless of what else
 *    runs concurrently.  All per-run state (processor, caches,
 *    predictors, behaviour RNG streams seeded from the workload seed
 *    and input id) is private to the call.
 */

#ifndef FETCHSIM_SIM_SESSION_H_
#define FETCHSIM_SIM_SESSION_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <tuple>

#include <vector>

#include "core/error.h"
#include "sim/experiment.h"
#include "stats/metrics.h"
#include "stats/trace_sink.h"

namespace fetchsim
{

/**
 * Every violation in @p config, as structured Config errors (empty =
 * valid).  Collects ALL problems instead of stopping at the first, so
 * a sweep over a malformed grid reports the full damage in one pass.
 * Session::run() calls this up front and throws the combined list as
 * one SimException(Config).
 */
std::vector<SimError> validateRunConfig(const RunConfig &config);

/**
 * Optional observability outputs for one Session::run() call.  Both
 * pointers may be null; a null field simply disables that output.
 * The pointed-to objects must outlive the call and are written from
 * the calling thread only, so per-run instrumentation composes with
 * parallel sweeps (one RunInstrumentation per run).
 */
struct RunInstrumentation
{
    /** Registry the run's Processor registers its metrics into. */
    MetricRegistry *metrics = nullptr;

    /** Sink receiving the run's per-cycle JSONL fetch events. */
    TraceSink *trace = nullptr;
};

/**
 * Owner of prepared-workload state for a family of experiments.
 *
 * Create one Session per logical experiment campaign (a bench binary,
 * a test fixture, a CLI invocation) and share it across threads; the
 * SweepEngine does exactly that.
 */
class Session
{
  public:
    Session() = default;
    ~Session() = default;

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /**
     * The prepared workload for (benchmark, layout), generating and
     * transforming it on first use.
     *
     * @param benchmark   suite benchmark name (throws
     *                    SimException(Config) if unknown)
     * @param layout      code layout to prepare
     * @param block_bytes cache-block size; only meaningful for the
     *                    padded layouts (pass the machine's block
     *                    size), ignored otherwise
     * @return a reference owned by this Session, valid for the
     *         Session's lifetime and safe to read concurrently
     */
    const Workload &workload(const std::string &benchmark,
                             LayoutKind layout,
                             std::uint64_t block_bytes = 0);

    /**
     * Run one experiment against this Session's workload cache.
     * Validates @p config first and throws SimException(Config)
     * listing every violation before any simulation state is built.
     */
    RunResult run(const RunConfig &config);

    /**
     * Run one experiment with observability attached: the run's
     * hierarchical metrics land in @p inst.metrics and its per-cycle
     * fetch events in @p inst.trace (null fields disable either).
     * Counters and derived rates are identical to the plain
     * overload -- instrumentation never perturbs simulation state.
     *
     * @p watchdog_cycles arms the processor's cycle watchdog: a run
     * still short of its retirement budget after that many cycles
     * throws SimException(Workload) instead of spinning (0 = off).
     * The watchdog never affects counters when it does not trip, so
     * it is deliberately excluded from checkpoint content keys.
     */
    RunResult run(const RunConfig &config,
                  const RunInstrumentation &inst,
                  std::uint64_t watchdog_cycles = 0);

    /** Number of prepared workloads currently cached. */
    std::size_t cachedWorkloads() const;

  private:
    using Key = std::tuple<std::string, LayoutKind, std::uint64_t>;

    /**
     * Heap-owned cache slot.  The once_flag gates preparation so the
     * map's mutex is never held while a workload is generated (which
     * can take milliseconds); the slot address is stable because the
     * map owns it through a unique_ptr.
     */
    struct Entry
    {
        std::once_flag once;
        std::unique_ptr<Workload> workload;
    };

    mutable std::shared_mutex mutex_; //!< guards cache_ map structure
    std::map<Key, std::unique_ptr<Entry>> cache_;
};

/**
 * The process-wide Session behind the deprecated free functions
 * (runExperiment / runSuite / preparedWorkload).  New code should
 * create its own Session instead.
 */
Session &defaultSession();

} // namespace fetchsim

#endif // FETCHSIM_SIM_SESSION_H_
