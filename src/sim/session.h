/**
 * @file
 * Session: an explicit, thread-safe owner of experiment state.
 *
 * The historical API (sim/experiment.h) kept the prepared-workload
 * cache in hidden per-process globals, which made the driver layer
 * impossible to thread.  A Session makes that state explicit: it owns
 * the cache of prepared workloads (generated programs plus the
 * profiled/reordered/padded layout variants) and hands out
 * stable references that remain valid -- including across concurrent
 * use from many threads -- for the lifetime of the Session.
 *
 * It also owns the **replay-trace cache** (docs/TRACES.md): with a
 * ReplayPolicy other than Off, the first run for a given (benchmark,
 * layout, block, input, length) key records the dynamic instruction
 * stream once -- to a compact in-memory DynTrace or an FSTR v2 spill
 * file -- and every later run sharing the key replays the recording
 * through a TraceReplaySource/TraceReader instead of re-executing
 * the CFG.  Because the dynamic stream depends only on that key
 * (never on the machine model, fetch scheme or predictor), one
 * recording serves every cell of a sweep, and because replayed runs
 * are counter-identical to live ones, results are byte-identical
 * with replay on or off (asserted by test_replay).
 *
 * Concurrency contract:
 *  - workload() and run() may be called from any number of threads
 *    concurrently on the same Session.
 *  - Each distinct (benchmark, layout, block) key is prepared exactly
 *    once (per-entry std::call_once); other threads requesting the
 *    same key block until preparation finishes.  Replay recordings
 *    follow the same exactly-once discipline.
 *  - Returned Workload references are never invalidated or mutated:
 *    entries are heap-owned, the cache only grows, and simulation
 *    reads workloads through const references only.  This is asserted
 *    (not just documented): debug-checked in tests and guarded by a
 *    simAssert in workload().  Recorded traces are likewise immutable
 *    once published; each concurrent run replays through its own
 *    cursor (TraceReplaySource) or its own file handle (TraceReader).
 *  - run() is deterministic: the same RunConfig produces bit-identical
 *    RunCounters on every call, on any thread, regardless of what else
 *    runs concurrently -- and regardless of the replay policy.  All
 *    per-run state (processor, caches, predictors, behaviour RNG
 *    streams seeded from the workload seed and input id) is private
 *    to the call.
 */

#ifndef FETCHSIM_SIM_SESSION_H_
#define FETCHSIM_SIM_SESSION_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <tuple>

#include <vector>

#include "core/error.h"
#include "exec/replay_buffer.h"
#include "sim/experiment.h"
#include "stats/metrics.h"
#include "stats/trace_sink.h"

namespace fetchsim
{

class Arena;

/**
 * Every violation in @p config, as structured Config errors (empty =
 * valid).  Collects ALL problems instead of stopping at the first, so
 * a sweep over a malformed grid reports the full damage in one pass.
 * Session::run() calls this up front and throws the combined list as
 * one SimException(Config).
 */
std::vector<SimError> validateRunConfig(const RunConfig &config);

/**
 * Optional observability outputs for one Session::run() call.  Both
 * pointers may be null; a null field simply disables that output.
 * The pointed-to objects must outlive the call and are written from
 * the calling thread only, so per-run instrumentation composes with
 * parallel sweeps (one RunInstrumentation per run).
 */
struct RunInstrumentation
{
    /** Registry the run's Processor registers its metrics into. */
    MetricRegistry *metrics = nullptr;

    /** Sink receiving the run's per-cycle JSONL fetch events. */
    TraceSink *trace = nullptr;
};

/** How Session::run() sources the dynamic instruction stream. */
enum class ReplayPolicy : std::uint8_t
{
    Off = 0,     //!< always execute the CFG live (the historical path)
    InMemory,    //!< record once per key into a DynTrace, replay after
    SpillToDisk, //!< record once per key into an FSTR v2 spill file
};

/** Display name of a replay policy ("off", "mem", "disk"). */
const char *replayPolicyName(ReplayPolicy policy);

/** Parse a `--replay` value ("off" | "mem" | "disk"). */
Expected<ReplayPolicy> parseReplayPolicy(const std::string &name);

/** Replay-cache configuration for a run, sweep or bench. */
struct ReplayOptions
{
    /** Stream source selection (`--replay off|mem|disk`). */
    ReplayPolicy policy = ReplayPolicy::Off;

    /**
     * Size budget for the cache in bytes (0 = unlimited).  InMemory
     * counts DynTrace heap bytes; SpillToDisk counts spill-file
     * bytes.  A recording that would exceed the budget is skipped and
     * its runs fall back to live execution -- never an error.
     */
    std::uint64_t budgetBytes = 0;

    /**
     * Directory for SpillToDisk trace files.  Empty = a private
     * directory under the system temp dir, created on first spill.
     * Spill files are removed in ~Session (docs/TRACES.md covers the
     * hygiene rules).
     */
    std::string spillDir;
};

/**
 * Extra dynamic instructions recorded beyond a run's retirement
 * budget.  The processor fetches ahead of retirement (up to
 * issueRate*4 plus the reorder window), so a trace of exactly
 * `budget` instructions would shrink the fetch lookahead near the end
 * of the run and change cycle counts vs live execution.  The slack
 * covers the deepest machine's lookahead with two orders of margin
 * (~100 KB per trace) and keeps one recording valid for every
 * machine model.
 */
constexpr std::uint64_t kReplayStreamSlack = 4096;

/** Counters describing what the replay cache did so far. */
struct ReplayStats
{
    std::uint64_t hits = 0;   //!< runs served from a cached recording
    std::uint64_t misses = 0; //!< runs that recorded (first per key)
    std::uint64_t fallbacks = 0; //!< runs forced live (budget/record
                                 //!< failure) under a non-Off policy
    std::uint64_t recordedInsts = 0; //!< instructions recorded
    std::uint64_t bytesInMemory = 0; //!< DynTrace bytes held
    std::uint64_t bytesSpilled = 0;  //!< spill-file bytes written
};

/**
 * Owner of prepared-workload state for a family of experiments.
 *
 * Create one Session per logical experiment campaign (a bench binary,
 * a test fixture, a CLI invocation) and share it across threads; the
 * SweepEngine does exactly that.
 */
class Session
{
  public:
    /** An empty cache; workloads and traces populate on demand. */
    Session() = default;

    /** Removes every replay spill file this Session wrote. */
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /**
     * The prepared workload for (benchmark, layout), generating and
     * transforming it on first use.
     *
     * @param benchmark   suite benchmark name (throws
     *                    SimException(Config) if unknown)
     * @param layout      code layout to prepare
     * @param block_bytes cache-block size; only meaningful for the
     *                    padded layouts (pass the machine's block
     *                    size), ignored otherwise
     * @return a reference owned by this Session, valid for the
     *         Session's lifetime and safe to read concurrently
     */
    const Workload &workload(const std::string &benchmark,
                             LayoutKind layout,
                             std::uint64_t block_bytes = 0);

    /**
     * Run one experiment against this Session's workload cache.
     * Validates @p config first and throws SimException(Config)
     * listing every violation before any simulation state is built.
     */
    RunResult run(const RunConfig &config);

    /**
     * Run one experiment with observability attached: the run's
     * hierarchical metrics land in @p inst.metrics and its per-cycle
     * fetch events in @p inst.trace (null fields disable either).
     * Counters and derived rates are identical to the plain
     * overload -- instrumentation never perturbs simulation state.
     *
     * @p watchdog_cycles arms the processor's cycle watchdog: a run
     * still short of its retirement budget after that many cycles
     * throws SimException(Workload) instead of spinning (0 = off).
     * The watchdog never affects counters when it does not trip, so
     * it is deliberately excluded from checkpoint content keys.
     *
     * @p replay selects the instruction-stream source (see
     * ReplayPolicy).  Replay never affects counters either -- a
     * replayed run is bit-identical to a live one -- so it is also
     * excluded from checkpoint content keys.
     *
     * @p arena optionally supplies the allocation region for the
     * run's transient simulation state (processor slabs, I-cache
     * lines, predictor tables, mechanism storage).  Everything drawn
     * from it is destroyed before run() returns, so the caller may
     * Arena::reset() between runs; the SweepEngine does exactly that
     * per worker.  Null (the default) uses the heap.  The replay
     * cache never allocates from the arena -- recordings outlive
     * individual runs.
     */
    RunResult run(const RunConfig &config,
                  const RunInstrumentation &inst,
                  std::uint64_t watchdog_cycles = 0,
                  const ReplayOptions &replay = ReplayOptions{},
                  Arena *arena = nullptr);

    /**
     * Record the replay trace for @p config up front (no-op when
     * @p replay is Off or the key is already recorded).  The bench
     * harness calls this in its preparation phase so recording cost
     * never pollutes measured iterations.
     */
    void prepareReplay(const RunConfig &config,
                       const ReplayOptions &replay);

    /** Number of prepared workloads currently cached. */
    std::size_t cachedWorkloads() const;

    /** Number of recorded replay traces currently cached. */
    std::size_t cachedReplayTraces() const;

    /** Snapshot of the replay cache counters. */
    ReplayStats replayStats() const;

    /**
     * Register the replay counters into @p registry under the
     * `replay.` namespace (replay.hits, replay.misses,
     * replay.fallbacks, replay.recorded_insts, replay.bytes_in_memory,
     * replay.bytes_spilled) at their current values.
     */
    void exportReplayMetrics(MetricRegistry &registry) const;

  private:
    using Key = std::tuple<std::string, LayoutKind, std::uint64_t>;

    /**
     * Heap-owned cache slot.  The once_flag gates preparation so the
     * map's mutex is never held while a workload is generated (which
     * can take milliseconds); the slot address is stable because the
     * map owns it through a unique_ptr.
     */
    struct Entry
    {
        std::once_flag once;
        std::unique_ptr<Workload> workload;
    };

    /**
     * Replay-cache key: everything the dynamic stream depends on.
     * The block size matters only for the padded layouts (identical
     * rule to the workload cache); machine, scheme and predictor are
     * deliberately absent -- the stream is the same for all of them,
     * which is what lets one recording serve a whole sweep.
     */
    using ReplayKey = std::tuple<std::string, LayoutKind,
                                 std::uint64_t, int, std::uint64_t>;

    /**
     * One recorded trace.  Exactly-once recording through the
     * once_flag; `ready` stays false when the recording was skipped
     * (size budget) or failed (spill I/O), in which case runs for
     * this key fall back to live execution.
     */
    struct ReplayEntry
    {
        std::once_flag once;
        bool ready = false;
        DynTrace trace;        //!< InMemory recording
        std::string spillPath; //!< SpillToDisk recording
    };

    /**
     * Locate-or-create the entry and record on first use.
     * @p recorded_here (optional) reports whether this call did the
     * recording (the cache miss).
     */
    ReplayEntry &replayEntry(const RunConfig &config,
                             const ReplayOptions &replay,
                             const Workload &wl,
                             std::uint64_t key_block,
                             std::uint64_t budget,
                             bool *recorded_here = nullptr);

    /** Record the stream for @p entry (runs once per key). */
    void recordReplay(ReplayEntry &entry, const ReplayOptions &replay,
                      const Workload &wl, int input,
                      std::uint64_t length);

    /** The spill file path for one new recording. */
    std::string nextSpillPath(const ReplayOptions &replay);

    mutable std::shared_mutex mutex_; //!< guards cache_ map structure
    std::map<Key, std::unique_ptr<Entry>> cache_;

    mutable std::shared_mutex replay_mutex_; //!< guards replay map
    std::map<ReplayKey, std::unique_ptr<ReplayEntry>> replay_cache_;

    std::mutex spill_mutex_; //!< guards spill_root_/spill_files_
    std::string spill_root_; //!< created lazily on first spill
    bool own_spill_root_ = false;
    std::vector<std::string> spill_files_;
    std::atomic<std::uint64_t> spill_seq_{0};

    std::atomic<std::uint64_t> replay_hits_{0};
    std::atomic<std::uint64_t> replay_misses_{0};
    std::atomic<std::uint64_t> replay_fallbacks_{0};
    std::atomic<std::uint64_t> replay_recorded_insts_{0};
    std::atomic<std::uint64_t> replay_bytes_mem_{0};
    std::atomic<std::uint64_t> replay_bytes_spilled_{0};
};

} // namespace fetchsim

#endif // FETCHSIM_SIM_SESSION_H_
