#include "sim/sweep.h"

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "core/arena.h"
#include "perf/profiler.h"
#include "sim/checkpoint.h"
#include "stats/log.h"
#include "stats/summary.h"

namespace fetchsim
{

namespace
{

int
resolveThreads(int requested)
{
    if (requested > 0)
        return requested;
    const char *env = std::getenv("FETCHSIM_THREADS");
    if (env) {
        const int parsed = std::atoi(env);
        if (parsed > 0)
            return parsed;
        warn("ignoring bad FETCHSIM_THREADS");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

// Process-wide cooperative stop flag.  Written from a signal handler,
// so it must be an async-signal-safe lock-free atomic.
std::atomic<bool> g_stop_requested{false};

extern "C" void
sweepSigintHandler(int)
{
    g_stop_requested.store(true, std::memory_order_relaxed);
}

} // anonymous namespace

void
requestSweepStop()
{
    g_stop_requested.store(true, std::memory_order_relaxed);
}

bool
sweepStopRequested()
{
    return g_stop_requested.load(std::memory_order_relaxed);
}

void
clearSweepStop()
{
    g_stop_requested.store(false, std::memory_order_relaxed);
}

void
installSweepSigintHandler()
{
    std::signal(SIGINT, sweepSigintHandler);
}

const char *
runOutcomeName(RunOutcome outcome)
{
    switch (outcome) {
      case RunOutcome::Ok:
        return "ok";
      case RunOutcome::Failed:
        return "failed";
      case RunOutcome::Skipped:
        return "skipped";
    }
    return "skipped";
}

bool
SweepResult::cellOk(std::size_t index) const
{
    // Hand-assembled results (no statuses) predate fault tolerance
    // and are all-Ok by construction.
    return statuses.empty() ||
           statuses[index].outcome == RunOutcome::Ok;
}

bool
SweepResult::allOk() const
{
    for (std::size_t i = 0; i < runs.size(); ++i)
        if (!cellOk(i))
            return false;
    return true;
}

std::size_t
SweepResult::countWith(RunOutcome outcome) const
{
    std::size_t count = 0;
    for (const RunStatus &status : statuses)
        count += status.outcome == outcome ? 1 : 0;
    return count;
}

std::vector<std::size_t>
SweepResult::failedCells() const
{
    std::vector<std::size_t> cells;
    for (std::size_t i = 0; i < statuses.size(); ++i)
        if (statuses[i].outcome == RunOutcome::Failed)
            cells.push_back(i);
    return cells;
}

std::vector<RunResult>
SweepResult::where(
    const std::function<bool(const RunConfig &)> &pred) const
{
    std::vector<RunResult> matched;
    for (std::size_t i = 0; i < runs.size(); ++i)
        if (cellOk(i) && pred(runs[i].config))
            matched.push_back(runs[i]);
    return matched;
}

SuiteResult
SweepResult::suiteWhere(
    const std::function<bool(const RunConfig &)> &pred) const
{
    return makeSuite(where(pred));
}

SuiteResult
SweepResult::suite(MachineModel machine, SchemeKind scheme) const
{
    return suiteWhere([&](const RunConfig &config) {
        return config.machine == machine && config.scheme == scheme;
    });
}

SuiteResult
SweepResult::suite(MachineModel machine, SchemeKind scheme,
                   LayoutKind layout) const
{
    return suiteWhere([&](const RunConfig &config) {
        return config.machine == machine && config.scheme == scheme &&
               config.layout == layout;
    });
}

const RunResult *
SweepResult::tryFind(
    const std::function<bool(const RunConfig &)> &pred) const
{
    for (std::size_t i = 0; i < runs.size(); ++i)
        if (cellOk(i) && pred(runs[i].config))
            return &runs[i];
    return nullptr;
}

const RunResult &
SweepResult::find(
    const std::function<bool(const RunConfig &)> &pred) const
{
    const RunResult *run = tryFind(pred);
    if (!run)
        throw SimException(ErrorKind::Config,
                           "SweepResult::find: no matching run");
    return *run;
}

SweepEngine::SweepEngine(Session &session, SweepOptions options)
    : session_(session), options_(std::move(options)),
      threads_(resolveThreads(options_.threads))
{
}

SweepResult
SweepEngine::run(const ExperimentPlan &plan)
{
    return run(plan.expand());
}

SweepResult
SweepEngine::run(const std::vector<RunConfig> &configs)
{
    SweepResult sweep;
    sweep.runs.resize(configs.size());
    sweep.statuses.resize(configs.size());
    sweep.host.resize(configs.size());
    // Every cell carries its config even when it never runs, so
    // failure tables can name the cell.
    for (std::size_t i = 0; i < configs.size(); ++i)
        sweep.runs[i].config = configs[i];
    if (configs.empty())
        return sweep;

    const std::size_t total = configs.size();
    const FailurePolicy &policy = options_.failure;
    const FaultPlan &faults = options_.faults;
    Clock &clock = options_.clock ? *options_.clock : systemClock();
    const std::uint64_t sweep_start_ns = clock.nowNs();

    // ---------------- checkpoint/resume -------------------------
    std::unique_ptr<CheckpointJournal> journal;
    std::vector<std::uint64_t> keys;
    std::size_t resumed = 0;
    if (!options_.checkpointPath.empty()) {
        keys.resize(total);
        for (std::size_t i = 0; i < total; ++i)
            keys[i] = runKey(configs[i]);
        if (options_.resume) {
            auto loaded = loadCheckpoint(options_.checkpointPath);
            if (!loaded.ok())
                throw SimException(loaded.error());
            for (std::size_t i = 0; i < total; ++i) {
                auto it = loaded.value().find(keys[i]);
                if (it == loaded.value().end())
                    continue;
                sweep.runs[i].counters = it->second;
                sweep.statuses[i].outcome = RunOutcome::Ok;
                sweep.statuses[i].fromCheckpoint = true;
                ++resumed;
            }
        }
        journal = std::make_unique<CheckpointJournal>(
            options_.checkpointPath, options_.resume);
    }

    // ---------------- parallel execution ------------------------
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{resumed};
    std::atomic<std::uint64_t> retries{0};
    std::atomic<bool> draining{false};
    std::mutex progress_mutex;
    std::exception_ptr first_error;
    std::mutex error_mutex;

    const int max_attempts = 1 + std::max(0, policy.maxRetries);

    // Run one cell inside the isolation boundary: inject, validate,
    // execute, retry.  Returns true when the cell ended Ok.  The
    // worker's arena supplies all per-run simulation state; by the
    // time this returns, session_.run has destroyed everything it
    // drew from it.
    auto runCell = [&](std::size_t i, Arena &arena) {
        RunStatus &status = sweep.statuses[i];
        // Host-profiler slice for the whole cell (attempts included).
        // The label is only built when profiling is on, so disabled
        // sweeps stay allocation-free here.
        std::string cell_label;
        if (Profiler::enabled()) {
            const RunConfig &config = configs[i];
            cell_label = "cell " + std::to_string(i) + " " +
                         config.benchmark + "/" +
                         machineName(config.machine) + "/" +
                         schemeName(config.scheme);
        }
        PerfScope cell_scope(std::move(cell_label));
        for (int attempt = 1; attempt <= max_attempts; ++attempt) {
            if (attempt > 1) {
                retries.fetch_add(1, std::memory_order_relaxed);
                if (policy.backoffMs > 0) {
                    clock.sleepNs(
                        (static_cast<std::uint64_t>(policy.backoffMs)
                         << (attempt - 2)) *
                        1000000ull);
                }
            }
            status.attempts = attempt;
            try {
                faults.checkThrow(i, attempt);
                const std::uint64_t wall_start = clock.nowNs();
                const std::uint64_t cpu_start = threadCpuNowNs();
                sweep.runs[i] = session_.run(
                    configs[i], RunInstrumentation{},
                    faults.watchdogCycles, options_.replay, &arena);
                HostStats &host = sweep.host[i];
                host.wallNs = clock.nowNs() - wall_start;
                host.cpuNs = threadCpuNowNs() - cpu_start;
                host.simCycles = sweep.runs[i].counters.cycles;
                host.retired = sweep.runs[i].counters.retired;
                status.outcome = RunOutcome::Ok;
                status.error = SimError{};
                // Routed through the serialized logger sink, so
                // parallel workers never interleave lines.
                LOG_DEBUG("sweep.cell",
                          {{"cell", i},
                           {"benchmark", configs[i].benchmark},
                           {"machine", machineName(configs[i].machine)},
                           {"scheme", schemeName(configs[i].scheme)},
                           {"attempt", attempt},
                           {"wall_us", host.wallNs / 1000}});
                return true;
            } catch (const SimException &e) {
                status.outcome = RunOutcome::Failed;
                status.error = e.error();
                if (attempt == max_attempts) {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    if (!first_error)
                        first_error = std::current_exception();
                }
            } catch (const std::exception &e) {
                status.outcome = RunOutcome::Failed;
                status.error =
                    SimError{ErrorKind::Internal, e.what(), ""};
                if (attempt == max_attempts) {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    if (!first_error)
                        first_error = std::current_exception();
                }
            } catch (...) {
                status.outcome = RunOutcome::Failed;
                status.error = SimError{ErrorKind::Internal,
                                        "unknown exception", ""};
                if (attempt == max_attempts) {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    if (!first_error)
                        first_error = std::current_exception();
                }
            }
        }
        return false;
    };

    auto worker = [&] {
        // One resettable allocation region per worker: after the
        // first few cells grow the slab to its high-water mark,
        // every later cell's setup recycles the same warm memory
        // and performs no heap allocation for simulation state.
        Arena arena;
        for (;;) {
            if (draining.load(std::memory_order_relaxed) ||
                sweepStopRequested())
                return;
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= total)
                return;
            if (sweep.statuses[i].fromCheckpoint)
                continue;
            const bool cell_ok = runCell(i, arena);
            // All per-run state the cell drew from the arena is
            // destroyed by now (success or failure), so the slab
            // can be recycled wholesale.
            arena.reset();
            if (cell_ok) {
                if (journal)
                    journal->record(keys[i],
                                    sweep.runs[i].counters);
                const std::size_t finished =
                    done.fetch_add(1, std::memory_order_relaxed) + 1;
                if (options_.progress || options_.tick) {
                    std::lock_guard<std::mutex> lock(progress_mutex);
                    if (options_.progress)
                        options_.progress(finished, total,
                                          sweep.runs[i]);
                    if (options_.tick) {
                        SweepTick tick;
                        tick.done = finished;
                        tick.total = total;
                        tick.elapsedNs =
                            clock.nowNs() - sweep_start_ns;
                        tick.retries =
                            retries.load(std::memory_order_relaxed);
                        options_.tick(tick);
                    }
                }
            } else if (policy.mode == FailureMode::FailFast) {
                // Stop claiming; peers drain their in-flight cells.
                draining.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    const int workers = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(threads_), total));
    if (workers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(workers));
        for (int t = 0; t < workers; ++t)
            pool.emplace_back(worker);
        for (std::thread &thread : pool)
            thread.join();
    }

    sweep.wallNs = clock.nowNs() - sweep_start_ns;
    sweep.peakRssBytes = processPeakRssBytes();
    sweep.stopped = sweepStopRequested() &&
                    sweep.countWith(RunOutcome::Skipped) > 0;

    if (policy.mode == FailureMode::FailFast && first_error)
        std::rethrow_exception(first_error);
    return sweep;
}

SuiteResult
makeSuite(std::vector<RunResult> runs)
{
    SuiteResult suite;
    std::vector<double> ipcs;
    std::vector<double> eirs;
    ipcs.reserve(runs.size());
    eirs.reserve(runs.size());
    for (const RunResult &run : runs) {
        ipcs.push_back(run.ipc());
        eirs.push_back(run.eir());
    }
    suite.runs = std::move(runs);
    suite.hmeanIpc = harmonicMean(ipcs);
    suite.hmeanEir = harmonicMean(eirs);
    return suite;
}

} // namespace fetchsim
