#include "sim/sweep.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "stats/log.h"
#include "stats/summary.h"

namespace fetchsim
{

namespace
{

int
resolveThreads(int requested)
{
    if (requested > 0)
        return requested;
    const char *env = std::getenv("FETCHSIM_THREADS");
    if (env) {
        const int parsed = std::atoi(env);
        if (parsed > 0)
            return parsed;
        warn("ignoring bad FETCHSIM_THREADS");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

} // anonymous namespace

std::vector<RunResult>
SweepResult::where(
    const std::function<bool(const RunConfig &)> &pred) const
{
    std::vector<RunResult> matched;
    for (const RunResult &run : runs)
        if (pred(run.config))
            matched.push_back(run);
    return matched;
}

SuiteResult
SweepResult::suiteWhere(
    const std::function<bool(const RunConfig &)> &pred) const
{
    return makeSuite(where(pred));
}

SuiteResult
SweepResult::suite(MachineModel machine, SchemeKind scheme) const
{
    return suiteWhere([&](const RunConfig &config) {
        return config.machine == machine && config.scheme == scheme;
    });
}

SuiteResult
SweepResult::suite(MachineModel machine, SchemeKind scheme,
                   LayoutKind layout) const
{
    return suiteWhere([&](const RunConfig &config) {
        return config.machine == machine && config.scheme == scheme &&
               config.layout == layout;
    });
}

const RunResult &
SweepResult::find(
    const std::function<bool(const RunConfig &)> &pred) const
{
    for (const RunResult &run : runs)
        if (pred(run.config))
            return run;
    fatal("SweepResult::find: no matching run");
}

SweepEngine::SweepEngine(Session &session, SweepOptions options)
    : session_(session), options_(std::move(options)),
      threads_(resolveThreads(options_.threads))
{
}

SweepResult
SweepEngine::run(const ExperimentPlan &plan)
{
    return run(plan.expand());
}

SweepResult
SweepEngine::run(const std::vector<RunConfig> &configs)
{
    SweepResult sweep;
    sweep.runs.resize(configs.size());
    if (configs.empty())
        return sweep;

    const std::size_t total = configs.size();
    const int workers = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(threads_),
                              total));

    // Dynamic work-stealing by atomic index: results land at their
    // plan index, so completion order never shows in the output.
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex progress_mutex;
    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= total)
                return;
            try {
                sweep.runs[i] = session_.run(configs[i]);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                return;
            }
            const std::size_t finished =
                done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (options_.progress) {
                std::lock_guard<std::mutex> lock(progress_mutex);
                options_.progress(finished, total, sweep.runs[i]);
            }
        }
    };

    if (workers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(workers));
        for (int t = 0; t < workers; ++t)
            pool.emplace_back(worker);
        for (std::thread &thread : pool)
            thread.join();
    }

    if (first_error)
        std::rethrow_exception(first_error);
    return sweep;
}

SuiteResult
makeSuite(std::vector<RunResult> runs)
{
    SuiteResult suite;
    std::vector<double> ipcs;
    std::vector<double> eirs;
    ipcs.reserve(runs.size());
    eirs.reserve(runs.size());
    for (const RunResult &run : runs) {
        ipcs.push_back(run.ipc());
        eirs.push_back(run.eir());
    }
    suite.runs = std::move(runs);
    suite.hmeanIpc = harmonicMean(ipcs);
    suite.hmeanEir = harmonicMean(eirs);
    return suite;
}

} // namespace fetchsim
