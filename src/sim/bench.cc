#include "sim/bench.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "perf/host_stats.h"
#include "stats/json.h"

namespace fetchsim
{

std::string
benchCellId(const RunConfig &config)
{
    std::string id = config.benchmark;
    id += '/';
    id += machineName(config.machine);
    id += '/';
    id += schemeName(config.scheme);
    id += '/';
    id += layoutName(config.layout);
    return id;
}

std::vector<RunConfig>
benchGrid(std::uint64_t dyn_insts)
{
    const std::vector<std::string> benchmarks = {"eqntott",
                                                 "compress", "gcc"};
    const std::vector<MachineModel> machines = {MachineModel::P14,
                                                MachineModel::P112};
    const std::vector<SchemeKind> schemes = {
        SchemeKind::Sequential, SchemeKind::CollapsingBuffer,
        SchemeKind::Perfect, SchemeKind::TraceCache};

    std::vector<RunConfig> grid;
    grid.reserve(benchmarks.size() * machines.size() *
                 schemes.size());
    for (const std::string &benchmark : benchmarks) {
        for (MachineModel machine : machines) {
            for (SchemeKind scheme : schemes) {
                RunConfig config;
                config.benchmark = benchmark;
                config.machine = machine;
                config.scheme = scheme;
                config.layout = LayoutKind::Unordered;
                config.maxRetired = dyn_insts;
                grid.push_back(config);
            }
        }
    }
    return grid;
}

double
medianOf(std::vector<double> values)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const std::size_t mid = values.size() / 2;
    if (values.size() % 2 == 1)
        return values[mid];
    return (values[mid - 1] + values[mid]) / 2.0;
}

double
madOf(const std::vector<double> &values, double median)
{
    std::vector<double> deviations;
    deviations.reserve(values.size());
    for (double value : values)
        deviations.push_back(std::fabs(value - median));
    return medianOf(std::move(deviations));
}

BenchReport
runBench(Session &session, const BenchOptions &options)
{
    Clock &clock = options.clock ? *options.clock : systemClock();
    const std::uint64_t start_ns = clock.nowNs();

    BenchReport report;
    report.iterations = options.smoke
                            ? 1
                            : std::max(1, options.iterations);
    report.threads = std::max(1, options.threads);
    const std::uint64_t budget =
        options.smoke ? kBenchSmokeInsts
                      : (options.dynInsts ? options.dynInsts
                                          : defaultDynInsts());
    report.dynInsts = budget;

    const std::vector<RunConfig> grid = benchGrid(budget);
    report.cells.resize(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        report.cells[i].config = grid[i];
        report.cells[i].id = benchCellId(grid[i]);
    }

    // Prepare every workload -- and, under a replay policy, every
    // trace recording -- up front: the measured iterations then time
    // simulation throughput, not one-off generation or recording
    // cost.
    report.replay = options.replay.policy;
    for (const RunConfig &config : grid) {
        session.workload(config.benchmark, config.layout);
        session.prepareReplay(config, options.replay);
    }

    for (int iteration = 0; iteration < report.iterations;
         ++iteration) {
        SweepOptions sweep_options;
        sweep_options.threads = report.threads;
        sweep_options.clock = options.clock;
        sweep_options.replay = options.replay;
        SweepEngine engine(session, sweep_options);
        const SweepResult sweep = engine.run(grid);
        for (std::size_t i = 0; i < grid.size(); ++i) {
            report.cells[i].samplesCyclesPerSec.push_back(
                sweep.host[i].cyclesPerSec());
        }
        // Wall times are summarized from the final iteration (any
        // one would do; the last avoids first-iteration cache
        // warmup skew on single-iteration runs).
        if (iteration == report.iterations - 1) {
            for (std::size_t i = 0; i < grid.size(); ++i) {
                BenchCellStats &cell = report.cells[i];
                cell.medianWallNs = sweep.host[i].wallNs;
                cell.medianInstsPerSec =
                    sweep.host[i].instsPerSec();
            }
        }
        if (options.progress)
            options.progress(iteration + 1, report.iterations);
    }

    for (BenchCellStats &cell : report.cells) {
        cell.medianCyclesPerSec =
            medianOf(cell.samplesCyclesPerSec);
        cell.madCyclesPerSec =
            madOf(cell.samplesCyclesPerSec, cell.medianCyclesPerSec);
    }

    report.totalWallNs = clock.nowNs() - start_ns;
    report.peakRssBytes = processPeakRssBytes();
    return report;
}

void
writeBenchJson(std::ostream &os, const BenchReport &report)
{
    JsonWriter json(os, 2);
    json.beginObject();
    json.key("schema").value("fetchsim-bench-v1");
    json.key("iterations").value(report.iterations);
    json.key("threads").value(report.threads);
    json.key("dyn_insts").value(report.dynInsts);
    json.key("replay").value(replayPolicyName(report.replay));
    json.key("total_wall_ns").value(report.totalWallNs);
    json.key("peak_rss_bytes").value(report.peakRssBytes);
    json.key("cells").beginArray();
    for (const BenchCellStats &cell : report.cells) {
        json.beginObject();
        json.key("id").value(cell.id);
        json.key("benchmark").value(cell.config.benchmark);
        json.key("machine").value(machineName(cell.config.machine));
        json.key("scheme").value(schemeName(cell.config.scheme));
        json.key("layout").value(layoutName(cell.config.layout));
        json.key("median_cycles_per_sec")
            .value(cell.medianCyclesPerSec);
        json.key("mad_cycles_per_sec").value(cell.madCyclesPerSec);
        json.key("median_insts_per_sec")
            .value(cell.medianInstsPerSec);
        json.key("median_wall_ns").value(cell.medianWallNs);
        json.key("samples_cycles_per_sec").beginArray();
        for (double sample : cell.samplesCyclesPerSec)
            json.value(sample);
        json.endArray();
        json.endObject();
    }
    json.endArray();
    json.endObject();
    os << "\n";
}

Expected<std::map<std::string, double>>
loadBenchBaseline(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        return SimError{ErrorKind::Io,
                        "cannot read bench baseline: " + path, ""};
    }
    std::ostringstream buffer;
    buffer << is.rdbuf();
    const std::string text = buffer.str();

    // Schema-specific scan over writeBenchJson() output: each cell
    // object holds an `"id": "..."` key followed (within the same
    // object) by `"median_cycles_per_sec": <number>`.
    std::map<std::string, double> medians;
    const std::string id_key = "\"id\":";
    const std::string median_key = "\"median_cycles_per_sec\":";
    std::string::size_type pos = 0;
    while ((pos = text.find(id_key, pos)) != std::string::npos) {
        pos += id_key.size();
        const std::string::size_type open =
            text.find('"', pos);
        if (open == std::string::npos)
            break;
        const std::string::size_type close =
            text.find('"', open + 1);
        if (close == std::string::npos)
            break;
        const std::string id =
            text.substr(open + 1, close - open - 1);
        const std::string::size_type mpos =
            text.find(median_key, close);
        if (mpos == std::string::npos)
            break;
        const char *number = text.c_str() + mpos + median_key.size();
        char *end = nullptr;
        const double value = std::strtod(number, &end);
        if (end == number) {
            return SimError{ErrorKind::Io,
                            "bench baseline " + path +
                                ": unparseable median for cell '" +
                                id + "'",
                            ""};
        }
        medians[id] = value;
        pos = close;
    }
    if (medians.empty()) {
        return SimError{ErrorKind::Io,
                        "bench baseline " + path +
                            ": no cell entries found",
                        ""};
    }
    return medians;
}

std::vector<BenchRegression>
findBenchRegressions(const BenchReport &report,
                     const std::map<std::string, double> &baseline,
                     double max_slowdown_pct)
{
    std::vector<BenchRegression> regressions;
    for (const BenchCellStats &cell : report.cells) {
        auto it = baseline.find(cell.id);
        if (it == baseline.end() || it->second <= 0.0)
            continue;
        const double slowdown_pct =
            100.0 * (1.0 - cell.medianCyclesPerSec / it->second);
        if (slowdown_pct > max_slowdown_pct) {
            regressions.push_back(BenchRegression{
                cell.id, it->second, cell.medianCyclesPerSec,
                slowdown_pct});
        }
    }
    return regressions;
}

} // namespace fetchsim
