#include "sim/report.h"

#include <sstream>

#include "stats/summary.h"

namespace fetchsim
{

const char *
cbImplName(CollapsingBufferFetch::Impl impl)
{
    switch (impl) {
      case CollapsingBufferFetch::Impl::Crossbar: return "crossbar";
      case CollapsingBufferFetch::Impl::Shifter:  return "shifter";
      default:                                    return "???";
    }
}

namespace
{

void
writeConfigJson(JsonWriter &json, const RunConfig &config)
{
    json.beginObject();
    json.key("benchmark").value(config.benchmark);
    json.key("machine").value(machineName(config.machine));
    json.key("scheme").value(schemeName(config.scheme));
    json.key("layout").value(layoutName(config.layout));
    json.key("cb_impl").value(cbImplName(config.cbImpl));
    json.key("max_retired").value(config.maxRetired);
    json.key("input").value(config.input);
    json.key("predictor").value(predictorName(config.predictorKind));
    json.key("use_ras").value(config.useRas);
    json.key("cb_allow_backward").value(config.cbAllowBackward);
    json.key("spec_depth_override").value(config.specDepthOverride);
    json.key("btb_entries_override").value(config.btbEntriesOverride);
    json.key("window_size_override").value(config.windowSizeOverride);
    json.key("miss_penalty_override")
        .value(config.missPenaltyOverride);
    json.key("icache_ways_override").value(config.icacheWaysOverride);
    json.endObject();
}

void
writeCountersJson(JsonWriter &json, const RunCounters &c)
{
    json.beginObject();
    json.key("cycles").value(c.cycles);
    json.key("retired").value(c.retired);
    json.key("delivered").value(c.delivered);
    json.key("fetch_groups").value(c.fetchGroups);
    json.key("cond_branches").value(c.condBranches);
    json.key("taken_branches").value(c.takenBranches);
    json.key("intra_block_taken").value(c.intraBlockTaken);
    json.key("mispredicts").value(c.mispredicts);
    json.key("control_mispredicts").value(c.controlMispredicts);
    json.key("icache_accesses").value(c.icacheAccesses);
    json.key("icache_misses").value(c.icacheMisses);
    json.key("btb_lookups").value(c.btbLookups);
    json.key("btb_hits").value(c.btbHits);
    json.key("stall_cycles").value(c.stallCycles);
    json.key("nops_retired").value(c.nopsRetired);
    json.key("nops_delivered").value(c.nopsDelivered);
    json.key("stops").beginObject();
    for (int i = 0; i < kNumFetchStops; ++i) {
        json.key(fetchStopName(static_cast<FetchStop>(i)))
            .value(c.stops[i]);
    }
    json.endObject();
    json.endObject();
}

} // anonymous namespace

void
writeRunJson(JsonWriter &json, const RunResult &result)
{
    json.beginObject();
    json.key("config");
    writeConfigJson(json, result.config);
    json.key("counters");
    writeCountersJson(json, result.counters);
    json.key("ipc").value(result.ipc());
    json.key("eir").value(result.eir());
    json.endObject();
}

void
writeRunsJson(std::ostream &os, const std::vector<RunResult> &runs,
              int indent)
{
    JsonWriter json(os, indent);
    json.beginObject();
    json.key("runs").beginArray();
    bool all_positive = !runs.empty();
    std::vector<double> ipcs, eirs;
    for (const RunResult &run : runs) {
        writeRunJson(json, run);
        if (run.ipc() <= 0.0 || run.eir() <= 0.0)
            all_positive = false;
        ipcs.push_back(run.ipc());
        eirs.push_back(run.eir());
    }
    json.endArray();
    // Harmonic means are only defined over positive rates; a partial
    // or broken run set simply omits them.
    if (all_positive) {
        json.key("hmean_ipc").value(harmonicMean(ipcs));
        json.key("hmean_eir").value(harmonicMean(eirs));
    }
    json.endObject();
    os << '\n';
}

const std::vector<std::string> &
runCsvHeader()
{
    static const std::vector<std::string> header = {
        "benchmark",       "machine",
        "scheme",          "layout",
        "cb_impl",         "predictor",
        "use_ras",         "max_retired",
        "cycles",          "retired",
        "delivered",       "fetch_groups",
        "cond_branches",   "taken_branches",
        "intra_block_taken", "mispredicts",
        "icache_accesses", "icache_misses",
        "btb_lookups",     "btb_hits",
        "stall_cycles",    "nops_retired",
        "ipc",             "eir",
    };
    return header;
}

void
writeRunCsv(CsvWriter &csv, const RunResult &result)
{
    const RunConfig &config = result.config;
    const RunCounters &c = result.counters;
    csv.field(config.benchmark)
        .field(machineName(config.machine))
        .field(schemeName(config.scheme))
        .field(layoutName(config.layout))
        .field(cbImplName(config.cbImpl))
        .field(predictorName(config.predictorKind))
        .field(config.useRas)
        .field(config.maxRetired)
        .field(c.cycles)
        .field(c.retired)
        .field(c.delivered)
        .field(c.fetchGroups)
        .field(c.condBranches)
        .field(c.takenBranches)
        .field(c.intraBlockTaken)
        .field(c.mispredicts)
        .field(c.icacheAccesses)
        .field(c.icacheMisses)
        .field(c.btbLookups)
        .field(c.btbHits)
        .field(c.stallCycles)
        .field(c.nopsRetired)
        .field(result.ipc())
        .field(result.eir())
        .endRow();
}

void
writeRunsCsv(std::ostream &os, const std::vector<RunResult> &runs)
{
    CsvWriter csv(os);
    csv.header(runCsvHeader());
    for (const RunResult &run : runs)
        writeRunCsv(csv, run);
}

std::string
RunResult::toJson() const
{
    std::ostringstream os;
    JsonWriter json(os, 0);
    writeRunJson(json, *this);
    return os.str();
}

} // namespace fetchsim
