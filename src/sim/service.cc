#include "sim/service.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>
#include <sstream>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/machine_config.h"
#include "fetch/scheme_registry.h"
#include "perf/host_stats.h"
#include "perf/profiler.h"
#include "perf/trace_export.h"
#include "sim/report.h"
#include "stats/json.h"
#include "stats/log.h"
#include "stats/metrics.h"

namespace fetchsim
{

namespace
{

// Mirrors the sweep engine's resolution rule so `serve --threads 0`
// and `sweep --threads 0` pick the same worker count.
int
resolveThreads(int requested)
{
    if (requested > 0)
        return requested;
    const char *env = std::getenv("FETCHSIM_THREADS");
    if (env) {
        const int parsed = std::atoi(env);
        if (parsed > 0)
            return parsed;
        warn("ignoring bad FETCHSIM_THREADS");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

// Process-wide cooperative stop flag, written from signal handlers.
std::atomic<bool> g_service_stop{false};

extern "C" void
serviceSignalHandler(int)
{
    g_service_stop.store(true, std::memory_order_relaxed);
}

std::uint64_t
monotonicNowNs()
{
    timespec ts{};
    if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
        return 0;
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
}

bool
terminalState(JobState state)
{
    return state == JobState::Done || state == JobState::Cancelled ||
           state == JobState::Drained;
}

// 16-hex-digit trace id: FNV-1a over (job id, submission time).
// Unique enough to grep one job's lines out of a long-running
// service's log, and stable for the job's whole lifetime.
std::string
traceIdFor(std::uint64_t job, std::uint64_t submit_ns)
{
    std::uint64_t hash = 1469598103934665603ull;
    const auto mix = [&hash](std::uint64_t word) {
        for (int i = 0; i < 8; ++i) {
            hash ^= (word >> (i * 8)) & 0xff;
            hash *= 1099511628211ull;
        }
    };
    mix(job);
    mix(submit_ns);
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

// Nearest-rank percentile summary of an (unsorted) sample set.
LatencySummary
summarizeLatency(std::vector<std::uint64_t> samples)
{
    LatencySummary summary;
    if (samples.empty())
        return summary;
    std::sort(samples.begin(), samples.end());
    const auto rank = [&samples](double p) {
        std::size_t r = static_cast<std::size_t>(
            p * static_cast<double>(samples.size()) + 0.999999);
        if (r == 0)
            r = 1;
        if (r > samples.size())
            r = samples.size();
        return samples[r - 1];
    };
    summary.count = samples.size();
    summary.p50Us = rank(0.50);
    summary.p95Us = rank(0.95);
    summary.maxUs = samples.back();
    return summary;
}

// ------------------------- HTTP plumbing -------------------------

constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
constexpr std::size_t kMaxBodyBytes = 8 * 1024 * 1024;

/**
 * SimError context marking a Protocol error that must be answered
 * with 413 (declared body over kMaxBodyBytes) instead of the generic
 * 400 every other framing error gets.
 */
constexpr const char kHttp413Context[] = "http-status-413";

struct HttpRequest
{
    std::string method;
    std::string path;
    std::map<std::string, std::string> query;
    std::string body;
};

const char *
reasonPhrase(int status)
{
    switch (status) {
      case 200:
        return "OK";
      case 202:
        return "Accepted";
      case 400:
        return "Bad Request";
      case 404:
        return "Not Found";
      case 405:
        return "Method Not Allowed";
      case 409:
        return "Conflict";
      case 413:
        return "Payload Too Large";
      case 422:
        return "Unprocessable Entity";
      case 503:
        return "Service Unavailable";
      default:
        return "Internal Server Error";
    }
}

std::string
httpResponse(int status, const std::string &content_type,
             const std::string &body)
{
    std::ostringstream os;
    os << "HTTP/1.1 " << status << " " << reasonPhrase(status)
       << "\r\nContent-Type: " << content_type
       << "\r\nContent-Length: " << body.size()
       << "\r\nConnection: close\r\n\r\n"
       << body;
    return os.str();
}

// The status code of a response built by httpResponse(), for the
// access log ("HTTP/1.1 404 ..." -> 404).
int
responseStatus(const std::string &response)
{
    const std::size_t sp = response.find(' ');
    if (sp == std::string::npos)
        return 0;
    return std::atoi(response.c_str() +
                     static_cast<std::ptrdiff_t>(sp) + 1);
}

std::string
errorJson(const SimError &error)
{
    std::ostringstream os;
    {
        JsonWriter json(os, 0);
        json.beginObject();
        json.key("error").beginObject();
        json.key("kind").value(errorKindName(error.kind));
        json.key("message").value(error.message);
        if (!error.context.empty())
            json.key("context").value(error.context);
        json.endObject();
        json.endObject();
    }
    return os.str();
}

// HTTP status for a structured error escaping a request handler:
// the peer spoke the protocol wrong (400), asked for an invalid
// experiment (422), or the service itself failed (500).
int
statusForError(const SimError &error)
{
    switch (error.kind) {
      case ErrorKind::Protocol:
        return 400;
      case ErrorKind::Config:
        return 422;
      default:
        return 500;
    }
}

bool
sendAll(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n =
            send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                 MSG_NOSIGNAL
#else
                 0
#endif
            );
        if (n <= 0)
            return false;
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

std::string
trimmed(const std::string &text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && (text[begin] == ' ' || text[begin] == '\t'))
        ++begin;
    while (end > begin &&
           (text[end - 1] == ' ' || text[end - 1] == '\t' ||
            text[end - 1] == '\r'))
        --end;
    return text.substr(begin, end - begin);
}

std::string
lowered(std::string text)
{
    for (char &c : text)
        if (c >= 'A' && c <= 'Z')
            c = static_cast<char>(c - 'A' + 'a');
    return text;
}

SimError
protocolError(const std::string &message)
{
    return SimError{ErrorKind::Protocol, message, ""};
}

// Read one request off @p fd: request line, headers, Content-Length
// body.  I/O failures (peer vanished, read timeout) come back as Io
// errors the caller answers with silence; malformed framing comes
// back as Protocol errors the caller answers with a 400.
Expected<HttpRequest>
readHttpRequest(int fd)
{
    std::string data;
    std::size_t header_end = std::string::npos;
    char buf[4096];
    for (;;) {
        header_end = data.find("\r\n\r\n");
        if (header_end != std::string::npos)
            break;
        if (data.size() > kMaxHeaderBytes)
            return protocolError("request header too large");
        const ssize_t n = recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            return SimError{ErrorKind::Io,
                            "connection closed mid-request", ""};
        data.append(buf, static_cast<std::size_t>(n));
    }

    HttpRequest request;
    const std::string head = data.substr(0, header_end);
    std::istringstream lines(head);
    std::string line;
    if (!std::getline(lines, line))
        return protocolError("empty request");
    line = trimmed(line);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos)
        return protocolError("malformed request line: " + line);
    request.method = line.substr(0, sp1);
    std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string version = line.substr(sp2 + 1);
    if (version.rfind("HTTP/1.", 0) != 0)
        return protocolError("unsupported protocol version: " +
                             version);

    // Split the query string off the path and parse k=v pairs.
    const std::size_t qmark = target.find('?');
    if (qmark != std::string::npos) {
        std::string query = target.substr(qmark + 1);
        request.path = target.substr(0, qmark);
        std::size_t pos = 0;
        while (pos <= query.size()) {
            std::size_t amp = query.find('&', pos);
            if (amp == std::string::npos)
                amp = query.size();
            const std::string pair = query.substr(pos, amp - pos);
            const std::size_t eq = pair.find('=');
            if (eq == std::string::npos)
                request.query[pair] = "";
            else
                request.query[pair.substr(0, eq)] =
                    pair.substr(eq + 1);
            pos = amp + 1;
        }
    } else {
        request.path = target;
    }

    std::size_t content_length = 0;
    bool have_length = false;
    while (std::getline(lines, line)) {
        line = trimmed(line);
        if (line.empty())
            continue;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            return protocolError("malformed header: " + line);
        const std::string key = lowered(trimmed(line.substr(0, colon)));
        const std::string value = trimmed(line.substr(colon + 1));
        if (key == "content-length") {
            char *end = nullptr;
            content_length = std::strtoull(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0')
                return protocolError("bad Content-Length: " + value);
            have_length = true;
        }
    }
    // Body bounds, checked before a single body byte is read: an
    // oversized declaration is refused as 413 without draining it,
    // and a POST without a length at all is refused as 400 -- the
    // alternative (treating it as an empty body) would silently turn
    // a framing mistake into a confusing plan-validation error.
    if (content_length > kMaxBodyBytes) {
        return SimError{ErrorKind::Protocol,
                        "request body of " +
                            std::to_string(content_length) +
                            " bytes exceeds the " +
                            std::to_string(kMaxBodyBytes) +
                            "-byte limit",
                        kHttp413Context};
    }
    if (request.method == "POST" && !have_length)
        return protocolError("POST requires a Content-Length header");

    const std::size_t body_start = header_end + 4;
    while (data.size() - body_start < content_length) {
        const ssize_t n = recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            return SimError{ErrorKind::Io,
                            "connection closed mid-body", ""};
        data.append(buf, static_cast<std::size_t>(n));
    }
    request.body = data.substr(body_start, content_length);
    return request;
}

// -------------------- plan request vocabulary --------------------

MachineModel
machineFromName(const std::string &name)
{
    if (name == "P14")
        return MachineModel::P14;
    if (name == "P18")
        return MachineModel::P18;
    if (name == "P112")
        return MachineModel::P112;
    throw SimException(ErrorKind::Config,
                       "unknown machine: " + name + " (P14|P18|P112)");
}

SchemeKind
schemeFromName(const std::string &name)
{
    const auto &registry = FetchSchemeRegistry::instance();
    if (const SchemeInfo *info = registry.find(name))
        return info->kind;
    throw SimException(ErrorKind::Config,
                       "unknown scheme: " + name + " (" +
                           registry.keyList() + ")");
}

LayoutKind
layoutFromName(const std::string &name)
{
    if (name == "unordered")
        return LayoutKind::Unordered;
    if (name == "reordered")
        return LayoutKind::Reordered;
    if (name == "pad-all")
        return LayoutKind::PadAll;
    if (name == "pad-trace")
        return LayoutKind::PadTrace;
    throw SimException(ErrorKind::Config,
                       "unknown layout: " + name +
                           " (unordered|reordered|pad-all|pad-trace)");
}

std::vector<std::string>
stringList(const JsonValue &value, const std::string &field)
{
    if (!value.isArray())
        throw SimException(ErrorKind::Protocol,
                           "field '" + field +
                               "' must be an array of strings");
    std::vector<std::string> names;
    for (const JsonValue &element : value.elements()) {
        if (!element.isString())
            throw SimException(ErrorKind::Protocol,
                               "field '" + field +
                                   "' must be an array of strings");
        names.push_back(element.asString());
    }
    if (names.empty())
        throw SimException(ErrorKind::Protocol,
                           "field '" + field + "' must not be empty");
    return names;
}

void
writeStringArray(JsonWriter &json, const std::string &key,
                 const std::vector<std::string> &values)
{
    json.key(key).beginArray();
    for (const std::string &value : values)
        json.value(value);
    json.endArray();
}

void
writeSnapshotJson(JsonWriter &json, const JobSnapshot &snap)
{
    json.beginObject();
    json.key("job").value(snap.id);
    json.key("state").value(jobStateName(snap.state));
    json.key("priority").value(snap.priority);
    json.key("cells").value(static_cast<std::uint64_t>(snap.cells));
    json.key("done").value(static_cast<std::uint64_t>(snap.done));
    json.key("cache_hits")
        .value(static_cast<std::uint64_t>(snap.cacheHits));
    json.key("simulated")
        .value(static_cast<std::uint64_t>(snap.simulated));
    json.key("failed").value(static_cast<std::uint64_t>(snap.failed));
    json.key("skipped")
        .value(static_cast<std::uint64_t>(snap.skipped));
    json.key("cancel_requested").value(snap.cancelRequested);
    json.key("trace_id").value(snap.traceId);
    const auto writeSummary = [&json](const char *key,
                                      const LatencySummary &summary) {
        json.key(key).beginObject();
        json.key("count").value(summary.count);
        json.key("p50").value(summary.p50Us);
        json.key("p95").value(summary.p95Us);
        json.key("max").value(summary.maxUs);
        json.endObject();
    };
    json.key("latency").beginObject();
    writeSummary("queue_wait_us", snap.queueWait);
    writeSummary("cell_us", snap.cell);
    json.endObject();
    json.endObject();
}

std::string
snapshotJson(const JobSnapshot &snap)
{
    std::ostringstream os;
    {
        JsonWriter json(os, 0);
        writeSnapshotJson(json, snap);
    }
    return os.str();
}

// Defined after the SweepService members it drives (it only needs
// the public API, so it lives outside the class).
std::string routeRequest(SweepService &service,
                         const HttpRequest &request);

} // anonymous namespace

const char *
jobStateName(JobState state)
{
    switch (state) {
      case JobState::Queued:
        return "queued";
      case JobState::Running:
        return "running";
      case JobState::Done:
        return "done";
      case JobState::Cancelled:
        return "cancelled";
      case JobState::Drained:
        return "drained";
    }
    return "unknown";
}

void
installServiceSignalHandlers()
{
    std::signal(SIGTERM, serviceSignalHandler);
    std::signal(SIGINT, serviceSignalHandler);
}

bool
serviceStopRequested()
{
    return g_service_stop.load(std::memory_order_relaxed);
}

void
clearServiceStop()
{
    g_service_stop.store(false, std::memory_order_relaxed);
}

Expected<std::vector<RunConfig>>
planConfigsFromJson(const JsonValue &request)
{
    try {
        if (!request.isObject())
            throw SimException(ErrorKind::Protocol,
                               "request body must be a JSON object");
        for (const std::string &key : request.keys()) {
            if (key != "benchmarks" && key != "machines" &&
                key != "schemes" && key != "layouts" &&
                key != "insts" && key != "priority") {
                throw SimException(ErrorKind::Protocol,
                                   "unknown field: " + key);
            }
        }

        ExperimentPlan plan;
        const JsonValue *benchmarks = request.find("benchmarks");
        if (!benchmarks)
            throw SimException(ErrorKind::Protocol,
                               "missing required field: benchmarks");
        plan.benchmarks(stringList(*benchmarks, "benchmarks"));

        if (const JsonValue *machines = request.find("machines")) {
            std::vector<MachineModel> axis;
            for (const std::string &name :
                 stringList(*machines, "machines"))
                axis.push_back(machineFromName(name));
            plan.machines(std::move(axis));
        } else {
            plan.machines({MachineModel::P14, MachineModel::P18,
                           MachineModel::P112});
        }

        if (const JsonValue *schemes = request.find("schemes")) {
            std::vector<SchemeKind> axis;
            for (const std::string &name :
                 stringList(*schemes, "schemes"))
                axis.push_back(schemeFromName(name));
            plan.schemes(std::move(axis));
        } else {
            plan.schemes(FetchSchemeRegistry::instance().paperSchemes());
        }

        if (const JsonValue *layouts = request.find("layouts")) {
            std::vector<LayoutKind> axis;
            for (const std::string &name :
                 stringList(*layouts, "layouts"))
                axis.push_back(layoutFromName(name));
            plan.layouts(std::move(axis));
        } else {
            plan.layouts({LayoutKind::Unordered});
        }

        if (const JsonValue *insts = request.find("insts")) {
            const std::uint64_t budget = insts->asU64();
            if (budget)
                plan.maxRetired(budget);
        }

        return plan.expand();
    } catch (const SimException &e) {
        return e.error();
    }
}

std::string
planRequestJson(const std::vector<std::string> &benchmarks,
                const std::vector<std::string> &machines,
                const std::vector<std::string> &schemes,
                const std::vector<std::string> &layouts,
                std::uint64_t insts, int priority)
{
    std::ostringstream os;
    {
        JsonWriter json(os, 0);
        json.beginObject();
        writeStringArray(json, "benchmarks", benchmarks);
        if (!machines.empty())
            writeStringArray(json, "machines", machines);
        if (!schemes.empty())
            writeStringArray(json, "schemes", schemes);
        if (!layouts.empty())
            writeStringArray(json, "layouts", layouts);
        if (insts)
            json.key("insts").value(insts);
        if (priority)
            json.key("priority").value(priority);
        json.endObject();
    }
    return os.str();
}

// --------------------------- SweepService ------------------------

SweepService::SweepService(ServiceOptions options)
    : options_(std::move(options)),
      threads_(resolveThreads(options_.threads)),
      cache_(options_.resultCache)
{
    // Registered up front so an early /metrics scrape sees the full
    // (empty) histogram set, not a shape that changes with traffic.
    latency_metrics_.histogram(
        "service.request_latency_us", latencyBucketBoundsUs(),
        "HTTP request handling latency, microseconds");
    latency_metrics_.histogram(
        "service.queue_wait_us", latencyBucketBoundsUs(),
        "cell latency from enqueue to worker claim, microseconds");
    latency_metrics_.histogram(
        "service.simulate_us", latencyBucketBoundsUs(),
        "per-cell simulation time on the shared session, "
        "microseconds");
}

SweepService::~SweepService()
{
    try {
        drain();
    } catch (...) {
        // Destructors must not throw; drain() failing here means the
        // process is on its way down anyway.
    }
}

void
SweepService::start()
{
    std::lock_guard<std::mutex> dg(drain_mutex_);
    if (started_)
        return;

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socketPath.empty() ||
        options_.socketPath.size() >= sizeof(addr.sun_path))
        throw SimException(ErrorKind::Io,
                           "bad socket path: " + options_.socketPath);
    std::strncpy(addr.sun_path, options_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    listen_fd_ = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0)
        throw SimException(ErrorKind::Io,
                           std::string("socket: ") +
                               std::strerror(errno));
    if (bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
             sizeof(addr)) != 0) {
        if (errno != EADDRINUSE) {
            const int err = errno;
            close(listen_fd_);
            listen_fd_ = -1;
            throw SimException(ErrorKind::Io,
                               "bind " + options_.socketPath + ": " +
                                   std::strerror(err));
        }
        // The path exists.  Probe it: a live listener means another
        // service owns the path; a dead one left a stale file we may
        // replace.
        const int probe = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        const bool live =
            probe >= 0 &&
            connect(probe, reinterpret_cast<sockaddr *>(&addr),
                    sizeof(addr)) == 0;
        if (probe >= 0)
            close(probe);
        if (live) {
            close(listen_fd_);
            listen_fd_ = -1;
            throw SimException(ErrorKind::Io,
                               "another service is listening on " +
                                   options_.socketPath);
        }
        unlink(options_.socketPath.c_str());
        if (bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
                 sizeof(addr)) != 0) {
            const int err = errno;
            close(listen_fd_);
            listen_fd_ = -1;
            throw SimException(ErrorKind::Io,
                               "bind " + options_.socketPath + ": " +
                                   std::strerror(err));
        }
    }
    if (listen(listen_fd_, 64) != 0) {
        const int err = errno;
        close(listen_fd_);
        listen_fd_ = -1;
        unlink(options_.socketPath.c_str());
        throw SimException(ErrorKind::Io,
                           std::string("listen: ") +
                               std::strerror(err));
    }

    start_ns_ = monotonicNowNs();
    started_ = true;
    workers_.reserve(static_cast<std::size_t>(threads_));
    for (int i = 0; i < threads_; ++i) {
        const auto worker = static_cast<std::uint32_t>(i);
        workers_.emplace_back([this, worker] { workerLoop(worker); });
    }
    acceptor_ = std::thread([this] { acceptLoop(); });
    LOG_INFO("service.start",
             {{"socket", options_.socketPath},
              {"workers", threads_},
              {"max_queued_cells",
               static_cast<std::uint64_t>(options_.maxQueuedCells)}});
}

void
SweepService::drain()
{
    std::lock_guard<std::mutex> dg(drain_mutex_);
    if (drained_ || !started_) {
        drained_ = true;
        return;
    }
    draining_.store(true, std::memory_order_relaxed);

    // 1. Stop accepting: the acceptor's poll loop notices within its
    //    timeout; close the listener only after it exits.
    if (acceptor_.joinable())
        acceptor_.join();
    if (listen_fd_ >= 0) {
        close(listen_fd_);
        listen_fd_ = -1;
    }

    // 2. Let the workers drain the queue (every unclaimed cell is
    //    accounted Skipped; in-flight cells finish and journal) and
    //    wait until every job is terminal.
    {
        std::unique_lock<std::mutex> lock(mutex_);
        work_cv_.notify_all();
        job_cv_.wait(lock, [this] {
            return queue_.empty() && allTerminalLocked();
        });
    }

    // 3. Stop and join the workers.
    stopping_.store(true, std::memory_order_relaxed);
    work_cv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
    workers_.clear();

    // 4. Wait for in-flight connections: drained jobs are terminal,
    //    so long-poll waiters have already been woken.
    {
        std::unique_lock<std::mutex> cg(conn_mutex_);
        conn_cv_.wait(cg, [this] {
            return active_connections_.load(
                       std::memory_order_acquire) == 0;
        });
    }

    unlink(options_.socketPath.c_str());
    drained_ = true;
}

bool
SweepService::draining() const
{
    return draining_.load(std::memory_order_relaxed);
}

void
SweepService::requestShutdown()
{
    shutdown_requested_.store(true, std::memory_order_relaxed);
}

bool
SweepService::shutdownRequested() const
{
    return shutdown_requested_.load(std::memory_order_relaxed);
}

Expected<std::uint64_t>
SweepService::submit(std::vector<RunConfig> configs, int priority)
{
    if (configs.empty())
        return SimError{ErrorKind::Config, "empty plan", ""};

    std::vector<std::uint64_t> keys;
    keys.reserve(configs.size());
    for (const RunConfig &config : configs)
        keys.push_back(runKey(config));

    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_.load(std::memory_order_relaxed)) {
        ++stats_.jobsRejected;
        return SimError{ErrorKind::Io, "service is draining", ""};
    }
    if (stats_.queuedCells + configs.size() >
        options_.maxQueuedCells) {
        ++stats_.jobsRejected;
        return SimError{
            ErrorKind::Io,
            "queue full: " + std::to_string(configs.size()) +
                " cells over capacity " +
                std::to_string(options_.maxQueuedCells) + " (" +
                std::to_string(stats_.queuedCells) + " queued)",
            ""};
    }

    auto job = std::make_unique<Job>();
    job->id = next_job_id_++;
    job->priority = priority;
    job->configs = std::move(configs);
    job->keys = std::move(keys);
    const std::uint64_t submit_ns = monotonicNowNs();
    job->traceId = traceIdFor(job->id, submit_ns);
    const std::size_t cells = job->configs.size();
    job->runs.resize(cells);
    for (std::size_t i = 0; i < cells; ++i)
        job->runs[i].config = job->configs[i];
    job->statuses.resize(cells);
    job->spans.reserve(cells * 3 + 1);
    job->queueWaitUs.reserve(cells);
    job->cellUs.reserve(cells);
    for (std::size_t i = 0; i < cells; ++i)
        queue_.push(Unit{priority, job->id, i, submit_ns});
    stats_.queuedCells += cells;
    ++stats_.jobsSubmitted;

    const std::uint64_t id = job->id;
    const std::string trace_id = job->traceId;
    jobs_.emplace(id, std::move(job));
    work_cv_.notify_all();
    LOG_INFO("job.submitted",
             {{"job", id},
              {"trace_id", trace_id},
              {"cells", static_cast<std::uint64_t>(cells)},
              {"priority", priority}});
    return id;
}

bool
SweepService::cancel(std::uint64_t job_id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = jobs_.find(job_id);
    if (it == jobs_.end())
        return false;
    Job &job = *it->second;
    if (terminalState(job.state))
        return false;
    job.cancelRequested = true;
    return true;
}

Expected<JobSnapshot>
SweepService::jobSnapshot(std::uint64_t job_id, bool wait) const
{
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = jobs_.find(job_id);
    if (it == jobs_.end())
        return SimError{ErrorKind::Config,
                        "unknown job: " + std::to_string(job_id), ""};
    if (wait) {
        const Job *job = it->second.get();
        job_cv_.wait(lock,
                     [job] { return terminalState(job->state); });
    }
    return snapshotLocked(*it->second);
}

std::vector<JobSnapshot>
SweepService::jobs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<JobSnapshot> snapshots;
    snapshots.reserve(jobs_.size());
    for (const auto &[id, job] : jobs_)
        snapshots.push_back(snapshotLocked(*job));
    return snapshots;
}

Expected<std::string>
SweepService::jobResult(std::uint64_t job_id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = jobs_.find(job_id);
    if (it == jobs_.end())
        return SimError{ErrorKind::Config,
                        "unknown job: " + std::to_string(job_id), ""};
    const Job &job = *it->second;
    if (!terminalState(job.state))
        return SimError{ErrorKind::Io,
                        "job not finished: " + std::to_string(job_id),
                        std::string("state=") +
                            jobStateName(job.state)};
    return job.resultJson;
}

ServiceStats
SweepService::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
SweepService::exportMetrics(MetricRegistry &registry) const
{
    ServiceStats snapshot;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        snapshot = stats_;
        registry.merge(latency_metrics_);
    }
    registry.counter("service.jobs_submitted", "jobs accepted")
        .inc(snapshot.jobsSubmitted);
    registry
        .counter("service.jobs_rejected",
                 "submissions refused by backpressure or drain")
        .inc(snapshot.jobsRejected);
    registry.counter("service.jobs_completed", "jobs reaching done")
        .inc(snapshot.jobsCompleted);
    registry.counter("service.jobs_cancelled", "jobs cancelled")
        .inc(snapshot.jobsCancelled);
    registry
        .counter("service.cells_simulated",
                 "cells executed on the shared session")
        .inc(snapshot.cellsSimulated);
    registry
        .counter("service.cells_cache_served",
                 "cells served from the result cache")
        .inc(snapshot.cellsCacheServed);
    registry.counter("service.cells_failed", "cells whose run threw")
        .inc(snapshot.cellsFailed);
    registry
        .counter("service.cells_skipped",
                 "cells skipped by cancellation or drain")
        .inc(snapshot.cellsSkipped);
    // Point-in-time values are gauges: a scraper rate()ing a shrinking
    // queue exported as a counter would see nonsense.
    registry
        .gauge("service.queue_depth",
               "cells queued and not yet claimed")
        .set(static_cast<std::int64_t>(snapshot.queuedCells));
    registry
        .gauge("service.active_connections",
               "HTTP connections currently open")
        .set(active_connections_.load(std::memory_order_relaxed));
    registry.counter("service.requests", "HTTP requests handled")
        .inc(snapshot.requests);
    cache_.exportMetrics(registry);
    session_.exportReplayMetrics(registry);
    exportProcessMetrics(registry,
                         start_ns_ ? monotonicNowNs() - start_ns_ : 0);
}

std::string
SweepService::metricsText() const
{
    MetricRegistry registry;
    exportMetrics(registry);
    return registry.formatText();
}

std::string
SweepService::metricsPrometheus() const
{
    MetricRegistry registry;
    exportMetrics(registry);
    return registry.formatPrometheus();
}

Expected<std::string>
SweepService::jobTrace(std::uint64_t job_id) const
{
    std::vector<PerfEvent> spans;
    std::string process_name;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = jobs_.find(job_id);
        if (it == jobs_.end())
            return SimError{ErrorKind::Config,
                            "unknown job: " + std::to_string(job_id),
                            ""};
        spans = it->second->spans;
        process_name = "fetchsim job " + std::to_string(job_id) +
                       " trace " + it->second->traceId;
    }
    std::sort(spans.begin(), spans.end(),
              [](const PerfEvent &a, const PerfEvent &b) {
                  if (a.startNs != b.startNs)
                      return a.startNs < b.startNs;
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  return a.seq < b.seq;
              });
    std::ostringstream os;
    writeChromeTrace(os, spans, process_name);
    return os.str();
}

JobSnapshot
SweepService::snapshotLocked(const Job &job) const
{
    JobSnapshot snap;
    snap.id = job.id;
    snap.state = job.state;
    snap.priority = job.priority;
    snap.cells = job.configs.size();
    snap.done = job.done;
    snap.cacheHits = job.cacheHits;
    snap.simulated = job.simulated;
    snap.failed = job.failed;
    snap.skipped = job.skipped;
    snap.cancelRequested = job.cancelRequested;
    snap.traceId = job.traceId;
    snap.queueWait = summarizeLatency(job.queueWaitUs);
    snap.cell = summarizeLatency(job.cellUs);
    return snap;
}

bool
SweepService::allTerminalLocked() const
{
    for (const auto &[id, job] : jobs_)
        if (!terminalState(job->state))
            return false;
    return true;
}

void
SweepService::finalizeJobLocked(Job &job, std::uint32_t worker)
{
    if (job.skipped == 0) {
        job.state = JobState::Done;
        ++stats_.jobsCompleted;
    } else if (job.cancelRequested) {
        job.state = JobState::Cancelled;
        ++stats_.jobsCancelled;
    } else {
        job.state = JobState::Drained;
    }
    // The exact bytes `sweep --json` writes for this run list; cached
    // and simulated cells are indistinguishable here because runs are
    // bit-deterministic.
    const std::uint64_t t0 = monotonicNowNs();
    std::ostringstream os;
    writeRunsJson(os, job.runs);
    job.resultJson = os.str();
    job.spans.push_back(PerfEvent{"result-render", t0,
                                  monotonicNowNs() - t0, worker,
                                  job.spanSeq++});
    LOG_INFO("job.done",
             {{"job", job.id},
              {"trace_id", job.traceId},
              {"state", jobStateName(job.state)},
              {"cache_hits",
               static_cast<std::uint64_t>(job.cacheHits)},
              {"simulated",
               static_cast<std::uint64_t>(job.simulated)},
              {"failed", static_cast<std::uint64_t>(job.failed)},
              {"skipped", static_cast<std::uint64_t>(job.skipped)}});
}

void
SweepService::accountCell(Job &job, std::size_t cell,
                          RunOutcome outcome, const SimError &error,
                          bool cache_hit, std::uint32_t worker,
                          std::uint64_t claim_ns,
                          std::vector<PerfEvent> spans)
{
    std::lock_guard<std::mutex> lock(mutex_);
    RunStatus &status = job.statuses[cell];
    status.outcome = outcome;
    status.error = error;
    status.attempts = outcome == RunOutcome::Skipped ? 0 : 1;
    status.fromCheckpoint = cache_hit;
    switch (outcome) {
      case RunOutcome::Ok:
        if (cache_hit) {
            ++job.cacheHits;
            ++stats_.cellsCacheServed;
        } else {
            ++job.simulated;
            ++stats_.cellsSimulated;
        }
        break;
      case RunOutcome::Failed:
        ++job.failed;
        ++stats_.cellsFailed;
        break;
      case RunOutcome::Skipped:
        ++job.skipped;
        ++stats_.cellsSkipped;
        break;
    }
    // Claimed (non-skipped) cells close their cell-claim span and
    // contribute a latency sample; the nested simulate/cache-serve
    // spans recorded by runCell ride along.
    if (outcome != RunOutcome::Skipped) {
        const std::uint64_t now = monotonicNowNs();
        const std::uint64_t cell_ns =
            now > claim_ns ? now - claim_ns : 0;
        job.spans.push_back(
            PerfEvent{"cell-claim cell " + std::to_string(cell),
                      claim_ns, cell_ns, worker, job.spanSeq++});
        for (PerfEvent &span : spans) {
            span.seq = job.spanSeq++;
            job.spans.push_back(std::move(span));
        }
        job.cellUs.push_back(cell_ns / 1000);
    }
    ++job.done;
    if (job.done == job.configs.size())
        finalizeJobLocked(job, worker);
    job_cv_.notify_all();
}

void
SweepService::runCell(Job &job, std::size_t cell,
                      std::uint32_t worker)
{
    PERF_SCOPE("service.cell");
    const RunConfig &config = job.configs[cell];
    const std::uint64_t key = job.keys[cell];
    const std::uint64_t claim_ns = monotonicNowNs();
    const std::string cell_tag = " cell " + std::to_string(cell);

    // Spans built outside mutex_ and appended by accountCell, which
    // already serializes on it.
    std::vector<PerfEvent> spans;

    RunCounters cached;
    bool cache_hit = false;
    {
        PERF_SCOPE("service.cache_serve");
        const std::uint64_t t0 = monotonicNowNs();
        cache_hit =
            cache_.acquire(key, cached) == ResultCache::Outcome::Hit;
        if (cache_hit) {
            job.runs[cell].counters = cached;
            spans.push_back(PerfEvent{"cache-serve" + cell_tag, t0,
                                      monotonicNowNs() - t0, worker,
                                      0});
        }
    }
    if (cache_hit) {
        accountCell(job, cell, RunOutcome::Ok, SimError{}, true,
                    worker, claim_ns, std::move(spans));
        return;
    }
    try {
        const std::uint64_t t0 = monotonicNowNs();
        {
            PERF_SCOPE("service.simulate");
            job.runs[cell] = session_.run(config,
                                          RunInstrumentation{}, 0,
                                          options_.replay);
        }
        const std::uint64_t sim_ns = monotonicNowNs() - t0;
        spans.push_back(PerfEvent{"simulate" + cell_tag, t0, sim_ns,
                                  worker, 0});
        {
            std::lock_guard<std::mutex> lock(mutex_);
            latency_metrics_
                .histogram("service.simulate_us",
                           latencyBucketBoundsUs())
                .record(sim_ns / 1000);
        }
        cache_.fulfill(key, job.runs[cell].counters);
        accountCell(job, cell, RunOutcome::Ok, SimError{}, false,
                    worker, claim_ns, std::move(spans));
    } catch (const SimException &e) {
        cache_.abandon(key);
        accountCell(job, cell, RunOutcome::Failed, e.error(), false,
                    worker, claim_ns, std::move(spans));
    } catch (const std::exception &e) {
        cache_.abandon(key);
        accountCell(job, cell, RunOutcome::Failed,
                    SimError{ErrorKind::Internal, e.what(), ""},
                    false, worker, claim_ns, std::move(spans));
    }
}

void
SweepService::workerLoop(std::uint32_t worker)
{
    for (;;) {
        Unit unit;
        Job *job = nullptr;
        bool skip = false;
        std::uint64_t claim_ns = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [this] {
                return stopping_.load(std::memory_order_relaxed) ||
                       !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping, queue drained
            unit = queue_.top();
            queue_.pop();
            --stats_.queuedCells;
            job = jobs_.at(unit.job).get();
            skip = draining_.load(std::memory_order_relaxed) ||
                   job->cancelRequested;
            if (!skip && job->state == JobState::Queued)
                job->state = JobState::Running;

            // The queue-wait span ends the moment this worker claims
            // the cell; recorded here because the job's span list and
            // the latency histograms live under mutex_ anyway.
            claim_ns = monotonicNowNs();
            const std::uint64_t wait_ns =
                claim_ns > unit.enqueueNs ? claim_ns - unit.enqueueNs
                                          : 0;
            job->spans.push_back(
                PerfEvent{"queue-wait cell " +
                              std::to_string(unit.cell),
                          unit.enqueueNs, wait_ns, worker,
                          job->spanSeq++});
            job->queueWaitUs.push_back(wait_ns / 1000);
            latency_metrics_
                .histogram("service.queue_wait_us",
                           latencyBucketBoundsUs())
                .record(wait_ns / 1000);
        }
        LOG_DEBUG("cell.claim",
                  {{"job", unit.job},
                   {"trace_id", job->traceId},
                   {"cell", static_cast<std::uint64_t>(unit.cell)},
                   {"worker", worker},
                   {"skip", skip}});
        if (skip)
            accountCell(*job, unit.cell, RunOutcome::Skipped,
                        SimError{}, false, worker, claim_ns, {});
        else
            runCell(*job, unit.cell, worker);
    }
}

void
SweepService::acceptLoop()
{
    for (;;) {
        if (draining_.load(std::memory_order_relaxed))
            return;
        pollfd pfd{listen_fd_, POLLIN, 0};
        const int ready = poll(&pfd, 1, 100);
        if (draining_.load(std::memory_order_relaxed))
            return;
        if (ready <= 0)
            continue;
        const int fd = accept4(listen_fd_, nullptr, nullptr,
                               SOCK_CLOEXEC);
        if (fd < 0)
            continue;
        active_connections_.fetch_add(1, std::memory_order_acq_rel);
        try {
            std::thread([this, fd] {
                handleConnection(fd);
                // Notify while holding the lock: drain()'s waiter may
                // destroy this object (and conn_cv_) as soon as it can
                // observe the count at zero, which notifying under the
                // mutex defers until notify_all has returned.
                std::lock_guard<std::mutex> cg(conn_mutex_);
                active_connections_.fetch_sub(
                    1, std::memory_order_acq_rel);
                conn_cv_.notify_all();
            }).detach();
        } catch (...) {
            active_connections_.fetch_sub(1,
                                          std::memory_order_acq_rel);
            close(fd);
        }
    }
}

void
SweepService::handleConnection(int fd)
{
    // Bound reads so an idle peer cannot stall drain() forever; the
    // long-poll wait happens on the job condition variable, after the
    // request has been fully read, so it is unaffected.
    timeval timeout{};
    timeout.tv_sec = 10;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
               sizeof(timeout));

    const std::uint64_t request_id =
        next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    const std::uint64_t start_ns = monotonicNowNs();

    // One access-log line per request that gets a response, with the
    // request's wall-clock latency fed into the service histogram.
    const auto finish = [&](const std::string &method,
                            const std::string &path, int status) {
        const std::uint64_t now = monotonicNowNs();
        const std::uint64_t latency_us =
            now > start_ns ? (now - start_ns) / 1000 : 0;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            latency_metrics_
                .histogram("service.request_latency_us",
                           latencyBucketBoundsUs())
                .record(latency_us);
        }
        LOG_INFO("http.access",
                 {{"request_id", request_id},
                  {"method", method},
                  {"path", path},
                  {"status", status},
                  {"latency_us", latency_us}});
    };

    auto parsed = readHttpRequest(fd);
    if (!parsed.ok()) {
        if (parsed.error().kind == ErrorKind::Protocol) {
            const int status =
                parsed.error().context == kHttp413Context ? 413 : 400;
            sendAll(fd, httpResponse(status, "application/json",
                                     errorJson(parsed.error())));
            finish("-", "-", status);
        } else {
            // The peer vanished before framing a request; nothing was
            // answered, so no access-log line either.
            LOG_DEBUG("http.drop",
                      {{"request_id", request_id},
                       {"reason", parsed.error().message}});
        }
        close(fd);
        return;
    }
    const HttpRequest &request = parsed.value();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.requests;
    }

    std::string response;
    try {
        response = routeRequest(*this, request);
    } catch (const SimException &e) {
        response = httpResponse(statusForError(e.error()),
                                "application/json",
                                errorJson(e.error()));
    } catch (const std::exception &e) {
        response = httpResponse(
            500, "application/json",
            errorJson(SimError{ErrorKind::Internal, e.what(), ""}));
    }
    sendAll(fd, response);
    finish(request.method, request.path, responseStatus(response));
    close(fd);
}

namespace
{

std::string
routeRequest(SweepService &service, const HttpRequest &request)
{
    const std::string &method = request.method;
    const std::string &path = request.path;

    if (path == "/healthz") {
        if (method != "GET")
            return httpResponse(
                405, "application/json",
                errorJson(protocolError("use GET " + path)));
        std::ostringstream os;
        {
            JsonWriter json(os, 0);
            json.beginObject();
            json.key("status").value("ok");
            json.key("draining").value(service.draining());
            json.endObject();
        }
        return httpResponse(200, "application/json", os.str());
    }

    if (path == "/metrics") {
        if (method != "GET")
            return httpResponse(
                405, "application/json",
                errorJson(protocolError("use GET " + path)));
        std::string format = "text";
        if (request.query.count("format"))
            format = request.query.at("format");
        if (format == "prometheus") {
            return httpResponse(
                200, "text/plain; version=0.0.4; charset=utf-8",
                service.metricsPrometheus());
        }
        if (format != "text")
            return httpResponse(
                400, "application/json",
                errorJson(protocolError(
                    "unknown metrics format '" + format +
                    "' (text|prometheus)")));
        return httpResponse(200, "text/plain; charset=utf-8",
                            service.metricsText());
    }

    if (path == "/v1/shutdown") {
        if (method != "POST")
            return httpResponse(
                405, "application/json",
                errorJson(protocolError("use POST " + path)));
        service.requestShutdown();
        return httpResponse(200, "application/json",
                            "{\"status\":\"draining\"}");
    }

    if (path == "/v1/jobs") {
        if (method == "POST") {
            auto body = parseJson(request.body);
            if (!body.ok())
                return httpResponse(400, "application/json",
                                    errorJson(body.error()));
            auto configs = planConfigsFromJson(body.value());
            if (!configs.ok())
                return httpResponse(statusForError(configs.error()),
                                    "application/json",
                                    errorJson(configs.error()));
            int priority = 0;
            if (const JsonValue *p = body.value().find("priority"))
                priority = static_cast<int>(p->asNumber());
            auto job =
                service.submit(std::move(configs.value()), priority);
            if (!job.ok()) {
                // Admission failures are backpressure/drain (503),
                // never the client's fault.
                return httpResponse(
                    job.error().kind == ErrorKind::Io ? 503 : 422,
                    "application/json", errorJson(job.error()));
            }
            return httpResponse(
                202, "application/json",
                snapshotJson(
                    service.jobSnapshot(job.value()).value()));
        }
        if (method == "GET") {
            std::ostringstream os;
            {
                JsonWriter json(os, 0);
                json.beginObject();
                json.key("jobs").beginArray();
                for (const JobSnapshot &snap : service.jobs())
                    writeSnapshotJson(json, snap);
                json.endArray();
                json.endObject();
            }
            return httpResponse(200, "application/json", os.str());
        }
        return httpResponse(
            405, "application/json",
            errorJson(protocolError("use GET or POST " + path)));
    }

    const std::string prefix = "/v1/jobs/";
    if (path.rfind(prefix, 0) == 0) {
        std::string rest = path.substr(prefix.size());
        std::string tail;
        const std::size_t slash = rest.find('/');
        if (slash != std::string::npos) {
            tail = rest.substr(slash + 1);
            rest = rest.substr(0, slash);
        }
        char *end = nullptr;
        const std::uint64_t id =
            std::strtoull(rest.c_str(), &end, 10);
        if (rest.empty() || end == rest.c_str() || *end != '\0')
            return httpResponse(
                404, "application/json",
                errorJson(protocolError("bad job id: " + rest)));

        if (tail.empty()) {
            if (method != "GET")
                return httpResponse(
                    405, "application/json",
                    errorJson(protocolError("use GET " + path)));
            const bool wait = request.query.count("wait") &&
                              request.query.at("wait") != "0";
            auto snap = service.jobSnapshot(id, wait);
            if (!snap.ok())
                return httpResponse(404, "application/json",
                                    errorJson(snap.error()));
            return httpResponse(200, "application/json",
                                snapshotJson(snap.value()));
        }
        if (tail == "result") {
            if (method != "GET")
                return httpResponse(
                    405, "application/json",
                    errorJson(protocolError("use GET " + path)));
            auto result = service.jobResult(id);
            if (!result.ok()) {
                const int status =
                    result.error().kind == ErrorKind::Config ? 404
                                                             : 409;
                return httpResponse(status, "application/json",
                                    errorJson(result.error()));
            }
            return httpResponse(200, "application/json",
                                result.value());
        }
        if (tail == "trace") {
            if (method != "GET")
                return httpResponse(
                    405, "application/json",
                    errorJson(protocolError("use GET " + path)));
            auto trace = service.jobTrace(id);
            if (!trace.ok())
                return httpResponse(404, "application/json",
                                    errorJson(trace.error()));
            return httpResponse(200, "application/json",
                                trace.value());
        }
        if (tail == "cancel") {
            if (method != "POST")
                return httpResponse(
                    405, "application/json",
                    errorJson(protocolError("use POST " + path)));
            auto snap = service.jobSnapshot(id);
            if (!snap.ok())
                return httpResponse(404, "application/json",
                                    errorJson(snap.error()));
            if (!service.cancel(id))
                return httpResponse(
                    409, "application/json",
                    errorJson(SimError{
                        ErrorKind::Config,
                        "job already terminal: " + std::to_string(id),
                        std::string("state=") +
                            jobStateName(snap.value().state)}));
            return httpResponse(
                200, "application/json",
                snapshotJson(service.jobSnapshot(id).value()));
        }
        return httpResponse(
            404, "application/json",
            errorJson(protocolError("no such endpoint: " + path)));
    }

    return httpResponse(
        404, "application/json",
        errorJson(protocolError("no such endpoint: " + path)));
}

} // anonymous namespace

// ----------------------------- client ----------------------------

ServiceResponse
serviceRequest(const std::string &socket_path,
               const std::string &method, const std::string &target,
               const std::string &body)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.empty() ||
        socket_path.size() >= sizeof(addr.sun_path))
        throw SimException(ErrorKind::Io,
                           "bad socket path: " + socket_path);
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);

    const int fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        throw SimException(ErrorKind::Io,
                           std::string("socket: ") +
                               std::strerror(errno));
    if (connect(fd, reinterpret_cast<sockaddr *>(&addr),
                sizeof(addr)) != 0) {
        const int err = errno;
        close(fd);
        throw SimException(ErrorKind::Io,
                           "cannot connect to " + socket_path + ": " +
                               std::strerror(err));
    }

    std::ostringstream req;
    req << method << " " << target << " HTTP/1.1\r\n"
        << "Host: fetchsim\r\n";
    if (!body.empty() || method == "POST")
        req << "Content-Type: application/json\r\n"
            << "Content-Length: " << body.size() << "\r\n";
    req << "Connection: close\r\n\r\n"
        << body;
    if (!sendAll(fd, req.str())) {
        close(fd);
        throw SimException(ErrorKind::Io,
                           "cannot send request to " + socket_path);
    }
    shutdown(fd, SHUT_WR);

    std::string data;
    char buf[4096];
    for (;;) {
        const ssize_t n = recv(fd, buf, sizeof(buf), 0);
        if (n < 0) {
            close(fd);
            throw SimException(ErrorKind::Io,
                               "cannot read response from " +
                                   socket_path);
        }
        if (n == 0)
            break;
        data.append(buf, static_cast<std::size_t>(n));
    }
    close(fd);

    const std::size_t header_end = data.find("\r\n\r\n");
    if (header_end == std::string::npos)
        throw SimException(ErrorKind::Protocol,
                           "truncated response from " + socket_path);
    const std::string head = data.substr(0, header_end);
    std::istringstream lines(head);
    std::string line;
    if (!std::getline(lines, line))
        throw SimException(ErrorKind::Protocol, "empty response");
    line = trimmed(line);
    if (line.rfind("HTTP/1.", 0) != 0)
        throw SimException(ErrorKind::Protocol,
                           "malformed status line: " + line);
    const std::size_t sp = line.find(' ');
    if (sp == std::string::npos)
        throw SimException(ErrorKind::Protocol,
                           "malformed status line: " + line);
    ServiceResponse response;
    response.status =
        std::atoi(line.c_str() + static_cast<std::ptrdiff_t>(sp) + 1);
    if (response.status < 100 || response.status > 599)
        throw SimException(ErrorKind::Protocol,
                           "malformed status line: " + line);
    while (std::getline(lines, line)) {
        line = trimmed(line);
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            continue;
        if (lowered(trimmed(line.substr(0, colon))) == "content-type")
            response.contentType = trimmed(line.substr(colon + 1));
    }
    response.body = data.substr(header_end + 4);
    return response;
}

} // namespace fetchsim
