/**
 * @file
 * Deterministic fault injection for exercising recovery paths.
 *
 * Every fault-tolerance mechanism in the sweep layer -- keep-going
 * isolation, retry-with-backoff, the runaway-workload watchdog, the
 * checkpoint/resume cycle, I/O error propagation -- must be
 * *testable*, not trusted on faith.  This harness injects failures at
 * exactly reproducible points:
 *
 *  - nth-cell throw: the run at a chosen plan index throws a
 *    SimException of a chosen kind.  A `times` budget makes the
 *    fault transient (the first T attempts fail, attempt T+1
 *    succeeds), which is how the retry policy is exercised.
 *  - watchdog: arm the per-run cycle watchdog so a runaway workload
 *    (or, under test, any workload at an absurdly small limit) trips
 *    a structured Workload error instead of spinning.
 *  - sink faults: FailAfterBuf is a streambuf that accepts N bytes
 *    and then fails, turning TraceSink/report writes into the Io
 *    errors the recovery paths must survive.
 *
 * Faults are driven either programmatically (SweepOptions::faults)
 * or from the environment for end-to-end CLI tests:
 *
 * @code
 *   FETCHSIM_FAULT="cell=5,times=2,kind=io;watchdog=100000"
 * @endcode
 *
 * Segments are ';'-separated; the cell segment takes ','-separated
 * key=value pairs (cell index is 0-based in plan order).  Injection
 * is deterministic by construction -- it keys off the plan index and
 * the attempt number, never off timing or thread identity.
 */

#ifndef FETCHSIM_SIM_FAULT_INJECTION_H_
#define FETCHSIM_SIM_FAULT_INJECTION_H_

#include <cstddef>
#include <cstdint>
#include <streambuf>
#include <string>

#include "core/error.h"

namespace fetchsim
{

/** A deterministic fault schedule for one sweep. */
struct FaultPlan
{
    /** Plan index whose run throws; negative = no injected throw. */
    long long failCell = -1;

    /**
     * Number of attempts at failCell that fail (1 = permanent under
     * a no-retry policy, < maxRetries+1 = transient).
     */
    int failTimes = 1;

    /** Kind of the injected error. */
    ErrorKind failKind = ErrorKind::Internal;

    /** Per-run cycle watchdog armed for every cell; 0 = off. */
    std::uint64_t watchdogCycles = 0;

    /** True when any injection is configured. */
    bool
    active() const
    {
        return failCell >= 0 || watchdogCycles != 0;
    }

    /**
     * Whether the attempt at (@p cell, @p attempt) must fail
     * (attempts are 1-based).
     */
    bool
    shouldFail(std::size_t cell, int attempt) const
    {
        return failCell >= 0 &&
               cell == static_cast<std::size_t>(failCell) &&
               attempt <= failTimes;
    }

    /**
     * Throw the configured SimException for (@p cell, @p attempt)
     * when the schedule says so; otherwise return.
     */
    void checkThrow(std::size_t cell, int attempt) const;

    /**
     * Parse a schedule string (see the file header for the syntax).
     * An empty string parses to an inactive plan; a malformed string
     * is a Config error listing the offending segment.
     */
    static Expected<FaultPlan> parse(const std::string &spec);

    /**
     * The FETCHSIM_FAULT environment schedule, or an inactive plan
     * when the variable is unset.  A malformed value warns and is
     * ignored (a typo in a debugging aid must not alter results
     * silently -- the warn makes it visible).
     */
    static FaultPlan fromEnv();
};

/**
 * A streambuf that accepts @p limit bytes, then fails every write --
 * the deterministic stand-in for a disk filling up mid-stream.  Wrap
 * it in an std::ostream and hand that to a TraceSink or a report
 * writer to exercise their Io-error paths.
 */
class FailAfterBuf : public std::streambuf
{
  public:
    explicit FailAfterBuf(std::size_t limit) : remaining_(limit) {}

    /** Bytes successfully accepted so far. */
    std::size_t accepted() const { return accepted_; }

  protected:
    int_type
    overflow(int_type ch) override
    {
        if (remaining_ == 0)
            return traits_type::eof();
        --remaining_;
        ++accepted_;
        return traits_type::not_eof(ch);
    }

    std::streamsize
    xsputn(const char *, std::streamsize n) override
    {
        if (static_cast<std::size_t>(n) > remaining_) {
            const std::streamsize took =
                static_cast<std::streamsize>(remaining_);
            accepted_ += remaining_;
            remaining_ = 0;
            return took;
        }
        remaining_ -= static_cast<std::size_t>(n);
        accepted_ += static_cast<std::size_t>(n);
        return n;
    }

  private:
    std::size_t remaining_;
    std::size_t accepted_ = 0;
};

} // namespace fetchsim

#endif // FETCHSIM_SIM_FAULT_INJECTION_H_
