#include "sim/repro_report.h"

#include <algorithm>
#include <iomanip>
#include <map>
#include <set>
#include <sstream>

#include "exec/branch_census.h"
#include "sim/plan.h"
#include "sim/report.h"
#include "sim/sweep.h"
#include "stats/log.h"
#include "stats/metrics.h"
#include "stats/summary.h"
#include "workload/benchmark_suite.h"
#include "workload/branch_behavior.h"

namespace fetchsim
{

namespace
{

using Impl = CollapsingBufferFetch::Impl;

// ------------------------------------------------------------------
// Formatting helpers.  All numeric output goes through these so the
// document's precision -- and therefore its bytes -- is uniform.
// ------------------------------------------------------------------

std::string
fmt(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
pct(double value, int precision = 1)
{
    return fmt(value, precision) + "%";
}

/** Signed percentage delta of @p value relative to @p base. */
std::string
delta(double value, double base, int precision = 1)
{
    const double d = percentOf(value - base, base);
    return (d >= 0 ? "+" : "") + fmt(d, precision) + "%";
}

/** GitHub-flavoured pipe table with padded columns. */
struct MarkdownTable
{
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;

    void
    render(std::ostream &os) const
    {
        std::vector<std::size_t> widths(header.size());
        for (std::size_t c = 0; c < header.size(); ++c)
            widths[c] = header[c].size();
        for (const auto &row : rows)
            for (std::size_t c = 0; c < row.size(); ++c)
                widths[c] = std::max(widths[c], cellWidth(row[c]));

        auto line = [&](const std::vector<std::string> &cells) {
            os << "|";
            for (std::size_t c = 0; c < header.size(); ++c) {
                const std::string &cell =
                    c < cells.size() ? cells[c] : std::string();
                os << " " << cell
                   << std::string(widths[c] - cellWidth(cell), ' ')
                   << " |";
            }
            os << "\n";
        };
        line(header);
        os << "|";
        for (std::size_t c = 0; c < header.size(); ++c)
            os << std::string(widths[c] + 2, '-') << "|";
        os << "\n";
        for (const auto &row : rows)
            line(row);
        os << "\n";
    }

  private:
    /** Display width: count UTF-8 code points, not bytes, so the
     *  check marks and dashes in cells do not skew the padding. */
    static std::size_t
    cellWidth(const std::string &cell)
    {
        std::size_t width = 0;
        for (unsigned char ch : cell)
            width += (ch & 0xc0) != 0x80 ? 1 : 0;
        return width;
    }
};

/** One bar of an ASCII chart, scaled so @p max_value fills @p width. */
std::string
bar(double value, double max_value, int width = 40)
{
    const int filled =
        max_value <= 0.0
            ? 0
            : static_cast<int>(value / max_value *
                                   static_cast<double>(width) +
                               0.5);
    return std::string(static_cast<std::size_t>(
                           std::clamp(filled, 0, width)),
                       '#');
}

/** A paper claim re-evaluated against the measured data. */
struct Claim
{
    std::string paper;    //!< the claim, as the paper states it
    std::string measured; //!< what this run of the grid measured
    bool ok;              //!< does the measurement support the claim?
};

void
renderClaims(std::ostream &os, const std::vector<Claim> &claims)
{
    MarkdownTable table;
    table.header = {"claim (paper)", "measured (this report)",
                    "verdict"};
    for (const Claim &claim : claims)
        table.rows.push_back(
            {claim.paper, claim.measured, claim.ok ? "✓" : "✗"});
    table.render(os);
}

// ------------------------------------------------------------------
// Paper-published values (the numbers the paper itself prints).
// "–" marks cells the paper does not report.
// ------------------------------------------------------------------

struct PaperTable2Row
{
    const char *name;
    const char *b16, *b32, *b64;
};

const PaperTable2Row kPaperTable2[] = {
    {"bison", "–", "21.9", "31.2"},
    {"compress", "14.6", "14.6", "34.6"},
    {"eqntott", "6.1", "29.3", "41.4"},
    {"espresso", "1.4", "14.9", "45.7"},
    {"flex", "1.3", "3.9", "24.8"},
    {"gcc", "5.0", "14.1", "24.7"},
    {"li", "0.0", "5.7", "19.1"},
    {"mpeg_play", "0.7", "7.7", "12.0"},
    {"sc", "0.2", "11.0", "21.6"},
    {"doduc", "–", "–", "–"},
    {"mdljdp2", "0.3", "24.4", "66.1"},
    {"nasa7", "0.0", "0.1", "0.1"},
    {"ora", "0.0", "19.0", "23.2"},
    {"tomcatv", "0.1", "0.2", "14.0"},
    {"wave5", "2.7", "35.2", "41.7"},
};

const PaperTable2Row *
paperTable2Row(const std::string &name)
{
    for (const PaperTable2Row &row : kPaperTable2)
        if (name == row.name)
            return &row;
    return nullptr;
}

/** Table 3: the paper's % reduction in taken branches, per benchmark. */
const std::map<std::string, double> kPaperTable3 = {
    {"bison", 25.3},   {"compress", 44.2}, {"eqntott", 24.5},
    {"espresso", 22.4}, {"flex", 25.2},     {"gcc", 37.2},
    {"li", 15.7},       {"mpeg_play", 25.3}, {"sc", 28.8},
};

// ------------------------------------------------------------------
// Grid vocabulary.
// ------------------------------------------------------------------

const std::vector<MachineModel> &
reportMachines()
{
    static const std::vector<MachineModel> machines = {
        MachineModel::P14, MachineModel::P18, MachineModel::P112};
    return machines;
}

const std::vector<SchemeKind> &
reportSchemes()
{
    static const std::vector<SchemeKind> schemes = {
        SchemeKind::Sequential, SchemeKind::InterleavedSequential,
        SchemeKind::BankedSequential, SchemeKind::CollapsingBuffer,
        SchemeKind::Perfect};
    return schemes;
}

std::string
configKey(const RunConfig &config)
{
    std::ostringstream os;
    os << config.benchmark << '|' << static_cast<int>(config.machine)
       << '|' << static_cast<int>(config.scheme) << '|'
       << static_cast<int>(config.layout) << '|'
       << static_cast<int>(config.cbImpl);
    return os.str();
}

} // anonymous namespace

std::string
generateReproReport(Session &session,
                    const ReproReportOptions &options,
                    SweepResult *grid)
{
    const std::uint64_t budget =
        options.dynInsts ? options.dynInsts : defaultDynInsts();

    // --------------------------------------------------------------
    // Phase 1: expand the whole evaluation into one deduplicated
    // config batch and execute it in parallel.  Figures share many
    // grid points (every figure wants the unordered baselines), so
    // deduplication both saves time and guarantees one figure never
    // disagrees with another about a shared cell.
    // --------------------------------------------------------------
    std::vector<RunConfig> batch;
    std::set<std::string> seen;
    auto addPlan = [&](const ExperimentPlan &plan) {
        for (RunConfig &config : plan.expand())
            if (seen.insert(configKey(config)).second)
                batch.push_back(config);
    };

    std::vector<std::string> all_names = integerNames();
    for (const std::string &name : fpNames())
        all_names.push_back(name);

    {
        // Figures 3, 9 and 10: every scheme, unordered, both classes.
        ExperimentPlan plan;
        plan.benchmarks(all_names)
            .machines(reportMachines())
            .schemes(reportSchemes())
            .maxRetired(budget);
        addPlan(plan);
    }
    {
        // Figure 11: the shifter-implemented collapsing buffer.
        ExperimentPlan plan;
        plan.benchmarks(integerNames())
            .machines(reportMachines())
            .scheme(SchemeKind::CollapsingBuffer)
            .cbImpl(Impl::Shifter)
            .maxRetired(budget);
        addPlan(plan);
    }
    {
        // Figure 12: every scheme over reordered code.
        ExperimentPlan plan;
        plan.benchmarks(integerNames())
            .machines(reportMachines())
            .schemes(reportSchemes())
            .layout(LayoutKind::Reordered)
            .maxRetired(budget);
        addPlan(plan);
    }
    {
        // Figure 13: sequential under the two padding layouts.
        ExperimentPlan plan;
        plan.benchmarks(integerNames())
            .machines(reportMachines())
            .scheme(SchemeKind::Sequential)
            .layouts({LayoutKind::PadAll, LayoutKind::PadTrace})
            .maxRetired(budget);
        addPlan(plan);
    }
    {
        // Beyond the paper: the trace cache, unordered, both
        // classes (compared against the collapsing-buffer cells the
        // first plan already contributes).
        ExperimentPlan plan;
        plan.benchmarks(all_names)
            .machines(reportMachines())
            .scheme(SchemeKind::TraceCache)
            .maxRetired(budget);
        addPlan(plan);
    }

    SweepOptions sweep_options;
    sweep_options.threads = options.threads;
    sweep_options.failure = options.failure;
    sweep_options.checkpointPath = options.checkpointPath;
    sweep_options.resume = options.resume;
    sweep_options.replay = options.replay;
    if (options.progress) {
        sweep_options.progress = [&](std::size_t done,
                                     std::size_t total,
                                     const RunResult &) {
            options.progress(done, total);
        };
    }
    SweepEngine engine(session, sweep_options);
    SweepResult sweep = engine.run(batch);
    if (sweep.stopped) {
        // Completed cells are already journaled; rendering a partial
        // grid would produce a document that looks complete but is
        // not, so refuse and let the caller resume.
        std::string detail = "report interrupted with " +
                             std::to_string(
                                 sweep.countWith(RunOutcome::Skipped)) +
                             " of " + std::to_string(batch.size()) +
                             " cells unfinished";
        if (!options.checkpointPath.empty())
            detail += "; resume from " + options.checkpointPath;
        throw SimException(ErrorKind::Io, detail, "interrupted");
    }
    if (grid)
        *grid = sweep;

    // --------------------------------------------------------------
    // Aggregation helpers over the one shared batch.
    // --------------------------------------------------------------
    const std::vector<std::string> int_names = integerNames();
    const std::set<std::string> int_set(int_names.begin(),
                                        int_names.end());
    const std::vector<std::string> fp_names = fpNames();
    const std::set<std::string> fp_set(fp_names.begin(),
                                       fp_names.end());

    auto cell = [&](bool fp, MachineModel machine, SchemeKind scheme,
                    LayoutKind layout, Impl impl) {
        const std::set<std::string> &names = fp ? fp_set : int_set;
        return sweep.suiteWhere([&](const RunConfig &config) {
            return config.machine == machine &&
                   config.scheme == scheme &&
                   config.layout == layout &&
                   (scheme != SchemeKind::CollapsingBuffer ||
                    config.cbImpl == impl) &&
                   names.count(config.benchmark) > 0;
        });
    };
    auto ipcOf = [&](bool fp, MachineModel machine, SchemeKind scheme,
                     LayoutKind layout = LayoutKind::Unordered,
                     Impl impl = Impl::Crossbar) {
        return cell(fp, machine, scheme, layout, impl).hmeanIpc;
    };
    auto eirOf = [&](bool fp, MachineModel machine, SchemeKind scheme,
                     LayoutKind layout = LayoutKind::Unordered,
                     Impl impl = Impl::Crossbar) {
        return cell(fp, machine, scheme, layout, impl).hmeanEir;
    };

    // --------------------------------------------------------------
    // Phase 2: the branch censuses behind Tables 2 and 3 (stream
    // properties, no pipeline timing involved).
    // --------------------------------------------------------------
    struct Table2Row
    {
        std::string name;
        bool isFp;
        double v[3]; // 16B, 32B, 64B
    };
    std::vector<Table2Row> table2;
    for (const WorkloadSpec &spec : fullSuite()) {
        const Workload &workload =
            session.workload(spec.name, LayoutKind::Unordered);
        Table2Row row{spec.name, spec.isFp, {}};
        int column = 0;
        for (int block_bytes : {16, 32, 64}) {
            row.v[column++] =
                runBranchCensus(workload, kEvalInput, budget,
                                block_bytes)
                    .intraBlockPercent();
        }
        table2.push_back(row);
    }

    struct Table3Row
    {
        std::string name;
        double before, after, reduction;
    };
    std::vector<Table3Row> table3;
    for (const std::string &name : int_names) {
        const Workload &unordered =
            session.workload(name, LayoutKind::Unordered);
        const Workload &reordered =
            session.workload(name, LayoutKind::Reordered);
        BranchCensus before =
            runBranchCensus(unordered, kEvalInput, budget, 16);
        BranchCensus after =
            runBranchCensus(reordered, kEvalInput, budget, 16);
        const double reduction =
            before.takenTotal == 0
                ? 0.0
                : 100.0 *
                      (static_cast<double>(before.takenTotal) -
                       static_cast<double>(after.takenTotal)) /
                      static_cast<double>(before.takenTotal);
        table3.push_back({name, before.takenPer100(),
                          after.takenPer100(), reduction});
    }

    // --------------------------------------------------------------
    // Phase 3: two instrumented runs for the observability appendix.
    // --------------------------------------------------------------
    MetricRegistry seq_metrics, cb_metrics;
    {
        RunConfig config;
        config.benchmark = "gcc";
        config.machine = MachineModel::P112;
        config.maxRetired = budget;

        config.scheme = SchemeKind::Sequential;
        RunInstrumentation inst;
        inst.metrics = &seq_metrics;
        session.run(config, inst);

        config.scheme = SchemeKind::CollapsingBuffer;
        inst.metrics = &cb_metrics;
        session.run(config, inst);
    }

    // --------------------------------------------------------------
    // Rendering.
    // --------------------------------------------------------------
    std::ostringstream os;

    os << "# Reproduction report\n\n"
       << "**Source paper:** T. M. Conte, K. N. Menezes, "
          "P. M. Mills and B. A. Patel,\n"
          "\"Optimization of Instruction Fetch Mechanisms for High "
          "Issue Rates\", ISCA 1995.\n\n"
       << "> Generated by `fetchsim_cli report` — **do not edit by "
          "hand**.  Regenerate with\n"
          "> `./build/examples/fetchsim_cli report --out "
          "docs/RESULTS.md`; the\n"
          "> `docs_fresh` ctest fails if this file and the simulator "
          "disagree.\n\n"
       << "Budget: **" << budget
       << " retired instructions per run**.  The grid is "
          "deterministic:\n"
          "re-running at any `--threads` count reproduces this file "
          "byte-for-byte.\n\n"
       << "**How to read the comparisons.**  The paper's workloads "
          "are SPEC92 binaries\ntraced on 1995 HP hardware; ours are "
          "calibrated synthetic programs\n(DESIGN.md §1), so absolute "
          "IPC is not expected to match the paper.  Where\nthe paper "
          "prints numbers (Tables 2 and 3) they are quoted next to "
          "ours; for\nthe figures, every *qualitative claim* of the "
          "evaluation — orderings, trend\ndirections, crossovers — "
          "is re-evaluated against the measured data each\ntime this "
          "report is generated, and the verdict column is computed, "
          "not\ntranscribed.\n\n";

    // ---------------- Failed cells (only when any exist) ----------
    // A clean grid renders nothing here, preserving the byte-identity
    // the docs_fresh test enforces; under a keep-going policy a
    // failed cell is excluded from every aggregate above and called
    // out here with its structured error.
    if (const std::vector<std::size_t> failed = sweep.failedCells();
        !failed.empty()) {
        os << "## ⚠ Failed cells\n\n"
           << failed.size() << " of " << batch.size()
           << " grid cells failed and are excluded from every "
              "aggregate below:\n\n";
        MarkdownTable table;
        table.header = {"cell", "benchmark", "machine", "scheme",
                        "layout", "attempts", "error"};
        for (std::size_t i : failed) {
            const RunStatus &status = sweep.statuses[i];
            const RunConfig &config = sweep.runs[i].config;
            table.rows.push_back(
                {std::to_string(i), config.benchmark,
                 machineName(config.machine),
                 schemeName(config.scheme), layoutName(config.layout),
                 std::to_string(status.attempts),
                 status.error.format()});
        }
        table.render(os);
    }

    // ---------------- Figure 3 ----------------
    os << "## Figure 3 — sequential vs perfect fetching\n\n";
    for (bool fp : {false, true}) {
        MarkdownTable table;
        table.header = {std::string("hmean IPC, ") +
                            (fp ? "floating-point" : "integer") +
                            " suite",
                        "P14", "P18", "P112"};
        for (SchemeKind scheme :
             {SchemeKind::Sequential, SchemeKind::Perfect}) {
            std::vector<std::string> row = {schemeName(scheme)};
            for (MachineModel machine : reportMachines())
                row.push_back(fmt(ipcOf(fp, machine, scheme), 3));
            table.rows.push_back(row);
        }
        std::vector<std::string> gap_row = {"gap"};
        for (MachineModel machine : reportMachines()) {
            gap_row.push_back(
                delta(ipcOf(fp, machine, SchemeKind::Sequential),
                      ipcOf(fp, machine, SchemeKind::Perfect)));
        }
        table.rows.push_back(gap_row);
        table.render(os);
    }

    {
        double gap[2][3];
        for (int fp = 0; fp < 2; ++fp)
            for (int m = 0; m < 3; ++m) {
                const MachineModel machine = reportMachines()[m];
                gap[fp][m] = percentOf(
                    ipcOf(fp, machine, SchemeKind::Perfect) -
                        ipcOf(fp, machine, SchemeKind::Sequential),
                    ipcOf(fp, machine, SchemeKind::Perfect));
            }
        // The paper's figure contrasts the issue-rate extremes; the
        // intermediate machine can wiggle within budget noise.
        const bool widens =
            gap[0][2] > gap[0][0] && gap[1][2] > gap[1][0];
        double min_gap = gap[0][0];
        for (int fp = 0; fp < 2; ++fp)
            for (int m = 0; m < 3; ++m)
                min_gap = std::min(min_gap, gap[fp][m]);
        renderClaims(
            os,
            {{"The penalty of sequential fetching grows with "
              "issue rate",
              "int " + pct(gap[0][0]) + " → " + pct(gap[0][1]) +
                  " → " + pct(gap[0][2]) + "; fp " + pct(gap[1][0]) +
                  " → " + pct(gap[1][1]) + " → " + pct(gap[1][2]) +
                  " below perfect",
              widens},
             {"FP code at low issue rates needs better fetch least "
              "(\"possible exception\")",
              "smallest of the six gaps is fp/P14 at " +
                  pct(gap[1][0]),
              gap[1][0] <= min_gap + 1e-9}});
    }

    // ---------------- Table 2 ----------------
    os << "## Table 2 — intra-block taken branches\n\n"
       << "Percent of taken branches whose target lies in the same "
          "cache block\n(paper → ours; block sizes 16B/32B/64B match "
          "P14/P18/P112; \"–\" = not\nreported by the paper):\n\n";
    {
        MarkdownTable table;
        table.header = {"class", "benchmark", "16B", "32B", "64B"};
        for (const Table2Row &row : table2) {
            const PaperTable2Row *paper = paperTable2Row(row.name);
            auto combine = [&](const char *published, double ours) {
                return std::string(published ? published : "–") +
                       " → " + fmt(ours, 1);
            };
            table.rows.push_back(
                {row.isFp ? "FP" : "Int", row.name,
                 combine(paper ? paper->b16 : nullptr, row.v[0]),
                 combine(paper ? paper->b32 : nullptr, row.v[1]),
                 combine(paper ? paper->b64 : nullptr, row.v[2])});
        }
        table.render(os);

        int monotone = 0, common_at_64 = 0;
        double nasa7_at_64 = 0.0;
        for (const Table2Row &row : table2) {
            monotone += (row.v[0] <= row.v[1] + 1e-9 &&
                         row.v[1] <= row.v[2] + 1e-9)
                            ? 1
                            : 0;
            common_at_64 += row.v[2] >= 10.0 ? 1 : 0;
            if (row.name == "nasa7")
                nasa7_at_64 = row.v[2];
        }
        const int total = static_cast<int>(table2.size());
        renderClaims(
            os,
            {{"Intra-block branches rise steeply with block size",
              std::to_string(monotone) + "/" + std::to_string(total) +
                  " benchmarks rise monotonically from 16B to 64B",
              monotone == total},
             {"At 64B blocks intra-block branches are common, "
              "motivating the collapsing buffer",
              std::to_string(common_at_64) + "/" +
                  std::to_string(total) +
                  " benchmarks at or above 10% at 64B",
              common_at_64 * 2 > total},
             {"Long-vector FP codes (nasa7) have essentially none",
              "nasa7 at 64B: " + pct(nasa7_at_64),
              nasa7_at_64 < 1.0}});
        os << "Individual cells are site-alignment lotteries (a "
              "handful of hot branch\nsites set each value — true of "
              "SPEC too); the suite-level shape is the\nreproducible "
              "claim.\n\n";
    }

    // ---------------- Figure 9 ----------------
    os << "## Figure 9 — IPC of the alignment mechanisms\n\n";
    for (bool fp : {false, true}) {
        MarkdownTable table;
        table.header = {std::string("hmean IPC, ") +
                            (fp ? "floating-point" : "integer") +
                            " suite",
                        "P14", "P18", "P112"};
        for (SchemeKind scheme : reportSchemes()) {
            std::vector<std::string> row = {schemeName(scheme)};
            for (MachineModel machine : reportMachines())
                row.push_back(fmt(ipcOf(fp, machine, scheme), 3));
            table.rows.push_back(row);
        }
        table.render(os);
    }
    {
        os << "```\nP112, integer suite (hmean IPC)\n";
        const double max_ipc =
            ipcOf(false, MachineModel::P112, SchemeKind::Perfect);
        for (SchemeKind scheme : reportSchemes()) {
            const double ipc =
                ipcOf(false, MachineModel::P112, scheme);
            os << std::left << std::setw(24) << schemeName(scheme)
               << std::right << " " << fmt(ipc, 3) << " |"
               << bar(ipc, max_ipc) << "\n";
        }
        os << "```\n\n";

        int ordered_points = 0;
        double max_cb_gap = 0.0, min_inter_gain = 1e9,
               max_inter_gain = -1e9;
        for (int fp = 0; fp < 2; ++fp) {
            for (MachineModel machine : reportMachines()) {
                double ipc[5];
                for (int s = 0; s < 5; ++s)
                    ipc[s] =
                        ipcOf(fp, machine, reportSchemes()[s]);
                ordered_points +=
                    (ipc[0] <= ipc[1] + 1e-9 &&
                     ipc[1] <= ipc[2] + 1e-9 &&
                     ipc[2] <= ipc[3] + 1e-9 &&
                     ipc[3] <= ipc[4] + 1e-9)
                        ? 1
                        : 0;
                max_cb_gap = std::max(
                    max_cb_gap,
                    percentOf(ipc[4] - ipc[3], ipc[4]));
                const double inter_gain =
                    percentOf(ipc[1] - ipc[0], ipc[0]);
                min_inter_gain = std::min(min_inter_gain, inter_gain);
                max_inter_gain = std::max(max_inter_gain, inter_gain);
            }
        }
        renderClaims(
            os,
            {{"Ordering sequential < interleaved < banked < "
              "collapsing ≤ perfect",
              "holds at " + std::to_string(ordered_points) +
                  "/6 (machine × class) points",
              ordered_points == 6},
             {"Interleaving alone gives only a slight increase",
              "+" + fmt(min_inter_gain, 1) + "% to +" +
                  fmt(max_inter_gain, 1) + "% over sequential",
              max_inter_gain < 20.0},
             {"The collapsing buffer stays near perfect everywhere",
              "worst gap to perfect: " + pct(max_cb_gap),
              max_cb_gap < 10.0}});
    }

    // ---------------- Figure 10 ----------------
    os << "## Figure 10 — effective issue rate relative to perfect\n\n"
       << "EIR of each scheme as a percentage of the perfect "
          "mechanism's EIR\n(harmonic means):\n\n";
    double eir_ratio[2][4][3]; // [class][scheme][machine]
    for (int fp = 0; fp < 2; ++fp) {
        MarkdownTable table;
        table.header = {std::string("EIR/EIR(perfect), ") +
                            (fp ? "floating-point" : "integer") +
                            " suite",
                        "P14", "P18", "P112"};
        for (int s = 0; s < 4; ++s) {
            const SchemeKind scheme = reportSchemes()[s];
            std::vector<std::string> row = {schemeName(scheme)};
            for (int m = 0; m < 3; ++m) {
                const MachineModel machine = reportMachines()[m];
                eir_ratio[fp][s][m] =
                    percentOf(eirOf(fp, machine, scheme),
                              eirOf(fp, machine,
                                    SchemeKind::Perfect));
                row.push_back(pct(eir_ratio[fp][s][m]));
            }
            table.rows.push_back(row);
        }
        table.render(os);
    }
    {
        double min_cb = 100.0, max_cb_drift = 0.0;
        bool others_decay = true;
        for (int fp = 0; fp < 2; ++fp) {
            for (int s = 0; s < 3; ++s)
                others_decay = others_decay &&
                               eir_ratio[fp][s][2] <
                                   eir_ratio[fp][s][0];
            for (int m = 0; m < 3; ++m)
                min_cb = std::min(min_cb, eir_ratio[fp][3][m]);
            max_cb_drift = std::max(
                max_cb_drift, std::abs(eir_ratio[fp][3][2] -
                                       eir_ratio[fp][3][0]));
        }
        renderClaims(
            os,
            {{"The collapsing buffer holds ≥90% of perfect at every "
              "issue rate",
              "minimum across all six points: " + pct(min_cb),
              min_cb >= 90.0},
             {"Every other scheme's efficiency decays as issue rate "
              "grows",
              "sequential/interleaved/banked all lower at P112 than "
              "at P14 (both classes)",
              others_decay},
             {"The collapsing buffer's efficiency is ~flat across "
              "machines",
              "largest P14→P112 drift: " +
                  fmt(max_cb_drift, 1) + " points",
              max_cb_drift <= 5.0}});
    }

    // ---------------- Figure 11 ----------------
    os << "## Figure 11 — shifter-implemented collapsing buffer\n\n"
       << "The shifter implementation lengthens the fetch pipeline "
          "(misprediction\npenalty 3 instead of 2).  Integer suite, "
          "hmean IPC:\n\n";
    {
        struct Fig11Row
        {
            const char *label;
            SchemeKind scheme;
            Impl impl;
        };
        const Fig11Row rows[] = {
            {"sequential", SchemeKind::Sequential, Impl::Crossbar},
            {"interleaved-sequential",
             SchemeKind::InterleavedSequential, Impl::Crossbar},
            {"banked-sequential", SchemeKind::BankedSequential,
             Impl::Crossbar},
            {"collapsing-buffer (shifter, penalty 3)",
             SchemeKind::CollapsingBuffer, Impl::Shifter},
            {"collapsing-buffer (crossbar, penalty 2)",
             SchemeKind::CollapsingBuffer, Impl::Crossbar},
            {"perfect", SchemeKind::Perfect, Impl::Crossbar},
        };
        MarkdownTable table;
        table.header = {"configuration", "P14", "P18", "P112"};
        for (const Fig11Row &row : rows) {
            std::vector<std::string> cells = {row.label};
            for (MachineModel machine : reportMachines())
                cells.push_back(
                    fmt(ipcOf(false, machine, row.scheme,
                              LayoutKind::Unordered, row.impl),
                        3));
            table.rows.push_back(cells);
        }
        table.render(os);

        auto banked = [&](MachineModel machine) {
            return ipcOf(false, machine,
                         SchemeKind::BankedSequential);
        };
        auto shifter = [&](MachineModel machine) {
            return ipcOf(false, machine,
                         SchemeKind::CollapsingBuffer,
                         LayoutKind::Unordered, Impl::Shifter);
        };
        auto crossbar = [&](MachineModel machine) {
            return ipcOf(false, machine,
                         SchemeKind::CollapsingBuffer,
                         LayoutKind::Unordered, Impl::Crossbar);
        };
        bool crossbar_wins = true;
        for (MachineModel machine : reportMachines())
            crossbar_wins =
                crossbar_wins && crossbar(machine) > banked(machine);
        const double p112_margin = percentOf(
            std::abs(banked(MachineModel::P112) -
                     shifter(MachineModel::P112)),
            banked(MachineModel::P112));
        renderClaims(
            os,
            {{"Banked sequential beats the shifter collapsing "
              "buffer at P14",
              "banked " + fmt(banked(MachineModel::P14), 3) +
                  " vs shifter " +
                  fmt(shifter(MachineModel::P14), 3),
              banked(MachineModel::P14) >
                  shifter(MachineModel::P14)},
             {"...and the two are within a sliver at P112",
              "margin " + pct(p112_margin), p112_margin <= 5.0},
             {"The crossbar (penalty-2) implementation is required "
              "for the collapsing buffer to pay off",
              "crossbar above banked at all three machines",
              crossbar_wins}});
    }

    // ---------------- Table 3 ----------------
    os << "## Table 3 — taken-branch reduction from code "
          "reordering\n\n"
       << "Dynamic taken branches per 100 instructions before/after "
          "profile-driven\nreordering (profiles from the training "
          "inputs, census on the evaluation\ninput):\n\n";
    {
        MarkdownTable table;
        table.header = {"benchmark", "taken/100 (unordered)",
                        "taken/100 (reordered)", "reduction (ours)",
                        "reduction (paper)"};
        for (const Table3Row &row : table3) {
            auto paper = kPaperTable3.find(row.name);
            table.rows.push_back(
                {row.name, fmt(row.before, 2), fmt(row.after, 2),
                 pct(row.reduction),
                 paper == kPaperTable3.end()
                     ? "–"
                     : pct(paper->second)});
        }
        table.render(os);

        int at_least_20 = 0;
        double lo = 1e9, hi = -1e9;
        for (const Table3Row &row : table3) {
            at_least_20 += row.reduction >= 20.0 ? 1 : 0;
            lo = std::min(lo, row.reduction);
            hi = std::max(hi, row.reduction);
        }
        const int total = static_cast<int>(table3.size());
        renderClaims(
            os,
            {{"A majority of benchmarks lose at least ~20% of their "
              "taken branches",
              std::to_string(at_least_20) + "/" +
                  std::to_string(total) + " at or above 20%",
              at_least_20 * 2 > total},
             {"Reductions span roughly 16-44% (paper: 15.7% for li "
              "to 44.2% for compress)",
              "ours span " + pct(lo) + " to " + pct(hi),
              lo > 5.0 && hi < 60.0}});
    }

    // ---------------- Figure 12 ----------------
    os << "## Figure 12 — hardware schemes after code reordering\n\n"
       << "Integer suite, hmean IPC (unordered baselines for "
          "reference):\n\n";
    {
        struct Fig12Row
        {
            const char *label;
            SchemeKind scheme;
            LayoutKind layout;
        };
        const Fig12Row rows[] = {
            {"sequential (unordered)", SchemeKind::Sequential,
             LayoutKind::Unordered},
            {"sequential (reordered)", SchemeKind::Sequential,
             LayoutKind::Reordered},
            {"interleaved-sequential (reordered)",
             SchemeKind::InterleavedSequential,
             LayoutKind::Reordered},
            {"banked-sequential (reordered)",
             SchemeKind::BankedSequential, LayoutKind::Reordered},
            {"collapsing-buffer (reordered)",
             SchemeKind::CollapsingBuffer, LayoutKind::Reordered},
            {"perfect (reordered)", SchemeKind::Perfect,
             LayoutKind::Reordered},
            {"perfect (unordered)", SchemeKind::Perfect,
             LayoutKind::Unordered},
        };
        MarkdownTable table;
        table.header = {"configuration", "P14", "P18", "P112"};
        for (const Fig12Row &row : rows) {
            std::vector<std::string> cells = {row.label};
            for (MachineModel machine : reportMachines())
                cells.push_back(
                    fmt(ipcOf(false, machine, row.scheme,
                              row.layout),
                        3));
            table.rows.push_back(cells);
        }
        table.render(os);

        // The collapsing buffer is checked separately below:
        // reordering removes its intra-block prey, so the paper's
        // "enhances every scheme" claim is about the simple schemes.
        int improved = 0;
        const SchemeKind hw[] = {SchemeKind::Sequential,
                                 SchemeKind::InterleavedSequential,
                                 SchemeKind::BankedSequential};
        for (SchemeKind scheme : hw)
            for (MachineModel machine : reportMachines())
                improved += ipcOf(false, machine, scheme,
                                  LayoutKind::Reordered) >
                                    ipcOf(false, machine, scheme)
                                ? 1
                                : 0;
        double worst_cb_vs_banked = 0.0;
        for (MachineModel machine : reportMachines()) {
            worst_cb_vs_banked = std::max(
                worst_cb_vs_banked,
                percentOf(
                    std::abs(
                        ipcOf(false, machine,
                              SchemeKind::CollapsingBuffer,
                              LayoutKind::Reordered) -
                        ipcOf(false, machine,
                              SchemeKind::BankedSequential,
                              LayoutKind::Reordered)),
                    ipcOf(false, machine,
                          SchemeKind::BankedSequential,
                          LayoutKind::Reordered)));
        }
        double worst_inter_vs_perfect = 0.0;
        for (MachineModel machine : reportMachines()) {
            worst_inter_vs_perfect = std::max(
                worst_inter_vs_perfect,
                percentOf(
                    ipcOf(false, machine, SchemeKind::Perfect) -
                        ipcOf(false, machine,
                              SchemeKind::InterleavedSequential,
                              LayoutKind::Reordered),
                    ipcOf(false, machine, SchemeKind::Perfect)));
        }
        const double cb_vs_perfect_p112 = percentOf(
            ipcOf(false, MachineModel::P112, SchemeKind::Perfect,
                  LayoutKind::Reordered) -
                ipcOf(false, MachineModel::P112,
                      SchemeKind::CollapsingBuffer,
                      LayoutKind::Reordered),
            ipcOf(false, MachineModel::P112, SchemeKind::Perfect,
                  LayoutKind::Reordered));
        renderClaims(
            os,
            {{"Reordering significantly enhances the sequential "
              "schemes",
              std::to_string(improved) +
                  "/9 (scheme × machine) cells improve",
              improved == 9},
             {"After reordering the collapsing buffer degenerates "
              "to banked sequential (its intra-block prey is gone)",
              "largest difference across machines: " +
                  pct(worst_cb_vs_banked),
              worst_cb_vs_banked <= 1.0},
             {"Reordered interleaved-sequential approaches "
              "*unordered* perfect",
              "worst gap across machines: " +
                  pct(worst_inter_vs_perfect),
              worst_inter_vs_perfect <= 10.0},
             {"Reordered collapsing buffer nearly matches reordered "
              "perfect",
              "gap at P112: " + pct(cb_vs_perfect_p112),
              cb_vs_perfect_p112 <= 10.0}});
        os << "The compiler-vs-hardware tradeoff the paper closes "
              "on: after reordering,\nthe cheap schemes recover most "
              "of what the collapsing buffer's hardware\nbuys on "
              "unordered code.\n\n";
    }

    // ---------------- Figure 13 ----------------
    os << "## Figure 13 — nop padding for the sequential scheme\n\n"
       << "Integer suite, hmean IPC (padding nops excluded from IPC, "
          "so padded and\nunpadded layouts are comparable):\n\n";
    {
        struct Fig13Row
        {
            const char *label;
            LayoutKind layout;
            SchemeKind scheme;
        };
        const Fig13Row rows[] = {
            {"sequential (unordered)", LayoutKind::Unordered,
             SchemeKind::Sequential},
            {"sequential (pad-all)", LayoutKind::PadAll,
             SchemeKind::Sequential},
            {"sequential (reordered)", LayoutKind::Reordered,
             SchemeKind::Sequential},
            {"sequential (pad-trace)", LayoutKind::PadTrace,
             SchemeKind::Sequential},
            {"perfect (reordered)", LayoutKind::Reordered,
             SchemeKind::Perfect},
            {"perfect (unordered)", LayoutKind::Unordered,
             SchemeKind::Perfect},
        };
        MarkdownTable table;
        table.header = {"configuration", "P14", "P18", "P112"};
        for (const Fig13Row &row : rows) {
            std::vector<std::string> cells = {row.label};
            for (MachineModel machine : reportMachines())
                cells.push_back(
                    fmt(ipcOf(false, machine, row.scheme,
                              row.layout),
                        3));
            table.rows.push_back(cells);
        }
        table.render(os);

        auto seq = [&](MachineModel machine, LayoutKind layout) {
            return ipcOf(false, machine, SchemeKind::Sequential,
                         layout);
        };
        const double padall_p14_gain = percentOf(
            seq(MachineModel::P14, LayoutKind::PadAll) -
                seq(MachineModel::P14, LayoutKind::Unordered),
            seq(MachineModel::P14, LayoutKind::Unordered));
        const double padall_p112_gain = percentOf(
            seq(MachineModel::P112, LayoutKind::PadAll) -
                seq(MachineModel::P112, LayoutKind::Unordered),
            seq(MachineModel::P112, LayoutKind::Unordered));
        const double padtrace_p112_gain = percentOf(
            seq(MachineModel::P112, LayoutKind::PadTrace) -
                seq(MachineModel::P112, LayoutKind::Reordered),
            seq(MachineModel::P112, LayoutKind::Reordered));
        auto signedPct = [](double value) {
            return (value >= 0 ? "+" : "") + fmt(value, 1) + "%";
        };
        renderClaims(
            os,
            {{"Pad-all achieves gains only at small block sizes",
              "P14 " + signedPct(padall_p14_gain) + ", P112 " +
                  signedPct(padall_p112_gain),
              padall_p14_gain > padall_p112_gain},
             {"At large blocks pad-all's code expansion destroys "
              "cache locality",
              "P112 pad-all ends below unordered sequential",
              padall_p112_gain < 0.0},
             {"Pad-trace marginally improves on reordered "
              "sequential",
              "P112 " + signedPct(padtrace_p112_gain),
              padtrace_p112_gain > -1.0 &&
                  padtrace_p112_gain < 10.0}});
    }

    // ---------------- Beyond the paper: trace cache ----------------
    os << "## Beyond the paper — trace cache vs. collapsing "
          "buffer\n\n"
       << "The paper's collapsing buffer realigns instructions "
          "within one cache\nline pair; a Rotenberg-style trace "
          "cache instead snapshots dynamic\nsequences from the "
          "retired stream, indexed by start PC and a\nmulti-branch "
          "predicted outcome vector, and replays them in a "
          "single\ncycle.  Hmean IPC, unordered code:\n\n";
    {
        struct TcRow
        {
            const char *label;
            bool fp;
            SchemeKind scheme;
        };
        const TcRow rows[] = {
            {"collapsing-buffer (int)", false,
             SchemeKind::CollapsingBuffer},
            {"trace-cache (int)", false, SchemeKind::TraceCache},
            {"collapsing-buffer (fp)", true,
             SchemeKind::CollapsingBuffer},
            {"trace-cache (fp)", true, SchemeKind::TraceCache},
        };
        MarkdownTable table;
        table.header = {"configuration", "P14", "P18", "P112"};
        for (const TcRow &row : rows) {
            std::vector<std::string> cells = {row.label};
            for (MachineModel machine : reportMachines())
                cells.push_back(
                    fmt(ipcOf(row.fp, machine, row.scheme), 3));
            table.rows.push_back(cells);
        }
        table.render(os);

        // Fetch IPC (EIR: instructions delivered per non-stall fetch
        // cycle) per benchmark on the widest machine, where the
        // single-cycle-per-trace advantage should show.
        auto benchEir = [&](const std::string &name,
                            SchemeKind scheme) {
            return sweep
                .suiteWhere([&](const RunConfig &config) {
                    return config.benchmark == name &&
                           config.machine == MachineModel::P112 &&
                           config.scheme == scheme &&
                           config.layout == LayoutKind::Unordered &&
                           (scheme !=
                                SchemeKind::CollapsingBuffer ||
                            config.cbImpl == Impl::Crossbar);
                })
                .hmeanEir;
        };
        auto signedPct = [](double value) {
            return (value >= 0 ? "+" : "") + fmt(value, 1) + "%";
        };
        os << "Per-benchmark fetch IPC (instructions delivered per "
              "fetch cycle) on\nP112:\n\n";
        MarkdownTable eir_table;
        eir_table.header = {"benchmark", "collapsing-buffer",
                            "trace-cache", "delta"};
        int tc_wins = 0;
        std::string best_name;
        double best_gain = -1e9;
        for (const std::string &name : all_names) {
            const double cb_eir =
                benchEir(name, SchemeKind::CollapsingBuffer);
            const double tc_eir =
                benchEir(name, SchemeKind::TraceCache);
            const double gain =
                percentOf(tc_eir - cb_eir, cb_eir);
            if (tc_eir > cb_eir)
                ++tc_wins;
            if (gain > best_gain) {
                best_gain = gain;
                best_name = name;
            }
            eir_table.rows.push_back({name, fmt(cb_eir, 3),
                                      fmt(tc_eir, 3),
                                      signedPct(gain)});
        }
        eir_table.render(os);

        const double tc_p112_int =
            eirOf(false, MachineModel::P112, SchemeKind::TraceCache);
        const double seq_p112_int = eirOf(
            false, MachineModel::P112, SchemeKind::Sequential);
        renderClaims(
            os,
            {{"Trace cache beats the collapsing buffer's fetch IPC "
              "at P112 on at least one benchmark",
              std::to_string(tc_wins) + " of " +
                  std::to_string(all_names.size()) +
                  " benchmarks; best " + best_name + " " +
                  signedPct(best_gain),
              tc_wins >= 1},
             {"Trace hits fetch past taken branches that stop the "
              "sequential scheme",
              "P112 integer fetch IPC: trace-cache " +
                  fmt(tc_p112_int, 3) + " vs sequential " +
                  fmt(seq_p112_int, 3),
              tc_p112_int > seq_p112_int}});
    }

    // ---------------- Appendix ----------------
    os << "## Appendix — fetch-cycle anatomy "
          "(observability subsystem)\n\n"
       << "The per-run metric registry (stats/metrics.h) breaks every "
          "simulated\ncycle into delivering / stalled-on-penalty / "
          "stalled-empty and attributes\neach fetch group's "
          "termination.  gcc on P112, unordered, sequential "
          "vs\ncollapsing-buffer fetch:\n\n";
    {
        MarkdownTable table;
        table.header = {"metric", "sequential", "collapsing-buffer"};
        auto counter_row = [&](const std::string &path) {
            const Counter *a = seq_metrics.findCounter(path);
            const Counter *b = cb_metrics.findCounter(path);
            if ((a && a->value()) || (b && b->value()))
                table.rows.push_back(
                    {"`" + path + "`",
                     std::to_string(a ? a->value() : 0),
                     std::to_string(b ? b->value() : 0)});
        };
        counter_row("fetch.cycles.delivering");
        counter_row("fetch.cycles.stalled_penalty");
        counter_row("fetch.cycles.stalled_empty");
        counter_row("fetch.collapse_events");
        for (const Counter *counter : seq_metrics.counters()) {
            const std::string &path = counter->path();
            if (path.rfind("fetch.stop.", 0) == 0)
                counter_row(path);
        }
        counter_row("branch.mispredicts");
        counter_row("icache.misses");
        table.render(os);
    }
    {
        const Histogram *seq_hist =
            seq_metrics.findHistogram("fetch.group_size");
        const Histogram *cb_hist =
            cb_metrics.findHistogram("fetch.group_size");
        if (seq_hist && cb_hist) {
            os << "Fetch-group size distribution (instructions "
                  "delivered per non-stall\ncycle):\n\n```\n";
            std::uint64_t max_count = 1;
            for (std::size_t b = 0; b < seq_hist->numBuckets(); ++b)
                max_count = std::max(
                    {max_count, seq_hist->bucketCount(b),
                     cb_hist->bucketCount(b)});
            os << std::left << std::setw(10) << "group"
               << std::setw(34) << "sequential"
               << "collapsing-buffer\n";
            for (std::size_t b = 0; b < seq_hist->numBuckets(); ++b) {
                if (seq_hist->bucketCount(b) == 0 &&
                    cb_hist->bucketCount(b) == 0)
                    continue;
                os << std::left << std::setw(10)
                   << seq_hist->bucketLabel(b) << std::setw(34)
                   << bar(static_cast<double>(
                              seq_hist->bucketCount(b)),
                          static_cast<double>(max_count), 24)
                   << bar(static_cast<double>(
                              cb_hist->bucketCount(b)),
                          static_cast<double>(max_count), 24)
                   << "\n";
            }
            os << "```\n\n"
               << "Mean group size: sequential "
               << fmt(seq_hist->mean(), 2) << ", collapsing-buffer "
               << fmt(cb_hist->mean(), 2)
               << ".\nThe collapsing buffer keeps groups intact "
                  "across intra-block branches\n(`fetch.collapse_"
                  "events` above), which is exactly the paper's "
                  "mechanism.\n\n";
        }
    }

    os << "---\n\n"
       << "*Every number above is recomputed by `fetchsim_cli "
          "report`; the verdict\ncolumn is evaluated from the "
          "measured data at generation time.  See\nEXPERIMENTS.md "
          "for the figure-by-figure methodology and "
          "docs/ARCHITECTURE.md\nfor the component map.*\n";

    return os.str();
}

} // namespace fetchsim
