#include "sim/experiment.h"

#include <cstdlib>
#include <map>
#include <tuple>

#include "compiler/code_layout.h"
#include "compiler/function_layout.h"
#include "compiler/nop_padding.h"
#include "stats/log.h"
#include "stats/summary.h"
#include "workload/benchmark_suite.h"

namespace fetchsim
{

const char *
layoutName(LayoutKind layout)
{
    switch (layout) {
      case LayoutKind::Unordered: return "unordered";
      case LayoutKind::Reordered: return "reordered";
      case LayoutKind::PadAll:    return "pad-all";
      case LayoutKind::PadTrace:  return "pad-trace";
      case LayoutKind::ReorderedPlaced: return "reordered+placed";
      default:                    return "???";
    }
}

std::uint64_t
defaultDynInsts()
{
    static const std::uint64_t value = [] {
        const char *env = std::getenv("FETCHSIM_DYN_INSTS");
        if (env) {
            const long long parsed = std::atoll(env);
            if (parsed > 0)
                return static_cast<std::uint64_t>(parsed);
            warn("ignoring bad FETCHSIM_DYN_INSTS");
        }
        return static_cast<std::uint64_t>(120000);
    }();
    return value;
}

namespace
{

using WorkloadKey = std::tuple<std::string, LayoutKind, std::uint64_t>;

/**
 * Per-process cache of prepared workloads.  Values are heap-owned so
 * references stay valid as the map grows.
 */
std::map<WorkloadKey, std::unique_ptr<Workload>> &
workloadCache()
{
    static std::map<WorkloadKey, std::unique_ptr<Workload>> cache;
    return cache;
}

std::unique_ptr<Workload>
prepare(const std::string &benchmark, LayoutKind layout,
        std::uint64_t block_bytes)
{
    const WorkloadSpec &spec = benchmarkByName(benchmark);
    auto workload = std::make_unique<Workload>(spec);
    *workload = generateWorkload(spec);

    switch (layout) {
      case LayoutKind::Unordered:
        break;
      case LayoutKind::Reordered:
        reorderWorkload(*workload);
        break;
      case LayoutKind::PadAll:
        if (block_bytes == 0)
            fatal("pad-all layout needs a block size");
        padAll(*workload, block_bytes);
        break;
      case LayoutKind::PadTrace: {
        if (block_bytes == 0)
            fatal("pad-trace layout needs a block size");
        std::vector<Trace> traces;
        reorderWorkload(*workload, {}, {}, &traces);
        padTrace(*workload, traces, block_bytes);
        break;
      }
      case LayoutKind::ReorderedPlaced: {
        EdgeProfile profile = collectProfile(*workload);
        std::vector<Trace> traces =
            selectTraces(workload->program, profile);
        applyTraceLayout(*workload, traces);
        placeFunctions(*workload, profile);
        break;
      }
      default:
        fatal("prepare: bad layout kind");
    }
    return workload;
}

} // anonymous namespace

const Workload &
preparedWorkload(const std::string &benchmark, LayoutKind layout,
                 std::uint64_t block_bytes)
{
    // Padded layouts depend on the block size; the others do not.
    const std::uint64_t key_block =
        (layout == LayoutKind::PadAll || layout == LayoutKind::PadTrace)
            ? block_bytes
            : 0;
    WorkloadKey key{benchmark, layout, key_block};
    auto &cache = workloadCache();
    auto it = cache.find(key);
    if (it == cache.end()) {
        it = cache.emplace(key, prepare(benchmark, layout, key_block))
                 .first;
    }
    return *it->second;
}

RunResult
runExperiment(const RunConfig &config)
{
    MachineConfig cfg = makeMachine(config.machine);
    cfg.predictorKind = config.predictorKind;
    cfg.useRas = config.useRas;
    if (config.specDepthOverride >= 0)
        cfg.specDepth = config.specDepthOverride;
    if (config.btbEntriesOverride > 0)
        cfg.btbEntries = config.btbEntriesOverride;
    if (config.windowSizeOverride > 0)
        cfg.windowSize = config.windowSizeOverride;
    if (config.missPenaltyOverride >= 0)
        cfg.icacheMissPenalty = config.missPenaltyOverride;
    if (config.icacheWaysOverride > 0)
        cfg.icacheWays = config.icacheWaysOverride;

    const Workload &workload = preparedWorkload(
        config.benchmark, config.layout, cfg.blockBytes);

    std::unique_ptr<FetchMechanism> mechanism;
    if (config.scheme == SchemeKind::CollapsingBuffer) {
        mechanism = std::make_unique<CollapsingBufferFetch>(
            cfg, config.cbImpl, config.cbAllowBackward);
    } else {
        mechanism = makeFetchMechanism(config.scheme, cfg);
    }

    Processor proc(workload, config.input, cfg, std::move(mechanism));
    const std::uint64_t budget =
        config.maxRetired ? config.maxRetired : defaultDynInsts();
    proc.run(budget);

    RunResult result;
    result.config = config;
    result.counters = proc.counters();
    return result;
}

SuiteResult
runSuite(const std::vector<std::string> &names, MachineModel machine,
         SchemeKind scheme, LayoutKind layout,
         std::uint64_t max_retired,
         CollapsingBufferFetch::Impl cb_impl)
{
    SuiteResult suite;
    std::vector<double> ipcs;
    std::vector<double> eirs;
    for (const auto &name : names) {
        RunConfig config;
        config.benchmark = name;
        config.machine = machine;
        config.scheme = scheme;
        config.layout = layout;
        config.maxRetired = max_retired;
        config.cbImpl = cb_impl;
        RunResult result = runExperiment(config);
        ipcs.push_back(result.ipc());
        eirs.push_back(result.eir());
        suite.runs.push_back(std::move(result));
    }
    suite.hmeanIpc = harmonicMean(ipcs);
    suite.hmeanEir = harmonicMean(eirs);
    return suite;
}

SuiteResult
runSuite(const std::vector<std::string> &names, const RunConfig &proto)
{
    SuiteResult suite;
    std::vector<double> ipcs;
    std::vector<double> eirs;
    for (const auto &name : names) {
        RunConfig config = proto;
        config.benchmark = name;
        RunResult result = runExperiment(config);
        ipcs.push_back(result.ipc());
        eirs.push_back(result.eir());
        suite.runs.push_back(std::move(result));
    }
    suite.hmeanIpc = harmonicMean(ipcs);
    suite.hmeanEir = harmonicMean(eirs);
    return suite;
}

std::vector<std::string>
integerNames()
{
    std::vector<std::string> names;
    for (const auto &spec : integerSuite())
        names.push_back(spec.name);
    return names;
}

std::vector<std::string>
fpNames()
{
    std::vector<std::string> names;
    for (const auto &spec : fpSuite())
        names.push_back(spec.name);
    return names;
}

} // namespace fetchsim
