#include "sim/experiment.h"

#include <cstdlib>

#include "sim/plan.h"
#include "sim/session.h"
#include "sim/sweep.h"
#include "stats/log.h"
#include "workload/benchmark_suite.h"

namespace fetchsim
{

const char *
layoutName(LayoutKind layout)
{
    switch (layout) {
      case LayoutKind::Unordered: return "unordered";
      case LayoutKind::Reordered: return "reordered";
      case LayoutKind::PadAll:    return "pad-all";
      case LayoutKind::PadTrace:  return "pad-trace";
      case LayoutKind::ReorderedPlaced: return "reordered+placed";
      default:                    return "???";
    }
}

std::uint64_t
defaultDynInsts()
{
    static const std::uint64_t value = [] {
        const char *env = std::getenv("FETCHSIM_DYN_INSTS");
        if (env) {
            const long long parsed = std::atoll(env);
            if (parsed > 0)
                return static_cast<std::uint64_t>(parsed);
            warn("ignoring bad FETCHSIM_DYN_INSTS");
        }
        return static_cast<std::uint64_t>(120000);
    }();
    return value;
}

std::vector<std::string>
integerNames()
{
    std::vector<std::string> names;
    for (const auto &spec : integerSuite())
        names.push_back(spec.name);
    return names;
}

std::vector<std::string>
fpNames()
{
    std::vector<std::string> names;
    for (const auto &spec : fpSuite())
        names.push_back(spec.name);
    return names;
}

// --------------------------------------------------------------------
// Deprecated wrappers.  Each delegates to the process-wide Session;
// the serial runSuite forms run their grid through a single-threaded
// SweepEngine so old and new API share one execution path.
// --------------------------------------------------------------------

RunResult
runExperiment(const RunConfig &config)
{
    return defaultSession().run(config);
}

const Workload &
preparedWorkload(const std::string &benchmark, LayoutKind layout,
                 std::uint64_t block_bytes)
{
    return defaultSession().workload(benchmark, layout, block_bytes);
}

SuiteResult
runSuite(const std::vector<std::string> &names, MachineModel machine,
         SchemeKind scheme, LayoutKind layout,
         std::uint64_t max_retired,
         CollapsingBufferFetch::Impl cb_impl)
{
    ExperimentPlan plan;
    plan.benchmarks(names)
        .machine(machine)
        .scheme(scheme)
        .layout(layout)
        .cbImpl(cb_impl)
        .maxRetired(max_retired);
    SweepOptions options;
    options.threads = 1;
    SweepEngine engine(defaultSession(), options);
    return makeSuite(engine.run(plan).runs);
}

SuiteResult
runSuite(const std::vector<std::string> &names, const RunConfig &proto)
{
    ExperimentPlan plan;
    plan.proto(proto).benchmarks(names);
    SweepOptions options;
    options.threads = 1;
    SweepEngine engine(defaultSession(), options);
    return makeSuite(engine.run(plan).runs);
}

} // namespace fetchsim
