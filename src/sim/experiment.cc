#include "sim/experiment.h"

#include <cstdlib>

#include "stats/log.h"
#include "workload/benchmark_suite.h"

namespace fetchsim
{

const char *
layoutName(LayoutKind layout)
{
    switch (layout) {
      case LayoutKind::Unordered: return "unordered";
      case LayoutKind::Reordered: return "reordered";
      case LayoutKind::PadAll:    return "pad-all";
      case LayoutKind::PadTrace:  return "pad-trace";
      case LayoutKind::ReorderedPlaced: return "reordered+placed";
      default:                    return "???";
    }
}

std::uint64_t
defaultDynInsts()
{
    static const std::uint64_t value = [] {
        const char *env = std::getenv("FETCHSIM_DYN_INSTS");
        if (env) {
            const long long parsed = std::atoll(env);
            if (parsed > 0)
                return static_cast<std::uint64_t>(parsed);
            warn("ignoring bad FETCHSIM_DYN_INSTS");
        }
        return static_cast<std::uint64_t>(120000);
    }();
    return value;
}

std::vector<std::string>
integerNames()
{
    std::vector<std::string> names;
    for (const auto &spec : integerSuite())
        names.push_back(spec.name);
    return names;
}

std::vector<std::string>
fpNames()
{
    std::vector<std::string> names;
    for (const auto &spec : fpSuite())
        names.push_back(spec.name);
    return names;
}

} // namespace fetchsim
