/**
 * @file
 * ResultCache: a content-addressed, single-flight cache of completed
 * run results.
 *
 * The checkpoint journal (sim/checkpoint.h) already gives every sweep
 * cell a collision-resistant identity: runKey(), a 64-bit FNV-1a
 * content hash over the workload seed and every counter-affecting
 * RunConfig field.  A journal, however, only serves one sweep
 * resuming *itself*.  The ResultCache promotes the same keyed JSONL
 * records into a cache shared by *every* job a long-lived sweep
 * service (sim/service.h) executes: the first job to need a cell
 * simulates it and publishes the counters under its content key;
 * every later request for the same key -- from any job, any client,
 * any day -- is served from the cache and never re-simulated.  This
 * is sound for exactly the reason checkpoint resume is sound:
 * Session::run is bit-deterministic for a fixed RunConfig, so cached
 * counters are indistinguishable from freshly simulated ones.
 *
 * Single-flight: two jobs racing on the same key must not *both*
 * simulate it.  acquire() returns Hit (counters filled from the
 * cache, possibly after blocking on a concurrent owner) or Miss (the
 * caller became the key's owner and must either fulfill() the entry
 * with counters or abandon() it).  An abandoned key wakes the
 * waiters; one of them becomes the new owner and retries, so a
 * transiently failing cell never wedges its waiters or poisons the
 * cache.
 *
 * Persistence: with a journal path the cache loads existing JSONL
 * records on construction (the resumable-journal contract: a drained
 * or killed service resumes warm) and appends every fulfilled entry
 * through the same torn-line-safe CheckpointJournal writer the sweep
 * checkpoint uses, so the file formats are one and the same --
 * docs/SERVICE.md documents the key derivation, docs/TRACES.md the
 * hygiene and budget rules.
 */

#ifndef FETCHSIM_SIM_RESULT_CACHE_H_
#define FETCHSIM_SIM_RESULT_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "sim/checkpoint.h"

namespace fetchsim
{

class MetricRegistry;

/** Configuration of one ResultCache. */
struct ResultCacheOptions
{
    /**
     * JSONL journal backing the cache; empty = in-memory only.
     * Existing records are loaded on construction and new entries
     * appended, so a service restarted on the same journal is warm
     * from the start.
     */
    std::string journalPath;

    /**
     * Entry budget (0 = unbounded).  At the cap, fulfill() still
     * returns results to the requesting job but stops inserting (and
     * journaling) new keys -- the cache degrades to a plain
     * pass-through instead of evicting, because evicting a
     * content-addressed entry can only force a bit-identical
     * re-simulation later (docs/TRACES.md states the rule).  Counted
     * against loaded + inserted entries.
     */
    std::uint64_t maxEntries = 0;
};

/** Counters describing what a ResultCache did so far. */
struct ResultCacheStats
{
    std::uint64_t hits = 0;     //!< acquire() served from the cache
    std::uint64_t misses = 0;   //!< acquire() made the caller owner
    std::uint64_t waits = 0;    //!< hits that blocked on an in-flight
                                //!< owner first (single-flight saves)
    std::uint64_t inserted = 0; //!< entries fulfilled into the cache
    std::uint64_t rejected = 0; //!< fulfills dropped by maxEntries
    std::uint64_t loaded = 0;   //!< entries loaded from the journal
    std::uint64_t entries = 0;  //!< keys currently cached
};

/**
 * Thread-safe content-addressed run-result cache with single-flight
 * admission and optional JSONL persistence.
 */
class ResultCache
{
  public:
    /** What acquire() decided for one key. */
    enum class Outcome : std::uint8_t
    {
        Hit,  //!< counters were filled from the cache
        Miss, //!< caller owns the key: fulfill() or abandon() it
    };

    /**
     * Open the cache.  When @p options names a journal, existing
     * records are loaded (unparseable lines are skipped with a
     * warning, exactly like checkpoint resume) and the file is opened
     * for appending.  Throws SimException(ErrorKind::Io) when the
     * journal exists but cannot be read, or cannot be opened for
     * appending.
     */
    explicit ResultCache(ResultCacheOptions options = {});

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /**
     * Look up @p key, blocking while another thread owns it.
     * Returns Hit with @p out filled from the cache, or Miss with
     * the caller registered as the key's owner -- the caller MUST
     * then call fulfill() or abandon() exactly once, or every later
     * acquire() of the key blocks forever.
     */
    Outcome acquire(std::uint64_t key, RunCounters &out);

    /**
     * Publish the counters for a key acquired as Miss: waiters wake
     * with Hit, the entry is journaled (when persistent and under
     * budget), and later acquires are cache hits.
     */
    void fulfill(std::uint64_t key, const RunCounters &counters);

    /**
     * Give up ownership of a key acquired as Miss (the simulation
     * threw or was cancelled).  Waiters wake and race to become the
     * new owner; nothing is cached or journaled.
     */
    void abandon(std::uint64_t key);

    /** Snapshot of the cache counters. */
    ResultCacheStats stats() const;

    /**
     * Register the cache counters into @p registry under the
     * `result_cache.` namespace (result_cache.hits,
     * result_cache.misses, result_cache.waits, result_cache.inserted,
     * result_cache.rejected, result_cache.loaded,
     * result_cache.entries) at their current values.
     */
    void exportMetrics(MetricRegistry &registry) const;

    /** The journal path ("" when in-memory only). */
    const std::string &journalPath() const
    {
        return options_.journalPath;
    }

  private:
    /** One key's slot: pending (owned, being simulated) or ready. */
    struct Entry
    {
        bool ready = false;
        RunCounters counters;
    };

    ResultCacheOptions options_;
    mutable std::mutex mutex_;
    std::condition_variable cv_; //!< signaled on fulfill/abandon
    std::map<std::uint64_t, Entry> entries_;
    std::unique_ptr<CheckpointJournal> journal_;
    ResultCacheStats stats_;
};

} // namespace fetchsim

#endif // FETCHSIM_SIM_RESULT_CACHE_H_
