#include "sim/result_cache.h"

#include "perf/profiler.h"
#include "stats/metrics.h"

namespace fetchsim
{

ResultCache::ResultCache(ResultCacheOptions options)
    : options_(std::move(options))
{
    if (options_.journalPath.empty())
        return;
    auto loaded = loadCheckpoint(options_.journalPath);
    if (!loaded.ok())
        throw SimException(loaded.error());
    for (auto &[key, counters] : loaded.value()) {
        if (options_.maxEntries &&
            entries_.size() >= options_.maxEntries)
            break;
        Entry &entry = entries_[key];
        entry.ready = true;
        entry.counters = counters;
    }
    stats_.loaded = entries_.size();
    stats_.entries = entries_.size();
    // Append below the records just loaded; records fulfilled by this
    // process extend the same journal.
    journal_ = std::make_unique<CheckpointJournal>(
        options_.journalPath, /*append=*/true);
}

ResultCache::Outcome
ResultCache::acquire(std::uint64_t key, RunCounters &out)
{
    PERF_SCOPE("result_cache.acquire");
    std::unique_lock<std::mutex> lock(mutex_);
    bool waited = false;
    for (;;) {
        auto it = entries_.find(key);
        if (it == entries_.end()) {
            // Claim ownership: a pending (not ready) entry blocks
            // every other requester until fulfill/abandon.
            entries_.emplace(key, Entry{});
            ++stats_.misses;
            return Outcome::Miss;
        }
        if (it->second.ready) {
            out = it->second.counters;
            ++stats_.hits;
            stats_.waits += waited ? 1 : 0;
            return Outcome::Hit;
        }
        // Another thread owns the key; wait for its verdict.  An
        // abandon erases the entry, so the loop re-runs the race for
        // ownership.
        waited = true;
        cv_.wait(lock);
    }
}

void
ResultCache::fulfill(std::uint64_t key, const RunCounters &counters)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end() || it->second.ready)
        return; // tolerated misuse: fulfill without a pending claim
    // maxEntries counts *ready* entries; a pending claim always has
    // its slot, so the budget can only refuse publication.
    const std::uint64_t ready = stats_.entries;
    if (options_.maxEntries && ready >= options_.maxEntries) {
        entries_.erase(it);
        ++stats_.rejected;
    } else {
        it->second.ready = true;
        it->second.counters = counters;
        ++stats_.inserted;
        ++stats_.entries;
        if (journal_)
            journal_->record(key, counters);
    }
    cv_.notify_all();
}

void
ResultCache::abandon(std::uint64_t key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end() || it->second.ready)
        return;
    entries_.erase(it);
    cv_.notify_all();
}

ResultCacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
ResultCache::exportMetrics(MetricRegistry &registry) const
{
    const ResultCacheStats snapshot = stats();
    registry
        .counter("result_cache.hits",
                 "cells served from the content-addressed cache")
        .inc(snapshot.hits);
    registry
        .counter("result_cache.misses",
                 "cells that had to simulate (first per content key)")
        .inc(snapshot.misses);
    registry
        .counter("result_cache.waits",
                 "hits that blocked on a concurrent in-flight owner")
        .inc(snapshot.waits);
    registry
        .counter("result_cache.inserted",
                 "entries published into the cache")
        .inc(snapshot.inserted);
    registry
        .counter("result_cache.rejected",
                 "publications dropped by the entry budget")
        .inc(snapshot.rejected);
    registry
        .counter("result_cache.loaded",
                 "entries loaded from the journal at startup")
        .inc(snapshot.loaded);
    // Entry count is point-in-time (entries can be evicted by the
    // budget), so it exports as a gauge, not a counter.
    registry
        .gauge("result_cache.entries", "content keys currently cached")
        .set(static_cast<std::int64_t>(snapshot.entries));
}

} // namespace fetchsim
