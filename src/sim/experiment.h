/**
 * @file
 * Experiment vocabulary: one simulation run = benchmark x machine x
 * fetch scheme x code layout.
 *
 * This header defines the config/result types shared by the whole
 * driver layer.  The modern entry points are:
 *
 *  - Session       (sim/session.h)  -- owns the prepared-workload
 *                                      cache; thread-safe
 *  - ExperimentPlan (sim/plan.h)    -- expands config grids
 *  - SweepEngine   (sim/sweep.h)    -- runs plans on a thread pool,
 *                                      deterministically
 *  - report helpers (sim/report.h)  -- JSON/CSV result output
 *
 * (The pre-Session free functions -- runExperiment, runSuite,
 * preparedWorkload -- went through a deprecation cycle and have been
 * removed; create a Session, or an ExperimentPlan plus a SweepEngine,
 * instead.)
 */

#ifndef FETCHSIM_SIM_EXPERIMENT_H_
#define FETCHSIM_SIM_EXPERIMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/machine_config.h"
#include "core/processor.h"
#include "fetch/fetch_mechanism.h"
#include "workload/generator.h"

namespace fetchsim
{

/** Code layouts studied in the paper. */
enum class LayoutKind : std::uint8_t
{
    Unordered = 0, //!< generator (source) order
    Reordered,     //!< profile-driven trace layout (Section 4)
    PadAll,        //!< unordered + pad every block (Section 4.1)
    PadTrace,      //!< reordered + pad trace ends (Section 4.1)
    ReorderedPlaced, //!< reordered + Pettis-Hansen function
                     //!< placement (extension; paper reference [8])
    NumLayouts
};

/** Display name of a layout. */
const char *layoutName(LayoutKind layout);

/** One experiment description. */
struct RunConfig
{
    std::string benchmark;        //!< suite benchmark name
    MachineModel machine = MachineModel::P14;
    SchemeKind scheme = SchemeKind::Sequential;
    LayoutKind layout = LayoutKind::Unordered;
    CollapsingBufferFetch::Impl cbImpl =
        CollapsingBufferFetch::Impl::Crossbar;
    std::uint64_t maxRetired = 0; //!< 0 = defaultDynInsts()
    int input = kEvalInput;       //!< executor input id

    // --- ablation overrides (negative / default = paper machine) ---
    PredictorKind predictorKind = PredictorKind::BtbCounter;
    bool useRas = false;          //!< return-address stack
    bool cbAllowBackward = false; //!< extended crossbar controller
    int specDepthOverride = -1;   //!< speculation depth
    int btbEntriesOverride = -1;  //!< BTB size
    int windowSizeOverride = -1;  //!< scheduling-window entries
    int missPenaltyOverride = -1; //!< I-cache refill latency
    int icacheWaysOverride = -1;  //!< I-cache associativity
};

/** One experiment result. */
struct RunResult
{
    RunConfig config;
    RunCounters counters;

    double ipc() const { return counters.ipc(); }
    double eir() const { return counters.eir(); }

    /** Compact single-line JSON (config, counters, derived rates). */
    std::string toJson() const;
};

/**
 * Dynamic instruction budget for measured runs: the value of the
 * FETCHSIM_DYN_INSTS environment variable, else 120000.
 */
std::uint64_t defaultDynInsts();

/** Aggregate over a run list (see makeSuite() in sim/sweep.h). */
struct SuiteResult
{
    std::vector<RunResult> runs;
    double hmeanIpc = 0.0;
    double hmeanEir = 0.0;
};

/** Benchmark-name list helpers for the benches. */
std::vector<std::string> integerNames();
std::vector<std::string> fpNames();

} // namespace fetchsim

#endif // FETCHSIM_SIM_EXPERIMENT_H_
