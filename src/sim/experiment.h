/**
 * @file
 * Experiment vocabulary: one simulation run = benchmark x machine x
 * fetch scheme x code layout.
 *
 * This header defines the config/result types shared by the whole
 * driver layer.  The modern entry points are:
 *
 *  - Session       (sim/session.h)  -- owns the prepared-workload
 *                                      cache; thread-safe
 *  - ExperimentPlan (sim/plan.h)    -- expands config grids
 *  - SweepEngine   (sim/sweep.h)    -- runs plans on a thread pool,
 *                                      deterministically
 *  - report helpers (sim/report.h)  -- JSON/CSV result output
 *
 * The free functions at the bottom (runExperiment, runSuite,
 * preparedWorkload) are the pre-Session API.  They are deprecated
 * thin wrappers over a hidden process-wide Session kept so existing
 * callers keep compiling; they remain safe to call from multiple
 * threads but offer no control over cache lifetime or parallelism.
 */

#ifndef FETCHSIM_SIM_EXPERIMENT_H_
#define FETCHSIM_SIM_EXPERIMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/machine_config.h"
#include "core/processor.h"
#include "fetch/fetch_mechanism.h"
#include "workload/generator.h"

namespace fetchsim
{

/** Code layouts studied in the paper. */
enum class LayoutKind : std::uint8_t
{
    Unordered = 0, //!< generator (source) order
    Reordered,     //!< profile-driven trace layout (Section 4)
    PadAll,        //!< unordered + pad every block (Section 4.1)
    PadTrace,      //!< reordered + pad trace ends (Section 4.1)
    ReorderedPlaced, //!< reordered + Pettis-Hansen function
                     //!< placement (extension; paper reference [8])
    NumLayouts
};

/** Display name of a layout. */
const char *layoutName(LayoutKind layout);

/** One experiment description. */
struct RunConfig
{
    std::string benchmark;        //!< suite benchmark name
    MachineModel machine = MachineModel::P14;
    SchemeKind scheme = SchemeKind::Sequential;
    LayoutKind layout = LayoutKind::Unordered;
    CollapsingBufferFetch::Impl cbImpl =
        CollapsingBufferFetch::Impl::Crossbar;
    std::uint64_t maxRetired = 0; //!< 0 = defaultDynInsts()
    int input = kEvalInput;       //!< executor input id

    // --- ablation overrides (negative / default = paper machine) ---
    PredictorKind predictorKind = PredictorKind::BtbCounter;
    bool useRas = false;          //!< return-address stack
    bool cbAllowBackward = false; //!< extended crossbar controller
    int specDepthOverride = -1;   //!< speculation depth
    int btbEntriesOverride = -1;  //!< BTB size
    int windowSizeOverride = -1;  //!< scheduling-window entries
    int missPenaltyOverride = -1; //!< I-cache refill latency
    int icacheWaysOverride = -1;  //!< I-cache associativity
};

/** One experiment result. */
struct RunResult
{
    RunConfig config;
    RunCounters counters;

    double ipc() const { return counters.ipc(); }
    double eir() const { return counters.eir(); }

    /** Compact single-line JSON (config, counters, derived rates). */
    std::string toJson() const;
};

/**
 * Dynamic instruction budget for measured runs: the value of the
 * FETCHSIM_DYN_INSTS environment variable, else 120000.
 */
std::uint64_t defaultDynInsts();

/** Aggregate over a run list (see makeSuite() in sim/sweep.h). */
struct SuiteResult
{
    std::vector<RunResult> runs;
    double hmeanIpc = 0.0;
    double hmeanEir = 0.0;
};

/** Benchmark-name list helpers for the benches. */
std::vector<std::string> integerNames();
std::vector<std::string> fpNames();

// --------------------------------------------------------------------
// Deprecated pre-Session API.  Thin wrappers over an internal
// process-wide Session (defaultSession() in sim/session.h).
// --------------------------------------------------------------------

/**
 * Run one experiment against the process-wide Session.
 * @deprecated Create a Session and call Session::run() instead.
 */
[[deprecated("use Session::run (sim/session.h)")]]
RunResult runExperiment(const RunConfig &config);

/**
 * Prepared-workload access against the process-wide Session.  The
 * returned reference is owned by that Session and remains valid --
 * including under concurrent callers -- for the process lifetime.
 * @p block_bytes is only meaningful for the padded layouts (pass the
 * machine's block size); use 0 otherwise.
 * @deprecated Create a Session and call Session::workload() instead.
 */
[[deprecated("use Session::workload (sim/session.h)")]]
const Workload &preparedWorkload(const std::string &benchmark,
                                 LayoutKind layout,
                                 std::uint64_t block_bytes = 0);

/**
 * Run every benchmark in @p names under one (machine, scheme,
 * layout) point and compute harmonic means, serially.
 * @deprecated Build an ExperimentPlan and run it through a
 *             SweepEngine (sim/sweep.h) instead.
 */
[[deprecated("use ExperimentPlan + SweepEngine (sim/sweep.h)")]]
SuiteResult runSuite(const std::vector<std::string> &names,
                     MachineModel machine, SchemeKind scheme,
                     LayoutKind layout = LayoutKind::Unordered,
                     std::uint64_t max_retired = 0,
                     CollapsingBufferFetch::Impl cb_impl =
                         CollapsingBufferFetch::Impl::Crossbar);

/**
 * Run every benchmark in @p names under @p proto (its `benchmark`
 * field is overwritten per run), serially.
 * @deprecated Build an ExperimentPlan and run it through a
 *             SweepEngine (sim/sweep.h) instead.
 */
[[deprecated("use ExperimentPlan + SweepEngine (sim/sweep.h)")]]
SuiteResult runSuite(const std::vector<std::string> &names,
                     const RunConfig &proto);

} // namespace fetchsim

#endif // FETCHSIM_SIM_EXPERIMENT_H_
