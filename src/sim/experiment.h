/**
 * @file
 * Experiment driver: one simulation run = benchmark x machine x
 * fetch scheme x code layout.
 *
 * Every bench binary and example is built on this API.  Prepared
 * workloads (generated programs, profiled/reordered/padded layouts)
 * are cached per-process so sweeping schemes over a benchmark does
 * not regenerate or re-profile it.
 */

#ifndef FETCHSIM_SIM_EXPERIMENT_H_
#define FETCHSIM_SIM_EXPERIMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/machine_config.h"
#include "core/processor.h"
#include "fetch/fetch_mechanism.h"
#include "workload/generator.h"

namespace fetchsim
{

/** Code layouts studied in the paper. */
enum class LayoutKind : std::uint8_t
{
    Unordered = 0, //!< generator (source) order
    Reordered,     //!< profile-driven trace layout (Section 4)
    PadAll,        //!< unordered + pad every block (Section 4.1)
    PadTrace,      //!< reordered + pad trace ends (Section 4.1)
    ReorderedPlaced, //!< reordered + Pettis-Hansen function
                     //!< placement (extension; paper reference [8])
    NumLayouts
};

/** Display name of a layout. */
const char *layoutName(LayoutKind layout);

/** One experiment description. */
struct RunConfig
{
    std::string benchmark;        //!< suite benchmark name
    MachineModel machine = MachineModel::P14;
    SchemeKind scheme = SchemeKind::Sequential;
    LayoutKind layout = LayoutKind::Unordered;
    CollapsingBufferFetch::Impl cbImpl =
        CollapsingBufferFetch::Impl::Crossbar;
    std::uint64_t maxRetired = 0; //!< 0 = defaultDynInsts()
    int input = kEvalInput;       //!< executor input id

    // --- ablation overrides (negative / default = paper machine) ---
    PredictorKind predictorKind = PredictorKind::BtbCounter;
    bool useRas = false;          //!< return-address stack
    bool cbAllowBackward = false; //!< extended crossbar controller
    int specDepthOverride = -1;   //!< speculation depth
    int btbEntriesOverride = -1;  //!< BTB size
    int windowSizeOverride = -1;  //!< scheduling-window entries
    int missPenaltyOverride = -1; //!< I-cache refill latency
    int icacheWaysOverride = -1;  //!< I-cache associativity
};

/** One experiment result. */
struct RunResult
{
    RunConfig config;
    RunCounters counters;

    double ipc() const { return counters.ipc(); }
    double eir() const { return counters.eir(); }
};

/**
 * Dynamic instruction budget for measured runs: the value of the
 * FETCHSIM_DYN_INSTS environment variable, else 120000.
 */
std::uint64_t defaultDynInsts();

/** Run one experiment (workloads cached per process). */
RunResult runExperiment(const RunConfig &config);

/**
 * Prepared-workload access (benches that need censuses rather than
 * pipeline runs, e.g. Tables 2-4, use this directly).  The returned
 * reference is owned by the per-process cache and remains valid for
 * the process lifetime.  @p block_bytes is only meaningful for the
 * padded layouts (pass the machine's block size); use 0 otherwise.
 */
const Workload &preparedWorkload(const std::string &benchmark,
                                 LayoutKind layout,
                                 std::uint64_t block_bytes = 0);

/** Aggregate over a benchmark list. */
struct SuiteResult
{
    std::vector<RunResult> runs;
    double hmeanIpc = 0.0;
    double hmeanEir = 0.0;
};

/**
 * Run every benchmark in @p names under one (machine, scheme,
 * layout) point and compute harmonic means.
 */
SuiteResult runSuite(const std::vector<std::string> &names,
                     MachineModel machine, SchemeKind scheme,
                     LayoutKind layout = LayoutKind::Unordered,
                     std::uint64_t max_retired = 0,
                     CollapsingBufferFetch::Impl cb_impl =
                         CollapsingBufferFetch::Impl::Crossbar);

/**
 * Run every benchmark in @p names under @p proto (its `benchmark`
 * field is overwritten per run) -- the form the ablation benches use
 * to sweep overrides.
 */
SuiteResult runSuite(const std::vector<std::string> &names,
                     const RunConfig &proto);

/** Benchmark-name list helpers for the benches. */
std::vector<std::string> integerNames();
std::vector<std::string> fpNames();

} // namespace fetchsim

#endif // FETCHSIM_SIM_EXPERIMENT_H_
