/**
 * @file
 * Abstract source of the dynamic instruction stream.
 *
 * The paper's methodology is trace-driven: instruction streams came
 * from files captured with the spike tracing tool.  This interface
 * decouples the Processor from where its stream comes from -- the
 * live CFG interpreter (Executor) or a recorded trace file
 * (TraceReader in trace_file.h), which is the exact analogue of the
 * paper's setup.
 */

#ifndef FETCHSIM_EXEC_INST_SOURCE_H_
#define FETCHSIM_EXEC_INST_SOURCE_H_

#include <cstddef>

#include "exec/dyn_inst.h"

namespace fetchsim
{

/**
 * A producer of dynamic instructions in program order.
 */
class InstSource
{
  public:
    virtual ~InstSource() = default;

    /**
     * Produce the next dynamic instruction.
     * @return false when the stream is exhausted (bounded sources
     *         only; the Executor never exhausts).
     */
    virtual bool next(DynInst &out) = 0;

    /**
     * Batch kernel: produce up to @p max instructions into @p out.
     *
     * The Processor refills its fetch stream through this call -- one
     * virtual dispatch per refill instead of one per instruction.
     * Sources with structure-of-arrays backing (TraceReplaySource)
     * override it with a columnar copy loop; the default simply
     * chains next().
     *
     * @return the number of instructions produced (< @p max only at
     *         end of stream).
     */
    virtual std::size_t
    fill(DynInst *out, std::size_t max)
    {
        std::size_t n = 0;
        while (n < max && next(out[n]))
            ++n;
        return n;
    }
};

} // namespace fetchsim

#endif // FETCHSIM_EXEC_INST_SOURCE_H_
