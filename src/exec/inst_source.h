/**
 * @file
 * Abstract source of the dynamic instruction stream.
 *
 * The paper's methodology is trace-driven: instruction streams came
 * from files captured with the spike tracing tool.  This interface
 * decouples the Processor from where its stream comes from -- the
 * live CFG interpreter (Executor) or a recorded trace file
 * (TraceReader in trace_file.h), which is the exact analogue of the
 * paper's setup.
 */

#ifndef FETCHSIM_EXEC_INST_SOURCE_H_
#define FETCHSIM_EXEC_INST_SOURCE_H_

#include "exec/dyn_inst.h"

namespace fetchsim
{

/**
 * A producer of dynamic instructions in program order.
 */
class InstSource
{
  public:
    virtual ~InstSource() = default;

    /**
     * Produce the next dynamic instruction.
     * @return false when the stream is exhausted (bounded sources
     *         only; the Executor never exhausts).
     */
    virtual bool next(DynInst &out) = 0;
};

} // namespace fetchsim

#endif // FETCHSIM_EXEC_INST_SOURCE_H_
