#include "exec/executor.h"

#include "stats/log.h"

namespace fetchsim
{

namespace
{

/** Generous bound: the generated call graph is acyclic. */
constexpr std::size_t kMaxCallDepth = 512;

} // anonymous namespace

Executor::Executor(const Workload &workload, int input,
                   std::pmr::memory_resource *mem)
    : workload_(workload), input_(input),
      states_(workload.behaviors.size(), BehaviorState{}, mem),
      call_stack_(mem)
{
    if (input < 0 || input > kEvalInput)
        fatal("Executor: input id out of range");
    call_stack_.reserve(kMaxCallDepth);
    const Program &prog = workload_.program;
    cur_block_ = prog.function(prog.mainFunction()).entry;
    cur_idx_ = 0;
}

std::size_t
Executor::fill(DynInst *out, std::size_t max)
{
    for (std::size_t n = 0; n < max; ++n)
        next(out[n]);
    return max;
}

void
Executor::moveTo(BlockId block)
{
    cur_block_ = block;
    cur_idx_ = 0;
}

void
Executor::skipEmptyBlocks()
{
    const Program &prog = workload_.program;
    while (prog.block(cur_block_).body.empty()) {
        const BasicBlock &bb = prog.block(cur_block_);
        simAssert(bb.term == TermKind::FallThrough,
                  "only fall-through blocks may be empty");
        if (observer_)
            observer_->onBlock(bb.id);
        moveTo(bb.fallThrough);
    }
}

bool
Executor::next(DynInst &out)
{
    const Program &prog = workload_.program;
    skipEmptyBlocks();

    const BasicBlock &bb = prog.block(cur_block_);
    if (cur_idx_ == 0 && observer_)
        observer_->onBlock(bb.id);

    simAssert(cur_idx_ < bb.size(), "instruction index in block");
    out.pc = bb.instAddr(cur_idx_);
    out.seq = seq_++;
    out.si = bb.body[cur_idx_];
    out.block = bb.id;
    out.taken = false;
    out.actualTarget = 0;

    const bool is_last = cur_idx_ == bb.size() - 1;
    const bool at_cond =
        bb.hasCondBranch() && cur_idx_ == bb.controlIndex();

    if (at_cond) {
        bool raw = states_[bb.behavior].evaluate(
            workload_.behaviors.get(bb.behavior), bb.behavior,
            workload_.spec.seed, input_);
        bool taken = raw != bb.invertedSense;
        if (observer_)
            observer_->onCondBranch(bb.id, taken);
        out.taken = taken;
        if (taken) {
            out.actualTarget = prog.block(bb.takenTarget).address;
            moveTo(bb.takenTarget);
        } else if (bb.term == TermKind::CondBranch) {
            moveTo(bb.fallThrough);
        } else {
            // CondBranchJump: fall into the trailing jump.
            ++cur_idx_;
        }
        return true;
    }

    if (is_last) {
        switch (bb.term) {
          case TermKind::FallThrough:
            moveTo(bb.fallThrough);
            break;
          case TermKind::CondBranchJump:
            // Trailing unconditional jump of the not-taken path.
            out.taken = true;
            out.actualTarget = prog.block(bb.fallThrough).address;
            moveTo(bb.fallThrough);
            break;
          case TermKind::Jump:
            out.taken = true;
            out.actualTarget = prog.block(bb.takenTarget).address;
            moveTo(bb.takenTarget);
            break;
          case TermKind::CallFall: {
            const Function &callee = prog.function(bb.callee);
            out.taken = true;
            out.actualTarget = prog.block(callee.entry).address;
            simAssert(call_stack_.size() < kMaxCallDepth,
                      "call depth bounded");
            call_stack_.push_back(bb.fallThrough);
            moveTo(callee.entry);
            break;
          }
          case TermKind::Return: {
            out.taken = true;
            BlockId cont;
            if (call_stack_.empty()) {
                // Main returned: the program restarts (implicit
                // outer loop keeps the stream unbounded).
                cont = prog.function(prog.mainFunction()).entry;
            } else {
                cont = call_stack_.back();
                call_stack_.pop_back();
            }
            // Report the address of the first real instruction at
            // the continuation (empty blocks occupy no space).
            BlockId scan = cont;
            while (prog.block(scan).body.empty())
                scan = prog.block(scan).fallThrough;
            out.actualTarget = prog.block(scan).address;
            moveTo(cont);
            break;
          }
          case TermKind::CondBranch:
            panic("cond branch handled above");
        }
        return true;
    }

    ++cur_idx_;
    return true;
}

} // namespace fetchsim
