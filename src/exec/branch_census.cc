#include "exec/branch_census.h"

#include "exec/executor.h"
#include "stats/log.h"

namespace fetchsim
{

BranchCensus
runBranchCensus(const Workload &workload, int input,
                std::uint64_t num_insts, int block_bytes)
{
    if (block_bytes <= 0 ||
        (block_bytes & (block_bytes - 1)) != 0)
        fatal("runBranchCensus: block size must be a power of two");

    Executor exec(workload, input);
    BranchCensus census;
    DynInst di;
    const std::uint64_t block_mask =
        ~static_cast<std::uint64_t>(block_bytes - 1);

    while (census.instructions < num_insts && exec.next(di)) {
        ++census.instructions;
        if (di.si.op == OpClass::Nop)
            ++census.nops;
        if (di.isCondBranch()) {
            ++census.condBranches;
            if (di.taken)
                ++census.condTaken;
        }
        if (di.isControl() && di.taken) {
            ++census.takenTotal;
            if ((di.pc & block_mask) == (di.actualTarget & block_mask))
                ++census.intraBlock;
        }
    }
    return census;
}

} // namespace fetchsim
