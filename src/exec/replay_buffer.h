/**
 * @file
 * In-memory dynamic-trace replay: a compact structure-of-arrays
 * recording of an instruction stream plus an InstSource that replays
 * it.
 *
 * This is the RAM twin of the FSTR trace file (exec/trace_file.h): a
 * stream recorded once -- typically by the Session replay cache --
 * can be replayed through any number of Processor instances, on any
 * number of threads, without re-walking the CFG through the Executor.
 * The buffer stores 25 bytes per instruction (vs 32 on disk and ~56
 * for a vector<DynInst>), and its content hash uses the same
 * canonical record hash as FSTR v2, so an in-memory trace and its
 * spilled file twin hash identically.
 *
 * Thread safety: a DynTrace is immutable once recorded; any number of
 * TraceReplaySource instances (one per concurrent run) may read it
 * simultaneously.  BlockIds are not preserved (replayed DynInsts
 * carry kNoBlock, exactly like file traces) -- the processor and
 * fetch layers never read them, which is what makes replayed runs
 * counter-identical to live ones (asserted by test_replay).
 */

#ifndef FETCHSIM_EXEC_REPLAY_BUFFER_H_
#define FETCHSIM_EXEC_REPLAY_BUFFER_H_

#include <cstdint>
#include <vector>

#include "exec/inst_source.h"
#include "exec/trace_file.h"

namespace fetchsim
{

/**
 * A recorded dynamic instruction stream in structure-of-arrays form.
 */
class DynTrace
{
  public:
    /** Logical bytes per recorded instruction (the SoA row width). */
    static constexpr std::uint64_t kBytesPerInst = 25;

    /** Pre-size the arrays for @p n instructions. */
    void reserve(std::size_t n);

    /** Append one instruction (recording side; not thread-safe). */
    void append(const DynInst &di);

    /** Recorded instruction count. */
    std::size_t size() const { return pc_.size(); }

    /** Approximate heap footprint of the recording. */
    std::uint64_t bytes() const { return size() * kBytesPerInst; }

    /**
     * FNV-1a content hash over the canonical record bytes -- equal to
     * the FSTR v2 header hash of the same stream.
     */
    std::uint64_t contentHash() const { return hash_; }

    /** Materialize instruction @p i (seq = i, block = kNoBlock). */
    void get(std::size_t i, DynInst &out) const;

    /**
     * Materialize @p n consecutive instructions starting at @p first
     * into @p out -- the columnar copy behind the replay fast path.
     * Walks each SoA column in turn so every load streams through one
     * contiguous array.
     */
    void getBatch(std::size_t first, std::size_t n,
                  DynInst *out) const;

  private:
    std::vector<std::uint64_t> pc_;
    std::vector<std::uint64_t> target_;
    std::vector<std::int32_t> imm_;
    std::vector<std::uint8_t> op_;
    std::vector<std::uint8_t> dest_;
    std::vector<std::uint8_t> src1_;
    std::vector<std::uint8_t> src2_;
    std::vector<std::uint8_t> taken_;
    std::uint64_t hash_ = kTraceHashOffset;
};

/**
 * Replays a DynTrace as a bounded InstSource.  Each concurrent run
 * gets its own source (the cursor is the only mutable state); the
 * shared trace is read-only.
 */
class TraceReplaySource : public InstSource
{
  public:
    /** @param trace recording to replay (must outlive this source) */
    explicit TraceReplaySource(const DynTrace &trace)
        : trace_(&trace)
    {
    }

    bool next(DynInst &out) override;

    /**
     * Replay fast path: materialize up to @p max instructions from
     * the SoA columns in one pass, skipping the per-instruction
     * virtual dispatch and bounds re-check of next().
     */
    std::size_t fill(DynInst *out, std::size_t max) override;

    /** Total instructions in the backing trace. */
    std::uint64_t count() const { return trace_->size(); }

    /** Instructions consumed so far. */
    std::uint64_t consumed() const { return consumed_; }

    /** Rewind to the first instruction. */
    void rewind() { consumed_ = 0; }

  private:
    const DynTrace *trace_;
    std::uint64_t consumed_ = 0;
};

/**
 * Record @p num_insts instructions of @p source into a fresh
 * DynTrace (fewer if the source ends early).
 */
DynTrace recordStream(InstSource &source, std::uint64_t num_insts);

} // namespace fetchsim

#endif // FETCHSIM_EXEC_REPLAY_BUFFER_H_
