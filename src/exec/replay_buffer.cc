#include "exec/replay_buffer.h"

#include <algorithm>

namespace fetchsim
{

void
DynTrace::reserve(std::size_t n)
{
    pc_.reserve(n);
    target_.reserve(n);
    imm_.reserve(n);
    op_.reserve(n);
    dest_.reserve(n);
    src1_.reserve(n);
    src2_.reserve(n);
    taken_.reserve(n);
}

void
DynTrace::append(const DynInst &di)
{
    pc_.push_back(di.pc);
    target_.push_back(di.actualTarget);
    imm_.push_back(di.si.imm);
    op_.push_back(static_cast<std::uint8_t>(di.si.op));
    dest_.push_back(di.si.dest);
    src1_.push_back(di.si.src1);
    src2_.push_back(di.si.src2);
    taken_.push_back(di.taken ? 1 : 0);
    hash_ = traceRecordHash(hash_, di);
}

void
DynTrace::get(std::size_t i, DynInst &out) const
{
    out = DynInst{};
    out.pc = pc_[i];
    out.seq = i;
    out.si.op = static_cast<OpClass>(op_[i]);
    out.si.dest = dest_[i];
    out.si.src1 = src1_[i];
    out.si.src2 = src2_[i];
    out.si.imm = imm_[i];
    out.taken = taken_[i] != 0;
    out.actualTarget = target_[i];
}

void
DynTrace::getBatch(std::size_t first, std::size_t n,
                   DynInst *out) const
{
    for (std::size_t k = 0; k < n; ++k) {
        out[k] = DynInst{};
        out[k].seq = first + k;
    }
    for (std::size_t k = 0; k < n; ++k)
        out[k].pc = pc_[first + k];
    for (std::size_t k = 0; k < n; ++k) {
        out[k].si.op = static_cast<OpClass>(op_[first + k]);
        out[k].si.dest = dest_[first + k];
        out[k].si.src1 = src1_[first + k];
        out[k].si.src2 = src2_[first + k];
    }
    for (std::size_t k = 0; k < n; ++k)
        out[k].si.imm = imm_[first + k];
    for (std::size_t k = 0; k < n; ++k) {
        out[k].taken = taken_[first + k] != 0;
        out[k].actualTarget = target_[first + k];
    }
}

bool
TraceReplaySource::next(DynInst &out)
{
    if (consumed_ >= trace_->size())
        return false;
    trace_->get(consumed_, out);
    ++consumed_;
    return true;
}

std::size_t
TraceReplaySource::fill(DynInst *out, std::size_t max)
{
    const std::size_t size = trace_->size();
    if (consumed_ >= size)
        return 0;
    const std::size_t n =
        std::min<std::size_t>(max, size - consumed_);
    trace_->getBatch(consumed_, n, out);
    consumed_ += n;
    return n;
}

DynTrace
recordStream(InstSource &source, std::uint64_t num_insts)
{
    DynTrace trace;
    trace.reserve(num_insts);
    DynInst di;
    for (std::uint64_t i = 0; i < num_insts; ++i) {
        if (!source.next(di))
            break;
        trace.append(di);
    }
    return trace;
}

} // namespace fetchsim
