#include "exec/trace_file.h"

#include <cstring>

#include "stats/log.h"

namespace fetchsim
{

namespace
{

/** On-disk record layout (32 bytes, little-endian host assumed). */
struct TraceRecord
{
    std::uint64_t pc;
    std::uint64_t target;
    std::uint8_t op;
    std::uint8_t dest;
    std::uint8_t src1;
    std::uint8_t src2;
    std::int32_t imm;
    std::uint8_t taken;
    std::uint8_t pad[7];
};
static_assert(sizeof(TraceRecord) == 32, "stable trace record size");

struct TraceHeader
{
    std::uint32_t magic;
    std::uint32_t version;
    std::uint64_t count;
};
static_assert(sizeof(TraceHeader) == 16, "stable trace header size");

} // anonymous namespace

TraceWriter::TraceWriter(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        fatal("TraceWriter: cannot open " + path);
    TraceHeader header{kTraceMagic, kTraceVersion, 0};
    if (std::fwrite(&header, sizeof(header), 1, file_) != 1)
        fatal("TraceWriter: header write failed");
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const DynInst &di)
{
    simAssert(file_ != nullptr, "writer open");
    TraceRecord record{};
    record.pc = di.pc;
    record.target = di.actualTarget;
    record.op = static_cast<std::uint8_t>(di.si.op);
    record.dest = di.si.dest;
    record.src1 = di.si.src1;
    record.src2 = di.si.src2;
    record.imm = di.si.imm;
    record.taken = di.taken ? 1 : 0;
    if (std::fwrite(&record, sizeof(record), 1, file_) != 1)
        fatal("TraceWriter: record write failed");
    ++count_;
}

void
TraceWriter::close()
{
    if (!file_)
        return;
    // Patch the record count into the header.
    TraceHeader header{kTraceMagic, kTraceVersion, count_};
    if (std::fseek(file_, 0, SEEK_SET) != 0 ||
        std::fwrite(&header, sizeof(header), 1, file_) != 1)
        fatal("TraceWriter: header finalize failed");
    std::fclose(file_);
    file_ = nullptr;
}

TraceReader::TraceReader(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        fatal("TraceReader: cannot open " + path);
    TraceHeader header{};
    if (std::fread(&header, sizeof(header), 1, file_) != 1)
        fatal("TraceReader: header read failed");
    if (header.magic != kTraceMagic)
        fatal("TraceReader: not a fetchsim trace: " + path);
    if (header.version != kTraceVersion)
        fatal("TraceReader: unsupported trace version");
    count_ = header.count;
}

TraceReader::~TraceReader()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceReader::next(DynInst &out)
{
    if (consumed_ >= count_)
        return false;
    TraceRecord record{};
    if (std::fread(&record, sizeof(record), 1, file_) != 1)
        fatal("TraceReader: truncated trace");
    if (record.op >= static_cast<std::uint8_t>(OpClass::NumOpClasses))
        fatal("TraceReader: corrupt record (bad op class)");
    out = DynInst{};
    out.pc = record.pc;
    out.seq = consumed_;
    out.si.op = static_cast<OpClass>(record.op);
    out.si.dest = record.dest;
    out.si.src1 = record.src1;
    out.si.src2 = record.src2;
    out.si.imm = record.imm;
    out.taken = record.taken != 0;
    out.actualTarget = record.target;
    ++consumed_;
    return true;
}

void
TraceReader::rewind()
{
    simAssert(file_ != nullptr, "reader open");
    if (std::fseek(file_, sizeof(TraceHeader), SEEK_SET) != 0)
        fatal("TraceReader: rewind failed");
    consumed_ = 0;
}

std::uint64_t
recordTrace(InstSource &source, const std::string &path,
            std::uint64_t num_insts)
{
    TraceWriter writer(path);
    DynInst di;
    for (std::uint64_t i = 0; i < num_insts; ++i) {
        if (!source.next(di))
            break;
        writer.append(di);
    }
    writer.close();
    return writer.count();
}

} // namespace fetchsim
