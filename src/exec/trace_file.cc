#include "exec/trace_file.h"

#include <cstdio>
#include <cstring>
#include <exception>

#include "core/error.h"
#include "stats/log.h"

namespace fetchsim
{

namespace
{

/** On-disk record layout (32 bytes, little-endian host assumed). */
struct TraceRecord
{
    std::uint64_t pc;
    std::uint64_t target;
    std::uint8_t op;
    std::uint8_t dest;
    std::uint8_t src1;
    std::uint8_t src2;
    std::int32_t imm;
    std::uint8_t taken;
    std::uint8_t pad[7];
};
static_assert(sizeof(TraceRecord) == 32, "stable trace record size");

/** The version-1 header (no content hash). */
struct TraceHeaderV1
{
    std::uint32_t magic;
    std::uint32_t version;
    std::uint64_t count;
};
static_assert(sizeof(TraceHeaderV1) == 16, "stable v1 header size");

/** The version-2 header: v1 plus the FNV-1a content hash. */
struct TraceHeaderV2
{
    std::uint32_t magic;
    std::uint32_t version;
    std::uint64_t count;
    std::uint64_t contentHash;
};
static_assert(sizeof(TraceHeaderV2) == 24, "stable v2 header size");

[[noreturn]] void
throwIo(const std::string &message, const std::string &path)
{
    throw SimException(ErrorKind::Io, message, "trace=" + path);
}

} // anonymous namespace

std::uint64_t
traceRecordHash(std::uint64_t hash, const DynInst &di)
{
    const std::uint64_t pc = di.pc;
    const std::uint64_t target = di.actualTarget;
    const std::uint8_t small[4] = {
        static_cast<std::uint8_t>(di.si.op), di.si.dest, di.si.src1,
        di.si.src2};
    const std::int32_t imm = di.si.imm;
    const std::uint8_t taken = di.taken ? 1 : 0;
    hash = traceHashBytes(hash, &pc, sizeof(pc));
    hash = traceHashBytes(hash, &target, sizeof(target));
    hash = traceHashBytes(hash, small, sizeof(small));
    hash = traceHashBytes(hash, &imm, sizeof(imm));
    hash = traceHashBytes(hash, &taken, sizeof(taken));
    return hash;
}

TraceWriter::TraceWriter(const std::string &path)
    : path_(path), tmp_path_(path + ".tmp"),
      exceptions_at_ctor_(std::uncaught_exceptions())
{
    file_ = std::fopen(tmp_path_.c_str(), "wb");
    if (!file_)
        throwIo("TraceWriter: cannot open " + tmp_path_, path);
    TraceHeaderV2 header{kTraceMagic, kTraceVersion, 0, 0};
    if (std::fwrite(&header, sizeof(header), 1, file_) != 1) {
        discard();
        throwIo("TraceWriter: header write failed", path);
    }
}

TraceWriter::~TraceWriter()
{
    // Publishing from a destructor is only safe on a normal path; if
    // we are unwinding, the producer died mid-stream and the half
    // trace must never appear at the destination.
    if (std::uncaught_exceptions() > exceptions_at_ctor_) {
        discard();
        return;
    }
    // Destruction must not throw; a failed finalize discards the
    // temporary, so the destination path is never left corrupt.
    try {
        close();
    } catch (const SimException &e) {
        warn(std::string("TraceWriter: ") + e.what());
    }
}

void
TraceWriter::discard()
{
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
    if (!tmp_path_.empty()) {
        std::remove(tmp_path_.c_str());
        tmp_path_.clear();
    }
}

void
TraceWriter::append(const DynInst &di)
{
    simAssert(file_ != nullptr, "writer open");
    TraceRecord record{};
    record.pc = di.pc;
    record.target = di.actualTarget;
    record.op = static_cast<std::uint8_t>(di.si.op);
    record.dest = di.si.dest;
    record.src1 = di.si.src1;
    record.src2 = di.si.src2;
    record.imm = di.si.imm;
    record.taken = di.taken ? 1 : 0;
    if (std::fwrite(&record, sizeof(record), 1, file_) != 1)
        throwIo("TraceWriter: record write failed", path_);
    hash_ = traceRecordHash(hash_, di);
    ++count_;
}

void
TraceWriter::close()
{
    if (!file_)
        return;
    // Patch the record count and content hash into the header, then
    // publish atomically; a failure at any step discards the
    // temporary so no partial file ever lands at the destination.
    TraceHeaderV2 header{kTraceMagic, kTraceVersion, count_, hash_};
    const bool ok = std::fseek(file_, 0, SEEK_SET) == 0 &&
                    std::fwrite(&header, sizeof(header), 1, file_) == 1 &&
                    std::fflush(file_) == 0;
    std::fclose(file_);
    file_ = nullptr;
    if (!ok) {
        discard();
        throwIo("TraceWriter: header finalize failed", path_);
    }
    if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
        discard();
        throwIo("TraceWriter: cannot publish trace at " + path_,
                path_);
    }
    tmp_path_.clear();
}

TraceReader::TraceReader(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        throwIo("TraceReader: cannot open " + path, path);
    TraceHeaderV1 head{};
    if (std::fread(&head, sizeof(head), 1, file_) != 1) {
        std::fclose(file_);
        file_ = nullptr;
        throwIo("TraceReader: header read failed", path);
    }
    if (head.magic != kTraceMagic) {
        std::fclose(file_);
        file_ = nullptr;
        throwIo("TraceReader: not a fetchsim trace: " + path, path);
    }
    version_ = head.version;
    count_ = head.count;
    if (version_ == 1) {
        data_offset_ = sizeof(TraceHeaderV1);
    } else if (version_ == kTraceVersion) {
        if (std::fread(&header_hash_, sizeof(header_hash_), 1,
                       file_) != 1) {
            std::fclose(file_);
            file_ = nullptr;
            throwIo("TraceReader: truncated v2 header", path);
        }
        data_offset_ = sizeof(TraceHeaderV2);
    } else {
        std::fclose(file_);
        file_ = nullptr;
        throwIo("TraceReader: unsupported trace version " +
                    std::to_string(head.version),
                path);
    }

    // Bound the header's record count by what the file can actually
    // hold: an absurd length field (or a truncated payload) is
    // rejected here, before any caller sizes work from count().
    const bool sized = std::fseek(file_, 0, SEEK_END) == 0;
    const long file_size = sized ? std::ftell(file_) : -1;
    if (file_size < 0 ||
        std::fseek(file_, data_offset_, SEEK_SET) != 0) {
        std::fclose(file_);
        file_ = nullptr;
        throwIo("TraceReader: cannot size " + path, path);
    }
    const std::uint64_t payload =
        static_cast<std::uint64_t>(file_size) -
        static_cast<std::uint64_t>(data_offset_);
    if (count_ > payload / sizeof(TraceRecord)) {
        std::fclose(file_);
        file_ = nullptr;
        throwIo("TraceReader: record count " +
                    std::to_string(count_) +
                    " exceeds file size (truncated or corrupt "
                    "header)",
                path);
    }
}

TraceReader::~TraceReader()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceReader::next(DynInst &out)
{
    if (consumed_ >= count_)
        return false;
    TraceRecord record{};
    if (std::fread(&record, sizeof(record), 1, file_) != 1)
        throwIo("TraceReader: truncated trace", path_);
    if (record.op >= static_cast<std::uint8_t>(OpClass::NumOpClasses))
        throwIo("TraceReader: corrupt record (bad op class)", path_);
    out = DynInst{};
    out.pc = record.pc;
    out.seq = consumed_;
    out.si.op = static_cast<OpClass>(record.op);
    out.si.dest = record.dest;
    out.si.src1 = record.src1;
    out.si.src2 = record.src2;
    out.si.imm = record.imm;
    out.taken = record.taken != 0;
    out.actualTarget = record.target;
    ++consumed_;
    running_hash_ = traceRecordHash(running_hash_, out);
    if (consumed_ == count_ && version_ >= 2 &&
        running_hash_ != header_hash_)
        throwIo("TraceReader: content hash mismatch (corrupt trace)",
                path_);
    return true;
}

void
TraceReader::rewind()
{
    simAssert(file_ != nullptr, "reader open");
    if (std::fseek(file_, data_offset_, SEEK_SET) != 0)
        throwIo("TraceReader: rewind failed", path_);
    consumed_ = 0;
    running_hash_ = kTraceHashOffset;
}

std::uint64_t
recordTrace(InstSource &source, const std::string &path,
            std::uint64_t num_insts)
{
    TraceWriter writer(path);
    DynInst di;
    for (std::uint64_t i = 0; i < num_insts; ++i) {
        if (!source.next(di))
            break;
        writer.append(di);
    }
    writer.close();
    return writer.count();
}

} // namespace fetchsim
