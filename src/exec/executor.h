/**
 * @file
 * CFG interpreter: produces the dynamic instruction stream.
 *
 * The Executor walks a Workload's control-flow graph, evaluating each
 * conditional branch's behaviour model to decide its outcome, and
 * emits DynInsts one at a time.  When the main function returns with
 * an empty call stack the program restarts (an implicit outer loop),
 * so the stream is unbounded.  The same class drives both profiling
 * runs (via an observer) and measured simulation runs.
 */

#ifndef FETCHSIM_EXEC_EXECUTOR_H_
#define FETCHSIM_EXEC_EXECUTOR_H_

#include <cstdint>
#include <memory_resource>
#include <vector>

#include "exec/dyn_inst.h"
#include "exec/inst_source.h"
#include "workload/generator.h"

namespace fetchsim
{

/**
 * Observer hooks for profiling.  Callbacks fire as the stream is
 * generated; the edge profiler in src/compiler implements this.
 */
class ExecObserver
{
  public:
    virtual ~ExecObserver() = default;

    /** A basic block begins executing. */
    virtual void onBlock(BlockId block) = 0;

    /**
     * A conditional branch resolved.
     * @param block the block whose terminator branched
     * @param taken the actual (post-inversion) outcome
     */
    virtual void onCondBranch(BlockId block, bool taken) = 0;
};

/**
 * The CFG interpreter.
 */
class Executor : public InstSource
{
  public:
    /**
     * @param workload the generated benchmark (must outlive this)
     * @param input    input id: 0..4 are profiling inputs, 5 is the
     *                 evaluation input (kEvalInput)
     * @param mem      memory resource for the per-input behaviour
     *                 states and the call stack (must outlive this)
     */
    Executor(const Workload &workload, int input,
             std::pmr::memory_resource *mem =
                 std::pmr::get_default_resource());

    /** Attach a profiling observer (may be nullptr to detach). */
    void setObserver(ExecObserver *observer) { observer_ = observer; }

    /**
     * Produce the next dynamic instruction.
     * @return always true (the stream is unbounded; trace files are
     *         the bounded InstSource).
     */
    bool next(DynInst &out) override;

    /**
     * Batch kernel: emit exactly @p max instructions (the live
     * stream never ends) with one virtual dispatch for the whole
     * refill instead of one per instruction.
     */
    std::size_t fill(DynInst *out, std::size_t max) override;

    /** Number of instructions emitted so far. */
    std::uint64_t emitted() const { return seq_; }

    /** Current call-stack depth (testing hook). */
    std::size_t callDepth() const { return call_stack_.size(); }

  private:
    void moveTo(BlockId block);
    void skipEmptyBlocks();

    const Workload &workload_;
    int input_;
    ExecObserver *observer_ = nullptr;

    std::pmr::vector<BehaviorState> states_;
    std::pmr::vector<BlockId> call_stack_;
    BlockId cur_block_ = kNoBlock;
    int cur_idx_ = 0;
    std::uint64_t seq_ = 0;
};

} // namespace fetchsim

#endif // FETCHSIM_EXEC_EXECUTOR_H_
