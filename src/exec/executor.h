/**
 * @file
 * CFG interpreter: produces the dynamic instruction stream.
 *
 * The Executor walks a Workload's control-flow graph, evaluating each
 * conditional branch's behaviour model to decide its outcome, and
 * emits DynInsts one at a time.  When the main function returns with
 * an empty call stack the program restarts (an implicit outer loop),
 * so the stream is unbounded.  The same class drives both profiling
 * runs (via an observer) and measured simulation runs.
 */

#ifndef FETCHSIM_EXEC_EXECUTOR_H_
#define FETCHSIM_EXEC_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "exec/dyn_inst.h"
#include "exec/inst_source.h"
#include "workload/generator.h"

namespace fetchsim
{

/**
 * Observer hooks for profiling.  Callbacks fire as the stream is
 * generated; the edge profiler in src/compiler implements this.
 */
class ExecObserver
{
  public:
    virtual ~ExecObserver() = default;

    /** A basic block begins executing. */
    virtual void onBlock(BlockId block) = 0;

    /**
     * A conditional branch resolved.
     * @param block the block whose terminator branched
     * @param taken the actual (post-inversion) outcome
     */
    virtual void onCondBranch(BlockId block, bool taken) = 0;
};

/**
 * The CFG interpreter.
 */
class Executor : public InstSource
{
  public:
    /**
     * @param workload the generated benchmark (must outlive this)
     * @param input    input id: 0..4 are profiling inputs, 5 is the
     *                 evaluation input (kEvalInput)
     */
    Executor(const Workload &workload, int input);

    /** Attach a profiling observer (may be nullptr to detach). */
    void setObserver(ExecObserver *observer) { observer_ = observer; }

    /**
     * Produce the next dynamic instruction.
     * @return always true (the stream is unbounded; trace files are
     *         the bounded InstSource).
     */
    bool next(DynInst &out) override;

    /** Number of instructions emitted so far. */
    std::uint64_t emitted() const { return seq_; }

    /** Current call-stack depth (testing hook). */
    std::size_t callDepth() const { return call_stack_.size(); }

  private:
    void moveTo(BlockId block);
    void skipEmptyBlocks();

    const Workload &workload_;
    int input_;
    ExecObserver *observer_ = nullptr;

    std::vector<BehaviorState> states_;
    std::vector<BlockId> call_stack_;
    BlockId cur_block_ = kNoBlock;
    int cur_idx_ = 0;
    std::uint64_t seq_ = 0;
};

} // namespace fetchsim

#endif // FETCHSIM_EXEC_EXECUTOR_H_
