/**
 * @file
 * Binary dynamic-instruction trace files.
 *
 * The paper captured benchmark traces with the spike tool and fed
 * them to the processor simulation; this module provides the same
 * workflow: record any instruction stream to a compact binary file
 * and replay it through the Processor later (or on another machine),
 * with no dependence on the workload generator.
 *
 * Format (little-endian, fixed-width):
 *   header : magic "FSTR" | u32 version | u64 record count
 *   record : u64 pc | u64 actualTarget | u8 op | u8 dest | u8 src1 |
 *            u8 src2 | i32 imm | u8 taken | u8[3] pad   (32 bytes)
 *
 * Sequence numbers are implicit (record order); BlockIds are not
 * preserved (traces are program-agnostic, exactly like spike's).
 */

#ifndef FETCHSIM_EXEC_TRACE_FILE_H_
#define FETCHSIM_EXEC_TRACE_FILE_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "exec/inst_source.h"

namespace fetchsim
{

/** Trace-file magic and version. */
constexpr std::uint32_t kTraceMagic = 0x52545346; // "FSTR"
constexpr std::uint32_t kTraceVersion = 1;

/**
 * Streams dynamic instructions into a trace file.
 */
class TraceWriter
{
  public:
    /** Open @p path for writing; fatal() on failure. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one instruction. */
    void append(const DynInst &di);

    /** Finalize the header and close.  Implied by destruction. */
    void close();

    /** Records written so far. */
    std::uint64_t count() const { return count_; }

  private:
    std::FILE *file_ = nullptr;
    std::uint64_t count_ = 0;
};

/**
 * Replays a trace file as an InstSource.
 */
class TraceReader : public InstSource
{
  public:
    /** Open and validate @p path; fatal() on failure or bad header. */
    explicit TraceReader(const std::string &path);
    ~TraceReader() override;

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    bool next(DynInst &out) override;

    /** Total records in the file. */
    std::uint64_t count() const { return count_; }

    /** Records consumed so far. */
    std::uint64_t consumed() const { return consumed_; }

    /** Rewind to the first record. */
    void rewind();

  private:
    std::FILE *file_ = nullptr;
    std::uint64_t count_ = 0;
    std::uint64_t consumed_ = 0;
};

/**
 * Convenience: record @p num_insts instructions of @p source into
 * @p path.  Returns the number written (== num_insts unless the
 * source ends early).
 */
std::uint64_t recordTrace(InstSource &source, const std::string &path,
                          std::uint64_t num_insts);

} // namespace fetchsim

#endif // FETCHSIM_EXEC_TRACE_FILE_H_
