/**
 * @file
 * Binary dynamic-instruction trace files.
 *
 * The paper captured benchmark traces with the spike tool and fed
 * them to the processor simulation; this module provides the same
 * workflow: record any instruction stream to a compact binary file
 * and replay it through the Processor later (or on another machine),
 * with no dependence on the workload generator.
 *
 * Format v2 (little-endian, fixed-width; see docs/TRACES.md for the
 * full layout tables):
 *   header : magic "FSTR" | u32 version | u64 record count |
 *            u64 content hash                         (24 bytes)
 *   record : u64 pc | u64 actualTarget | u8 op | u8 dest | u8 src1 |
 *            u8 src2 | i32 imm | u8 taken | u8[7] pad (32 bytes)
 *
 * The content hash is FNV-1a over the canonical field bytes of every
 * record (traceRecordHash), so a truncated or bit-flipped file is
 * detected when the last record is consumed.  Version-1 files (the
 * 16-byte header without the hash) are still readable; writing always
 * produces v2.
 *
 * Sequence numbers are implicit (record order); BlockIds are not
 * preserved (traces are program-agnostic, exactly like spike's).
 *
 * All I/O failures throw SimException(ErrorKind::Io) so a sweep's
 * isolation boundary can record them per cell instead of dying.
 */

#ifndef FETCHSIM_EXEC_TRACE_FILE_H_
#define FETCHSIM_EXEC_TRACE_FILE_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "exec/inst_source.h"

namespace fetchsim
{

/** Trace-file magic and current (written) version. */
constexpr std::uint32_t kTraceMagic = 0x52545346; // "FSTR"
constexpr std::uint32_t kTraceVersion = 2;

/** FNV-1a 64-bit parameters (shared with the in-memory DynTrace). */
constexpr std::uint64_t kTraceHashOffset = 1469598103934665603ull;
constexpr std::uint64_t kTraceHashPrime = 1099511628211ull;

/** Fold @p len raw bytes into an FNV-1a running hash. */
inline std::uint64_t
traceHashBytes(std::uint64_t hash, const void *data, std::size_t len)
{
    const unsigned char *bytes =
        static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        hash ^= bytes[i];
        hash *= kTraceHashPrime;
    }
    return hash;
}

/**
 * Fold one dynamic instruction into a running content hash.  The
 * canonical field order (pc, target, op, dest, src1, src2, imm,
 * taken) is shared by the on-disk TraceWriter and the in-memory
 * DynTrace, so a spilled trace and its in-memory twin hash
 * identically.
 */
std::uint64_t traceRecordHash(std::uint64_t hash, const DynInst &di);

/**
 * Streams dynamic instructions into a trace file (format v2).
 *
 * Writes go to a private `<path>.tmp` file; close() finalizes the
 * header and atomically renames it into place, so readers can never
 * observe a half-written trace at @p path -- an interrupted or
 * failed write leaves the destination untouched.  Destruction on a
 * normal path implies close(); destruction during exception unwind
 * (or after discard()) removes the temporary instead, so an aborted
 * producer never publishes a partial file.
 */
class TraceWriter
{
  public:
    /** Open @p path for writing; throws SimException(Io) on failure. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one instruction; throws SimException(Io) on failure. */
    void append(const DynInst &di);

    /**
     * Finalize the header and publish the file at the destination
     * path.  Implied by destruction on a non-exception path.
     */
    void close();

    /**
     * Abandon the recording: delete the temporary file without ever
     * publishing the destination path.  Never throws.
     */
    void discard();

    /** Records written so far. */
    std::uint64_t count() const { return count_; }

    /** Running content hash of the records written so far. */
    std::uint64_t contentHash() const { return hash_; }

  private:
    std::FILE *file_ = nullptr;
    std::string path_;
    std::string tmp_path_;
    std::uint64_t count_ = 0;
    std::uint64_t hash_ = kTraceHashOffset;
    int exceptions_at_ctor_ = 0;
};

/**
 * Replays a trace file as an InstSource.  Reads v2 (verifying the
 * content hash as the last record is consumed) and legacy v1 files
 * (no hash to verify).  All failures throw SimException(Io).
 *
 * The header's record count is validated against the file size at
 * open, so a truncated payload or an absurd length field is rejected
 * before any record is consumed (and before a caller sizes buffers
 * from count()).
 */
class TraceReader : public InstSource
{
  public:
    /** Open and validate @p path; throws SimException(Io) on failure
     *  or a bad header. */
    explicit TraceReader(const std::string &path);
    ~TraceReader() override;

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    bool next(DynInst &out) override;

    /** Total records in the file. */
    std::uint64_t count() const { return count_; }

    /** Records consumed so far. */
    std::uint64_t consumed() const { return consumed_; }

    /** Header format version (1 or 2). */
    std::uint32_t version() const { return version_; }

    /** Header content hash (0 for v1 files). */
    std::uint64_t contentHash() const { return header_hash_; }

    /** Rewind to the first record. */
    void rewind();

  private:
    std::FILE *file_ = nullptr;
    std::string path_;
    std::uint32_t version_ = kTraceVersion;
    std::uint64_t count_ = 0;
    std::uint64_t consumed_ = 0;
    std::uint64_t header_hash_ = 0;
    std::uint64_t running_hash_ = kTraceHashOffset;
    long data_offset_ = 0;
};

/**
 * Convenience: record @p num_insts instructions of @p source into
 * @p path.  Returns the number written (== num_insts unless the
 * source ends early).
 */
std::uint64_t recordTrace(InstSource &source, const std::string &path,
                          std::uint64_t num_insts);

} // namespace fetchsim

#endif // FETCHSIM_EXEC_TRACE_FILE_H_
