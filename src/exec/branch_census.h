/**
 * @file
 * Pipeline-free dynamic branch census.
 *
 * Tables 2 and 3 of the paper are properties of the dynamic
 * instruction stream alone (no timing involved), so this utility runs
 * the Executor stand-alone and tallies control-transfer statistics,
 * including the share of taken branches whose target lies in the same
 * cache block (the intra-block branches that motivate the collapsing
 * buffer).
 */

#ifndef FETCHSIM_EXEC_BRANCH_CENSUS_H_
#define FETCHSIM_EXEC_BRANCH_CENSUS_H_

#include <cstdint>

#include "workload/generator.h"

namespace fetchsim
{

/** Result of one census run. */
struct BranchCensus
{
    std::uint64_t instructions = 0;  //!< dynamic instructions examined
    std::uint64_t condBranches = 0;  //!< dynamic conditional branches
    std::uint64_t condTaken = 0;     //!< conditional branches taken
    std::uint64_t takenTotal = 0;    //!< all taken control transfers
    std::uint64_t intraBlock = 0;    //!< taken with same-block target
    std::uint64_t nops = 0;          //!< executed padding nops

    /** Intra-block share of all taken control transfers (Table 2). */
    double
    intraBlockPercent() const
    {
        return takenTotal == 0 ? 0.0
                               : 100.0 * static_cast<double>(intraBlock) /
                                     static_cast<double>(takenTotal);
    }

    /** Taken control transfers per 100 dynamic instructions. */
    double
    takenPer100() const
    {
        return instructions == 0
                   ? 0.0
                   : 100.0 * static_cast<double>(takenTotal) /
                         static_cast<double>(instructions);
    }
};

/**
 * Run @p workload for @p num_insts dynamic instructions on @p input
 * and tally branch statistics against @p block_bytes cache blocks.
 */
BranchCensus runBranchCensus(const Workload &workload, int input,
                             std::uint64_t num_insts, int block_bytes);

} // namespace fetchsim

#endif // FETCHSIM_EXEC_BRANCH_CENSUS_H_
