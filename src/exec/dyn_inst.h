/**
 * @file
 * One dynamic (executed) instruction, as produced by the Executor and
 * consumed by the fetch unit and the out-of-order core.
 */

#ifndef FETCHSIM_EXEC_DYN_INST_H_
#define FETCHSIM_EXEC_DYN_INST_H_

#include <cstdint>

#include "isa/static_inst.h"
#include "program/basic_block.h"

namespace fetchsim
{

/**
 * A dynamic instruction instance: the static instruction plus its
 * address and, for control instructions, the *actual* outcome.  The
 * simulator is trace-driven: predictions are made against this actual
 * outcome and mispredictions are charged as stalls (the paper's own
 * methodology with spike traces).
 */
struct DynInst
{
    std::uint64_t pc = 0;          //!< instruction address
    std::uint64_t seq = 0;         //!< dynamic sequence number
    StaticInst si;                 //!< decoded static instruction
    BlockId block = kNoBlock;      //!< owning basic block (debugging)

    bool taken = false;            //!< actual control outcome
    std::uint64_t actualTarget = 0; //!< actual target when taken

    /** Address of the next sequential instruction. */
    std::uint64_t nextPc() const { return pc + kInstBytes; }

    /** Address execution actually continues at after this inst. */
    std::uint64_t
    actualNextPc() const
    {
        return taken ? actualTarget : nextPc();
    }

    /** True if this is any control-transfer instruction. */
    bool isControl() const { return si.isControl(); }

    /** True for conditional branches. */
    bool isCondBranch() const { return si.isCondBranch(); }
};

} // namespace fetchsim

#endif // FETCHSIM_EXEC_DYN_INST_H_
