/**
 * @file
 * Walk through the paper's compiler pipeline on one benchmark:
 * profile with the five training inputs, select traces, reorder the
 * layout, optionally pad, and report the static and dynamic effects
 * at every step -- ending with the IPC impact on a chosen scheme.
 *
 * Usage: compiler_optimization [benchmark] [scheme-index 0..4]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "compiler/code_layout.h"
#include "compiler/nop_padding.h"
#include "exec/branch_census.h"
#include "sim/plan.h"
#include "sim/session.h"
#include "sim/sweep.h"
#include "stats/table.h"
#include "workload/benchmark_suite.h"

using namespace fetchsim;

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "compress";
    const int scheme_index = argc > 2 ? std::atoi(argv[2]) : 1;
    if (scheme_index < 0 || scheme_index > 4)
        fatal("scheme index must be 0..4");
    const auto scheme = static_cast<SchemeKind>(scheme_index);
    const std::uint64_t insts = 100000;

    std::cout << "Profile-driven optimization pipeline for "
              << benchmark << " (scheme: " << schemeName(scheme)
              << ")\n\n";

    // --- Step 1: generate and profile --------------------------------
    Workload workload = generateWorkload(benchmarkByName(benchmark));
    std::cout << "Generated program: "
              << workload.program.numFunctions() << " functions, "
              << workload.program.numBlocks() << " blocks, "
              << workload.program.totalInstructions()
              << " static instructions ("
              << workload.program.totalInstructions() * kInstBytes /
                     1024
              << " KB).\n";

    EdgeProfile profile = collectProfile(workload);
    std::uint64_t executed_blocks = 0;
    for (std::uint64_t count : profile.blockCount)
        executed_blocks += count > 0 ? 1 : 0;
    std::cout << "Profiled with " << kNumTrainInputs
              << " training inputs: " << executed_blocks << " of "
              << workload.program.numBlocks()
              << " blocks ever executed.\n\n";

    // --- Step 2: trace selection --------------------------------------
    std::vector<Trace> traces = selectTraces(workload.program, profile);
    std::size_t hot_traces = 0, longest = 0;
    for (const Trace &trace : traces) {
        if (trace.seedWeight > 0)
            ++hot_traces;
        longest = std::max(longest, trace.blocks.size());
    }
    std::cout << "Trace selection: " << traces.size() << " traces ("
              << hot_traces << " hot), longest " << longest
              << " blocks.\n";

    // --- Step 3: reorder ------------------------------------------------
    BranchCensus before =
        runBranchCensus(workload, kEvalInput, insts, 16);
    ReorderStats rstats = applyTraceLayout(workload, traces);
    BranchCensus after =
        runBranchCensus(workload, kEvalInput, insts, 16);
    std::cout << "Reordering: " << rstats.inverted
              << " branches inverted, " << rstats.jumpsInserted
              << " jumps inserted, " << rstats.jumpsRemoved
              << " jumps removed.\n";
    std::cout << "Dynamic taken branches: " << before.takenPer100()
              << " -> " << after.takenPer100()
              << " per 100 instructions ("
              << 100.0 *
                     (1.0 - static_cast<double>(after.takenTotal) /
                                static_cast<double>(before.takenTotal))
              << "% reduction, paper Table 3).\n\n";

    // --- Step 4: pad-trace ----------------------------------------------
    PaddingStats pstats = padTrace(workload, traces, 16);
    std::cout << "pad-trace at 16B blocks: " << pstats.nopsInserted
              << " nops = " << pstats.percent()
              << "% static growth (paper Table 4).\n\n";

    // --- Step 5: IPC impact ----------------------------------------------
    // The measured runs go through the Session API: one plan over the
    // layout x machine grid, swept in parallel.  (The Session prepares
    // its own workloads; the hand-transformed copy above was for the
    // step-by-step statistics.)
    Session session;
    ExperimentPlan plan;
    plan.benchmark(benchmark)
        .machines({MachineModel::P14, MachineModel::P18,
                   MachineModel::P112})
        .scheme(scheme)
        .layouts({LayoutKind::Unordered, LayoutKind::Reordered,
                  LayoutKind::PadTrace})
        .override([insts](RunConfig &config) {
            config.maxRetired = insts;
        });
    SweepEngine engine(session);
    SweepResult sweep = engine.run(plan);

    TextTable table("IPC across layouts, " +
                    std::string(schemeName(scheme)));
    table.setHeader({"layout", "P14", "P18", "P112"});
    for (LayoutKind layout :
         {LayoutKind::Unordered, LayoutKind::Reordered,
          LayoutKind::PadTrace}) {
        table.startRow();
        table.addCell(std::string(layoutName(layout)));
        for (MachineModel machine :
             {MachineModel::P14, MachineModel::P18,
              MachineModel::P112}) {
            const RunResult &run =
                sweep.find([&](const RunConfig &config) {
                    return config.machine == machine &&
                           config.layout == layout;
                });
            table.addCell(run.ipc(), 3);
        }
    }
    table.print(std::cout);
    std::cout << "\nThe paper's conclusion: reordering lifts every "
                 "scheme, and a reordered simple scheme approaches "
                 "an unordered collapsing buffer (Figure 12).\n";
    return 0;
}
