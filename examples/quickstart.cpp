/**
 * @file
 * Quickstart: simulate one benchmark on one machine with every fetch
 * scheme and print the resulting IPC/EIR.
 *
 * Usage: quickstart [benchmark] [P14|P18|P112] [insts]
 * Defaults: eqntott on P112, 120k retired instructions.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "sim/plan.h"
#include "sim/session.h"
#include "sim/sweep.h"
#include "stats/table.h"

using namespace fetchsim;

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "eqntott";
    const std::string machine_name = argc > 2 ? argv[2] : "P112";
    const std::uint64_t insts =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 120000;

    MachineModel machine = MachineModel::P112;
    if (machine_name == "P14")
        machine = MachineModel::P14;
    else if (machine_name == "P18")
        machine = MachineModel::P18;
    else if (machine_name != "P112")
        fatal("unknown machine: " + machine_name +
              " (expected P14, P18 or P112)");

    std::cout << "fetchsim quickstart: " << benchmark << " on "
              << machineName(machine) << ", " << insts
              << " retired instructions per run\n\n";

    TextTable table("IPC and EIR by fetch mechanism");
    table.setHeader({"scheme", "IPC", "EIR", "mispredict",
                     "icache-miss", "stall-cycles"});

    // One Session (the prepared-workload cache), one plan expanding
    // the scheme axis, one parallel sweep over it.
    Session session;
    ExperimentPlan plan;
    plan.benchmark(benchmark)
        .machine(machine)
        .schemes({SchemeKind::Sequential,
                  SchemeKind::InterleavedSequential,
                  SchemeKind::BankedSequential,
                  SchemeKind::CollapsingBuffer, SchemeKind::Perfect})
        .override([insts](RunConfig &config) {
            config.maxRetired = insts;
        });
    SweepEngine engine(session);
    SweepResult sweep = engine.run(plan);

    for (const RunResult &result : sweep.runs) {
        table.startRow();
        table.addCell(std::string(schemeName(result.config.scheme)));
        table.addCell(result.ipc(), 3);
        table.addCell(result.eir(), 3);
        table.addPercent(100.0 * result.counters.mispredictRate());
        table.addPercent(100.0 * result.counters.icacheMissRatio(), 3);
        table.addCell(result.counters.stallCycles);
    }
    table.print(std::cout);

    std::cout << "\nThe collapsing buffer should track perfect "
                 "closely; sequential trails it badly at high issue "
                 "rates (paper Figures 3 and 9).\n";
    return 0;
}
