/**
 * @file
 * fetchsim_cli: the general-purpose command-line driver.
 *
 * Run any experiment point without writing code, sweep whole config
 * grids in parallel with JSON/CSV output, record benchmark traces to
 * disk, and replay them -- the full spike-trace workflow of the paper
 * from one binary.
 *
 *   fetchsim_cli run    --benchmark gcc --machine P112
 *                       --scheme collapsing [--layout reordered]
 *                       [--insts N] [--predictor gshare] [--ras]
 *                       [--spec-depth N] [--btb N] [--json]
 *                       [--metrics] [--trace events.jsonl]
 *   fetchsim_cli report [--out docs/RESULTS.md] [--insts N]
 *                       [--threads N] [--fail-fast|--keep-going]
 *                       [--retry N] [--checkpoint FILE] [--resume]
 *                       [--replay off|mem|disk]
 *                       [--trace-out trace.json]
 *   fetchsim_cli sweep  [--benchmarks gcc,compress|int|fp|all]
 *                       [--machines P14,P112|all]
 *                       [--schemes sequential,collapsing|all]
 *                       [--layouts unordered,reordered]
 *                       [--insts N] [--threads N]
 *                       [--fail-fast|--keep-going] [--retry N]
 *                       [--checkpoint FILE] [--resume]
 *                       [--replay off|mem|disk]
 *                       [--json out.json] [--csv out.csv]
 *                       [--trace-out trace.json]
 *   fetchsim_cli bench  [--iterations N] [--threads N] [--insts N]
 *                       [--out BENCH_sweep.json] [--smoke]
 *                       [--baseline FILE] [--max-regress PCT]
 *                       [--replay off|mem|disk]
 *                       [--trace-out trace.json]
 *   fetchsim_cli record --benchmark gcc --out gcc.trace [--insts N]
 *                       [--layout reordered]
 *   fetchsim_cli replay --trace gcc.trace --machine P112
 *                       --scheme banked [--insts N]
 *   fetchsim_cli serve  --socket PATH [--threads N]
 *                       [--queue-cells N] [--result-cache FILE]
 *                       [--cache-max-entries N]
 *                       [--replay off|mem|disk]
 *   fetchsim_cli submit --socket PATH [plan flags as in sweep]
 *                       [--priority N] [--no-wait] [--json FILE]
 *                       | --status JOB | --cancel JOB
 *                       | --trace JOB
 *                       | --metrics [--format prometheus]
 *                       | --shutdown
 *   fetchsim_cli import --in trace.champsim --out gcc.trace
 *                       [--format champsim] [--lenient]
 *                       [--max-insts N] [--manifest FILE]
 *   fetchsim_cli fuzz   [--runs N] [--seed N] [--threads N]
 *                       [--max-failures N]
 *                       | --fuzz-seed HEX [--shrink-level N]
 *   fetchsim_cli list
 *   fetchsim_cli help
 *
 * `import` converts an external (ChampSim-format) trace into an FSTR
 * v2 file with defensive parsing -- structured errors on truncated or
 * impossible inputs, `--lenient` to repair-and-count instead -- and
 * writes a JSON manifest carrying the content hash.  The imported
 * file becomes a first-class benchmark via `--external NAME=PATH`
 * (accepted by run and sweep), referenced as `external:NAME`.
 *
 * `fuzz` runs the property-based sweep-invariant fuzzer (sim/fuzz.h):
 * each scenario randomizes a workload and plan, runs a mini-sweep,
 * and checks determinism invariants (thread-count byte-identity,
 * replay on/off identity, checkpoint/resume identity, result-cache
 * round-trip, perfect-scheme dominance).  Failures shrink to a
 * minimal reproducer replayable with --fuzz-seed.
 *
 * `serve` runs the long-lived sweep service (sim/service.h,
 * docs/SERVICE.md): jobs from any number of `submit` clients share
 * one Session, one replay cache and one content-addressed result
 * cache, so a cell simulated once is served from cache forever.
 * SIGTERM drains gracefully: in-flight cells finish and are
 * journaled, the rest are skipped, and a service restarted on the
 * same --result-cache journal resumes warm.
 *
 * `--replay` selects the shared dynamic-trace replay cache
 * (docs/TRACES.md): under `mem` or `disk` the first run for each
 * (benchmark, layout, block, input, budget) key records the dynamic
 * stream once and every other cell replays the recording instead of
 * re-executing the CFG.  Results are bit-identical in every mode;
 * only host throughput changes.  `--replay-budget-mb` caps the cache
 * size (over-budget keys fall back to live execution) and
 * `--replay-dir` picks the spill directory for `disk` (default: a
 * private temp directory, cleaned up on exit).
 *
 * Host telemetry (src/perf): `--trace-out FILE` profiles the
 * simulator itself during a sweep/report/bench and writes a Chrome
 * trace-event JSON (open in chrome://tracing or Perfetto) with one
 * slice per sweep cell and nested session/cycle/fetch/checkpoint
 * phases, one track per worker thread.  `bench` runs the pinned
 * regression grid N times, writes median±MAD host throughput to a
 * machine-readable BENCH JSON, and -- with --baseline -- exits 1
 * when any cell's median simulated-cycles/sec dropped more than
 * --max-regress percent (default 10) below the baseline.
 *
 * Exit codes (sysexits-style, so scripts can branch on the failure
 * class without parsing stderr):
 *
 *   0   success
 *   64  usage error (bad flag syntax, unknown command)
 *   65  configuration rejected (unknown benchmark/machine/..., plan
 *       validation failure)
 *   70  simulation failure (watchdog trip, internal error)
 *   74  I/O failure (unwritable output, unreadable checkpoint,
 *       unreachable service socket, service backpressure)
 *   76  protocol error (malformed service request/response --
 *       sysexits EX_PROTOCOL)
 *   130 interrupted (SIGINT drained the sweep; completed cells are
 *       checkpointed when --checkpoint is given -- rerun with
 *       --resume to finish; also: submit's job ended cancelled or
 *       drained)
 *
 * `bench --baseline` additionally exits 1 (generic failure) when the
 * run regressed against the baseline; the run itself succeeded, so
 * none of the sysexits classes apply.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/error.h"
#include "core/processor.h"
#include "exec/trace_file.h"
#include "fetch/scheme_registry.h"
#include "ingest/champsim.h"
#include "ingest/trace_registry.h"
#include "perf/profiler.h"
#include "perf/trace_export.h"
#include "sim/bench.h"
#include "sim/checkpoint.h"
#include "sim/fuzz.h"
#include "sim/plan.h"
#include "sim/report.h"
#include "sim/repro_report.h"
#include "sim/service.h"
#include "sim/session.h"
#include "sim/sweep.h"
#include "stats/log.h"
#include "stats/table.h"
#include "workload/benchmark_suite.h"

using namespace fetchsim;

namespace
{

// Sysexits-style exit codes (see the file header).
constexpr int kExitUsage = 64;
constexpr int kExitConfig = 65;
constexpr int kExitSimulation = 70;
constexpr int kExitIo = 74;
constexpr int kExitProtocol = 76; // sysexits EX_PROTOCOL
constexpr int kExitInterrupted = 130;

/** Bad command-line syntax (exit 64, distinct from config errors). */
struct UsageError : std::runtime_error
{
    explicit UsageError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Minimal --key value argument map. */
std::map<std::string, std::string>
parseArgs(int argc, char **argv, int first)
{
    std::map<std::string, std::string> args;
    for (int i = first; i < argc; ++i) {
        std::string key = argv[i];
        if (key.rfind("--", 0) != 0)
            throw UsageError("expected --option, got: " + key);
        key = key.substr(2);
        // Flags without values.
        if (key == "ras" || key == "metrics" || key == "json" ||
            key == "fail-fast" || key == "keep-going" ||
            key == "resume" || key == "smoke" || key == "no-wait" ||
            key == "shutdown" || key == "lenient") {
            // --json doubles as a valued option (sweep output file);
            // treat it as a flag only when no value follows.
            if (key == "json" && i + 1 < argc &&
                std::strncmp(argv[i + 1], "--", 2) != 0) {
                args[key] = argv[++i];
                continue;
            }
            args[key] = "";
            continue;
        }
        if (i + 1 >= argc)
            throw UsageError("missing value for --" + key);
        args[key] = argv[++i];
    }
    return args;
}

std::string
getOr(const std::map<std::string, std::string> &args,
      const std::string &key, const std::string &fallback)
{
    auto it = args.find(key);
    return it == args.end() ? fallback : it->second;
}

/**
 * Configure the process-wide structured logger from --log-level,
 * --log-format and --log-file.  Touching Logger::instance() first
 * applies the FETCHSIM_LOG environment spec, so explicit flags always
 * win over the environment.  Every command accepts the flags; the
 * long-running `serve` is where they matter most.
 */
void
applyLogFlags(const std::map<std::string, std::string> &args)
{
    Logger &logger = Logger::instance();
    if (auto it = args.find("log-level"); it != args.end())
        logger.setLevel(parseLogLevel(it->second).value());
    if (auto it = args.find("log-format"); it != args.end())
        logger.setFormat(parseLogFormat(it->second).value());
    if (auto it = args.find("log-file"); it != args.end())
        logger.openFile(it->second); // SimException(Io) on failure
}

/** Split "a,b,c" into its fields. */
std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> fields;
    std::string::size_type start = 0;
    while (start <= list.size()) {
        std::string::size_type comma = list.find(',', start);
        if (comma == std::string::npos)
            comma = list.size();
        if (comma > start)
            fields.push_back(list.substr(start, comma - start));
        start = comma + 1;
    }
    return fields;
}

MachineModel
parseMachine(const std::string &name)
{
    if (name == "P14")
        return MachineModel::P14;
    if (name == "P18")
        return MachineModel::P18;
    if (name == "P112")
        return MachineModel::P112;
    throw SimException(ErrorKind::Config,
                       "unknown machine: " + name + " (P14|P18|P112)");
}

SchemeKind
parseScheme(const std::string &name)
{
    const auto &registry = FetchSchemeRegistry::instance();
    if (const SchemeInfo *info = registry.find(name))
        return info->kind;
    throw SimException(ErrorKind::Config,
                       "unknown scheme: " + name + " (" +
                           registry.keyList() + ")");
}

LayoutKind
parseLayout(const std::string &name)
{
    if (name == "unordered")
        return LayoutKind::Unordered;
    if (name == "reordered")
        return LayoutKind::Reordered;
    if (name == "pad-all")
        return LayoutKind::PadAll;
    if (name == "pad-trace")
        return LayoutKind::PadTrace;
    throw SimException(ErrorKind::Config,
                       "unknown layout: " + name +
                           " (unordered|reordered|pad-all|pad-trace)");
}

PredictorKind
parsePredictor(const std::string &name)
{
    if (name == "btb")
        return PredictorKind::BtbCounter;
    if (name == "gshare")
        return PredictorKind::Gshare;
    if (name == "two-level")
        return PredictorKind::TwoLevel;
    if (name == "oracle")
        return PredictorKind::OracleDirection;
    throw SimException(ErrorKind::Config,
                       "unknown predictor: " + name +
                           " (btb|gshare|two-level|oracle)");
}

/** Expand a --benchmarks value ("int", "fp", "all" or a list). */
std::vector<std::string>
parseBenchmarks(const std::string &value)
{
    if (value == "int")
        return integerNames();
    if (value == "fp")
        return fpNames();
    if (value == "all") {
        std::vector<std::string> names = integerNames();
        for (const std::string &name : fpNames())
            names.push_back(name);
        return names;
    }
    return splitList(value);
}

/**
 * The failure policy requested by --fail-fast / --keep-going /
 * --retry N (fail-fast is the default; the flags are mutually
 * exclusive).
 */
FailurePolicy
parseFailurePolicy(const std::map<std::string, std::string> &args)
{
    if (args.count("fail-fast") && args.count("keep-going"))
        throw UsageError(
            "--fail-fast and --keep-going are mutually exclusive");
    FailurePolicy policy;
    if (args.count("keep-going"))
        policy.mode = FailureMode::KeepGoing;
    const std::string retry = getOr(args, "retry", "0");
    policy.maxRetries = std::atoi(retry.c_str());
    if (policy.maxRetries < 0)
        throw UsageError("--retry wants a non-negative count, got " +
                         retry);
    policy.backoffMs =
        std::atoi(getOr(args, "retry-backoff-ms", "100").c_str());
    return policy;
}

/**
 * The replay-cache request from --replay / --replay-budget-mb /
 * --replay-dir (off by default).
 */
ReplayOptions
parseReplayOptions(const std::map<std::string, std::string> &args)
{
    ReplayOptions replay;
    replay.policy =
        parseReplayPolicy(getOr(args, "replay", "off")).value();
    const std::string budget_mb =
        getOr(args, "replay-budget-mb", "0");
    const double mb = std::strtod(budget_mb.c_str(), nullptr);
    if (mb < 0)
        throw UsageError(
            "--replay-budget-mb wants a non-negative size, got " +
            budget_mb);
    replay.budgetBytes =
        static_cast<std::uint64_t>(mb * 1024.0 * 1024.0);
    replay.spillDir = getOr(args, "replay-dir", "");
    return replay;
}

/** One-line replay-cache summary on stderr (non-Off policies only). */
void
printReplayStats(const Session &session, const ReplayOptions &replay)
{
    if (replay.policy == ReplayPolicy::Off)
        return;
    const ReplayStats stats = session.replayStats();
    std::fprintf(stderr,
                 "replay(%s): %llu hits, %llu misses, %llu live "
                 "fallbacks, %llu insts recorded, %.1f MB cached\n",
                 replayPolicyName(replay.policy),
                 static_cast<unsigned long long>(stats.hits),
                 static_cast<unsigned long long>(stats.misses),
                 static_cast<unsigned long long>(stats.fallbacks),
                 static_cast<unsigned long long>(stats.recordedInsts),
                 static_cast<double>(stats.bytesInMemory +
                                     stats.bytesSpilled) /
                     (1024.0 * 1024.0));
}

/**
 * Turn host profiling on when --trace-out FILE was requested and
 * return the file path ("" when the flag is absent).
 */
std::string
beginHostTrace(const std::map<std::string, std::string> &args)
{
    const std::string path = getOr(args, "trace-out", "");
    if (!path.empty())
        Profiler::setEnabled(true);
    return path;
}

/** Export the Chrome trace started by beginHostTrace(). */
void
endHostTrace(const std::string &path)
{
    if (path.empty())
        return;
    Profiler::setEnabled(false);
    const std::size_t events = exportChromeTrace(path);
    std::cerr << "wrote " << events << " host-trace events to "
              << path << "\n";
}

/**
 * TTY-only live progress line for a parallel sweep: cells done,
 * observed-rate ETA and retry count, overdrawn in place on stderr
 * and blanked on completion so piped output is unchanged.
 */
void
attachSweepProgress(SweepOptions &options)
{
    if (!isatty(STDERR_FILENO))
        return;
    options.tick = [](const SweepTick &tick) {
        if (tick.done == tick.total) {
            std::fprintf(stderr, "\r%*s\r", 64, "");
            return;
        }
        const double elapsed_s =
            static_cast<double>(tick.elapsedNs) / 1e9;
        const double eta_s =
            tick.done == 0
                ? 0.0
                : elapsed_s *
                      static_cast<double>(tick.total - tick.done) /
                      static_cast<double>(tick.done);
        std::fprintf(stderr,
                     "\r  [%zu/%zu cells] eta %.1fs, %llu retries ",
                     tick.done, tick.total, eta_s,
                     static_cast<unsigned long long>(tick.retries));
    };
}

/**
 * Print the per-cell failure summary for a keep-going sweep and
 * return the exit code the command should use (0 when everything
 * completed Ok).
 */
int
reportSweepFailures(const SweepResult &sweep)
{
    const std::vector<std::size_t> failed = sweep.failedCells();
    if (failed.empty() && !sweep.stopped)
        return 0;

    if (!failed.empty()) {
        TextTable table("Failed cells");
        table.setHeader({"cell", "benchmark", "machine", "scheme",
                         "layout", "attempts", "error"});
        for (std::size_t i : failed) {
            const RunConfig &config = sweep.runs[i].config;
            const RunStatus &status = sweep.statuses[i];
            table.startRow();
            table.addCell(std::to_string(i));
            table.addCell(config.benchmark);
            table.addCell(std::string(machineName(config.machine)));
            table.addCell(std::string(schemeName(config.scheme)));
            table.addCell(std::string(layoutName(config.layout)));
            table.addCell(std::to_string(status.attempts));
            table.addCell(status.error.format());
        }
        table.print(std::cerr);
    }
    std::cerr << "sweep: " << sweep.countWith(RunOutcome::Ok)
              << " ok, " << failed.size() << " failed, "
              << sweep.countWith(RunOutcome::Skipped) << " skipped\n";

    if (sweep.stopped)
        return kExitInterrupted;
    // The worst failure's kind picks the exit code: Io beats nothing,
    // simulation-class errors beat Io, config beats both (it means
    // the request itself was bad).
    int exit_code = 0;
    for (std::size_t i : failed) {
        switch (sweep.statuses[i].error.kind) {
          case ErrorKind::Config:
            return kExitConfig;
          case ErrorKind::Workload:
          case ErrorKind::Internal:
            exit_code = kExitSimulation;
            break;
          case ErrorKind::Protocol:
            exit_code = kExitProtocol;
            break;
          case ErrorKind::Io:
            if (exit_code == 0)
                exit_code = kExitIo;
            break;
        }
    }
    return exit_code;
}

/**
 * Register the NAME=PATH pairs of a `--external` flag so that
 * `external:NAME` benchmarks resolve; each file is validated (header,
 * version, count vs size) at registration, never mid-sweep.
 */
void
applyExternalFlag(const std::map<std::string, std::string> &args)
{
    const std::string pairs = getOr(args, "external", "");
    if (pairs.empty())
        return;
    // Keep the Expected alive past the loop: value() returns a
    // reference into it, so iterating the temporary would dangle.
    const auto registered = registerExternalTraces(pairs);
    for (const ExternalTraceInfo &info : registered.value()) {
        std::cerr << "registered " << info.benchmark() << " ("
                  << info.records << " records, FSTR v"
                  << info.version << ", hash "
                  << runKeyHex(info.contentHash) << ")\n";
    }
}

int
cmdList()
{
    std::cout << "benchmarks:\n";
    for (const auto &spec : fullSuite()) {
        std::cout << "  " << spec.name
                  << (spec.isFp ? "  (fp)" : "  (int)") << "\n";
    }
    std::cout << "machines:   P14 P18 P112\n"
              << "schemes:\n";
    for (const SchemeInfo &scheme :
         FetchSchemeRegistry::instance().schemes()) {
        std::cout << "  " << scheme.key;
        for (std::size_t pad = std::strlen(scheme.key); pad < 14;
             ++pad)
            std::cout << ' ';
        std::cout << scheme.summary << "\n";
    }
    std::cout << "layouts:    unordered reordered pad-all pad-trace\n"
              << "predictors: btb gshare two-level oracle\n";
    return 0;
}

int
cmdRun(const std::map<std::string, std::string> &args)
{
    applyExternalFlag(args);
    RunConfig config;
    config.benchmark = getOr(args, "benchmark", "eqntott");
    config.machine = parseMachine(getOr(args, "machine", "P112"));
    config.scheme = parseScheme(getOr(args, "scheme", "collapsing"));
    config.layout = parseLayout(getOr(args, "layout", "unordered"));
    config.predictorKind =
        parsePredictor(getOr(args, "predictor", "btb"));
    config.useRas = args.count("ras") > 0;
    config.maxRetired = std::strtoull(
        getOr(args, "insts", "120000").c_str(), nullptr, 10);
    config.specDepthOverride =
        std::atoi(getOr(args, "spec-depth", "-1").c_str());
    config.btbEntriesOverride =
        std::atoi(getOr(args, "btb", "-1").c_str());

    Session session;

    // Optional observability: --metrics prints the hierarchical
    // registry after the run; --trace FILE streams per-cycle JSONL
    // fetch events.  Neither perturbs the simulation results.
    MetricRegistry metrics;
    std::ofstream trace_file;
    std::unique_ptr<TraceSink> trace;
    RunInstrumentation inst;
    if (args.count("metrics") > 0)
        inst.metrics = &metrics;
    const std::string trace_path = getOr(args, "trace", "");
    if (!trace_path.empty()) {
        trace_file.open(trace_path);
        if (!trace_file)
            throw SimException(ErrorKind::Io,
                               "cannot open " + trace_path);
        trace = std::make_unique<TraceSink>(trace_file);
        inst.trace = trace.get();
    }

    RunResult result = session.run(config, inst);
    if (trace) {
        std::cerr << "wrote " << trace->events()
                  << " trace events to " << trace_path << "\n";
    }
    if (args.count("json") > 0) {
        std::cout << result.toJson() << "\n";
        return 0;
    }
    std::cout << config.benchmark << " on "
              << machineName(config.machine) << ", "
              << schemeName(config.scheme) << ", "
              << layoutName(config.layout) << ", predictor "
              << predictorName(config.predictorKind)
              << (config.useRas ? "+RAS" : "") << ":\n"
              << result.counters.format();
    if (inst.metrics) {
        std::cout << "\nmetrics:\n" << metrics.formatText();
    }
    return 0;
}

int
cmdReport(const std::map<std::string, std::string> &args)
{
    ReproReportOptions options;
    options.threads = std::atoi(getOr(args, "threads", "0").c_str());
    options.dynInsts = std::strtoull(
        getOr(args, "insts", "0").c_str(), nullptr, 10);
    options.failure = parseFailurePolicy(args);
    options.checkpointPath = getOr(args, "checkpoint", "");
    options.resume = args.count("resume") > 0;
    if (options.resume && options.checkpointPath.empty())
        throw UsageError("--resume requires --checkpoint FILE");
    options.replay = parseReplayOptions(args);
    if (isatty(STDERR_FILENO)) {
        options.progress = [](std::size_t done, std::size_t total) {
            std::fprintf(stderr, "\r  [%zu/%zu runs]%s", done, total,
                         done == total ? "\r            \r" : "");
        };
    }

    const std::string host_trace = beginHostTrace(args);
    installSweepSigintHandler();
    Session session;
    SweepResult grid;
    const std::string report =
        generateReproReport(session, options, &grid);
    endHostTrace(host_trace);
    printReplayStats(session, options.replay);
    const int failure_exit = reportSweepFailures(grid);

    const std::string out = getOr(args, "out", "");
    if (out.empty()) {
        std::cout << report;
        return failure_exit;
    }
    std::ofstream os(out, std::ios::binary);
    if (!os)
        throw SimException(ErrorKind::Io, "cannot open " + out);
    os << report;
    if (!os)
        throw SimException(ErrorKind::Io, "error writing " + out);
    std::cerr << "wrote " << out << "\n";
    return failure_exit;
}

int
cmdSweep(const std::map<std::string, std::string> &args)
{
    applyExternalFlag(args);
    ExperimentPlan plan;
    plan.benchmarks(parseBenchmarks(getOr(args, "benchmarks", "int")));

    const std::string machines = getOr(args, "machines", "all");
    if (machines == "all") {
        plan.machines({MachineModel::P14, MachineModel::P18,
                       MachineModel::P112});
    } else {
        std::vector<MachineModel> axis;
        for (const std::string &name : splitList(machines))
            axis.push_back(parseMachine(name));
        plan.machines(std::move(axis));
    }

    const std::string schemes = getOr(args, "schemes", "all");
    if (schemes == "all") {
        // "all" = the paper's evaluation grid; the related-work and
        // beyond-paper schemes are requested by name.
        plan.schemes(FetchSchemeRegistry::instance().paperSchemes());
    } else {
        std::vector<SchemeKind> axis;
        for (const std::string &name : splitList(schemes))
            axis.push_back(parseScheme(name));
        plan.schemes(std::move(axis));
    }

    std::vector<LayoutKind> layout_axis;
    for (const std::string &name :
         splitList(getOr(args, "layouts", "unordered")))
        layout_axis.push_back(parseLayout(name));
    plan.layouts(std::move(layout_axis));

    const std::uint64_t insts = std::strtoull(
        getOr(args, "insts", "0").c_str(), nullptr, 10);
    if (insts > 0) {
        plan.override(
            [insts](RunConfig &config) { config.maxRetired = insts; });
    }

    SweepOptions options;
    options.threads = std::atoi(getOr(args, "threads", "0").c_str());
    options.failure = parseFailurePolicy(args);
    options.checkpointPath = getOr(args, "checkpoint", "");
    options.resume = args.count("resume") > 0;
    if (options.resume && options.checkpointPath.empty())
        throw UsageError("--resume requires --checkpoint FILE");
    options.replay = parseReplayOptions(args);
    attachSweepProgress(options);

    const std::string host_trace = beginHostTrace(args);
    installSweepSigintHandler();
    Session session;
    SweepEngine engine(session, options);
    std::cerr << "sweeping " << plan.size() << " configs on "
              << engine.threads() << " threads\n";
    SweepResult sweep = engine.run(plan);
    endHostTrace(host_trace);
    std::cerr << "sweep wall " << sweep.wallNs / 1e9 << " s, peak RSS "
              << sweep.peakRssBytes / (1024.0 * 1024.0) << " MB\n";
    printReplayStats(session, options.replay);
    const int failure_exit = reportSweepFailures(sweep);

    bool wrote = false;
    auto it = args.find("json");
    if (it != args.end()) {
        if (it->second.empty()) {
            writeRunsJson(std::cout, sweep.runs);
        } else {
            std::ofstream os(it->second);
            if (!os)
                throw SimException(ErrorKind::Io,
                                   "cannot open " + it->second);
            writeRunsJson(os, sweep.runs);
            std::cerr << "wrote " << it->second << "\n";
        }
        wrote = true;
    }
    it = args.find("csv");
    if (it != args.end()) {
        std::ofstream os(it->second);
        if (!os)
            throw SimException(ErrorKind::Io,
                               "cannot open " + it->second);
        writeRunsCsv(os, sweep.runs);
        std::cerr << "wrote " << it->second << "\n";
        wrote = true;
    }
    if (wrote)
        return failure_exit;

    // No structured output requested: print a summary table of the
    // completed cells.  The host columns (throughput, wall time) are
    // nondeterministic and deliberately live only here and in BENCH
    // output, never in the run JSON/CSV or docs/RESULTS.md.
    TextTable table("Sweep results");
    table.setHeader({"benchmark", "machine", "scheme", "layout", "IPC",
                     "EIR", "Mcyc/s", "wall ms"});
    for (std::size_t i = 0; i < sweep.runs.size(); ++i) {
        if (!sweep.cellOk(i))
            continue;
        const RunResult &run = sweep.runs[i];
        const HostStats &host = sweep.host[i];
        table.startRow();
        table.addCell(run.config.benchmark);
        table.addCell(std::string(machineName(run.config.machine)));
        table.addCell(std::string(schemeName(run.config.scheme)));
        table.addCell(std::string(layoutName(run.config.layout)));
        table.addCell(run.ipc(), 3);
        table.addCell(run.eir(), 3);
        table.addCell(host.cyclesPerSec() / 1e6, 2);
        table.addCell(host.wallNs / 1e6, 1);
    }
    table.print(std::cout);
    return failure_exit;
}

int
cmdBench(const std::map<std::string, std::string> &args)
{
    BenchOptions options;
    options.iterations =
        std::atoi(getOr(args, "iterations", "5").c_str());
    if (options.iterations < 1)
        throw UsageError("--iterations wants a positive count");
    options.threads = std::atoi(getOr(args, "threads", "1").c_str());
    if (options.threads < 1)
        throw UsageError("--threads wants a positive count");
    options.dynInsts = std::strtoull(
        getOr(args, "insts", "0").c_str(), nullptr, 10);
    options.smoke = args.count("smoke") > 0;
    options.replay = parseReplayOptions(args);
    if (isatty(STDERR_FILENO)) {
        options.progress = [](int iteration, int total) {
            std::fprintf(stderr, "\r  [%d/%d iterations]%s", iteration,
                         total,
                         iteration == total ? "\r                  \r"
                                            : "");
        };
    }

    const std::string host_trace = beginHostTrace(args);
    Session session;
    const BenchReport report = runBench(session, options);
    endHostTrace(host_trace);
    printReplayStats(session, options.replay);

    const std::string out = getOr(args, "out", "BENCH_sweep.json");
    std::ofstream os(out, std::ios::binary);
    if (!os)
        throw SimException(ErrorKind::Io, "cannot open " + out);
    writeBenchJson(os, report);
    if (!os)
        throw SimException(ErrorKind::Io, "error writing " + out);
    std::cerr << "wrote " << out << "\n";

    TextTable table(options.smoke ? "Bench results (smoke)"
                                  : "Bench results");
    table.setHeader({"cell", "Mcyc/s", "±MAD", "Minst/s", "wall ms"});
    for (const BenchCellStats &cell : report.cells) {
        table.startRow();
        table.addCell(cell.id);
        table.addCell(cell.medianCyclesPerSec / 1e6, 2);
        table.addCell(cell.madCyclesPerSec / 1e6, 2);
        table.addCell(cell.medianInstsPerSec / 1e6, 2);
        table.addCell(cell.medianWallNs / 1e6, 1);
    }
    table.print(std::cout);
    std::cout << "bench: " << report.cells.size() << " cells x "
              << report.iterations << " iterations, wall "
              << report.totalWallNs / 1e9 << " s, peak RSS "
              << report.peakRssBytes / (1024.0 * 1024.0) << " MB\n";

    const std::string baseline_path = getOr(args, "baseline", "");
    if (baseline_path.empty())
        return 0;
    const double max_regress = std::strtod(
        getOr(args, "max-regress", "10").c_str(), nullptr);
    const std::map<std::string, double> baseline =
        loadBenchBaseline(baseline_path).value();
    const std::vector<BenchRegression> regressions =
        findBenchRegressions(report, baseline, max_regress);
    if (regressions.empty()) {
        std::cerr << "bench: no cell regressed more than "
                  << max_regress << "% vs " << baseline_path << "\n";
        return 0;
    }
    TextTable regressed("Regressions vs " + baseline_path);
    regressed.setHeader(
        {"cell", "baseline Mcyc/s", "now Mcyc/s", "slowdown %"});
    for (const BenchRegression &regression : regressions) {
        regressed.startRow();
        regressed.addCell(regression.id);
        regressed.addCell(regression.baselineCyclesPerSec / 1e6, 2);
        regressed.addCell(regression.currentCyclesPerSec / 1e6, 2);
        regressed.addCell(regression.slowdownPct, 1);
    }
    regressed.print(std::cerr);
    std::cerr << "bench: " << regressions.size()
              << " cell(s) regressed\n";
    return 1;
}

int
cmdRecord(const std::map<std::string, std::string> &args)
{
    const std::string name = getOr(args, "benchmark", "eqntott");
    const std::string out = getOr(args, "out", name + ".trace");
    const std::uint64_t insts = std::strtoull(
        getOr(args, "insts", "200000").c_str(), nullptr, 10);
    const LayoutKind layout =
        parseLayout(getOr(args, "layout", "unordered"));

    Session session;
    const Workload &workload = session.workload(name, layout, 16);
    Executor exec(workload, kEvalInput);
    const std::uint64_t written = recordTrace(exec, out, insts);
    TraceReader reader(out);
    char hash[32];
    std::snprintf(hash, sizeof(hash), "%016llx",
                  static_cast<unsigned long long>(reader.contentHash()));
    std::cout << "recorded " << written << " instructions of " << name
              << " (" << layoutName(layout) << " layout) to " << out
              << "\n"
              << "FSTR v" << reader.version() << ", content hash "
              << hash << "\n";
    return 0;
}

int
cmdServe(const std::map<std::string, std::string> &args)
{
    ServiceOptions options;
    options.socketPath = getOr(args, "socket", "");
    if (options.socketPath.empty())
        throw UsageError("serve requires --socket PATH");
    options.threads = std::atoi(getOr(args, "threads", "0").c_str());
    const long queue_cells =
        std::atol(getOr(args, "queue-cells", "4096").c_str());
    if (queue_cells <= 0)
        throw UsageError("--queue-cells wants a positive count");
    options.maxQueuedCells = static_cast<std::size_t>(queue_cells);
    options.resultCache.journalPath = getOr(args, "result-cache", "");
    options.resultCache.maxEntries = std::strtoull(
        getOr(args, "cache-max-entries", "0").c_str(), nullptr, 10);
    options.replay = parseReplayOptions(args);

    SweepService service(options);
    installServiceSignalHandlers();
    clearServiceStop();
    service.start();
    std::cerr << "serving on " << service.socketPath() << " with "
              << service.threads() << " workers";
    if (!options.resultCache.journalPath.empty()) {
        std::cerr << ", result cache "
                  << options.resultCache.journalPath << " ("
                  << service.resultCache().stats().loaded
                  << " entries loaded)";
    }
    std::cerr << "\n";

    // Sleep until SIGTERM/SIGINT or a client's POST /v1/shutdown,
    // then drain: the drain must run on this thread, never on a
    // connection thread (it joins them).
    while (!serviceStopRequested() && !service.shutdownRequested())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::cerr << "draining...\n";
    service.drain();

    const ServiceStats stats = service.stats();
    std::cerr << "served " << stats.jobsSubmitted << " jobs, "
              << stats.requests << " requests: "
              << stats.cellsSimulated << " cells simulated, "
              << stats.cellsCacheServed << " cache-served, "
              << stats.cellsSkipped << " skipped\n";
    printReplayStats(service.session(), options.replay);
    return 0;
}

/**
 * Turn an error response from the service into the structured
 * exception the exit-code mapping understands (the body carries the
 * SimError kind, docs/SERVICE.md).
 */
[[noreturn]] void
raiseServiceError(const ServiceResponse &response)
{
    auto parsed = parseJson(response.body);
    if (parsed.ok()) {
        if (const JsonValue *error = parsed.value().find("error")) {
            ErrorKind kind = ErrorKind::Protocol;
            if (const JsonValue *kind_field = error->find("kind")) {
                const std::string &name = kind_field->asString();
                if (name == "config")
                    kind = ErrorKind::Config;
                else if (name == "workload")
                    kind = ErrorKind::Workload;
                else if (name == "io")
                    kind = ErrorKind::Io;
                else if (name == "internal")
                    kind = ErrorKind::Internal;
            }
            std::string message = "service error";
            if (const JsonValue *msg = error->find("message"))
                message = msg->asString();
            throw SimException(kind, message);
        }
    }
    throw SimException(ErrorKind::Protocol,
                       "service returned HTTP " +
                           std::to_string(response.status) + ": " +
                           response.body);
}

int
cmdSubmit(const std::map<std::string, std::string> &args)
{
    const std::string socket = getOr(args, "socket", "");
    if (socket.empty())
        throw UsageError("submit requires --socket PATH");

    // Service management modes: one request, print the response.
    if (args.count("shutdown")) {
        const ServiceResponse response =
            serviceRequest(socket, "POST", "/v1/shutdown");
        if (response.status != 200)
            raiseServiceError(response);
        std::cout << response.body << "\n";
        return 0;
    }
    if (args.count("metrics")) {
        // --format prometheus selects the exposition-format document;
        // the service validates the value (400 on unknown formats).
        std::string target = "/metrics";
        if (auto it = args.find("format"); it != args.end())
            target += "?format=" + it->second;
        const ServiceResponse response =
            serviceRequest(socket, "GET", target);
        if (response.status != 200)
            raiseServiceError(response);
        std::cout << response.body;
        return 0;
    }
    if (args.count("trace")) {
        const ServiceResponse response = serviceRequest(
            socket, "GET", "/v1/jobs/" + args.at("trace") + "/trace");
        if (response.status != 200)
            raiseServiceError(response);
        std::cout << response.body;
        return 0;
    }
    if (args.count("cancel")) {
        const ServiceResponse response = serviceRequest(
            socket, "POST", "/v1/jobs/" + args.at("cancel") +
                                "/cancel");
        if (response.status != 200)
            raiseServiceError(response);
        std::cout << response.body << "\n";
        return 0;
    }
    if (args.count("status")) {
        const ServiceResponse response = serviceRequest(
            socket, "GET", "/v1/jobs/" + args.at("status"));
        if (response.status != 200)
            raiseServiceError(response);
        std::cout << response.body << "\n";
        return 0;
    }

    // Plan submission.  The "int"/"fp"/"all" conveniences expand
    // client-side exactly like `sweep`; empty lists select the
    // service-side defaults (all machines, the paper schemes).
    std::vector<std::string> machines;
    const std::string machines_arg = getOr(args, "machines", "all");
    if (machines_arg != "all")
        machines = splitList(machines_arg);
    std::vector<std::string> schemes;
    const std::string schemes_arg = getOr(args, "schemes", "all");
    if (schemes_arg != "all")
        schemes = splitList(schemes_arg);
    const std::vector<std::string> layouts =
        splitList(getOr(args, "layouts", "unordered"));
    const std::uint64_t insts = std::strtoull(
        getOr(args, "insts", "0").c_str(), nullptr, 10);
    const int priority =
        std::atoi(getOr(args, "priority", "0").c_str());

    const std::string body = planRequestJson(
        parseBenchmarks(getOr(args, "benchmarks", "int")), machines,
        schemes, layouts, insts, priority);
    const ServiceResponse submitted =
        serviceRequest(socket, "POST", "/v1/jobs", body);
    if (submitted.status != 202)
        raiseServiceError(submitted);

    auto accepted = parseJson(submitted.body);
    const JsonValue *id =
        accepted.ok() ? accepted.value().find("job") : nullptr;
    if (!id)
        throw SimException(ErrorKind::Protocol,
                           "malformed submission response: " +
                               submitted.body);
    const std::uint64_t job = id->asU64();
    std::cerr << "job " << job << " queued\n";

    if (args.count("no-wait")) {
        std::cout << submitted.body << "\n";
        return 0;
    }

    // Long-poll until the job is terminal, then fetch the result
    // document (the exact bytes `sweep --json` would write).
    const std::string base = "/v1/jobs/" + std::to_string(job);
    const ServiceResponse status =
        serviceRequest(socket, "GET", base + "?wait=1");
    if (status.status != 200)
        raiseServiceError(status);
    auto final_status = parseJson(status.body);
    std::string state = "done";
    std::uint64_t failed = 0;
    if (final_status.ok()) {
        if (const JsonValue *s = final_status.value().find("state"))
            state = s->asString();
        if (const JsonValue *f = final_status.value().find("failed"))
            failed = f->asU64();
    }
    std::cerr << "job " << job << " " << state << ": " << status.body
              << "\n";

    const ServiceResponse result =
        serviceRequest(socket, "GET", base + "/result");
    if (result.status != 200)
        raiseServiceError(result);
    auto it = args.find("json");
    if (it != args.end() && !it->second.empty()) {
        std::ofstream os(it->second);
        if (!os)
            throw SimException(ErrorKind::Io,
                               "cannot open " + it->second);
        os << result.body;
        if (!os)
            throw SimException(ErrorKind::Io,
                               "error writing " + it->second);
        std::cerr << "wrote " << it->second << "\n";
    } else {
        std::cout << result.body;
    }

    if (state == "cancelled" || state == "drained")
        return kExitInterrupted;
    return failed ? kExitSimulation : 0;
}

int
cmdImport(const std::map<std::string, std::string> &args)
{
    const std::string input = getOr(args, "in", "");
    const std::string output = getOr(args, "out", "");
    if (input.empty() || output.empty())
        throw UsageError("import requires --in FILE and --out FILE");

    ImportOptions options;
    options.format =
        parseImportFormat(getOr(args, "format", "champsim")).value();
    options.repair = args.count("lenient") ? RepairPolicy::Lenient
                                           : RepairPolicy::Strict;
    const std::string max_insts = getOr(args, "max-insts", "");
    if (!max_insts.empty()) {
        options.maxRecords =
            std::strtoull(max_insts.c_str(), nullptr, 10);
        if (options.maxRecords == 0)
            throw UsageError("--max-insts wants a positive count");
    }
    options.manifestPath = getOr(args, "manifest", "");

    const ImportStats stats = importTrace(input, output, options);
    std::cout << "imported " << stats.recordsOut << " of "
              << stats.recordsIn << " records from " << input
              << " to " << stats.outputPath << "\n"
              << "FSTR v2, content hash "
              << runKeyHex(stats.contentHash) << "\n"
              << "manifest " << stats.manifestPath << "\n";
    if (stats.repairs.total() != 0) {
        std::cout << "repairs: " << stats.repairs.total()
                  << " (flag-bytes " << stats.repairs.flagBytes
                  << ", null-ip " << stats.repairs.nullIp
                  << ", taken-flags " << stats.repairs.takenFlags
                  << ", discontinuities "
                  << stats.repairs.discontinuities
                  << ", reclassified " << stats.repairs.reclassified
                  << ", truncated-input "
                  << stats.repairs.truncatedInput << ", partial-tail "
                  << stats.repairs.partialTail << ", dropped-tail "
                  << stats.repairs.droppedTail << ")\n";
    }
    std::cout << "run it with: fetchsim_cli run --external name="
              << stats.outputPath << " --benchmark external:name\n";
    return 0;
}

int
cmdFuzz(const std::map<std::string, std::string> &args)
{
    const int threads =
        std::atoi(getOr(args, "threads", "4").c_str());
    if (threads < 1)
        throw UsageError("--threads wants a positive count");

    // Replay mode: one scenario, chosen by its exact seed.
    const std::string replay_seed = getOr(args, "fuzz-seed", "");
    if (!replay_seed.empty()) {
        const std::uint64_t seed =
            std::strtoull(replay_seed.c_str(), nullptr, 0);
        const int level =
            std::atoi(getOr(args, "shrink-level", "0").c_str());
        if (level < 0 || level > kMaxShrinkLevel)
            throw UsageError("--shrink-level wants 0.." +
                             std::to_string(kMaxShrinkLevel));
        std::uint64_t cells = 0;
        const std::vector<FuzzFailure> failures =
            checkFuzzScenario(seed, level, threads, &cells);
        if (failures.empty()) {
            std::cout << "fuzz: scenario 0x" << runKeyHex(seed)
                      << " level " << level << " ok (" << cells
                      << " cells)\n";
            return 0;
        }
        for (const FuzzFailure &failure : failures) {
            std::cout << "fuzz: FAIL " << failure.property << " ("
                      << failure.detail << ")\n";
        }
        return kExitSimulation;
    }

    FuzzOptions options;
    options.runs = std::strtoull(getOr(args, "runs", "100").c_str(),
                                 nullptr, 10);
    if (options.runs == 0)
        throw UsageError("--runs wants a positive count");
    options.seed = std::strtoull(getOr(args, "seed", "1").c_str(),
                                 nullptr, 0);
    options.threads = threads;
    options.maxFailures = std::strtoull(
        getOr(args, "max-failures", "5").c_str(), nullptr, 10);
    options.log = &std::cerr;

    const FuzzReport report = runFuzz(options);
    std::cout << "fuzz: " << report.scenarios << " scenarios, "
              << report.cells << " cells, " << report.failures.size()
              << " failures (seed " << options.seed << ")\n";
    if (report.ok())
        return 0;
    for (const FuzzFailure &failure : report.failures) {
        std::cout << "fuzz: FAIL " << failure.property << " at seed 0x"
                  << runKeyHex(failure.seed) << " level "
                  << failure.shrinkLevel << ": " << failure.detail
                  << "\n"
                  << "fuzz: reproduce: " << failure.reproducer << "\n";
    }
    return kExitSimulation;
}

int
cmdHelp()
{
    // The single authoritative flag reference.  The docs-freshness
    // check (scripts/check_docs_fresh.sh) extracts every --flag token
    // printed here and fails when one is missing from README.md, so
    // adding a flag without documenting it breaks CI.  The scheme
    // value list comes from the registry, so new schemes appear here
    // (and in `list`) automatically.
    const std::string scheme_keys =
        FetchSchemeRegistry::instance().keyList();
    std::cout <<
        "fetchsim_cli -- trace-driven fetch-mechanism simulator\n"
        "\n"
        "commands:\n"
        "  list    print benchmarks, machines, schemes, layouts\n"
        "  run     simulate one configuration\n"
        "  sweep   run a configuration grid in parallel\n"
        "  report  regenerate docs/RESULTS.md from the paper grid\n"
        "  bench   host-performance regression harness\n"
        "  record  write a dynamic trace to an FSTR file\n"
        "  replay  run a processor from a recorded FSTR file\n"
        "  import  convert an external trace to an FSTR file\n"
        "  fuzz    property-based sweep-invariant fuzzer\n"
        "  serve   long-lived sweep service on a unix socket\n"
        "  submit  send a plan to a running serve, fetch results\n"
        "  help    this flag reference\n"
        "\n"
        "run:\n"
        "  --benchmark NAME    workload (default eqntott)\n"
        "  --machine M         P14|P18|P112 (default P112)\n"
        "  --scheme S          " << scheme_keys << "\n"
        "  --layout L          unordered|reordered|pad-all|pad-trace\n"
        "  --predictor P       btb|gshare|two-level|oracle\n"
        "  --ras               enable the return-address stack\n"
        "  --insts N           retired-instruction budget\n"
        "  --spec-depth N      speculative-fetch depth override\n"
        "  --btb N             BTB entry-count override\n"
        "  --metrics           dump the metric registry\n"
        "  --trace FILE        write a per-cycle pipeline trace\n"
        "  --json [FILE]       machine-readable run output\n"
        "\n"
        "sweep (also accepts the shared flags below):\n"
        "  --benchmarks LIST   e.g. int|fp|all|eqntott,gcc\n"
        "  --machines LIST     e.g. all|P14,P112\n"
        "  --schemes LIST      e.g. all|sequential,collapsing\n"
        "  --layouts LIST      e.g. unordered,pad_all\n"
        "  --insts N           per-run budget override\n"
        "  --json [FILE]       per-run JSON (stdout when no FILE)\n"
        "  --csv FILE          per-run CSV\n"
        "\n"
        "report:\n"
        "  --out FILE          write the Markdown report here\n"
        "  --insts N           per-run budget (0 = default)\n"
        "\n"
        "bench:\n"
        "  --iterations N      measured grid repetitions (default 5)\n"
        "  --threads N         sweep worker threads (default 1)\n"
        "  --insts N           per-run budget (0 = default)\n"
        "  --out FILE          BENCH JSON path (default "
        "BENCH_sweep.json)\n"
        "  --smoke             one tiny schema-validation iteration\n"
        "  --baseline FILE     compare against a committed BENCH "
        "JSON\n"
        "  --max-regress PCT   allowed slowdown vs baseline "
        "(default 10)\n"
        "  --replay MODE       off|mem|disk stream replay cache\n"
        "  --trace-out FILE    host-side Chrome trace of the bench\n"
        "\n"
        "record:\n"
        "  --benchmark NAME    workload to execute (default eqntott)\n"
        "  --layout L          code layout (default unordered)\n"
        "  --insts N           instructions to record\n"
        "  --out FILE          FSTR output path\n"
        "\n"
        "replay:\n"
        "  --trace FILE        FSTR file to replay (required)\n"
        "  --machine M         machine model (default P112)\n"
        "  --scheme S          fetch scheme (default collapsing)\n"
        "  --insts N           instructions to replay (0 = all)\n"
        "\n"
        "import:\n"
        "  --in FILE           external trace to convert (required)\n"
        "  --out FILE          FSTR v2 output path (required)\n"
        "  --format F          source format (champsim)\n"
        "  --lenient           repair and count malformed records\n"
        "                      instead of rejecting the trace\n"
        "  --max-insts N       imported-record budget (default 5M)\n"
        "  --manifest FILE     manifest path (default "
        "OUT.manifest.json)\n"
        "\n"
        "fuzz:\n"
        "  --runs N            scenarios per campaign (default 100)\n"
        "  --seed N            campaign seed (default 1)\n"
        "  --max-failures N    stop after N failures (default 5)\n"
        "  --fuzz-seed HEX     replay one scenario by its seed\n"
        "  --shrink-level N    shrink rung for --fuzz-seed (0-4)\n"
        "\n"
        "serve (also accepts --threads and the --replay* flags):\n"
        "  --socket PATH       unix socket to listen on (required)\n"
        "  --queue-cells N     queued-cell backpressure bound "
        "(default 4096)\n"
        "  --result-cache FILE JSONL journal backing the "
        "content-addressed\n"
        "                      result cache (resumable across "
        "restarts)\n"
        "  --cache-max-entries N  result-cache entry budget (0 = "
        "unlimited)\n"
        "\n"
        "submit (plan flags as in sweep; --json [FILE] for the "
        "result):\n"
        "  --socket PATH       socket of a running serve (required)\n"
        "  --priority N        scheduling priority (higher runs "
        "first)\n"
        "  --no-wait           print the accepted job status and "
        "return\n"
        "  --status JOB        print one job's status JSON\n"
        "  --cancel JOB        cancel a job's unclaimed cells\n"
        "  --metrics           print the service /metrics document\n"
        "                      (--format text|prometheus selects the\n"
        "                      exposition format)\n"
        "  --trace JOB         print a job's Chrome/Perfetto trace "
        "JSON\n"
        "  --shutdown          ask the service to drain and exit\n"
        "\n"
        "shared by run and sweep:\n"
        "  --external LIST     register NAME=PATH external traces;\n"
        "                      reference them as external:NAME\n"
        "\n"
        "structured logging (every command; FETCHSIM_LOG=\n"
        "level[:format[:path]] sets defaults, flags win):\n"
        "  --log-level L       debug|info|warn|error|off (default "
        "info)\n"
        "  --log-format F      text|json log-line format\n"
        "  --log-file FILE     append log lines to FILE instead of "
        "stderr\n"
        "\n"
        "shared by sweep, report and bench (fuzz: --threads only):\n"
        "  --threads N         worker threads (0 = auto)\n"
        "  --fail-fast         stop the sweep at the first failure\n"
        "  --keep-going        record failures, keep sweeping\n"
        "  --retry N           per-cell retry attempts\n"
        "  --retry-backoff-ms MS  base backoff between retries\n"
        "  --checkpoint FILE   JSONL cell journal\n"
        "  --resume            reload journaled cells (needs "
        "--checkpoint)\n"
        "  --replay MODE       off|mem|disk dynamic-trace replay "
        "cache\n"
        "  --replay-budget-mb MB  cap on cached trace bytes (0 = "
        "unlimited)\n"
        "  --replay-dir DIR    spill directory for --replay disk\n"
        "  --trace-out FILE    host-side Chrome trace of the sweep\n"
        "\n"
        "See docs/TRACES.md for the record/replay workflow,\n"
        "docs/SERVICE.md for the serve/submit protocol and\n"
        "EXPERIMENTS.md for the paper-figure invocations.\n";
    return 0;
}

int
cmdReplay(const std::map<std::string, std::string> &args)
{
    const std::string path = getOr(args, "trace", "");
    if (path.empty())
        throw UsageError("replay requires --trace <file>");
    const MachineConfig cfg =
        makeMachine(parseMachine(getOr(args, "machine", "P112")));
    const SchemeKind scheme =
        parseScheme(getOr(args, "scheme", "collapsing"));

    TraceReader reader(path);
    std::uint64_t insts = std::strtoull(
        getOr(args, "insts", "0").c_str(), nullptr, 10);
    if (insts == 0 || insts > reader.count())
        insts = reader.count();

    Processor proc(reader, cfg, makeFetchMechanism(scheme, cfg));
    proc.run(insts);
    std::cout << "replayed " << insts << " of " << reader.count()
              << " trace instructions on " << cfg.name << "/"
              << schemeName(scheme) << ":\n"
              << proc.counters().format();
    return 0;
}

/** Map a structured error to the documented exit-code scheme. */
int
exitCodeFor(const SimException &e)
{
    if (e.error().context == "interrupted")
        return kExitInterrupted;
    switch (e.kind()) {
      case ErrorKind::Config:
        return kExitConfig;
      case ErrorKind::Workload:
      case ErrorKind::Internal:
        return kExitSimulation;
      case ErrorKind::Io:
        return kExitIo;
      case ErrorKind::Protocol:
        return kExitProtocol;
    }
    return kExitSimulation;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cout << "usage: fetchsim_cli {run|sweep|report|bench|"
                     "record|replay|import|fuzz|serve|submit|list|"
                     "help} "
                     "[--option value ...]\n"
                     "(run `fetchsim_cli help` for the flag "
                     "reference)\n";
        return kExitUsage;
    }
    const std::string command = argv[1];
    try {
        auto args = parseArgs(argc, argv, 2);
        applyLogFlags(args);
        if (command == "list")
            return cmdList();
        if (command == "help")
            return cmdHelp();
        if (command == "run")
            return cmdRun(args);
        if (command == "sweep")
            return cmdSweep(args);
        if (command == "report")
            return cmdReport(args);
        if (command == "bench")
            return cmdBench(args);
        if (command == "record")
            return cmdRecord(args);
        if (command == "replay")
            return cmdReplay(args);
        if (command == "import")
            return cmdImport(args);
        if (command == "fuzz")
            return cmdFuzz(args);
        if (command == "serve")
            return cmdServe(args);
        if (command == "submit")
            return cmdSubmit(args);
        throw UsageError("unknown command: " + command);
    } catch (const UsageError &e) {
        std::cerr << "fetchsim_cli: " << e.what() << "\n";
        return kExitUsage;
    } catch (const SimException &e) {
        std::cerr << "fetchsim_cli: " << e.what() << "\n";
        return exitCodeFor(e);
    } catch (const std::exception &e) {
        std::cerr << "fetchsim_cli: internal error: " << e.what()
                  << "\n";
        return kExitSimulation;
    }
}
